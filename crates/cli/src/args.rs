//! Minimal dependency-free argument parsing for the `fakeaudit` binary.

use std::collections::HashMap;
use std::fmt;

/// A parsed command line: a subcommand, an optional action, plus
/// `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedArgs {
    /// The subcommand (first positional argument).
    pub command: Option<String>,
    /// The action (second positional argument, e.g. `trace analyze`).
    pub action: Option<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// Errors from argument parsing and extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// An option value failed to parse.
    InvalidValue {
        /// The option name.
        option: String,
        /// The raw value.
        value: String,
        /// Parser error text.
        message: String,
    },
    /// A positional argument appeared after the subcommand.
    UnexpectedPositional(
        /// The stray argument.
        String,
    ),
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::InvalidValue {
                option,
                value,
                message,
            } => write!(f, "invalid value {value:?} for {option}: {message}"),
            ArgsError::UnexpectedPositional(arg) => {
                write!(f, "unexpected argument {arg:?}")
            }
        }
    }
}

impl std::error::Error for ArgsError {}

impl ParsedArgs {
    /// Parses an iterator of arguments (without the program name).
    ///
    /// Grammar: `[command [action]] (--flag | --option value)*`. Every
    /// `--name` followed by another `--name` or end of input is a boolean
    /// flag; otherwise it consumes the next token as its value.
    ///
    /// # Errors
    ///
    /// [`ArgsError::UnexpectedPositional`] for stray positionals.
    pub fn parse<I: Iterator<Item = String>>(args: I) -> Result<Self, ArgsError> {
        let mut parsed = ParsedArgs::default();
        let mut args = args.peekable();
        if let Some(first) = args.peek() {
            if !first.starts_with("--") {
                parsed.command = args.next();
                if args.peek().is_some_and(|next| !next.starts_with("--")) {
                    parsed.action = args.next();
                }
            }
        }
        while let Some(arg) = args.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let takes_value = args.peek().is_some_and(|next| !next.starts_with("--"));
                if takes_value {
                    parsed
                        .options
                        .insert(name.to_string(), args.next().expect("peeked"));
                } else {
                    parsed.flags.push(name.to_string());
                }
            } else {
                return Err(ArgsError::UnexpectedPositional(arg));
            }
        }
        Ok(parsed)
    }

    /// Whether a boolean flag was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// A raw option value.
    pub fn raw(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// A typed option value, or `default` when absent.
    ///
    /// # Errors
    ///
    /// [`ArgsError::InvalidValue`] when the value does not parse.
    pub fn get_or<T>(&self, name: &str, default: T) -> Result<T, ArgsError>
    where
        T: std::str::FromStr,
        T::Err: fmt::Display,
    {
        match self.options.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|e: T::Err| ArgsError::InvalidValue {
                option: format!("--{name}"),
                value: raw.clone(),
                message: e.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Result<ParsedArgs, ArgsError> {
        ParsedArgs::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn empty_input() {
        let p = parse(&[]).unwrap();
        assert_eq!(p.command, None);
        assert_eq!(p.action, None);
        assert!(!p.flag("x"));
    }

    #[test]
    fn command_and_options() {
        let p = parse(&["audit", "--followers", "5000", "--seed", "7"]).unwrap();
        assert_eq!(p.command.as_deref(), Some("audit"));
        assert_eq!(p.get_or("followers", 0usize).unwrap(), 5_000);
        assert_eq!(p.get_or("seed", 0u64).unwrap(), 7);
        assert_eq!(p.get_or("absent", 42u32).unwrap(), 42);
    }

    #[test]
    fn flags_without_values() {
        let p = parse(&["audit", "--quick", "--seed", "3", "--verbose"]).unwrap();
        assert!(p.flag("quick"));
        assert!(p.flag("verbose"));
        assert!(!p.flag("seed"));
        assert_eq!(p.raw("seed"), Some("3"));
    }

    #[test]
    fn invalid_value_reports_option() {
        let p = parse(&["audit", "--followers", "lots"]).unwrap();
        let err = p.get_or("followers", 0usize).unwrap_err();
        assert!(matches!(err, ArgsError::InvalidValue { .. }));
        assert!(err.to_string().contains("--followers"));
    }

    #[test]
    fn action_positional() {
        let p = parse(&["trace", "analyze", "--input", "t.jsonl"]).unwrap();
        assert_eq!(p.command.as_deref(), Some("trace"));
        assert_eq!(p.action.as_deref(), Some("analyze"));
        assert_eq!(p.raw("input"), Some("t.jsonl"));
        assert_eq!(parse(&["audit", "--seed", "1"]).unwrap().action, None);
    }

    #[test]
    fn stray_positional_rejected() {
        assert!(matches!(
            parse(&["trace", "analyze", "extra"]),
            Err(ArgsError::UnexpectedPositional(_))
        ));
    }

    #[test]
    fn fractional_options() {
        let p = parse(&["audit", "--fake", "0.15"]).unwrap();
        assert_eq!(p.get_or("fake", 0.0f64).unwrap(), 0.15);
    }

    #[test]
    fn telemetry_path_option() {
        let p = parse(&["audit", "--telemetry", "/tmp/trace.jsonl", "--seed", "7"]).unwrap();
        assert_eq!(p.raw("telemetry"), Some("/tmp/trace.jsonl"));
        assert!(!p.flag("telemetry"));
    }

    #[test]
    fn quiet_flag() {
        let p = parse(&["crawl", "--quiet", "--followers", "1000"]).unwrap();
        assert!(p.flag("quiet"));
        assert_eq!(p.get_or("followers", 0u64).unwrap(), 1_000);
        assert!(!parse(&["crawl"]).unwrap().flag("quiet"));
    }

    #[test]
    fn quiet_and_telemetry_combine() {
        let p = parse(&["audit", "--quiet", "--telemetry", "out.jsonl"]).unwrap();
        assert!(p.flag("quiet"));
        assert_eq!(p.raw("telemetry"), Some("out.jsonl"));
    }
}
