//! `fakeaudit` — audit a synthetic Twitter account with the four
//! fake-follower analytics of Cresci et al. (2014).
//!
//! ```text
//! fakeaudit audit --followers 20000 --inactive 0.30 --fake 0.15 \
//!                 --recency-bias 20 --seed 42
//! fakeaudit crawl --followers 41000000
//! fakeaudit sample-size --margin 0.01 --confidence 95
//! fakeaudit serve-sim --rate 4 --policy degrade --burst
//! fakeaudit serve --port 8080 --workers 2 --policy degrade
//! fakeaudit trace analyze --input trace.jsonl
//! fakeaudit bench compare --input results/BENCH_gateway.json --tolerance 15%
//! ```

mod args;

use args::ParsedArgs;
use fakeaudit_analytics::{report, BreakerConfig, OnlineService, ServiceProfile};
use fakeaudit_bench::ledger::{self, LedgerEntry};
use fakeaudit_core::experiments::service_load::ServingWorld;
use fakeaudit_core::panel::AuditPanel;
use fakeaudit_core::scoring::score_against_truth;
use fakeaudit_detectors::{FakeProjectEngine, Socialbakers, StatusPeople, ToolId, Twitteraudit};
use fakeaudit_gateway::{Gateway, GatewayConfig, ToolPool};
use fakeaudit_population::{ClassMix, TargetScenario};
use fakeaudit_server::{
    flush_writer, generate, ArrivalProcess, LoadSpec, OverloadPolicy, ServerConfig, ServerSim,
};
use fakeaudit_stats::rng::derive_seed;
use fakeaudit_stats::sample_size::{required_sample_size, worst_case_margin};
use fakeaudit_stats::ConfidenceLevel;
use fakeaudit_store::queries::{self, QueryKind, QueryOptions};
use fakeaudit_store::{compact, open_shared_with, repair, verify, FsyncPolicy, Store};
use fakeaudit_telemetry::analyze::chrome_trace_json;
use fakeaudit_telemetry::sink::parse_jsonl;
use fakeaudit_telemetry::{
    ChromeTraceOptions, LatencyAttribution, MonitorConfig, RunReport, SelfTimeProfile, SloMonitor,
    SloSpec, Telemetry, TraceEvent, TraceTree, WallClock,
};
use fakeaudit_twitter_api::crawl::CrawlBudget;
use fakeaudit_twitter_api::{ApiConfig, ApiSession, FaultPlan, RetryPolicy};
use fakeaudit_twittersim::Platform;

const USAGE: &str = "\
fakeaudit — the fake-follower analytics of Cresci et al. (2014), offline

USAGE:
  fakeaudit audit [--followers N] [--inactive F] [--fake F] [--name S]
                  [--recency-bias K] [--fc-sample N] [--seed S] [--reports]
                  [--telemetry PATH] [--quiet]
      Build a synthetic target with the given ground-truth mix and audit it
      with FC, Twitteraudit, StatusPeople and Socialbakers, scoring every
      tool against the hidden truth.

  fakeaudit crawl --followers N [--telemetry PATH] [--quiet]
      Print the full-crawl budget under the paper's Table I rate limits.

  fakeaudit sample-size [--margin F] [--confidence 90|95|99]
      Cochran sample-size arithmetic (the paper's n = 9604) and the
      best-case margins of the commercial tools' windows.

  fakeaudit serve-sim [--rate F] [--duration S] [--policy block|shed|degrade]
                      [--workers N] [--queue N] [--targets N] [--followers N]
                      [--fc-sample N] [--burst] [--seed S] [--persist DIR]
                      [--fsync never|on-flush|on-append] [--slo]
                      [--fault-rate F] [--alert-log PATH]
                      [--telemetry PATH] [--quiet]
      Run the four tools as a concurrent service on the simulated clock:
      open-loop Poisson arrivals (--burst adds a flash crowd) against a
      bounded admission queue, reporting throughput, latency percentiles
      and the shed/degrade behaviour of the chosen overload policy. With
      --telemetry the run is traced live: every request becomes a causal
      span tree (queue wait, service, cache/crawl) in the JSONL output.
      With --persist every completed or degraded audit is appended to a
      columnar history store in DIR (same seed, byte-identical segments)
      for `fakeaudit query`. --slo attaches the streaming SLO monitor
      (multi-window burn-rate alerts on the simulated clock) and prints
      its alert log; --fault-rate injects bursty retry-free API faults
      so the alerts have something to fire on; --alert-log writes the
      rendered log to PATH — same seed, byte-identical file.

  fakeaudit serve [--host H] [--port N] [--workers N] [--queue-depth N]
                  [--policy block|shed|degrade] [--accept-threads N]
                  [--targets N] [--seed S] [--duration SECS] [--full]
                  [--persist DIR] [--fsync never|on-flush|on-append]
                  [--slo] [--telemetry PATH] [--quiet]
      Serve audits over real HTTP on the wall clock: the same prewarmed
      world, admission queues, overload policies and circuit breakers as
      serve-sim, behind POST /audit/:target, GET /audit/:target/stream,
      GET /healthz and GET /metrics (Prometheus text). Runs until Ctrl-C
      (or for --duration seconds), then drains in-flight requests and
      prints the same per-tool report as the simulator. --port 0 picks a
      free port; the bound address is printed on stdout at startup.
      Each accept thread owns one connection at a time, so
      --accept-threads (default: core count) bounds concurrent
      keep-alive connections — raise it for many slow clients. With
      --persist every answered audit lands in the history store in DIR
      and GET /query/:kind serves the analytics below over HTTP. --slo
      attaches the wall-clock SLO monitor: GET /alerts streams the
      burn-rate alert state, GET /metrics/history the metrics ring, and
      /healthz gains per-route SLO status.

  fakeaudit query <timeseries|drift|retention|topk>
                  [--dir DIR] [--format table|json] [--since S] [--until S]
                  [--bucket S] [--k N] [--by ratio|cost]
      Run one analytics query over a persisted audit history (written by
      serve-sim/serve --persist, default --dir history). timeseries:
      mean fake-ratio per target per time bucket; drift: per-tool
      disagreement with the per-target majority verdict; retention:
      cohorts of flagged targets still flagged N buckets later; topk:
      targets ranked by mean fake ratio (--by ratio) or total crawl cost
      (--by cost), capped at --k. --since/--until bound the scan to an
      inclusive window of whole seconds and prune non-overlapping
      segments via their zone maps. Exits nonzero for an unknown kind or
      a missing store directory.

  fakeaudit store <compact|stats|verify|repair> [--dir DIR]
      Maintain a history store: stats prints per-segment row and byte
      counts; compact merges every segment into one (deterministic
      order), cutting per-segment overhead on long histories; verify
      deep-checks every segment checksum and WAL without writing
      anything, exiting nonzero on corruption; repair runs the same
      startup recovery a reopen would (settle interrupted compactions,
      quarantine corrupt segments as .bad, drop stale WALs).

  fakeaudit chaos [--seed S] [--full] [--persist DIR] [--fsync P]
      Run the E10 chaos sweep: an injected per-call API fault rate
      (bursty 503/429/timeout/truncation) against three resilience arms
      — no retries, capped-backoff retries, retries behind a per-tool
      circuit breaker that degrades to stale — reporting goodput, tail
      latency, stale-served counts and circuit open time per cell. The
      sweep is seed-deterministic: same seed, byte-identical table.
      --persist appends every answered audit to a history store at DIR
      (cells run serially so the segment files are byte-deterministic).

  fakeaudit trace analyze --input PATH
      Read a JSONL trace and print per-tool latency attribution (queue /
      crawl / cache / compute shares at p50 and p99) plus the waterfall
      and critical path of the slowest request.

  fakeaudit trace export --input PATH [--format chrome] [--output PATH]
      Convert a JSONL trace to Chrome trace-event JSON, loadable in
      Perfetto (https://ui.perfetto.dev) or chrome://tracing.

  fakeaudit trace slo --input PATH [--window S] [--step S] [--quantile Q]
                      [--latency-slo S] [--availability F]
      Evaluate latency and availability objectives over sliding sim-time
      windows, reporting error-budget burn rates per window.

  fakeaudit trace profile --input PATH [--output PATH] [--top N]
      Fold a JSONL trace into per-span self-time stacks (inferno /
      flamegraph.pl collapsed format, deterministic for a given trace).
      --top N prints the N hottest frames by self time instead of the
      raw folded stacks; --output writes the folded stacks to a file.

  fakeaudit bench record --input PATH [--ledger PATH] [--label S]
      Append the headline numbers of a BENCH_*.json (throughput,
      p50/p95/p99, shed rate, allocs/req when present) as one line of
      the bench ledger (default: results/ledger.jsonl).

  fakeaudit bench compare --input PATH [--ledger PATH] [--tolerance T]
      Compare a fresh BENCH_*.json against the most recent ledger line.
      Latency, shed rate and allocs/req may rise — and throughput fall —
      by at most the tolerance (default 15%; accepts 15% or 0.15).
      Exits nonzero when any metric regresses past it.

  fakeaudit help
      Show this message.

OPTIONS:
  --fsync P          Ack-time durability floor for --persist stores:
                     on-append fsyncs the write-ahead log before acking
                     every row, on-flush (default) fsyncs at segment
                     flush, never skips fsync entirely.
  --telemetry PATH   Trace the run on the simulated clock: write the span /
                     event stream as JSON lines to PATH and print a metrics
                     summary (API calls, rate-limit waits, cache hit ratio,
                     response-time breakdown, verdict counters).
  --quiet            Suppress progress messages on stderr.
";

/// Dumps the JSONL trace to `path` and prints the end-of-run summary.
fn finish_telemetry(telemetry: &Telemetry, path: &str) -> Result<(), String> {
    let mut file = std::fs::File::create(path)
        .map_err(|e| format!("cannot create telemetry file {path:?}: {e}"))?;
    telemetry
        .write_jsonl(&mut file)
        .map_err(|e| format!("cannot write telemetry file {path:?}: {e}"))?;
    println!("\n{}", RunReport::from_telemetry(telemetry).render());
    println!(
        "trace written to {path} ({} events)",
        telemetry.events().len()
    );
    Ok(())
}

fn main() {
    let parsed = match ParsedArgs::parse(std::env::args().skip(1)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let result = match (parsed.command.as_deref(), parsed.action.as_deref()) {
        (Some("trace"), _) => cmd_trace(&parsed),
        (Some("bench"), _) => cmd_bench(&parsed),
        (Some("query"), _) => cmd_query(&parsed),
        (Some("store"), _) => cmd_store(&parsed),
        (Some(cmd), Some(action)) => Err(format!(
            "unexpected argument {action:?} after {cmd:?}\n\n{USAGE}"
        )),
        (Some("audit"), None) => cmd_audit(&parsed),
        (Some("crawl"), None) => cmd_crawl(&parsed),
        (Some("sample-size"), None) => cmd_sample_size(&parsed),
        (Some("serve-sim"), None) => cmd_serve_sim(&parsed),
        (Some("serve"), None) => cmd_serve(&parsed),
        (Some("chaos"), None) => cmd_chaos(&parsed),
        (Some("help"), None) | (None, _) => {
            println!("{USAGE}");
            Ok(())
        }
        (Some(other), None) => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn cmd_audit(args: &ParsedArgs) -> Result<(), String> {
    let followers: usize = args
        .get_or("followers", 10_000)
        .map_err(|e| e.to_string())?;
    let inactive: f64 = args.get_or("inactive", 0.30).map_err(|e| e.to_string())?;
    let fake: f64 = args.get_or("fake", 0.15).map_err(|e| e.to_string())?;
    let recency: f64 = args
        .get_or("recency-bias", 15.0)
        .map_err(|e| e.to_string())?;
    let fc_sample: u64 = args.get_or("fc-sample", 9_604).map_err(|e| e.to_string())?;
    let seed: u64 = args.get_or("seed", 2_014).map_err(|e| e.to_string())?;
    if followers == 0 {
        return Err("--followers must be positive".into());
    }
    let name = args.raw("name").unwrap_or("cli_target").to_string();
    let quiet = args.flag("quiet");
    let telemetry_path = args.raw("telemetry").map(str::to_string);
    let genuine = 1.0 - inactive - fake;
    let mix = ClassMix::new(inactive, fake, genuine)
        .map_err(|e| format!("bad mix (--inactive + --fake must be <= 1): {e}"))?;

    if !quiet {
        eprintln!("building target ({followers} followers, truth: {mix}) ...");
    }
    let mut platform = Platform::new();
    let target = TargetScenario::new(name, followers, mix)
        .fake_recency_bias(recency.max(1.0))
        .build(&mut platform, seed)
        .map_err(|e| e.to_string())?;

    if !quiet {
        eprintln!("training the FC classifier ...");
    }
    let telemetry = if telemetry_path.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let fc = FakeProjectEngine::with_default_model(seed).with_sample_size(fc_sample);
    let mut panel = AuditPanel::with_fc_engine(fc, seed).with_telemetry(telemetry.clone());
    let result = panel
        .request_all(&platform, target.target)
        .map_err(|e| e.to_string())?;

    println!("tool responses (first request):");
    for (tool, r) in result.responses() {
        println!("  {:<34} {r}", tool.to_string());
    }
    println!(
        "\nscored against the hidden ground truth ({}):",
        target.true_mix()
    );
    for (tool, r) in result.responses() {
        let score = score_against_truth(&r.outcome, &target, &platform);
        println!("  {:<4} {score}", tool.abbrev());
    }

    if args.flag("reports") {
        println!(
            "\n{}",
            report::render_statuspeople(&result.of(ToolId::StatusPeople).outcome)
        );
        println!(
            "{}",
            report::render_socialbakers(&result.of(ToolId::Socialbakers).outcome)
        );
        let ta = Twitteraudit::new();
        let mut session = ApiSession::new(&platform, ApiConfig::default());
        let (outcome, chart) = ta
            .audit_with_chart(&mut session, target.target, seed)
            .map_err(|e| e.to_string())?;
        println!("{}", report::render_twitteraudit(&outcome, &chart));
    }
    if let Some(path) = telemetry_path {
        finish_telemetry(&telemetry, &path)?;
    }
    Ok(())
}

fn cmd_crawl(args: &ParsedArgs) -> Result<(), String> {
    let followers: u64 = args
        .get_or("followers", 41_000_000)
        .map_err(|e| e.to_string())?;
    let quiet = args.flag("quiet");
    if !quiet {
        eprintln!("computing crawl budget for {followers} followers ...");
    }
    let profiles = CrawlBudget::for_followers(followers, false);
    let with_tl = CrawlBudget::for_followers(followers, true);
    println!("{profiles}");
    println!("{with_tl}");
    println!("(the paper crawled @BarackObama's 41M followers in \"around 27 days\")");
    if let Some(path) = args.raw("telemetry") {
        let telemetry = Telemetry::enabled();
        profiles.record_metrics(&telemetry);
        with_tl.record_metrics(&telemetry);
        finish_telemetry(&telemetry, path)?;
    }
    Ok(())
}

fn cmd_chaos(args: &ParsedArgs) -> Result<(), String> {
    let seed: u64 = args.get_or("seed", 2_014).map_err(|e| e.to_string())?;
    let scale = if args.flag("full") {
        fakeaudit_core::experiments::Scale::full()
    } else {
        fakeaudit_core::experiments::Scale::quick()
    };
    let persist_dir = args.raw("persist").map(str::to_string);
    let fsync = fsync_from_args(args)?;
    let writer = match &persist_dir {
        Some(dir) => Some(
            open_shared_with(dir, fsync)
                .map_err(|e| format!("cannot open history store {dir}: {e}"))?,
        ),
        None => None,
    };
    let result =
        fakeaudit_core::experiments::chaos::run_chaos_persisted(scale, seed, writer.clone());
    print!("{}", fakeaudit_core::experiments::chaos::render(&result));
    if let (Some(writer), Some(dir)) = (&writer, &persist_dir) {
        let health = flush_writer(writer, &Telemetry::disabled())
            .map_err(|e| format!("history flush failed for {dir}: {e}"))?;
        println!(
            "  history: {} rows across {} segments in {dir} (try: fakeaudit query topk --dir {dir})",
            health.flushed_rows, health.segments
        );
    }
    Ok(())
}

/// Parses `--fsync never|on-flush|on-append` (default: on-flush).
fn fsync_from_args(args: &ParsedArgs) -> Result<FsyncPolicy, String> {
    match args.raw("fsync") {
        None => Ok(FsyncPolicy::default()),
        Some(s) => FsyncPolicy::parse(s)
            .ok_or_else(|| format!("--fsync must be never, on-flush or on-append, got {s:?}")),
    }
}

/// Builds [`QueryOptions`] from `--since/--until/--bucket/--k/--by`.
fn query_options_from_args(args: &ParsedArgs) -> Result<QueryOptions, String> {
    let mut opts = QueryOptions::default();
    if args.raw("since").is_some() {
        opts.since_secs = Some(args.get_or("since", 0i64).map_err(|e| e.to_string())?);
    }
    if args.raw("until").is_some() {
        opts.until_secs = Some(args.get_or("until", 0i64).map_err(|e| e.to_string())?);
    }
    opts.bucket_secs = args
        .get_or("bucket", opts.bucket_secs)
        .map_err(|e| e.to_string())?;
    if opts.bucket_secs <= 0 {
        return Err("--bucket must be positive".into());
    }
    opts.k = args.get_or("k", opts.k).map_err(|e| e.to_string())?;
    if opts.k == 0 {
        return Err("--k must be positive".into());
    }
    if let Some(by) = args.raw("by") {
        opts.by = by.parse()?;
    }
    Ok(opts)
}

fn cmd_query(args: &ParsedArgs) -> Result<(), String> {
    let kind: QueryKind = args
        .action
        .as_deref()
        .ok_or("query needs a kind: timeseries, drift, retention or topk")?
        .parse()?;
    let dir = args.raw("dir").unwrap_or("history");
    let opts = query_options_from_args(args)?;
    let format = args.raw("format").unwrap_or("table");
    if format != "table" && format != "json" {
        return Err(format!("--format must be table or json, got {format:?}"));
    }
    let store = Store::open(dir).map_err(|e| {
        format!("cannot open store {dir:?}: {e} (write one with serve-sim/serve --persist {dir})")
    })?;
    let report = queries::run(&store, kind, &opts).map_err(|e| format!("query failed: {e}"))?;
    if format == "json" {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.to_table());
    }
    Ok(())
}

fn cmd_store(args: &ParsedArgs) -> Result<(), String> {
    let dir = args.raw("dir").unwrap_or("history");
    match args.action.as_deref() {
        Some("stats") => {
            let store = Store::open(dir).map_err(|e| format!("cannot open store {dir:?}: {e}"))?;
            let stats = store.stats();
            println!(
                "store {dir}: {} segments, {} rows, {} bytes",
                stats.segments, stats.rows, stats.bytes
            );
            for &(seq, rows, bytes) in &stats.per_segment {
                println!("  seg-{seq:08}.fas  {rows:>8} rows  {bytes:>10} bytes");
            }
            Ok(())
        }
        Some("compact") => {
            let (before, rows) =
                compact(dir).map_err(|e| format!("cannot compact store {dir:?}: {e}"))?;
            if rows == 0 {
                println!("store {dir} holds no rows — nothing to compact");
            } else {
                println!("compacted {before} segment(s) into 1 ({rows} rows) in {dir}");
            }
            Ok(())
        }
        Some("verify") => {
            let report = verify(dir).map_err(|e| format!("cannot verify store {dir:?}: {e}"))?;
            println!(
                "store {dir}: {} segment(s) ok ({} rows), {} acked row(s) in the WAL",
                report.segments_ok, report.segment_rows, report.wal_rows
            );
            for note in &report.notes {
                println!("  note: {note}");
            }
            for issue in &report.issues {
                println!("  CORRUPT: {issue}");
            }
            if report.issues.is_empty() {
                println!("  all checksums verified");
                Ok(())
            } else {
                Err(format!(
                    "{} corrupt segment(s) in {dir} (run `fakeaudit store repair` to quarantine)",
                    report.issues.len()
                ))
            }
        }
        Some("repair") => {
            let report = repair(dir).map_err(|e| format!("cannot repair store {dir:?}: {e}"))?;
            println!(
                "store {dir}: {} healthy segment(s), {} row(s) replayable from the WAL",
                report.segments_ok, report.wal_rows_recovered
            );
            if report.compact_resumed {
                println!("  settled an interrupted compaction");
            }
            for q in &report.quarantined {
                println!("  quarantined {} ({})", q.name, q.error);
            }
            if report.stale_wals_removed > 0 {
                println!("  removed {} stale WAL file(s)", report.stale_wals_removed);
            }
            if report.tmp_files_removed > 0 {
                println!("  swept {} staging file(s)", report.tmp_files_removed);
            }
            if report.is_clean() {
                println!("  nothing to repair");
            }
            Ok(())
        }
        Some(other) => Err(format!(
            "unknown store action {other:?} (try compact, stats, verify, repair)\n\n{USAGE}"
        )),
        None => Err(format!(
            "store needs an action (compact, stats, verify or repair)\n\n{USAGE}"
        )),
    }
}

fn cmd_serve_sim(args: &ParsedArgs) -> Result<(), String> {
    let rate: f64 = args.get_or("rate", 4.0).map_err(|e| e.to_string())?;
    let duration: f64 = args.get_or("duration", 300.0).map_err(|e| e.to_string())?;
    let workers: usize = args.get_or("workers", 2).map_err(|e| e.to_string())?;
    let queue: usize = args.get_or("queue", 8).map_err(|e| e.to_string())?;
    let targets_n: usize = args.get_or("targets", 4).map_err(|e| e.to_string())?;
    let followers: usize = args.get_or("followers", 2_000).map_err(|e| e.to_string())?;
    let fc_sample: u64 = args.get_or("fc-sample", 1_200).map_err(|e| e.to_string())?;
    let seed: u64 = args.get_or("seed", 2_014).map_err(|e| e.to_string())?;
    let fault_rate: f64 = args.get_or("fault-rate", 0.0).map_err(|e| e.to_string())?;
    let alert_log = args.raw("alert-log").map(str::to_string);
    // --alert-log implies the monitor; --fault-rate alone does not.
    let slo = args.flag("slo") || alert_log.is_some();
    let quiet = args.flag("quiet");
    if !(rate > 0.0) || !(duration > 0.0) {
        return Err("--rate and --duration must be positive".into());
    }
    if !(0.0..1.0).contains(&fault_rate) {
        return Err("--fault-rate must be in [0, 1)".into());
    }
    if targets_n == 0 || followers == 0 {
        return Err("--targets and --followers must be positive".into());
    }
    let policy = match args.raw("policy").unwrap_or("shed") {
        "block" => OverloadPolicy::Block,
        "shed" => OverloadPolicy::Shed,
        "degrade" => OverloadPolicy::DegradeStale,
        other => {
            return Err(format!(
                "--policy must be block, shed or degrade, got {other:?}"
            ))
        }
    };

    if !quiet {
        eprintln!("building {targets_n} targets ({followers} followers each) ...");
    }
    let mut platform = Platform::new();
    let mix = ClassMix::new(0.25, 0.15, 0.60).expect("valid mix");
    let targets: Vec<_> = (0..targets_n)
        .map(|i| {
            TargetScenario::new(format!("serve_target_{i}"), followers, mix)
                .build(
                    &mut platform,
                    derive_seed(seed, &format!("serve-build-{i}")),
                )
                .map(|t| t.target)
                .map_err(|e| e.to_string())
        })
        .collect::<Result<_, _>>()?;

    if !quiet {
        eprintln!("prewarming the four tools ...");
    }
    // With fault injection the caches run at zero TTL (as in E10):
    // against a prewarmed warm cache almost no request would reach the
    // API, and the injected faults would never surface.
    let unquoted = |p: ServiceProfile| ServiceProfile {
        daily_quota: None,
        cache_ttl_days: if fault_rate > 0.0 {
            Some(0)
        } else {
            p.cache_ttl_days
        },
        ..p
    };
    // Live tracing: an enabled handle makes every request a causal span
    // tree; the run itself records the metrics, so no post-hoc
    // `record_into` (that would double-count).
    let telemetry = if args.raw("telemetry").is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let mut sim = ServerSim::with_telemetry(
        &platform,
        ServerConfig {
            workers_per_tool: workers,
            queue_capacity: queue,
            policy,
            degraded_secs: 0.5,
            deadline_secs: None,
        },
        telemetry.clone(),
    );
    let persist_dir = args.raw("persist").map(str::to_string);
    let fsync = fsync_from_args(args)?;
    let writer = match &persist_dir {
        Some(dir) => {
            let writer = open_shared_with(dir, fsync)
                .map_err(|e| format!("cannot open store {dir:?}: {e}"))?;
            sim.persist_into(writer.clone());
            Some(writer)
        }
        None => None,
    };
    let monitor = slo.then(|| {
        let monitor = SloMonitor::new(MonitorConfig::sim_default(seed), telemetry.clone());
        sim.with_monitor(monitor.clone());
        monitor
    });
    let mut fc = OnlineService::new(
        FakeProjectEngine::with_default_model(derive_seed(seed, "serve-fc-model"))
            .with_sample_size(fc_sample),
        unquoted(ServiceProfile::fake_classifier()),
        derive_seed(seed, "serve-svc-fc"),
    );
    let mut ta = OnlineService::new(
        Twitteraudit::new(),
        unquoted(ServiceProfile::twitteraudit()),
        derive_seed(seed, "serve-svc-ta"),
    );
    let mut sp = OnlineService::new(
        StatusPeople::new(),
        unquoted(ServiceProfile::statuspeople()),
        derive_seed(seed, "serve-svc-sp"),
    );
    let mut sb = OnlineService::new(
        Socialbakers::new(),
        unquoted(ServiceProfile::socialbakers()),
        derive_seed(seed, "serve-svc-sb"),
    );
    for &t in &targets {
        fc.prewarm(&platform, t).map_err(|e| e.to_string())?;
        ta.prewarm(&platform, t).map_err(|e| e.to_string())?;
        sp.prewarm(&platform, t).map_err(|e| e.to_string())?;
        sb.prewarm(&platform, t).map_err(|e| e.to_string())?;
    }
    if fault_rate > 0.0 {
        // Bursty, retry-free faults: failures reach the request path
        // (and thus the SLO monitor) instead of being absorbed by
        // backoff, so a demo run has incidents worth alerting on.
        let plan = FaultPlan::bursty(derive_seed(seed, "serve-faults"), fault_rate, 6.0);
        sim.register(Box::new(fc.with_fault_plan(plan, RetryPolicy::none())));
        sim.register(Box::new(ta.with_fault_plan(plan, RetryPolicy::none())));
        sim.register(Box::new(sp.with_fault_plan(plan, RetryPolicy::none())));
        sim.register(Box::new(sb.with_fault_plan(plan, RetryPolicy::none())));
    } else {
        sim.register(Box::new(fc));
        sim.register(Box::new(ta));
        sim.register(Box::new(sp));
        sim.register(Box::new(sb));
    }

    let process = if args.flag("burst") {
        ArrivalProcess::FlashCrowd {
            base_rate: rate,
            burst_start: duration * 0.25,
            burst_secs: duration * 0.10,
            burst_rate: rate * 8.0,
        }
    } else {
        ArrivalProcess::Poisson { rate }
    };
    let spec = LoadSpec {
        process,
        duration_secs: duration,
        zipf_exponent: 1.1,
        tools: ToolId::ALL.to_vec(),
    };
    let trace = generate(&spec, &targets, derive_seed(seed, "serve-trace"));
    if !quiet {
        eprintln!(
            "replaying {} arrivals over {duration:.0}s (policy: {}) ...",
            trace.len(),
            policy.label()
        );
    }
    let report = sim.run(&trace);

    println!(
        "service under load ({} arrivals, {} workers/tool, queue {}, policy {})",
        report.offered(),
        workers,
        queue,
        policy.label()
    );
    println!(
        "  answered {:>6} fresh+cached, {} degraded-to-stale, {} shed, {} failed",
        report.completed(),
        report.degraded(),
        report.shed(),
        report.failed()
    );
    println!(
        "  throughput {:.2} req/s over {:.0}s makespan, utilisation {:.0}%",
        report.throughput(),
        report.makespan,
        report.utilisation() * 100.0
    );
    println!(
        "  latency p50/p95/p99 {:.1}/{:.1}/{:.1}s, queue wait p95 {:.1}s",
        report.latency_percentile(0.50),
        report.latency_percentile(0.95),
        report.latency_percentile(0.99),
        report.queue_wait_percentile(0.95)
    );
    println!(
        "\n  {:<6}{:>8} {:>8} {:>9} {:>6} {:>10} {:>10}",
        "tool", "offered", "done", "degraded", "shed", "max queue", "busy secs"
    );
    for t in &report.per_tool {
        let name = t.tool.map(|t| t.abbrev().to_string()).unwrap_or_default();
        println!(
            "  {:<6}{:>8} {:>8} {:>9} {:>6} {:>10} {:>10.0}",
            name, t.offered, t.completed, t.degraded, t.shed, t.max_queue_depth, t.busy_secs
        );
    }

    if let (Some(writer), Some(dir)) = (&writer, &persist_dir) {
        let health = flush_writer(writer, &telemetry)
            .map_err(|e| format!("cannot flush store {dir:?}: {e}"))?;
        println!(
            "  history: {} rows across {} segments in {dir} (try: fakeaudit query topk --dir {dir})",
            health.flushed_rows, health.segments
        );
    }

    if let Some(monitor) = &monitor {
        let counts = monitor.counts();
        println!(
            "\nSLO monitor: {} pending, {} fired, {} resolved \
             ({} active at end)",
            counts.pending,
            counts.firing,
            counts.resolved,
            counts.active_pending + counts.active_firing
        );
        let log = monitor.render_alert_log();
        if log.is_empty() {
            println!("  alert log: empty (no burn-rate breaches)");
        } else {
            print!("{log}");
        }
        if let Some(path) = &alert_log {
            std::fs::write(path, &log)
                .map_err(|e| format!("cannot write alert log {path:?}: {e}"))?;
            println!("  alert log written to {path}");
        }
    }

    if let Some(path) = args.raw("telemetry") {
        finish_telemetry(&telemetry, path)?;
    }
    Ok(())
}

/// Ctrl-C handling without a signal-handling dependency: a C `signal()`
/// registration (the symbol is already in the linked C runtime) that
/// flips an atomic the serve loop polls. Anything fancier (signalfd,
/// masks, handler chaining) is out of scope for a single foreground
/// process.
#[cfg(unix)]
mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};

    static STOP: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_sigint(_signum: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Installs the SIGINT handler. Safe to call more than once.
    pub fn install() {
        const SIGINT: i32 = 2;
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }

    /// Whether Ctrl-C has been pressed since [`install`].
    pub fn requested() -> bool {
        STOP.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sigint {
    /// No signal handling off unix; `--duration` still bounds the run.
    pub fn install() {}

    /// Never requested without a handler.
    pub fn requested() -> bool {
        false
    }
}

fn cmd_serve(args: &ParsedArgs) -> Result<(), String> {
    let host = args.raw("host").unwrap_or("127.0.0.1");
    let port: u16 = args.get_or("port", 8080).map_err(|e| e.to_string())?;
    let workers: usize = args.get_or("workers", 2).map_err(|e| e.to_string())?;
    let queue: usize = args.get_or("queue-depth", 8).map_err(|e| e.to_string())?;
    let targets_n: usize = args.get_or("targets", 4).map_err(|e| e.to_string())?;
    let seed: u64 = args.get_or("seed", 2_014).map_err(|e| e.to_string())?;
    let duration: f64 = args.get_or("duration", 0.0).map_err(|e| e.to_string())?;
    let quiet = args.flag("quiet");
    if workers == 0 || targets_n == 0 {
        return Err("--workers and --targets must be positive".into());
    }
    let policy = match args.raw("policy").unwrap_or("shed") {
        "block" => OverloadPolicy::Block,
        "shed" => OverloadPolicy::Shed,
        "degrade" => OverloadPolicy::DegradeStale,
        other => {
            return Err(format!(
                "--policy must be block, shed or degrade, got {other:?}"
            ))
        }
    };
    let scale = if args.flag("full") {
        fakeaudit_core::experiments::Scale::full()
    } else {
        fakeaudit_core::experiments::Scale::quick()
    };

    if !quiet {
        eprintln!("building {targets_n} prewarmed targets and the four tools ...");
    }
    let world = ServingWorld::build(scale, seed, targets_n);
    // Always collect: `/metrics` serves from this handle. The trace
    // buffer is bounded so an indefinitely-running server cannot grow
    // it without bound; `--telemetry` only controls the JSONL dump.
    let telemetry = Telemetry::with_event_capacity(65_536);
    let pools: Vec<ToolPool> = ToolId::ALL
        .iter()
        .map(|&tool| {
            // One clone per worker thread plus one for the stale-read
            // path the degrade policy answers from. Fresh audits run
            // behind the standard per-tool circuit breaker.
            let mut backends = world.armed_backends(
                tool,
                workers + 1,
                &telemetry,
                Some(BreakerConfig::standard()),
            );
            let stale = backends.pop().expect("workers + 1 clones");
            ToolPool {
                tool,
                workers: backends,
                stale,
            }
        })
        .collect();
    let defaults = GatewayConfig::default();
    let accept_threads: usize = args
        .get_or("accept-threads", defaults.accept_threads)
        .map_err(|e| e.to_string())?;
    if accept_threads == 0 {
        return Err("--accept-threads must be positive".into());
    }
    let persist_dir = args.raw("persist").map(str::to_string);
    let slo = args.flag("slo");
    let config = GatewayConfig {
        addr: format!("{host}:{port}"),
        accept_threads,
        server: ServerConfig {
            workers_per_tool: workers,
            queue_capacity: queue,
            policy,
            degraded_secs: 0.5,
            deadline_secs: None,
        },
        persist: persist_dir.as_deref().map(Into::into),
        fsync: fsync_from_args(args)?,
        slo: slo.then(|| MonitorConfig::wall_default(seed)),
        ..defaults
    };
    let platform = std::sync::Arc::new(world.platform.clone());
    let gateway = Gateway::bind(
        config,
        platform,
        pools,
        std::sync::Arc::new(WallClock::new()),
        telemetry.clone(),
    )
    .map_err(|e| format!("cannot bind {host}:{port}: {e}"))?;

    sigint::install();
    let target_list = world
        .targets
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ");
    println!(
        "listening on http://{} (policy {}, {} workers/tool, queue {}, {} accept threads)",
        gateway.local_addr(),
        policy.label(),
        workers,
        queue,
        accept_threads
    );
    println!("auditable targets: {target_list}");
    println!(
        "try: curl -X POST http://{}/audit/{}",
        gateway.local_addr(),
        world.targets[0].as_u64()
    );
    if let Some(dir) = &persist_dir {
        println!(
            "persisting audit history to {dir}; try: curl http://{}/query/topk",
            gateway.local_addr()
        );
    }
    if slo {
        println!(
            "SLO monitor armed; try: curl http://{0}/alerts and http://{0}/metrics/history",
            gateway.local_addr()
        );
    }
    // CI and scripts probe for the "listening" line through a pipe, so
    // push it past stdout's block buffering now.
    {
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
    }

    let started = std::time::Instant::now();
    loop {
        std::thread::sleep(std::time::Duration::from_millis(100));
        if sigint::requested() {
            if !quiet {
                eprintln!("\ninterrupted: draining in-flight requests ...");
            }
            break;
        }
        if duration > 0.0 && started.elapsed().as_secs_f64() >= duration {
            if !quiet {
                eprintln!("--duration {duration}s elapsed: draining ...");
            }
            break;
        }
    }
    let monitor_counts = gateway.monitor().map(|m| m.counts());
    let report = gateway.shutdown();

    println!(
        "served {} requests over {:.1}s wall time (policy {})",
        report.offered(),
        started.elapsed().as_secs_f64(),
        policy.label()
    );
    println!(
        "  answered {:>6} fresh+cached, {} degraded-to-stale, {} shed, {} failed",
        report.completed(),
        report.degraded(),
        report.shed(),
        report.failed()
    );
    if report.completed() + report.degraded() > 0 {
        println!(
            "  latency p50/p95/p99 {:.1}/{:.1}/{:.1} ms",
            report.latency_percentile(0.50) * 1e3,
            report.latency_percentile(0.95) * 1e3,
            report.latency_percentile(0.99) * 1e3,
        );
    }
    for t in &report.per_tool {
        let name = t.tool.map(|t| t.abbrev().to_string()).unwrap_or_default();
        println!(
            "  {:<4} offered {:>6}, done {:>6}, degraded {:>4}, shed {:>4}, max queue {:>3}",
            name, t.offered, t.completed, t.degraded, t.shed, t.max_queue_depth
        );
    }
    if let Some(counts) = monitor_counts {
        println!(
            "  SLO monitor: {} pending, {} fired, {} resolved, {} traces kept",
            counts.pending, counts.firing, counts.resolved, counts.traces_kept
        );
    }

    if let Some(path) = args.raw("telemetry") {
        finish_telemetry(&telemetry, path)?;
    }
    Ok(())
}

fn cmd_trace(args: &ParsedArgs) -> Result<(), String> {
    let input = args
        .raw("input")
        .ok_or("trace needs --input PATH (a JSONL trace written by --telemetry)")?;
    let text =
        std::fs::read_to_string(input).map_err(|e| format!("cannot read trace {input:?}: {e}"))?;
    let events = parse_jsonl(&text).map_err(|e| e.to_string())?;
    match args.action.as_deref().unwrap_or("analyze") {
        "analyze" => trace_analyze(&events),
        "export" => trace_export(args, &events),
        "slo" => trace_slo(args, &events),
        "profile" => trace_profile(args, &events),
        other => Err(format!(
            "unknown trace action {other:?} (try analyze, export, slo, profile)\n\n{USAGE}"
        )),
    }
}

fn trace_profile(args: &ParsedArgs, events: &[TraceEvent]) -> Result<(), String> {
    let profile = SelfTimeProfile::from_events(events);
    if profile.is_empty() {
        return Err("trace contains no spans to profile".into());
    }
    if let Some(path) = args.raw("output") {
        std::fs::write(path, profile.folded())
            .map_err(|e| format!("cannot write folded stacks {path:?}: {e}"))?;
        println!(
            "folded stacks written to {path} ({} stacks, {} us total self time)",
            profile.len(),
            profile.total_micros()
        );
        return Ok(());
    }
    match args.raw("top") {
        Some(_) => {
            let n: usize = args.get_or("top", 10).map_err(|e| e.to_string())?;
            println!("top {n} stacks by self time:");
            for (stack, micros) in profile.top(n) {
                println!("  {micros:>12} us  {stack}");
            }
        }
        None => print!("{}", profile.folded()),
    }
    Ok(())
}

fn cmd_bench(args: &ParsedArgs) -> Result<(), String> {
    let action = args
        .action
        .as_deref()
        .ok_or_else(|| format!("bench needs an action (record or compare)\n\n{USAGE}"))?;
    let input = args.raw("input").unwrap_or("results/BENCH_gateway.json");
    let ledger_path = args.raw("ledger").unwrap_or("results/ledger.jsonl");
    let bench_text = std::fs::read_to_string(input)
        .map_err(|e| format!("cannot read bench json {input:?}: {e}"))?;
    match action {
        "record" => {
            let label = args.raw("label").unwrap_or("local");
            let entry = LedgerEntry::from_bench_json(label, &bench_text)?;
            let line = entry.to_jsonl_line();
            use std::io::Write as _;
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(ledger_path)
                .map_err(|e| format!("cannot open ledger {ledger_path:?}: {e}"))?;
            file.write_all(line.as_bytes())
                .map_err(|e| format!("cannot append to ledger {ledger_path:?}: {e}"))?;
            println!(
                "recorded {} scenario(s) from {input} as {:?} in {ledger_path}",
                entry.scenarios.len(),
                entry.label
            );
            Ok(())
        }
        "compare" => {
            let tolerance = ledger::parse_tolerance(args.raw("tolerance").unwrap_or("15%"))?;
            let ledger_text = std::fs::read_to_string(ledger_path)
                .map_err(|e| format!("cannot read ledger {ledger_path:?}: {e}"))?;
            let entries = ledger::parse_ledger(&ledger_text)?;
            let baseline = entries.last().ok_or_else(|| {
                format!("ledger {ledger_path:?} is empty — run bench record first")
            })?;
            let current = LedgerEntry::from_bench_json("current", &bench_text)?;
            let report = ledger::compare(baseline, &current, tolerance);
            print!("{}", report.render());
            if report.regressed() {
                return Err("bench compare found regressions beyond tolerance".into());
            }
            Ok(())
        }
        other => Err(format!(
            "unknown bench action {other:?} (try record, compare)\n\n{USAGE}"
        )),
    }
}

fn trace_analyze(events: &[TraceEvent]) -> Result<(), String> {
    let tree = TraceTree::build(events);
    let roots = tree.request_roots();
    println!("{} records, {} request trees", events.len(), roots.len());
    println!("\n{}", LatencyAttribution::from_events(events).render());
    let slowest = roots.iter().copied().max_by(|&a, &b| {
        let da = tree.event(a).t1 - tree.event(a).t0;
        let db = tree.event(b).t1 - tree.event(b).t0;
        da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
    });
    if let Some(root) = slowest {
        println!("slowest request:");
        print!("{}", tree.waterfall(root));
        let path: Vec<&str> = tree
            .critical_path(root)
            .into_iter()
            .map(|i| tree.event(i).name.as_str())
            .collect();
        println!("critical path: {}", path.join(" -> "));
    }
    Ok(())
}

fn trace_export(args: &ParsedArgs, events: &[TraceEvent]) -> Result<(), String> {
    let format = args.raw("format").unwrap_or("chrome");
    if format != "chrome" {
        return Err(format!("--format must be chrome, got {format:?}"));
    }
    let json = chrome_trace_json(events, &ChromeTraceOptions::default());
    match args.raw("output") {
        Some(path) => {
            std::fs::write(path, &json)
                .map_err(|e| format!("cannot write chrome trace {path:?}: {e}"))?;
            println!(
                "chrome trace written to {path} ({} events; load it at https://ui.perfetto.dev)",
                events.len()
            );
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn trace_slo(args: &ParsedArgs, events: &[TraceEvent]) -> Result<(), String> {
    let d = SloSpec::default();
    let spec = SloSpec {
        window_secs: args
            .get_or("window", d.window_secs)
            .map_err(|e| e.to_string())?,
        step_secs: args
            .get_or("step", d.step_secs)
            .map_err(|e| e.to_string())?,
        latency_quantile: args
            .get_or("quantile", d.latency_quantile)
            .map_err(|e| e.to_string())?,
        latency_objective_secs: args
            .get_or("latency-slo", d.latency_objective_secs)
            .map_err(|e| e.to_string())?,
        availability_objective: args
            .get_or("availability", d.availability_objective)
            .map_err(|e| e.to_string())?,
    };
    if !(spec.window_secs > 0.0) {
        return Err("--window must be positive".into());
    }
    if !(spec.latency_quantile > 0.0 && spec.latency_quantile < 1.0) {
        return Err("--quantile must be in (0, 1)".into());
    }
    if !(spec.availability_objective > 0.0 && spec.availability_objective <= 1.0) {
        return Err("--availability must be in (0, 1]".into());
    }
    print!("{}", spec.evaluate(events).render());
    Ok(())
}

fn cmd_sample_size(args: &ParsedArgs) -> Result<(), String> {
    let margin: f64 = args.get_or("margin", 0.01).map_err(|e| e.to_string())?;
    let confidence: u32 = args.get_or("confidence", 95).map_err(|e| e.to_string())?;
    let level = match confidence {
        90 => ConfidenceLevel::P90,
        95 => ConfidenceLevel::P95,
        99 => ConfidenceLevel::P99,
        other => return Err(format!("--confidence must be 90, 95 or 99, got {other}")),
    };
    if !(margin > 0.0 && margin < 1.0) {
        return Err("--margin must be in (0, 1)".into());
    }
    println!(
        "required sample size at {level} confidence, +/-{:.1}% margin: {}",
        margin * 100.0,
        required_sample_size(level, margin, 0.5)
    );
    println!("\nbest-case margins of the tools' fixed windows at {level} confidence:");
    for (name, n) in [
        ("StatusPeople (700)", 700u64),
        ("Socialbakers (2000)", 2_000),
        ("Twitteraudit (5000)", 5_000),
        ("Fake Classifier (9604)", 9_604),
    ] {
        println!(
            "  {name:<24} +/-{:.2}%",
            worst_case_margin(level, n) * 100.0
        );
    }
    Ok(())
}
