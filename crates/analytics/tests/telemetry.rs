//! End-to-end determinism of the telemetry stream.
//!
//! The tracer is keyed to the *simulated* clock, so two runs with the same
//! seed must serialise to byte-identical JSON lines — the trace is part of
//! the reproducible output, not a wall-clock log.

use fakeaudit_analytics::{OnlineService, ServiceProfile};
use fakeaudit_detectors::StatusPeople;
use fakeaudit_population::{BuiltTarget, ClassMix, TargetScenario};
use fakeaudit_telemetry::{RunReport, Telemetry};
use fakeaudit_twittersim::Platform;

fn built(seed: u64) -> (Platform, BuiltTarget) {
    let mut platform = Platform::new();
    let t = TargetScenario::new("tel_it", 2_500, ClassMix::new(0.3, 0.2, 0.5).unwrap())
        .build(&mut platform, seed)
        .unwrap();
    (platform, t)
}

/// Runs two requests (one fresh, one cached) and returns the JSONL trace.
fn traced_run(platform_seed: u64, service_seed: u64) -> Vec<u8> {
    let (platform, t) = built(platform_seed);
    let tel = Telemetry::enabled();
    let mut svc = OnlineService::new(
        StatusPeople::new(),
        ServiceProfile::statuspeople(),
        service_seed,
    )
    .with_telemetry(tel.clone());
    svc.request(&platform, t.target).unwrap();
    svc.request(&platform, t.target).unwrap();
    let mut out = Vec::new();
    tel.write_jsonl(&mut out).unwrap();
    out
}

#[test]
fn same_seed_runs_serialise_byte_identically() {
    let a = traced_run(91, 11);
    let b = traced_run(91, 11);
    assert!(!a.is_empty());
    assert_eq!(a, b, "telemetry must be a pure function of the seeds");
}

#[test]
fn different_seeds_produce_different_traces() {
    assert_ne!(traced_run(91, 11), traced_run(91, 12));
}

#[test]
fn jsonl_schema_contains_only_sim_time_fields() {
    let bytes = traced_run(91, 11);
    let text = String::from_utf8(bytes).unwrap();
    for line in text.lines() {
        assert!(
            line.starts_with("{\"type\":\"") && line.ends_with('}'),
            "bad JSONL line: {line}"
        );
        assert!(line.contains("\"name\":\""), "no name: {line}");
        assert!(line.contains("\"t0\":"), "no t0: {line}");
        assert!(line.contains("\"t1\":"), "no t1: {line}");
        assert!(line.contains("\"attrs\":{"), "no attrs: {line}");
        // Timestamps are simulated seconds only — a wall-clock field would
        // break replayability.
        for banned in ["wall", "unix", "epoch_ms", "timestamp", "date"] {
            assert!(
                !line.contains(banned),
                "wall-clock field {banned:?}: {line}"
            );
        }
    }
    // The stream covers the whole request path.
    for expected in ["api.call", "detector.audit", "service.request"] {
        assert!(
            text.contains(&format!("\"name\":\"{expected}\"")),
            "missing {expected} events"
        );
    }
}

#[test]
fn report_renders_from_the_same_run() {
    let (platform, t) = built(91);
    let tel = Telemetry::enabled();
    let mut svc = OnlineService::new(StatusPeople::new(), ServiceProfile::statuspeople(), 11)
        .with_telemetry(tel.clone());
    svc.request(&platform, t.target).unwrap();
    svc.request(&platform, t.target).unwrap();
    let report = RunReport::from_telemetry(&tel);
    assert_eq!(report.cache_hit_ratio(), Some(0.5));
    let rendered = report.render();
    for needle in ["telemetry run summary", "API calls", "cache", "SP"] {
        assert!(rendered.contains(needle), "summary missing {needle:?}");
    }
}
