//! Property tests for the circuit breaker: the ISSUE 5 invariant that a
//! breaker never lets a fresh audit through while it is open — checked
//! both on the state machine directly (any outcome sequence, any clock
//! walk) and end-to-end through [`OnlineService::request`] with an
//! always-failing upstream, where "fresh" is observable as a response
//! not served from the cache.

use fakeaudit_analytics::{
    BreakerConfig, BreakerState, CircuitBreaker, OnlineService, ServiceProfile,
};
use fakeaudit_detectors::StatusPeople;
use fakeaudit_population::{ClassMix, TargetScenario};
use fakeaudit_twitter_api::{ApiConfig, FaultPlan, FaultRates, RetryPolicy};
use fakeaudit_twittersim::{Platform, SimDuration};
use proptest::prelude::*;

fn quick_breaker() -> BreakerConfig {
    BreakerConfig {
        window: 4,
        failure_threshold: 0.5,
        min_samples: 2,
        open_secs: 120.0,
        half_open_probes: 1,
    }
}

/// A service profile whose cache is store-only (zero TTL: entries are
/// kept for stale fallback but never served fresh), so every admitted
/// request exercises the fresh-audit path the breaker guards.
fn never_fresh_profile() -> ServiceProfile {
    ServiceProfile {
        api: ApiConfig {
            token_pool: 1,
            parallelism: 1,
            base_latency: 1.5,
            latency_jitter: 0.5,
            seed: 0,
        },
        overhead_secs: 2.0,
        overhead_jitter: 0.0,
        cached_base_secs: 1.0,
        cached_jitter: 0.0,
        cache_ttl_days: Some(0),
        daily_quota: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn breaker_never_allows_while_cooldown_remains(
        fails in prop::collection::vec(any::<bool>(), 1..200),
        steps in prop::collection::vec(0.0f64..40.0, 1..200),
    ) {
        let mut b = CircuitBreaker::new(quick_breaker());
        let mut now = 0.0;
        let mut open_seen = 0.0;
        for (&fail, step) in fails.iter().zip(steps) {
            now += step;
            let remaining = b.open_remaining(now);
            let (ok, _) = b.allow(now);
            if remaining > 0.0 {
                prop_assert_eq!(b.state(), BreakerState::Open);
                prop_assert!(!ok, "fresh admitted with {remaining}s cooldown left");
            }
            // Open time only ever accumulates.
            let open_total = b.open_secs_total(now);
            prop_assert!(open_total >= open_seen - 1e-9);
            open_seen = open_total;
            if ok {
                if fail {
                    b.on_failure(now);
                } else {
                    b.on_success(now);
                }
            }
        }
    }

    #[test]
    fn service_never_serves_fresh_while_open(
        seed in 0u64..200,
        rate in 0.85f64..1.0,
        advance in 1u64..180,
    ) {
        let mut platform = Platform::new();
        let t = TargetScenario::new("prop_breaker", 60, ClassMix::all_genuine())
            .build(&mut platform, 9)
            .unwrap();
        let plan = FaultPlan {
            seed,
            rates: [FaultRates {
                unavailable: rate,
                rate_limited: 0.0,
                timeout: 0.0,
                truncated_page: 0.0,
            }; 4],
            ..FaultPlan::none()
        };
        let mut svc = OnlineService::new(StatusPeople::new(), never_fresh_profile(), seed);
        // Prewarm before arming so the stale fallback has an entry.
        svc.prewarm(&platform, t.target).unwrap();
        let mut svc = svc
            .with_fault_plan(plan, RetryPolicy::none())
            .with_breaker(quick_breaker());
        for i in 0..32 {
            if i % 4 == 3 {
                // Let some open periods cool down so half-open probes and
                // re-trips get exercised, not just the first open window.
                platform.advance_clock(SimDuration::from_secs(advance));
            }
            let now = platform.now().as_secs() as f64;
            let open_before = svc.breaker().map_or(0.0, |b| b.open_remaining(now));
            let res = svc.request(&platform, t.target);
            if open_before > 0.0 {
                if let Ok(resp) = res {
                    prop_assert!(
                        resp.served_from_cache,
                        "fresh audit served while the breaker was open"
                    );
                }
            }
        }
        let breaker = svc.breaker().expect("breaker armed");
        prop_assert!(breaker.trips() >= 1, "an always-failing upstream must trip the breaker");
    }
}
