//! Online analytics-service simulation.
//!
//! The paper measures the tools *as web services*: response times to the
//! first analysis request (Table II), evidence of result caching (the 2–3 s
//! responses for three StatusPeople targets and one Twitteraudit target),
//! Socialbakers' ten-requests-per-day quota, and sub-5-second responses on
//! repeat requests for every tool. This crate wraps the
//! [`fakeaudit_detectors`] engines in that service behaviour:
//!
//! * [`cache`] — result caches with optional TTL and pre-warming (to
//!   reproduce the Table II rows the vendors had evidently pre-computed);
//! * [`quota`] — daily request quotas ("the tool can be used ten times a
//!   day");
//! * [`service`] — the [`service::OnlineService`] wrapper: per-request API
//!   session, service overhead, cache consultation, quota enforcement;
//! * [`profiles`] — the calibrated per-tool service profiles (API token
//!   pools, HTTP parallelism, per-call latency, site overhead) that place
//!   each tool's first-response time in its Table II band;
//! * [`report`] — rendering of each tool's public output format (including
//!   Twitteraudit's three charts);
//! * [`monitor`] — daily follower-growth monitoring with a sudden-jump
//!   detector (the §I Romney incident, as the bloggers ran it);
//! * [`breaker`] — a per-tool circuit breaker that turns sustained
//!   upstream API failures into degrade-to-stale responses instead of
//!   retry storms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod cache;
pub mod monitor;
pub mod profiles;
pub mod quota;
pub mod report;
pub mod service;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use cache::CacheStats;
pub use profiles::ServiceProfile;
pub use service::{OnlineService, ServiceError, ServiceResponse};
