//! Rendering of each tool's public output format (§II).
//!
//! Twitteraudit outputs the fake percentage plus three charts: how it
//! considers the checked account (fake / not sure / real), a per-follower
//! quality-score chart, and the "real points" chart on a 0–5 scale.
//! StatusPeople renders a Fakers breakdown; Socialbakers adds its declared
//! "small error margin of roughly 10-15%".

use fakeaudit_detectors::{AuditOutcome, Verdict};
use fakeaudit_stats::summary::Histogram;
use std::fmt::Write as _;

/// Twitteraudit's overall judgement of the checked account.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccountJudgement {
    /// Mostly fake followers.
    Fake,
    /// Borderline.
    NotSure,
    /// Mostly real followers.
    Real,
}

impl AccountJudgement {
    /// Derives the judgement from a fake percentage, using the site's
    /// visual thresholds.
    pub fn from_fake_pct(fake_pct: f64) -> Self {
        if fake_pct >= 50.0 {
            AccountJudgement::Fake
        } else if fake_pct >= 25.0 {
            AccountJudgement::NotSure
        } else {
            AccountJudgement::Real
        }
    }

    /// Label as the site prints it.
    pub fn label(self) -> &'static str {
        match self {
            AccountJudgement::Fake => "fake",
            AccountJudgement::NotSure => "not sure",
            AccountJudgement::Real => "real",
        }
    }
}

fn bar(count: u64, total: u64, width: usize) -> String {
    if total == 0 {
        return String::new();
    }
    let filled = ((count as f64 / total as f64) * width as f64).round() as usize;
    "#".repeat(filled.min(width))
}

/// Renders a Twitteraudit-style report: percentage, judgement and the
/// real-points chart.
pub fn render_twitteraudit(outcome: &AuditOutcome, points: &Histogram) -> String {
    let fake = outcome.fake_pct();
    let mut out = String::new();
    let _ = writeln!(out, "== twitteraudit report for {} ==", outcome.target);
    let _ = writeln!(
        out,
        "{:.0}% fake — this account looks {}",
        fake,
        AccountJudgement::from_fake_pct(fake).label()
    );
    let _ = writeln!(out, "real points per follower (max 5):");
    let total = points.total();
    for (i, &count) in points.counts().iter().enumerate() {
        let (lo, _) = points.bucket_bounds(i);
        let _ = writeln!(
            out,
            "  {:>2} | {:<30} {}",
            lo as u32,
            bar(count, total, 30),
            count
        );
    }
    out
}

/// Renders a StatusPeople-style Fakers breakdown.
pub fn render_statuspeople(outcome: &AuditOutcome) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== StatusPeople Fakers for {} ==", outcome.target);
    for v in Verdict::ALL {
        let _ = writeln!(
            out,
            "  {:<9} {:>5.1}%",
            v.to_string(),
            outcome.counts.percentage(v)
        );
    }
    let _ = writeln!(
        out,
        "  (sample of {} of your most recent followers)",
        outcome.sample_size()
    );
    out
}

/// Renders a Socialbakers-style Fake Follower Check report.
pub fn render_socialbakers(outcome: &AuditOutcome) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Socialbakers Fake Follower Check for {} ==",
        outcome.target
    );
    let _ = writeln!(
        out,
        "  fake or empty: {:.0}%",
        outcome.fake_pct() + outcome.inactive_pct()
    );
    let _ = writeln!(out, "    of which inactive: {:.0}%", outcome.inactive_pct());
    let _ = writeln!(out, "  genuine: {:.0}%", outcome.genuine_pct());
    let _ = writeln!(out, "  (up to 2000 followers; error margin roughly 10-15%)");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fakeaudit_detectors::VerdictCounts;
    use fakeaudit_twittersim::{AccountId, SimTime};

    fn outcome(inactive: u64, fake: u64, genuine: u64) -> AuditOutcome {
        let mut counts = VerdictCounts::default();
        for _ in 0..inactive {
            counts.record(Verdict::Inactive);
        }
        for _ in 0..fake {
            counts.record(Verdict::Fake);
        }
        for _ in 0..genuine {
            counts.record(Verdict::Genuine);
        }
        AuditOutcome {
            tool_name: "t".into(),
            target: AccountId(1),
            assessed: vec![],
            counts,
            audited_at: SimTime::EPOCH,
            api_elapsed_secs: 0.0,
            api_calls: 0,
        }
    }

    #[test]
    fn judgement_thresholds() {
        assert_eq!(
            AccountJudgement::from_fake_pct(80.0),
            AccountJudgement::Fake
        );
        assert_eq!(
            AccountJudgement::from_fake_pct(30.0),
            AccountJudgement::NotSure
        );
        assert_eq!(AccountJudgement::from_fake_pct(5.0), AccountJudgement::Real);
        assert_eq!(AccountJudgement::Fake.label(), "fake");
    }

    #[test]
    fn twitteraudit_report_mentions_judgement() {
        let o = outcome(0, 60, 40);
        let mut h = Histogram::new(0.0, 6.0, 6);
        h.extend([0.0, 5.0, 5.0]);
        let r = render_twitteraudit(&o, &h);
        assert!(r.contains("60% fake"));
        assert!(r.contains("looks fake"));
        assert!(r.contains("real points"));
    }

    #[test]
    fn statuspeople_report_has_three_buckets() {
        let r = render_statuspeople(&outcome(28, 0, 72));
        assert!(r.contains("inactive"));
        assert!(r.contains("fake"));
        assert!(r.contains("genuine"));
        assert!(r.contains("28.0%"));
    }

    #[test]
    fn socialbakers_report_mentions_margin() {
        let r = render_socialbakers(&outcome(10, 20, 70));
        assert!(r.contains("error margin"));
        assert!(r.contains("fake or empty: 30%"));
    }

    #[test]
    fn bar_is_proportional() {
        assert_eq!(bar(5, 10, 10).len(), 5);
        assert_eq!(bar(0, 10, 10).len(), 0);
        assert!(bar(10, 10, 10).len() == 10);
        assert_eq!(bar(1, 0, 10), "");
    }
}
