//! The online-service wrapper around a detector engine.

use crate::breaker::{BreakerConfig, BreakerTransition, CircuitBreaker};
use crate::cache::ResultCache;
use crate::profiles::ServiceProfile;
use crate::quota::{DailyQuota, QuotaExceeded};
use fakeaudit_detectors::{AuditError, AuditOutcome, FollowerAuditor, Instrumented, ToolId};
use fakeaudit_stats::rng::derive_seed;
use fakeaudit_telemetry::{Telemetry, TraceContext};
use fakeaudit_twitter_api::{ApiConfig, ApiSession, FaultPlan, RetryPolicy};
use fakeaudit_twittersim::{AccountId, Platform, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Errors from a service request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The daily quota rejected the request.
    Quota(QuotaExceeded),
    /// The underlying audit failed.
    Audit(AuditError),
    /// The tool's circuit breaker is open and no stale result existed to
    /// fall back on.
    Unavailable {
        /// The tool whose circuit is open.
        tool: ToolId,
        /// Seconds until the breaker probes again.
        retry_in_secs: f64,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Quota(e) => write!(f, "quota: {e}"),
            ServiceError::Audit(e) => write!(f, "audit: {e}"),
            ServiceError::Unavailable {
                tool,
                retry_in_secs,
            } => write!(
                f,
                "{tool} unavailable: circuit open, retry in {retry_in_secs:.0}s"
            ),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Quota(e) => Some(e),
            ServiceError::Audit(e) => Some(e),
            ServiceError::Unavailable { .. } => None,
        }
    }
}

#[doc(hidden)]
impl From<QuotaExceeded> for ServiceError {
    fn from(e: QuotaExceeded) -> Self {
        ServiceError::Quota(e)
    }
}

#[doc(hidden)]
impl From<AuditError> for ServiceError {
    fn from(e: AuditError) -> Self {
        ServiceError::Audit(e)
    }
}

/// A served analysis: the outcome plus service-level timing.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceResponse {
    /// The analysis result.
    pub outcome: AuditOutcome,
    /// End-to-end response time in simulated seconds — the Table II number.
    pub response_secs: f64,
    /// Whether the result came from the service's cache.
    pub served_from_cache: bool,
    /// When the underlying audit actually ran (may predate the request for
    /// cached results — only Twitteraudit discloses this, §IV-C).
    pub assessed_at: SimTime,
}

impl fmt::Display for ServiceResponse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in {:.0}s{}",
            self.outcome.counts,
            self.response_secs,
            if self.served_from_cache {
                " (cached)"
            } else {
                ""
            }
        )
    }
}

/// A detector engine wrapped in web-service behaviour: result cache, daily
/// quota, service overhead.
///
/// ```
/// use fakeaudit_analytics::{OnlineService, ServiceProfile};
/// use fakeaudit_detectors::Twitteraudit;
/// use fakeaudit_population::{ClassMix, TargetScenario};
/// use fakeaudit_twittersim::Platform;
///
/// let mut platform = Platform::new();
/// let target = TargetScenario::new("celeb", 2_000, ClassMix::new(0.3, 0.2, 0.5)?)
///     .build(&mut platform, 1)?;
/// let mut service = OnlineService::new(Twitteraudit::new(), ServiceProfile::twitteraudit(), 7);
/// let first = service.request(&platform, target.target)?;
/// let second = service.request(&platform, target.target)?;
/// assert!(!first.served_from_cache);
/// assert!(second.served_from_cache);
/// assert!(second.response_secs < first.response_secs);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// Cloning a service clones its warmed cache, quota state and jitter
/// stream — the load simulator fans one prewarmed service out across
/// independent sweep points this way.
#[derive(Debug, Clone)]
pub struct OnlineService<A> {
    auditor: A,
    profile: ServiceProfile,
    cache: ResultCache,
    quota: Option<DailyQuota>,
    seed: u64,
    requests: u64,
    jitter: StdRng,
    telemetry: Telemetry,
    /// Upstream unreliability injected into every fresh audit's API
    /// session. [`FaultPlan::none`] (the default) arms nothing.
    fault_plan: FaultPlan,
    /// How those sessions retry. [`RetryPolicy::none`] by default.
    retry: RetryPolicy,
    /// Optional circuit breaker over the fresh-audit path.
    breaker: Option<CircuitBreaker>,
}

/// The decomposition of one fresh response's simulated seconds — the
/// Table II breakdown recorded into the telemetry histograms.
struct FreshBreakdown {
    rate_limit_wait: f64,
    api_latency: f64,
    overhead: f64,
}

/// What one fresh audit reported back up to the request path.
struct FreshRun {
    outcome: AuditOutcome,
    rate_limit_wait: f64,
    backoff_wait: f64,
}

impl<A: FollowerAuditor> OnlineService<A> {
    /// Wraps `auditor` with the service behaviour of `profile`.
    pub fn new(auditor: A, profile: ServiceProfile, seed: u64) -> Self {
        Self {
            auditor,
            profile,
            cache: profile.build_cache(),
            quota: profile.build_quota(),
            seed,
            requests: 0,
            jitter: StdRng::seed_from_u64(derive_seed(seed, "service-jitter")),
            telemetry: Telemetry::disabled(),
            fault_plan: FaultPlan::none(),
            retry: RetryPolicy::none(),
            breaker: None,
        }
    }

    /// Injects upstream unreliability: every fresh audit's API session is
    /// armed with `plan` (re-seeded per request from the service seed, so
    /// requests draw independent fault sequences) and retries per
    /// `retry`. [`FaultPlan::none`] leaves the service byte-identical to
    /// an unarmed one.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan, retry: RetryPolicy) -> Self {
        plan.validate();
        retry.validate();
        self.fault_plan = plan;
        self.retry = retry;
        self
    }

    /// Puts a circuit breaker in front of the fresh-audit path: while
    /// open, requests that miss the cache are answered from the stale
    /// cache ([`OnlineService::serve_stale`]) or refused with
    /// [`ServiceError::Unavailable`].
    #[must_use]
    pub fn with_breaker(mut self, cfg: BreakerConfig) -> Self {
        self.breaker = Some(CircuitBreaker::new(cfg));
        self
    }

    /// The circuit breaker, when one is armed.
    pub fn breaker(&self) -> Option<&CircuitBreaker> {
        self.breaker.as_ref()
    }

    /// Routes this service's signals into `telemetry`: per-request spans
    /// (`service.request{tool,source}`), cache hit/miss counters, quota
    /// rejections, the per-tool response-time breakdown (rate-limit wait
    /// vs. HTTP latency vs. site overhead — the anatomy of Table II),
    /// detector verdict counters and the underlying API-call stream.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Replaces the telemetry handle in place.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The telemetry handle this service records into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Which tool this service fronts.
    pub fn tool(&self) -> ToolId {
        self.auditor.tool()
    }

    /// The wrapped auditor.
    pub fn auditor(&self) -> &A {
        &self.auditor
    }

    /// The service profile.
    pub fn profile(&self) -> &ServiceProfile {
        &self.profile
    }

    /// Runs the audit and stores it in the cache *without* serving a
    /// response — models results the vendor pre-computed before the paper's
    /// first request (the 2–3 s rows of Table II).
    ///
    /// # Errors
    ///
    /// Propagates [`AuditError`].
    pub fn prewarm(&mut self, platform: &Platform, target: AccountId) -> Result<(), ServiceError> {
        let fresh = self.run_fresh(platform, target)?;
        self.cache.put(target, fresh.outcome, platform.now());
        Ok(())
    }

    /// Lifetime hit/miss statistics of the service's result cache.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    /// Serves the *last known* result for `target`, even if the cache entry
    /// has expired — the degrade-to-stale overload path. Unlike
    /// [`OnlineService::request`] this charges no quota, runs no audit and
    /// records nothing in the cache statistics: it is the cheap answer a
    /// saturated service gives when it would otherwise shed the request.
    /// Returns `None` when the target has never been audited.
    pub fn serve_stale(&self, target: AccountId) -> Option<ServiceResponse> {
        self.cache.peek(target).map(|entry| ServiceResponse {
            outcome: entry.outcome.clone(),
            response_secs: self.profile.cached_base_secs,
            served_from_cache: true,
            assessed_at: entry.assessed_at,
        })
    }

    /// Serves one analysis request at the platform's current time.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Quota`] when the daily quota is exhausted (the quota
    /// is charged even for cached results — the site counts requests), or
    /// [`ServiceError::Audit`].
    pub fn request(
        &mut self,
        platform: &Platform,
        target: AccountId,
    ) -> Result<ServiceResponse, ServiceError> {
        let ctx = self.telemetry.root_context();
        self.request_in(platform, target, &ctx)
    }

    /// [`OnlineService::request`] with an explicit causal position: the
    /// `service.request` span (plus its `cache.lookup` point,
    /// `detector.audit` subtree and per-page `api.call` spans) attaches
    /// under `ctx` — the audit service threads its `server.service` span
    /// here so every answered request becomes one trace tree. With a root
    /// context the same spans are emitted as trace roots, which is what
    /// [`OnlineService::request`] does.
    ///
    /// # Errors
    ///
    /// As [`OnlineService::request`].
    pub fn request_in(
        &mut self,
        platform: &Platform,
        target: AccountId,
        ctx: &TraceContext,
    ) -> Result<ServiceResponse, ServiceError> {
        let breaker_now = platform.now().as_secs() as f64;
        self.request_in_at(platform, target, ctx, breaker_now)
    }

    /// [`OnlineService::request_in`] with an explicit wall clock for the
    /// circuit breaker. A driving simulator (the audit server) advances
    /// its own event-loop time without touching the platform clock; it
    /// passes that time here so an opened circuit cools down and
    /// half-opens as *simulated* seconds pass, not platform seconds —
    /// under a frozen platform clock the breaker would otherwise never
    /// recover. Trace spans keep their platform-time base either way.
    ///
    /// # Errors
    ///
    /// As [`OnlineService::request`].
    pub fn request_in_at(
        &mut self,
        platform: &Platform,
        target: AccountId,
        ctx: &TraceContext,
        breaker_now: f64,
    ) -> Result<ServiceResponse, ServiceError> {
        let now = platform.now();
        let t0 = now.as_secs() as f64;
        let tool = self.auditor.tool().abbrev();
        if let Some(q) = &mut self.quota {
            if let Err(e) = q.consume(now) {
                self.telemetry
                    .counter_add("quota.rejected", &[("tool", tool)], 1);
                ctx.point("quota.rejected", t0, &[("tool", tool)]);
                return Err(e.into());
            }
        }
        // Opened before the outcome is known so the lookup point and the
        // audit subtree attach under it; recorded once the response time
        // (its end) is known.
        let sctx = ctx.child();
        if let Some(entry) = self.cache.get(target, now) {
            let response_secs = self.profile.cached_base_secs
                + self.jitter.gen::<f64>() * self.profile.cached_jitter;
            let response = ServiceResponse {
                outcome: entry.outcome.clone(),
                response_secs,
                served_from_cache: true,
                assessed_at: entry.assessed_at,
            };
            sctx.point("cache.lookup", t0, &[("tool", tool), ("result", "hit")]);
            sctx.record(
                "service.request",
                t0,
                t0 + response_secs,
                &[("tool", tool), ("source", "cache")],
            );
            self.record_request(response_secs, "cache", None);
            return Ok(response);
        }
        sctx.point("cache.lookup", t0, &[("tool", tool), ("result", "miss")]);
        if let Some(retry_in_secs) = self.breaker_refuses(breaker_now, &sctx) {
            // Circuit open: degrade to the last known result rather than
            // hammer a failing upstream; shed only when we have nothing.
            return match self.serve_stale(target) {
                Some(response) => {
                    sctx.record(
                        "service.request",
                        t0,
                        t0 + response.response_secs,
                        &[("tool", tool), ("source", "stale")],
                    );
                    self.record_request(response.response_secs, "stale", None);
                    Ok(response)
                }
                None => Err(ServiceError::Unavailable {
                    tool: self.auditor.tool(),
                    retry_in_secs,
                }),
            };
        }
        let fresh = self.run_fresh_in(platform, target, &sctx);
        self.feed_breaker(breaker_now, &fresh, &sctx);
        let FreshRun {
            outcome,
            rate_limit_wait,
            backoff_wait,
        } = fresh?;
        let response_secs = outcome.api_elapsed_secs
            + self.profile.overhead_secs
            + self.jitter.gen::<f64>() * self.profile.overhead_jitter;
        self.cache.put(target, outcome.clone(), now);
        sctx.record(
            "service.request",
            t0,
            t0 + response_secs,
            &[("tool", tool), ("source", "fresh")],
        );
        if !self.fault_plan.is_none() {
            self.telemetry
                .observe("service.backoff_secs", &[("tool", tool)], backoff_wait);
        }
        self.record_request(
            response_secs,
            "fresh",
            Some(FreshBreakdown {
                rate_limit_wait,
                api_latency: outcome.api_elapsed_secs - rate_limit_wait - backoff_wait,
                overhead: response_secs - outcome.api_elapsed_secs + backoff_wait,
            }),
        );
        Ok(ServiceResponse {
            outcome,
            response_secs,
            served_from_cache: false,
            assessed_at: now,
        })
    }

    /// Consults the armed breaker (if any) at sim-time `now`. Returns
    /// `Some(retry_in_secs)` when the fresh path is refused.
    fn breaker_refuses(&mut self, now: f64, ctx: &TraceContext) -> Option<f64> {
        let (allowed, transition, retry_in) = {
            let breaker = self.breaker.as_mut()?;
            let (allowed, transition) = breaker.allow(now);
            (allowed, transition, breaker.open_remaining(now))
        };
        if let Some(tr) = transition {
            self.note_breaker_transition(ctx, &tr);
        }
        (!allowed).then_some(retry_in)
    }

    /// Feeds one fresh-audit result into the armed breaker (if any). Only
    /// retryable upstream failures count against the circuit; quota
    /// rejections never reach here and audit-logic errors say nothing
    /// about upstream health.
    fn feed_breaker(
        &mut self,
        now: f64,
        fresh: &Result<FreshRun, ServiceError>,
        ctx: &TraceContext,
    ) {
        let Some(breaker) = self.breaker.as_mut() else {
            return;
        };
        let transition = match fresh {
            Ok(_) => breaker.on_success(now),
            Err(ServiceError::Audit(e)) if e.is_retryable() => breaker.on_failure(now),
            Err(_) => None,
        };
        let open_secs = breaker.open_secs_total(now);
        if let Some(tr) = transition {
            self.note_breaker_transition(ctx, &tr);
        }
        let tool = self.auditor.tool().abbrev();
        self.telemetry
            .gauge_set("breaker.open_secs", &[("tool", tool)], open_secs);
    }

    /// Emits one breaker state change as a trace point and counter.
    fn note_breaker_transition(&self, ctx: &TraceContext, tr: &BreakerTransition) {
        let tool = self.auditor.tool().abbrev();
        ctx.point(
            "breaker.transition",
            tr.at_secs,
            &[("tool", tool), ("from", tr.from.key()), ("to", tr.to.key())],
        );
        self.telemetry.counter_add(
            "breaker.transitions",
            &[("tool", tool), ("to", tr.to.key())],
            1,
        );
    }

    /// Mirrors one served request's metrics into the telemetry handle
    /// (the `service.request` span itself is recorded by the caller's
    /// context).
    fn record_request(&self, response_secs: f64, source: &str, breakdown: Option<FreshBreakdown>) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let tool = self.auditor.tool().abbrev();
        let labels = [("tool", tool), ("source", source)];
        self.telemetry
            .observe("service.response_secs", &labels, response_secs);
        let tool_only = [("tool", tool)];
        // Stale serves are neither cache hits nor misses: the entry was
        // consulted outside its TTL contract, so they get their own counter.
        self.telemetry.counter_add(
            match source {
                "cache" => "cache.hit",
                "fresh" => "cache.miss",
                _ => "service.stale_served",
            },
            &tool_only,
            1,
        );
        if let Some(b) = breakdown {
            self.telemetry.observe(
                "service.rate_limit_wait_secs",
                &tool_only,
                b.rate_limit_wait,
            );
            self.telemetry
                .observe("service.api_latency_secs", &tool_only, b.api_latency);
            self.telemetry
                .observe("service.overhead_secs", &tool_only, b.overhead);
        }
        let stats = self.cache.stats();
        self.telemetry
            .gauge_set("cache.hits", &tool_only, stats.hits as f64);
        self.telemetry
            .gauge_set("cache.misses", &tool_only, stats.misses as f64);
        self.telemetry
            .gauge_set("cache.entries", &tool_only, self.cache.len() as f64);
    }

    fn run_fresh(
        &mut self,
        platform: &Platform,
        target: AccountId,
    ) -> Result<FreshRun, ServiceError> {
        let ctx = self.telemetry.root_context();
        self.run_fresh_in(platform, target, &ctx)
    }

    /// Runs one uncached audit. The session is opened on a child of
    /// `ctx`: that child becomes the `detector.audit` span (recorded by
    /// [`Instrumented`] at close) and every page fetch a child `api.call`
    /// span under it. When a fault plan is armed, the session gets its own
    /// per-request fault seed so concurrent requests draw independent
    /// fault sequences while the whole run stays a function of the
    /// service seed.
    fn run_fresh_in(
        &mut self,
        platform: &Platform,
        target: AccountId,
        ctx: &TraceContext,
    ) -> Result<FreshRun, ServiceError> {
        self.requests += 1;
        let request_seed = derive_seed(self.seed, &format!("request-{}", self.requests));
        let api = ApiConfig {
            seed: request_seed,
            ..self.profile.api
        };
        let mut session = ApiSession::with_context(platform, api, ctx.child());
        if !self.fault_plan.is_none() {
            let plan = FaultPlan {
                seed: derive_seed(request_seed, "faults"),
                ..self.fault_plan
            };
            session = session.with_faults(plan, self.retry);
        }
        let auditor = Instrumented::new(&self.auditor, self.telemetry.clone());
        let outcome = auditor.audit(&mut session, target, request_seed)?;
        Ok(FreshRun {
            outcome,
            rate_limit_wait: session.rate_limit_wait_secs(),
            backoff_wait: session.backoff_wait_secs(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerState;
    use fakeaudit_detectors::{Socialbakers, StatusPeople, Twitteraudit};
    use fakeaudit_population::{BuiltTarget, ClassMix, TargetScenario};

    fn built(n: usize) -> (Platform, BuiltTarget) {
        let mut platform = Platform::new();
        let t = TargetScenario::new("svc", n, ClassMix::new(0.3, 0.2, 0.5).unwrap())
            .build(&mut platform, 91)
            .unwrap();
        (platform, t)
    }

    #[test]
    fn first_request_is_fresh_then_cached() {
        let (platform, t) = built(3_000);
        let mut svc = OnlineService::new(StatusPeople::new(), ServiceProfile::statuspeople(), 1);
        let first = svc.request(&platform, t.target).unwrap();
        assert!(!first.served_from_cache);
        let second = svc.request(&platform, t.target).unwrap();
        assert!(second.served_from_cache);
        assert!(
            second.response_secs < 5.0,
            "cached response {:.1}s must be <5s (§IV-C)",
            second.response_secs
        );
        assert_eq!(first.outcome.counts, second.outcome.counts);
    }

    #[test]
    fn prewarmed_result_serves_fast_on_first_request() {
        let (platform, t) = built(3_000);
        let mut svc = OnlineService::new(Twitteraudit::new(), ServiceProfile::twitteraudit(), 2);
        svc.prewarm(&platform, t.target).unwrap();
        let r = svc.request(&platform, t.target).unwrap();
        assert!(r.served_from_cache);
        assert!(r.response_secs < 5.0);
    }

    #[test]
    fn serve_stale_returns_expired_entries_without_quota() {
        let (mut platform, t) = built(2_000);
        let profile = ServiceProfile {
            cache_ttl_days: Some(1),
            ..ServiceProfile::socialbakers()
        };
        let mut svc = OnlineService::new(Socialbakers::new(), profile, 21);
        assert!(
            svc.serve_stale(t.target).is_none(),
            "cold cache has no stale result"
        );
        let fresh = svc.request(&platform, t.target).unwrap();
        platform.advance_clock(fakeaudit_twittersim::SimDuration::from_days(3));
        let before = svc.cache_stats();
        let stale = svc.serve_stale(t.target).unwrap();
        assert_eq!(
            svc.cache_stats(),
            before,
            "stale serves are not cache lookups"
        );
        assert!(stale.served_from_cache);
        assert_eq!(stale.outcome.counts, fresh.outcome.counts);
        assert_eq!(stale.assessed_at, fakeaudit_twittersim::SimTime::EPOCH);
        assert!(stale.response_secs <= fresh.response_secs);
    }

    #[test]
    fn sb_quota_rejects_eleventh_request() {
        let (platform, t) = built(2_500);
        let mut svc = OnlineService::new(Socialbakers::new(), ServiceProfile::socialbakers(), 3);
        for _ in 0..10 {
            svc.request(&platform, t.target).unwrap();
        }
        assert!(matches!(
            svc.request(&platform, t.target).unwrap_err(),
            ServiceError::Quota(_)
        ));
    }

    #[test]
    fn quota_resets_next_day() {
        let (mut platform, t) = built(2_500);
        let mut svc = OnlineService::new(Socialbakers::new(), ServiceProfile::socialbakers(), 4);
        for _ in 0..10 {
            svc.request(&platform, t.target).unwrap();
        }
        platform.advance_clock(fakeaudit_twittersim::SimDuration::from_days(1));
        assert!(svc.request(&platform, t.target).is_ok());
    }

    #[test]
    fn sb_response_time_band() {
        let (platform, t) = built(5_000);
        let mut svc = OnlineService::new(Socialbakers::new(), ServiceProfile::socialbakers(), 5);
        let r = svc.request(&platform, t.target).unwrap();
        assert!(
            (6.0..15.0).contains(&r.response_secs),
            "SB first response {:.1}s out of Table II band",
            r.response_secs
        );
    }

    #[test]
    fn sp_response_time_band() {
        let (platform, t) = built(5_000);
        let mut svc = OnlineService::new(StatusPeople::new(), ServiceProfile::statuspeople(), 6);
        let r = svc.request(&platform, t.target).unwrap();
        assert!(
            (15.0..35.0).contains(&r.response_secs),
            "SP first response {:.1}s out of band",
            r.response_secs
        );
    }

    #[test]
    fn ta_response_time_band() {
        let (platform, t) = built(8_000);
        let mut svc = OnlineService::new(Twitteraudit::new(), ServiceProfile::twitteraudit(), 7);
        let r = svc.request(&platform, t.target).unwrap();
        assert!(
            (38.0..58.0).contains(&r.response_secs),
            "TA first response {:.1}s out of band",
            r.response_secs
        );
    }

    #[test]
    fn audit_errors_propagate() {
        let platform = Platform::new();
        let mut svc = OnlineService::new(Twitteraudit::new(), ServiceProfile::twitteraudit(), 8);
        assert!(matches!(
            svc.request(&platform, AccountId(404)).unwrap_err(),
            ServiceError::Audit(_)
        ));
    }

    #[test]
    fn telemetry_records_cache_traffic_and_breakdown() {
        let (platform, t) = built(3_000);
        let tel = Telemetry::enabled();
        let mut svc = OnlineService::new(StatusPeople::new(), ServiceProfile::statuspeople(), 11)
            .with_telemetry(tel.clone());
        assert!(svc.telemetry().is_enabled());
        let first = svc.request(&platform, t.target).unwrap();
        svc.request(&platform, t.target).unwrap();
        let snap = tel.snapshot();
        assert_eq!(snap.counter("cache.miss", &[("tool", "SP")]), Some(1));
        assert_eq!(snap.counter("cache.hit", &[("tool", "SP")]), Some(1));
        assert_eq!(svc.cache_stats().hit_ratio(), Some(0.5));
        // Fresh response decomposes into rate-limit wait + latency + overhead.
        let parts = snap.histogram_sum("service.rate_limit_wait_secs")
            + snap.histogram_sum("service.api_latency_secs")
            + snap.histogram_sum("service.overhead_secs");
        assert!(
            (parts - first.response_secs).abs() < 1e-6,
            "breakdown {parts} != response {}",
            first.response_secs
        );
        // The API-call stream flowed through into telemetry too.
        assert!(snap.counter_total("api.calls") > 0);
        assert_eq!(
            snap.counter_total("detector.classified"),
            first.outcome.counts.total()
        );
        let spans: Vec<_> = tel
            .events()
            .into_iter()
            .filter(|e| e.name == "service.request")
            .collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].attr("source"), Some("fresh"));
        assert_eq!(spans[1].attr("source"), Some("cache"));
    }

    #[test]
    fn request_in_builds_one_tree_per_request() {
        let (platform, t) = built(3_000);
        let tel = Telemetry::enabled();
        let mut svc = OnlineService::new(StatusPeople::new(), ServiceProfile::statuspeople(), 11)
            .with_telemetry(tel.clone());
        let parent = tel.root_context().child();
        svc.request_in(&platform, t.target, &parent).unwrap(); // fresh
        svc.request_in(&platform, t.target, &parent).unwrap(); // cached
        parent.record("server.service", 0.0, 100.0, &[]);
        let events = tel.events();
        let by_name = |n: &str| -> Vec<_> { events.iter().filter(|e| e.name == n).collect() };
        let sreqs = by_name("service.request");
        assert_eq!(sreqs.len(), 2);
        assert!(sreqs.iter().all(|e| e.parent == parent.span_id()));
        assert_eq!(sreqs[0].attr("source"), Some("fresh"));
        assert_eq!(sreqs[1].attr("source"), Some("cache"));
        // The lookup points sit under their service.request spans.
        let lookups = by_name("cache.lookup");
        assert_eq!(lookups.len(), 2);
        assert_eq!(lookups[0].attr("result"), Some("miss"));
        assert_eq!(lookups[1].attr("result"), Some("hit"));
        assert!(lookups.iter().zip(&sreqs).all(|(l, s)| l.parent == s.id));
        // The audit subtree: detector.audit under the fresh request,
        // api.call spans under the audit.
        let audit = by_name("detector.audit");
        assert_eq!(audit.len(), 1);
        assert_eq!(audit[0].parent, sreqs[0].id);
        let calls = by_name("api.call");
        assert!(!calls.is_empty());
        assert!(calls.iter().all(|c| c.parent == audit[0].id));
    }

    #[test]
    fn plain_requests_root_their_own_trees() {
        let (platform, t) = built(2_000);
        let tel = Telemetry::enabled();
        let mut svc = OnlineService::new(StatusPeople::new(), ServiceProfile::statuspeople(), 13)
            .with_telemetry(tel.clone());
        svc.request(&platform, t.target).unwrap();
        let events = tel.events();
        let sreq = events.iter().find(|e| e.name == "service.request").unwrap();
        assert!(sreq.id.is_some());
        assert_eq!(sreq.parent, None, "root context roots the tree");
    }

    #[test]
    fn telemetry_counts_quota_rejections() {
        let (platform, t) = built(2_500);
        let tel = Telemetry::enabled();
        let mut svc = OnlineService::new(Socialbakers::new(), ServiceProfile::socialbakers(), 12)
            .with_telemetry(tel.clone());
        for _ in 0..10 {
            svc.request(&platform, t.target).unwrap();
        }
        svc.request(&platform, t.target).unwrap_err();
        let snap = tel.snapshot();
        assert_eq!(snap.counter("quota.rejected", &[("tool", "SB")]), Some(1));
    }

    #[test]
    fn disabled_telemetry_matches_instrumented_run() {
        let (platform, t) = built(2_000);
        let run = |tel: Telemetry| {
            let mut svc =
                OnlineService::new(StatusPeople::new(), ServiceProfile::statuspeople(), 9)
                    .with_telemetry(tel);
            svc.request(&platform, t.target).unwrap().response_secs
        };
        assert_eq!(run(Telemetry::disabled()), run(Telemetry::enabled()));
    }

    fn always_unavailable() -> FaultPlan {
        FaultPlan {
            seed: 77,
            rates: [fakeaudit_twitter_api::FaultRates {
                unavailable: 1.0,
                rate_limited: 0.0,
                timeout: 0.0,
                truncated_page: 0.0,
            }; 4],
            ..FaultPlan::none()
        }
    }

    fn trigger_happy_breaker() -> BreakerConfig {
        BreakerConfig {
            window: 4,
            failure_threshold: 0.5,
            min_samples: 2,
            open_secs: 60.0,
            half_open_probes: 1,
        }
    }

    #[test]
    fn none_fault_plan_is_identity() {
        let (platform, t) = built(2_000);
        let run = |armed: bool| {
            let svc = OnlineService::new(StatusPeople::new(), ServiceProfile::statuspeople(), 9);
            let mut svc = if armed {
                svc.with_fault_plan(FaultPlan::none(), RetryPolicy::standard())
            } else {
                svc
            };
            svc.request(&platform, t.target).unwrap().response_secs
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn faulty_upstream_with_retries_still_answers() {
        let (platform, t) = built(3_000);
        let tel = Telemetry::enabled();
        let mut svc = OnlineService::new(StatusPeople::new(), ServiceProfile::statuspeople(), 31)
            .with_fault_plan(FaultPlan::uniform(5, 0.25), RetryPolicy::standard())
            .with_telemetry(tel.clone());
        let r = svc.request(&platform, t.target).unwrap();
        assert!(!r.served_from_cache);
        let snap = tel.snapshot();
        assert!(
            snap.counter_total("api.faults") > 0,
            "a 25% plan over an audit's calls must inject something"
        );
        assert!(snap.counter_total("api.retries") > 0);
    }

    #[test]
    fn open_breaker_degrades_to_stale() {
        let (mut platform, t) = built(2_000);
        let profile = ServiceProfile {
            cache_ttl_days: Some(1),
            ..ServiceProfile::statuspeople()
        };
        let tel = Telemetry::enabled();
        let mut svc = OnlineService::new(StatusPeople::new(), profile, 41);
        let warmed_at = platform.now();
        svc.prewarm(&platform, t.target).unwrap();
        let mut svc = svc
            .with_fault_plan(always_unavailable(), RetryPolicy::none())
            .with_breaker(trigger_happy_breaker())
            .with_telemetry(tel.clone());
        platform.advance_clock(fakeaudit_twittersim::SimDuration::from_days(3));
        // Two fresh attempts fail upstream and trip the circuit...
        for _ in 0..2 {
            assert!(matches!(
                svc.request(&platform, t.target).unwrap_err(),
                ServiceError::Audit(_)
            ));
        }
        assert_eq!(svc.breaker().unwrap().state(), BreakerState::Open);
        // ...after which the stale prewarmed answer is served instead.
        let stale = svc.request(&platform, t.target).unwrap();
        assert!(stale.served_from_cache);
        assert_eq!(stale.assessed_at, warmed_at);
        let snap = tel.snapshot();
        assert_eq!(
            snap.counter("service.stale_served", &[("tool", "SP")]),
            Some(1)
        );
        assert_eq!(
            snap.counter("breaker.transitions", &[("tool", "SP"), ("to", "open")]),
            Some(1)
        );
        // The cooldown elapsing admits a probe, which re-trips on failure.
        platform.advance_clock(fakeaudit_twittersim::SimDuration::from_days(1));
        assert!(matches!(
            svc.request(&platform, t.target).unwrap_err(),
            ServiceError::Audit(_)
        ));
        assert_eq!(svc.breaker().unwrap().state(), BreakerState::Open);
        assert_eq!(svc.breaker().unwrap().trips(), 2);
    }

    #[test]
    fn open_breaker_without_stale_refuses() {
        let (platform, t) = built(2_000);
        let mut svc = OnlineService::new(StatusPeople::new(), ServiceProfile::statuspeople(), 43)
            .with_fault_plan(always_unavailable(), RetryPolicy::none())
            .with_breaker(trigger_happy_breaker());
        for _ in 0..2 {
            svc.request(&platform, t.target).unwrap_err();
        }
        match svc.request(&platform, t.target).unwrap_err() {
            ServiceError::Unavailable {
                tool,
                retry_in_secs,
            } => {
                assert_eq!(tool, ToolId::StatusPeople);
                assert!(retry_in_secs > 0.0);
            }
            other => panic!("expected Unavailable, got {other}"),
        }
    }

    #[test]
    fn responses_are_deterministic_per_seed() {
        let (platform, t) = built(2_000);
        let run = |seed| {
            let mut svc =
                OnlineService::new(StatusPeople::new(), ServiceProfile::statuspeople(), seed);
            svc.request(&platform, t.target).unwrap().response_secs
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
