//! The online-service wrapper around a detector engine.

use crate::cache::ResultCache;
use crate::profiles::ServiceProfile;
use crate::quota::{DailyQuota, QuotaExceeded};
use fakeaudit_detectors::{AuditError, AuditOutcome, FollowerAuditor, Instrumented, ToolId};
use fakeaudit_stats::rng::derive_seed;
use fakeaudit_telemetry::{Telemetry, TraceContext};
use fakeaudit_twitter_api::{ApiConfig, ApiSession};
use fakeaudit_twittersim::{AccountId, Platform, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Errors from a service request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The daily quota rejected the request.
    Quota(QuotaExceeded),
    /// The underlying audit failed.
    Audit(AuditError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Quota(e) => write!(f, "quota: {e}"),
            ServiceError::Audit(e) => write!(f, "audit: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Quota(e) => Some(e),
            ServiceError::Audit(e) => Some(e),
        }
    }
}

#[doc(hidden)]
impl From<QuotaExceeded> for ServiceError {
    fn from(e: QuotaExceeded) -> Self {
        ServiceError::Quota(e)
    }
}

#[doc(hidden)]
impl From<AuditError> for ServiceError {
    fn from(e: AuditError) -> Self {
        ServiceError::Audit(e)
    }
}

/// A served analysis: the outcome plus service-level timing.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceResponse {
    /// The analysis result.
    pub outcome: AuditOutcome,
    /// End-to-end response time in simulated seconds — the Table II number.
    pub response_secs: f64,
    /// Whether the result came from the service's cache.
    pub served_from_cache: bool,
    /// When the underlying audit actually ran (may predate the request for
    /// cached results — only Twitteraudit discloses this, §IV-C).
    pub assessed_at: SimTime,
}

impl fmt::Display for ServiceResponse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in {:.0}s{}",
            self.outcome.counts,
            self.response_secs,
            if self.served_from_cache {
                " (cached)"
            } else {
                ""
            }
        )
    }
}

/// A detector engine wrapped in web-service behaviour: result cache, daily
/// quota, service overhead.
///
/// ```
/// use fakeaudit_analytics::{OnlineService, ServiceProfile};
/// use fakeaudit_detectors::Twitteraudit;
/// use fakeaudit_population::{ClassMix, TargetScenario};
/// use fakeaudit_twittersim::Platform;
///
/// let mut platform = Platform::new();
/// let target = TargetScenario::new("celeb", 2_000, ClassMix::new(0.3, 0.2, 0.5)?)
///     .build(&mut platform, 1)?;
/// let mut service = OnlineService::new(Twitteraudit::new(), ServiceProfile::twitteraudit(), 7);
/// let first = service.request(&platform, target.target)?;
/// let second = service.request(&platform, target.target)?;
/// assert!(!first.served_from_cache);
/// assert!(second.served_from_cache);
/// assert!(second.response_secs < first.response_secs);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// Cloning a service clones its warmed cache, quota state and jitter
/// stream — the load simulator fans one prewarmed service out across
/// independent sweep points this way.
#[derive(Debug, Clone)]
pub struct OnlineService<A> {
    auditor: A,
    profile: ServiceProfile,
    cache: ResultCache,
    quota: Option<DailyQuota>,
    seed: u64,
    requests: u64,
    jitter: StdRng,
    telemetry: Telemetry,
}

/// The decomposition of one fresh response's simulated seconds — the
/// Table II breakdown recorded into the telemetry histograms.
struct FreshBreakdown {
    rate_limit_wait: f64,
    api_latency: f64,
    overhead: f64,
}

impl<A: FollowerAuditor> OnlineService<A> {
    /// Wraps `auditor` with the service behaviour of `profile`.
    pub fn new(auditor: A, profile: ServiceProfile, seed: u64) -> Self {
        Self {
            auditor,
            profile,
            cache: profile.build_cache(),
            quota: profile.build_quota(),
            seed,
            requests: 0,
            jitter: StdRng::seed_from_u64(derive_seed(seed, "service-jitter")),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Routes this service's signals into `telemetry`: per-request spans
    /// (`service.request{tool,source}`), cache hit/miss counters, quota
    /// rejections, the per-tool response-time breakdown (rate-limit wait
    /// vs. HTTP latency vs. site overhead — the anatomy of Table II),
    /// detector verdict counters and the underlying API-call stream.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Replaces the telemetry handle in place.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The telemetry handle this service records into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Which tool this service fronts.
    pub fn tool(&self) -> ToolId {
        self.auditor.tool()
    }

    /// The wrapped auditor.
    pub fn auditor(&self) -> &A {
        &self.auditor
    }

    /// The service profile.
    pub fn profile(&self) -> &ServiceProfile {
        &self.profile
    }

    /// Runs the audit and stores it in the cache *without* serving a
    /// response — models results the vendor pre-computed before the paper's
    /// first request (the 2–3 s rows of Table II).
    ///
    /// # Errors
    ///
    /// Propagates [`AuditError`].
    pub fn prewarm(&mut self, platform: &Platform, target: AccountId) -> Result<(), ServiceError> {
        let (outcome, _) = self.run_fresh(platform, target)?;
        self.cache.put(target, outcome, platform.now());
        Ok(())
    }

    /// Lifetime hit/miss statistics of the service's result cache.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    /// Serves the *last known* result for `target`, even if the cache entry
    /// has expired — the degrade-to-stale overload path. Unlike
    /// [`OnlineService::request`] this charges no quota, runs no audit and
    /// records nothing in the cache statistics: it is the cheap answer a
    /// saturated service gives when it would otherwise shed the request.
    /// Returns `None` when the target has never been audited.
    pub fn serve_stale(&self, target: AccountId) -> Option<ServiceResponse> {
        self.cache.peek(target).map(|entry| ServiceResponse {
            outcome: entry.outcome.clone(),
            response_secs: self.profile.cached_base_secs,
            served_from_cache: true,
            assessed_at: entry.assessed_at,
        })
    }

    /// Serves one analysis request at the platform's current time.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Quota`] when the daily quota is exhausted (the quota
    /// is charged even for cached results — the site counts requests), or
    /// [`ServiceError::Audit`].
    pub fn request(
        &mut self,
        platform: &Platform,
        target: AccountId,
    ) -> Result<ServiceResponse, ServiceError> {
        let ctx = self.telemetry.root_context();
        self.request_in(platform, target, &ctx)
    }

    /// [`OnlineService::request`] with an explicit causal position: the
    /// `service.request` span (plus its `cache.lookup` point,
    /// `detector.audit` subtree and per-page `api.call` spans) attaches
    /// under `ctx` — the audit service threads its `server.service` span
    /// here so every answered request becomes one trace tree. With a root
    /// context the same spans are emitted as trace roots, which is what
    /// [`OnlineService::request`] does.
    ///
    /// # Errors
    ///
    /// As [`OnlineService::request`].
    pub fn request_in(
        &mut self,
        platform: &Platform,
        target: AccountId,
        ctx: &TraceContext,
    ) -> Result<ServiceResponse, ServiceError> {
        let now = platform.now();
        let t0 = now.as_secs() as f64;
        let tool = self.auditor.tool().abbrev();
        if let Some(q) = &mut self.quota {
            if let Err(e) = q.consume(now) {
                self.telemetry
                    .counter_add("quota.rejected", &[("tool", tool)], 1);
                ctx.point("quota.rejected", t0, &[("tool", tool)]);
                return Err(e.into());
            }
        }
        // Opened before the outcome is known so the lookup point and the
        // audit subtree attach under it; recorded once the response time
        // (its end) is known.
        let sctx = ctx.child();
        if let Some(entry) = self.cache.get(target, now) {
            let response_secs = self.profile.cached_base_secs
                + self.jitter.gen::<f64>() * self.profile.cached_jitter;
            let response = ServiceResponse {
                outcome: entry.outcome.clone(),
                response_secs,
                served_from_cache: true,
                assessed_at: entry.assessed_at,
            };
            sctx.point("cache.lookup", t0, &[("tool", tool), ("result", "hit")]);
            sctx.record(
                "service.request",
                t0,
                t0 + response_secs,
                &[("tool", tool), ("source", "cache")],
            );
            self.record_request(response_secs, "cache", None);
            return Ok(response);
        }
        sctx.point("cache.lookup", t0, &[("tool", tool), ("result", "miss")]);
        let (outcome, rate_limit_wait) = self.run_fresh_in(platform, target, &sctx)?;
        let response_secs = outcome.api_elapsed_secs
            + self.profile.overhead_secs
            + self.jitter.gen::<f64>() * self.profile.overhead_jitter;
        self.cache.put(target, outcome.clone(), now);
        sctx.record(
            "service.request",
            t0,
            t0 + response_secs,
            &[("tool", tool), ("source", "fresh")],
        );
        self.record_request(
            response_secs,
            "fresh",
            Some(FreshBreakdown {
                rate_limit_wait,
                api_latency: outcome.api_elapsed_secs - rate_limit_wait,
                overhead: response_secs - outcome.api_elapsed_secs,
            }),
        );
        Ok(ServiceResponse {
            outcome,
            response_secs,
            served_from_cache: false,
            assessed_at: now,
        })
    }

    /// Mirrors one served request's metrics into the telemetry handle
    /// (the `service.request` span itself is recorded by the caller's
    /// context).
    fn record_request(&self, response_secs: f64, source: &str, breakdown: Option<FreshBreakdown>) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let tool = self.auditor.tool().abbrev();
        let labels = [("tool", tool), ("source", source)];
        self.telemetry
            .observe("service.response_secs", &labels, response_secs);
        let tool_only = [("tool", tool)];
        self.telemetry.counter_add(
            if source == "cache" {
                "cache.hit"
            } else {
                "cache.miss"
            },
            &tool_only,
            1,
        );
        if let Some(b) = breakdown {
            self.telemetry.observe(
                "service.rate_limit_wait_secs",
                &tool_only,
                b.rate_limit_wait,
            );
            self.telemetry
                .observe("service.api_latency_secs", &tool_only, b.api_latency);
            self.telemetry
                .observe("service.overhead_secs", &tool_only, b.overhead);
        }
        let stats = self.cache.stats();
        self.telemetry
            .gauge_set("cache.hits", &tool_only, stats.hits as f64);
        self.telemetry
            .gauge_set("cache.misses", &tool_only, stats.misses as f64);
        self.telemetry
            .gauge_set("cache.entries", &tool_only, self.cache.len() as f64);
    }

    fn run_fresh(
        &mut self,
        platform: &Platform,
        target: AccountId,
    ) -> Result<(AuditOutcome, f64), ServiceError> {
        let ctx = self.telemetry.root_context();
        self.run_fresh_in(platform, target, &ctx)
    }

    /// Runs one uncached audit. The session is opened on a child of
    /// `ctx`: that child becomes the `detector.audit` span (recorded by
    /// [`Instrumented`] at close) and every page fetch a child `api.call`
    /// span under it.
    fn run_fresh_in(
        &mut self,
        platform: &Platform,
        target: AccountId,
        ctx: &TraceContext,
    ) -> Result<(AuditOutcome, f64), ServiceError> {
        self.requests += 1;
        let request_seed = derive_seed(self.seed, &format!("request-{}", self.requests));
        let api = ApiConfig {
            seed: request_seed,
            ..self.profile.api
        };
        let mut session = ApiSession::with_context(platform, api, ctx.child());
        let auditor = Instrumented::new(&self.auditor, self.telemetry.clone());
        let outcome = auditor.audit(&mut session, target, request_seed)?;
        let rate_limit_wait = session.rate_limit_wait_secs();
        Ok((outcome, rate_limit_wait))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fakeaudit_detectors::{Socialbakers, StatusPeople, Twitteraudit};
    use fakeaudit_population::{BuiltTarget, ClassMix, TargetScenario};

    fn built(n: usize) -> (Platform, BuiltTarget) {
        let mut platform = Platform::new();
        let t = TargetScenario::new("svc", n, ClassMix::new(0.3, 0.2, 0.5).unwrap())
            .build(&mut platform, 91)
            .unwrap();
        (platform, t)
    }

    #[test]
    fn first_request_is_fresh_then_cached() {
        let (platform, t) = built(3_000);
        let mut svc = OnlineService::new(StatusPeople::new(), ServiceProfile::statuspeople(), 1);
        let first = svc.request(&platform, t.target).unwrap();
        assert!(!first.served_from_cache);
        let second = svc.request(&platform, t.target).unwrap();
        assert!(second.served_from_cache);
        assert!(
            second.response_secs < 5.0,
            "cached response {:.1}s must be <5s (§IV-C)",
            second.response_secs
        );
        assert_eq!(first.outcome.counts, second.outcome.counts);
    }

    #[test]
    fn prewarmed_result_serves_fast_on_first_request() {
        let (platform, t) = built(3_000);
        let mut svc = OnlineService::new(Twitteraudit::new(), ServiceProfile::twitteraudit(), 2);
        svc.prewarm(&platform, t.target).unwrap();
        let r = svc.request(&platform, t.target).unwrap();
        assert!(r.served_from_cache);
        assert!(r.response_secs < 5.0);
    }

    #[test]
    fn serve_stale_returns_expired_entries_without_quota() {
        let (mut platform, t) = built(2_000);
        let profile = ServiceProfile {
            cache_ttl_days: Some(1),
            ..ServiceProfile::socialbakers()
        };
        let mut svc = OnlineService::new(Socialbakers::new(), profile, 21);
        assert!(
            svc.serve_stale(t.target).is_none(),
            "cold cache has no stale result"
        );
        let fresh = svc.request(&platform, t.target).unwrap();
        platform.advance_clock(fakeaudit_twittersim::SimDuration::from_days(3));
        let before = svc.cache_stats();
        let stale = svc.serve_stale(t.target).unwrap();
        assert_eq!(
            svc.cache_stats(),
            before,
            "stale serves are not cache lookups"
        );
        assert!(stale.served_from_cache);
        assert_eq!(stale.outcome.counts, fresh.outcome.counts);
        assert_eq!(stale.assessed_at, fakeaudit_twittersim::SimTime::EPOCH);
        assert!(stale.response_secs <= fresh.response_secs);
    }

    #[test]
    fn sb_quota_rejects_eleventh_request() {
        let (platform, t) = built(2_500);
        let mut svc = OnlineService::new(Socialbakers::new(), ServiceProfile::socialbakers(), 3);
        for _ in 0..10 {
            svc.request(&platform, t.target).unwrap();
        }
        assert!(matches!(
            svc.request(&platform, t.target).unwrap_err(),
            ServiceError::Quota(_)
        ));
    }

    #[test]
    fn quota_resets_next_day() {
        let (mut platform, t) = built(2_500);
        let mut svc = OnlineService::new(Socialbakers::new(), ServiceProfile::socialbakers(), 4);
        for _ in 0..10 {
            svc.request(&platform, t.target).unwrap();
        }
        platform.advance_clock(fakeaudit_twittersim::SimDuration::from_days(1));
        assert!(svc.request(&platform, t.target).is_ok());
    }

    #[test]
    fn sb_response_time_band() {
        let (platform, t) = built(5_000);
        let mut svc = OnlineService::new(Socialbakers::new(), ServiceProfile::socialbakers(), 5);
        let r = svc.request(&platform, t.target).unwrap();
        assert!(
            (6.0..15.0).contains(&r.response_secs),
            "SB first response {:.1}s out of Table II band",
            r.response_secs
        );
    }

    #[test]
    fn sp_response_time_band() {
        let (platform, t) = built(5_000);
        let mut svc = OnlineService::new(StatusPeople::new(), ServiceProfile::statuspeople(), 6);
        let r = svc.request(&platform, t.target).unwrap();
        assert!(
            (15.0..35.0).contains(&r.response_secs),
            "SP first response {:.1}s out of band",
            r.response_secs
        );
    }

    #[test]
    fn ta_response_time_band() {
        let (platform, t) = built(8_000);
        let mut svc = OnlineService::new(Twitteraudit::new(), ServiceProfile::twitteraudit(), 7);
        let r = svc.request(&platform, t.target).unwrap();
        assert!(
            (38.0..58.0).contains(&r.response_secs),
            "TA first response {:.1}s out of band",
            r.response_secs
        );
    }

    #[test]
    fn audit_errors_propagate() {
        let platform = Platform::new();
        let mut svc = OnlineService::new(Twitteraudit::new(), ServiceProfile::twitteraudit(), 8);
        assert!(matches!(
            svc.request(&platform, AccountId(404)).unwrap_err(),
            ServiceError::Audit(_)
        ));
    }

    #[test]
    fn telemetry_records_cache_traffic_and_breakdown() {
        let (platform, t) = built(3_000);
        let tel = Telemetry::enabled();
        let mut svc = OnlineService::new(StatusPeople::new(), ServiceProfile::statuspeople(), 11)
            .with_telemetry(tel.clone());
        assert!(svc.telemetry().is_enabled());
        let first = svc.request(&platform, t.target).unwrap();
        svc.request(&platform, t.target).unwrap();
        let snap = tel.snapshot();
        assert_eq!(snap.counter("cache.miss", &[("tool", "SP")]), Some(1));
        assert_eq!(snap.counter("cache.hit", &[("tool", "SP")]), Some(1));
        assert_eq!(svc.cache_stats().hit_ratio(), Some(0.5));
        // Fresh response decomposes into rate-limit wait + latency + overhead.
        let parts = snap.histogram_sum("service.rate_limit_wait_secs")
            + snap.histogram_sum("service.api_latency_secs")
            + snap.histogram_sum("service.overhead_secs");
        assert!(
            (parts - first.response_secs).abs() < 1e-6,
            "breakdown {parts} != response {}",
            first.response_secs
        );
        // The API-call stream flowed through into telemetry too.
        assert!(snap.counter_total("api.calls") > 0);
        assert_eq!(
            snap.counter_total("detector.classified"),
            first.outcome.counts.total()
        );
        let spans: Vec<_> = tel
            .events()
            .into_iter()
            .filter(|e| e.name == "service.request")
            .collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].attr("source"), Some("fresh"));
        assert_eq!(spans[1].attr("source"), Some("cache"));
    }

    #[test]
    fn request_in_builds_one_tree_per_request() {
        let (platform, t) = built(3_000);
        let tel = Telemetry::enabled();
        let mut svc = OnlineService::new(StatusPeople::new(), ServiceProfile::statuspeople(), 11)
            .with_telemetry(tel.clone());
        let parent = tel.root_context().child();
        svc.request_in(&platform, t.target, &parent).unwrap(); // fresh
        svc.request_in(&platform, t.target, &parent).unwrap(); // cached
        parent.record("server.service", 0.0, 100.0, &[]);
        let events = tel.events();
        let by_name = |n: &str| -> Vec<_> { events.iter().filter(|e| e.name == n).collect() };
        let sreqs = by_name("service.request");
        assert_eq!(sreqs.len(), 2);
        assert!(sreqs.iter().all(|e| e.parent == parent.span_id()));
        assert_eq!(sreqs[0].attr("source"), Some("fresh"));
        assert_eq!(sreqs[1].attr("source"), Some("cache"));
        // The lookup points sit under their service.request spans.
        let lookups = by_name("cache.lookup");
        assert_eq!(lookups.len(), 2);
        assert_eq!(lookups[0].attr("result"), Some("miss"));
        assert_eq!(lookups[1].attr("result"), Some("hit"));
        assert!(lookups.iter().zip(&sreqs).all(|(l, s)| l.parent == s.id));
        // The audit subtree: detector.audit under the fresh request,
        // api.call spans under the audit.
        let audit = by_name("detector.audit");
        assert_eq!(audit.len(), 1);
        assert_eq!(audit[0].parent, sreqs[0].id);
        let calls = by_name("api.call");
        assert!(!calls.is_empty());
        assert!(calls.iter().all(|c| c.parent == audit[0].id));
    }

    #[test]
    fn plain_requests_root_their_own_trees() {
        let (platform, t) = built(2_000);
        let tel = Telemetry::enabled();
        let mut svc = OnlineService::new(StatusPeople::new(), ServiceProfile::statuspeople(), 13)
            .with_telemetry(tel.clone());
        svc.request(&platform, t.target).unwrap();
        let events = tel.events();
        let sreq = events.iter().find(|e| e.name == "service.request").unwrap();
        assert!(sreq.id.is_some());
        assert_eq!(sreq.parent, None, "root context roots the tree");
    }

    #[test]
    fn telemetry_counts_quota_rejections() {
        let (platform, t) = built(2_500);
        let tel = Telemetry::enabled();
        let mut svc = OnlineService::new(Socialbakers::new(), ServiceProfile::socialbakers(), 12)
            .with_telemetry(tel.clone());
        for _ in 0..10 {
            svc.request(&platform, t.target).unwrap();
        }
        svc.request(&platform, t.target).unwrap_err();
        let snap = tel.snapshot();
        assert_eq!(snap.counter("quota.rejected", &[("tool", "SB")]), Some(1));
    }

    #[test]
    fn disabled_telemetry_matches_instrumented_run() {
        let (platform, t) = built(2_000);
        let run = |tel: Telemetry| {
            let mut svc =
                OnlineService::new(StatusPeople::new(), ServiceProfile::statuspeople(), 9)
                    .with_telemetry(tel);
            svc.request(&platform, t.target).unwrap().response_secs
        };
        assert_eq!(run(Telemetry::disabled()), run(Telemetry::enabled()));
    }

    #[test]
    fn responses_are_deterministic_per_seed() {
        let (platform, t) = built(2_000);
        let run = |seed| {
            let mut svc =
                OnlineService::new(StatusPeople::new(), ServiceProfile::statuspeople(), seed);
            svc.request(&platform, t.target).unwrap().response_secs
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
