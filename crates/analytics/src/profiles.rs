//! Calibrated per-tool service profiles.
//!
//! Each profile fixes the tool's API resources (token pool, HTTP
//! parallelism, per-call latency) and site overhead so that its *first*
//! response time lands in the band Table II reports, given the tool's call
//! schedule:
//!
//! | tool | call schedule (F followers) | Table II band |
//! |------|------------------------------|---------------|
//! | FC   | ⌈F/5000⌉ + ⌈9604/100⌉ calls   | 187–217 s     |
//! | TA   | 1 + ⌈5000/100⌉ = 51 calls     | 40–55 s       |
//! | SP   | ⌈min(F,35K)/5000⌉ + 7 calls   | 22–32 s       |
//! | SB   | 1 + ⌈2000/100⌉ = 21 calls     | 7–13 s        |
//!
//! FC's ~190 s at 100 calls implies ≈1.8 s per sequential call; its 16
//! `followers/ids` pages at 79.7 K followers exceed the single-token window
//! quota of 15, so FC runs two tokens (as the authors' crawler did). SB's
//! ~10 s for 21 calls implies ~4 concurrent HTTP requests; TA's ~47 s for
//! 51 calls implies 2.

use crate::cache::ResultCache;
use crate::quota::DailyQuota;
use fakeaudit_twitter_api::ApiConfig;
use fakeaudit_twittersim::SimDuration;
use serde::{Deserialize, Serialize};

/// How an analytics web service behaves around its detector engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceProfile {
    /// API session resources for fresh audits.
    pub api: ApiConfig,
    /// Fixed site overhead added to fresh responses (report rendering,
    /// queueing), in seconds.
    pub overhead_secs: f64,
    /// Uniform jitter added to the overhead, in seconds.
    pub overhead_jitter: f64,
    /// Base latency of a cache-served response, in seconds.
    pub cached_base_secs: f64,
    /// Uniform jitter on cache-served responses, in seconds.
    pub cached_jitter: f64,
    /// Result-cache TTL; `None` = results never expire.
    pub cache_ttl_days: Option<u64>,
    /// Daily request quota, if the service imposes one.
    pub daily_quota: Option<u32>,
}

impl ServiceProfile {
    /// The Fake Project service: two API tokens, sequential calls,
    /// ~1.8 s/call, modest overhead, 7-day cache.
    pub fn fake_classifier() -> Self {
        Self {
            api: ApiConfig {
                token_pool: 2,
                parallelism: 1,
                base_latency: 1.65,
                latency_jitter: 0.4,
                seed: 0,
            },
            overhead_secs: 4.0,
            overhead_jitter: 2.0,
            cached_base_secs: 2.0,
            cached_jitter: 2.0,
            cache_ttl_days: Some(7),
            daily_quota: None,
        }
    }

    /// Twitteraudit: two concurrent requests, permanent cache (the site
    /// reports months-old assessment dates).
    pub fn twitteraudit() -> Self {
        Self {
            api: ApiConfig {
                token_pool: 1,
                parallelism: 2,
                base_latency: 1.55,
                latency_jitter: 0.4,
                seed: 0,
            },
            overhead_secs: 3.0,
            overhead_jitter: 2.0,
            cached_base_secs: 2.0,
            cached_jitter: 1.5,
            cache_ttl_days: None,
            daily_quota: None,
        }
    }

    /// StatusPeople Fakers: sequential calls over a small schedule,
    /// 30-day cache.
    pub fn statuspeople() -> Self {
        Self {
            api: ApiConfig {
                token_pool: 1,
                parallelism: 1,
                base_latency: 1.55,
                latency_jitter: 0.5,
                seed: 0,
            },
            overhead_secs: 4.0,
            overhead_jitter: 2.0,
            cached_base_secs: 2.0,
            cached_jitter: 1.0,
            cache_ttl_days: Some(30),
            daily_quota: None,
        }
    }

    /// Socialbakers Fake Follower Check: four concurrent requests backed by
    /// their monitoring index, ten requests per day, 30-day cache.
    pub fn socialbakers() -> Self {
        Self {
            api: ApiConfig {
                token_pool: 1,
                parallelism: 4,
                base_latency: 1.7,
                latency_jitter: 0.5,
                seed: 0,
            },
            overhead_secs: 1.5,
            overhead_jitter: 1.5,
            cached_base_secs: 2.0,
            cached_jitter: 1.5,
            cache_ttl_days: Some(30),
            daily_quota: Some(10),
        }
    }

    /// Builds the result cache this profile prescribes.
    pub fn build_cache(&self) -> ResultCache {
        match self.cache_ttl_days {
            Some(days) => ResultCache::with_ttl(SimDuration::from_days(days)),
            None => ResultCache::unbounded(),
        }
    }

    /// Builds the daily quota this profile prescribes, if any.
    pub fn build_quota(&self) -> Option<DailyQuota> {
        self.daily_quota.map(DailyQuota::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fc_runs_two_tokens() {
        assert_eq!(ServiceProfile::fake_classifier().api.token_pool, 2);
    }

    #[test]
    fn sb_has_daily_quota_of_ten() {
        let p = ServiceProfile::socialbakers();
        assert_eq!(p.daily_quota, Some(10));
        assert_eq!(p.build_quota().unwrap().limit(), 10);
    }

    #[test]
    fn ta_cache_is_unbounded() {
        let p = ServiceProfile::twitteraudit();
        assert_eq!(p.cache_ttl_days, None);
        assert_eq!(p.build_cache().ttl(), None);
    }

    #[test]
    fn sp_cache_has_ttl() {
        let p = ServiceProfile::statuspeople();
        assert_eq!(p.build_cache().ttl(), Some(SimDuration::from_days(30)));
    }

    #[test]
    fn first_response_bands_from_call_schedules() {
        // Sanity-check the calibration arithmetic against Table II bands
        // using mean latencies (jitter midpoint).
        let mean = |api: &ApiConfig| {
            (api.base_latency + api.latency_jitter / 2.0) / f64::from(api.parallelism)
        };
        let fc = ServiceProfile::fake_classifier();
        let fc_time = |pages: f64| (pages + 97.0) * mean(&fc.api) + fc.overhead_secs + 1.0;
        assert!((180.0..200.0).contains(&fc_time(3.0)), "{}", fc_time(3.0));
        assert!((200.0..225.0).contains(&fc_time(16.0)), "{}", fc_time(16.0));

        let ta = ServiceProfile::twitteraudit();
        let ta_time = 51.0 * mean(&ta.api) + ta.overhead_secs + 1.0;
        assert!((40.0..56.0).contains(&ta_time), "{ta_time}");

        let sp = ServiceProfile::statuspeople();
        let sp_low = 10.0 * mean(&sp.api) + sp.overhead_secs + 1.0;
        let sp_high = 14.0 * mean(&sp.api) + sp.overhead_secs + 1.0;
        assert!((20.0..33.0).contains(&sp_low), "{sp_low}");
        assert!((20.0..33.0).contains(&sp_high), "{sp_high}");

        let sb = ServiceProfile::socialbakers();
        let sb_time = 21.0 * mean(&sb.api) + sb.overhead_secs + 0.75;
        assert!((7.0..14.0).contains(&sb_time), "{sb_time}");
    }
}
