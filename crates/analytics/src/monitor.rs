//! Follower-growth monitoring — the "sudden jump" detector.
//!
//! The paper opens with the 2012 Romney incident: "bloggers and Twitter
//! analysts noticed that the Twitter account of challenger Romney
//! experienced a sudden jump in the number of followers" (§I). What those
//! analysts ran was exactly this: a daily follower-count series plus a
//! burst detector. The monitor is also how a CRM platform like
//! Socialbakers amortises its data collection (§IV-C).

use fakeaudit_twittersim::{AccountId, Platform, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One daily observation of a target's follower count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GrowthSample {
    /// When the count was observed.
    pub at: SimTime,
    /// The (nominal) follower count.
    pub followers: u64,
}

/// A detected growth anomaly: day-over-day growth far above the trailing
/// baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GrowthBurst {
    /// When the burst was observed.
    pub at: SimTime,
    /// Followers gained since the previous sample.
    pub gained: u64,
    /// The trailing mean daily gain the burst is compared against.
    pub baseline: f64,
    /// `gained / max(baseline, 1)` — how many "normal days" arrived at
    /// once.
    pub factor: f64,
}

impl fmt::Display for GrowthBurst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "burst at {}: +{} followers ({:.1}x the {:.0}/day baseline)",
            self.at, self.gained, self.factor, self.baseline
        )
    }
}

/// A follower-count monitor for one target.
///
/// Record one sample per observation period (the paper's methodology used
/// daily snapshots); [`AccountMonitor::bursts`] then flags the jumps.
///
/// ```
/// use fakeaudit_analytics::monitor::AccountMonitor;
/// use fakeaudit_twittersim::timeline::TimelineModel;
/// use fakeaudit_twittersim::{Platform, Profile, SimDuration, SimTime};
///
/// let mut platform = Platform::new();
/// let target = platform.register(
///     Profile::new("watched", SimTime::EPOCH),
///     TimelineModel::empty(),
/// )?;
/// let mut monitor = AccountMonitor::new(target, 5.0, 1);
/// for _ in 0..3 {
///     monitor.observe(&platform);
///     platform.advance_clock(SimDuration::from_days(1));
/// }
/// assert_eq!(monitor.samples().len(), 3);
/// assert!(monitor.bursts().is_empty(), "no growth, no bursts");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccountMonitor {
    target: AccountId,
    samples: Vec<GrowthSample>,
    /// Gains at least this multiple of the trailing baseline are bursts.
    burst_factor: f64,
    /// Minimum absolute gain to consider (ignore noise on tiny accounts).
    min_gain: u64,
}

impl AccountMonitor {
    /// Creates a monitor for `target` flagging gains of at least
    /// `burst_factor`× the trailing baseline and at least `min_gain`
    /// followers.
    ///
    /// # Panics
    ///
    /// Panics unless `burst_factor > 1`.
    pub fn new(target: AccountId, burst_factor: f64, min_gain: u64) -> Self {
        assert!(burst_factor > 1.0, "burst factor must exceed 1");
        Self {
            target,
            samples: Vec::new(),
            burst_factor,
            min_gain,
        }
    }

    /// The monitored target.
    pub fn target(&self) -> AccountId {
        self.target
    }

    /// Records the target's current follower count from the platform.
    ///
    /// Returns `false` (recording nothing) if the target is unknown.
    pub fn observe(&mut self, platform: &Platform) -> bool {
        let Some(profile) = platform.profile(self.target) else {
            return false;
        };
        self.samples.push(GrowthSample {
            at: platform.now(),
            followers: profile.followers_count,
        });
        true
    }

    /// The recorded series.
    pub fn samples(&self) -> &[GrowthSample] {
        &self.samples
    }

    /// Detected bursts, oldest first. The baseline for each step is the
    /// mean gain over the preceding steps (at least one step of history is
    /// required, so the earliest possible burst is at the third sample).
    pub fn bursts(&self) -> Vec<GrowthBurst> {
        let mut out = Vec::new();
        if self.samples.len() < 3 {
            return out;
        }
        let gains: Vec<u64> = self
            .samples
            .windows(2)
            .map(|w| w[1].followers.saturating_sub(w[0].followers))
            .collect();
        for (i, &gained) in gains.iter().enumerate().skip(1) {
            let history = &gains[..i];
            let baseline = history.iter().sum::<u64>() as f64 / history.len() as f64;
            let factor = gained as f64 / baseline.max(1.0);
            if gained >= self.min_gain && factor >= self.burst_factor {
                out.push(GrowthBurst {
                    at: self.samples[i + 1].at,
                    gained,
                    baseline,
                    factor,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fakeaudit_population::archetype::{self, TrueClass};
    use fakeaudit_population::scenario::grow_organic_daily;
    use fakeaudit_population::{ClassMix, TargetScenario};
    use fakeaudit_stats::rng::rng_for_indexed;
    use fakeaudit_twittersim::SimDuration;

    #[test]
    fn steady_growth_raises_no_bursts() {
        let mut platform = Platform::new();
        let built = TargetScenario::new("steady", 500, ClassMix::all_genuine())
            .build(&mut platform, 1)
            .unwrap();
        let mut monitor = AccountMonitor::new(built.target, 5.0, 50);
        monitor.observe(&platform);
        for _ in 0..6 {
            grow_organic_daily(&mut platform, built.target, 1, 20, 2).unwrap();
            monitor.observe(&platform);
        }
        assert_eq!(monitor.samples().len(), 7);
        assert!(monitor.bursts().is_empty(), "{:?}", monitor.bursts());
    }

    #[test]
    fn bought_batch_is_flagged() {
        let mut platform = Platform::new();
        let built = TargetScenario::new("romney", 2_000, ClassMix::all_genuine())
            .build(&mut platform, 3)
            .unwrap();
        let mut monitor = AccountMonitor::new(built.target, 5.0, 100);
        monitor.observe(&platform);
        // Three quiet days, then the purchase, then quiet again.
        for day in 0..5 {
            grow_organic_daily(&mut platform, built.target, 1, 15, 4).unwrap();
            if day == 3 {
                for i in 0..800u64 {
                    let mut rng = rng_for_indexed(5, "romney-bought", i);
                    let now = platform.now();
                    let mut acc = archetype::generate(
                        &mut rng,
                        TrueClass::Fake,
                        format!("romney_bought_{i}"),
                        now,
                    );
                    if acc.profile.created_at > now {
                        acc.profile.created_at = now;
                    }
                    let id = platform.register(acc.profile, acc.timeline).unwrap();
                    platform.follow(id, built.target).unwrap();
                }
            }
            monitor.observe(&platform);
        }
        let bursts = monitor.bursts();
        assert_eq!(bursts.len(), 1, "{bursts:?}");
        assert!(bursts[0].gained >= 800);
        assert!(bursts[0].factor > 5.0);
        assert!(bursts[0].to_string().contains("burst at"));
    }

    #[test]
    fn too_few_samples_yield_nothing() {
        let mut platform = Platform::new();
        let built = TargetScenario::new("short", 100, ClassMix::all_genuine())
            .build(&mut platform, 6)
            .unwrap();
        let mut monitor = AccountMonitor::new(built.target, 3.0, 1);
        monitor.observe(&platform);
        platform.advance_clock(SimDuration::from_days(1));
        monitor.observe(&platform);
        assert!(monitor.bursts().is_empty());
    }

    #[test]
    fn min_gain_filters_small_accounts() {
        let mut platform = Platform::new();
        let built = TargetScenario::new("tiny", 50, ClassMix::all_genuine())
            .build(&mut platform, 7)
            .unwrap();
        let mut monitor = AccountMonitor::new(built.target, 2.0, 1_000);
        monitor.observe(&platform);
        for _ in 0..4 {
            grow_organic_daily(&mut platform, built.target, 1, 30, 8).unwrap();
            monitor.observe(&platform);
        }
        // 30/day jumps relative to tiny baselines, but below min_gain.
        assert!(monitor.bursts().is_empty());
    }

    #[test]
    fn unknown_target_records_nothing() {
        let platform = Platform::new();
        let mut monitor = AccountMonitor::new(AccountId(404), 5.0, 1);
        assert!(!monitor.observe(&platform));
        assert!(monitor.samples().is_empty());
    }

    #[test]
    #[should_panic(expected = "burst factor must exceed 1")]
    fn rejects_degenerate_factor() {
        AccountMonitor::new(AccountId(1), 1.0, 1);
    }
}
