//! Daily request quotas.
//!
//! Socialbakers' Fake Follower Check "can be used ten times a day" (§II-B).

use fakeaudit_twittersim::SimTime;
use std::fmt;

/// Error returned when the daily quota is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaExceeded {
    /// The quota that applies.
    pub limit: u32,
    /// The simulated day of the rejected request.
    pub day: i64,
}

impl fmt::Display for QuotaExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "daily quota of {} requests exhausted (day {})",
            self.limit, self.day
        )
    }
}

impl std::error::Error for QuotaExceeded {}

/// A per-calendar-day request counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DailyQuota {
    limit: u32,
    day: i64,
    used: u32,
}

impl DailyQuota {
    /// Creates a quota of `limit` requests per simulated day.
    ///
    /// # Panics
    ///
    /// Panics if `limit == 0`.
    pub fn new(limit: u32) -> Self {
        assert!(limit > 0, "quota limit must be positive");
        Self {
            limit,
            day: i64::MIN,
            used: 0,
        }
    }

    /// The configured limit.
    pub fn limit(&self) -> u32 {
        self.limit
    }

    /// Requests still available on the day containing `now`.
    pub fn remaining(&self, now: SimTime) -> u32 {
        if now.as_days() == self.day {
            self.limit - self.used
        } else {
            self.limit
        }
    }

    /// Consumes one request at `now`.
    ///
    /// # Errors
    ///
    /// [`QuotaExceeded`] when the day's allowance is used up.
    pub fn consume(&mut self, now: SimTime) -> Result<(), QuotaExceeded> {
        let day = now.as_days();
        if day != self.day {
            self.day = day;
            self.used = 0;
        }
        if self.used >= self.limit {
            return Err(QuotaExceeded {
                limit: self.limit,
                day,
            });
        }
        self.used += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fakeaudit_twittersim::SimDuration;

    #[test]
    fn allows_up_to_limit() {
        let mut q = DailyQuota::new(10);
        let now = SimTime::from_days(5);
        for _ in 0..10 {
            q.consume(now).unwrap();
        }
        let err = q.consume(now).unwrap_err();
        assert_eq!(err.limit, 10);
        assert_eq!(err.day, 5);
        assert_eq!(q.remaining(now), 0);
    }

    #[test]
    fn resets_at_midnight() {
        let mut q = DailyQuota::new(2);
        let day5 = SimTime::from_days(5) + SimDuration::from_secs(80_000);
        q.consume(day5).unwrap();
        q.consume(day5).unwrap();
        assert!(q.consume(day5).is_err());
        let day6 = SimTime::from_days(6);
        assert_eq!(q.remaining(day6), 2);
        q.consume(day6).unwrap();
    }

    #[test]
    fn remaining_before_first_use() {
        let q = DailyQuota::new(7);
        assert_eq!(q.remaining(SimTime::from_days(1)), 7);
    }

    #[test]
    #[should_panic(expected = "quota limit must be positive")]
    fn zero_limit_panics() {
        DailyQuota::new(0);
    }

    #[test]
    fn error_display() {
        let e = QuotaExceeded { limit: 10, day: 3 };
        assert!(e.to_string().contains("10"));
    }
}
