//! Per-tool circuit breaker over the fresh-audit path.
//!
//! When the upstream API turns unreliable, every fresh audit burns a full
//! retry budget before failing — a retry storm that helps nobody. The
//! breaker watches a rolling window of fresh-audit outcomes and, once the
//! failure fraction trips the threshold, *opens*: fresh audits stop for a
//! cooldown and the service answers from its stale cache instead
//! (degrade-to-stale, the same fallback the E8 overload path measures).
//! After the cooldown one probe request is let through (*half-open*); its
//! success re-closes the circuit, its failure re-opens it.
//!
//! Everything runs on the sim clock and is fully deterministic: state
//! transitions are pure functions of the outcome sequence and the
//! configured thresholds — no wall-clock, no randomness.

use std::collections::VecDeque;
use std::fmt;

/// Tuning for a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Rolling window of fresh-audit outcomes the failure fraction is
    /// computed over.
    pub window: usize,
    /// Failure fraction (within the window) at which the breaker opens.
    pub failure_threshold: f64,
    /// Outcomes required in the window before the breaker may trip.
    pub min_samples: usize,
    /// Sim-clock seconds the breaker stays open before probing.
    pub open_secs: f64,
    /// Consecutive half-open probe successes required to re-close.
    pub half_open_probes: u32,
}

impl BreakerConfig {
    /// A production-shaped default: trip at 50 % failures over the last
    /// 8 fresh audits (at least 4 seen), cool down 120 s, one successful
    /// probe re-closes.
    pub fn standard() -> BreakerConfig {
        BreakerConfig {
            window: 8,
            failure_threshold: 0.5,
            min_samples: 4,
            open_secs: 120.0,
            half_open_probes: 1,
        }
    }

    /// Panics on a degenerate configuration (empty window, threshold
    /// outside (0, 1], non-positive cooldown, zero probes).
    pub fn validate(&self) {
        assert!(self.window >= 1, "window must be >= 1");
        assert!(
            self.failure_threshold > 0.0 && self.failure_threshold <= 1.0,
            "failure_threshold must be in (0, 1]"
        );
        assert!(
            self.min_samples >= 1 && self.min_samples <= self.window,
            "min_samples must be in [1, window]"
        );
        assert!(
            self.open_secs > 0.0 && self.open_secs.is_finite(),
            "open_secs must be positive"
        );
        assert!(self.half_open_probes >= 1, "half_open_probes must be >= 1");
    }
}

/// The breaker's position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation: fresh audits flow, outcomes feed the window.
    Closed,
    /// Tripped: fresh audits are refused until the cooldown elapses.
    Open,
    /// Cooldown elapsed: probe traffic is let through to test recovery.
    HalfOpen,
}

impl BreakerState {
    /// Label for trace attributes and reports.
    pub fn key(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// One state change, reported back so the service can trace it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerTransition {
    /// State left.
    pub from: BreakerState,
    /// State entered.
    pub to: BreakerState,
    /// Sim-clock seconds of the transition.
    pub at_secs: f64,
}

/// A closed/open/half-open circuit breaker over a rolling failure window,
/// driven entirely by the sim clock.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Rolling outcome window; `true` records a failure.
    window: VecDeque<bool>,
    /// When the current open period started (valid while `Open`).
    opened_at: f64,
    /// When the current open period may probe (valid while `Open`).
    open_until: f64,
    /// Open seconds accumulated by *finished* open periods.
    open_accum: f64,
    /// Successful probes seen in the current half-open period.
    probes_ok: u32,
    /// Total state transitions.
    transitions: u64,
    /// Times the breaker tripped open.
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`BreakerConfig`].
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        cfg.validate();
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            window: VecDeque::new(),
            opened_at: 0.0,
            open_until: 0.0,
            open_accum: 0.0,
            probes_ok: 0,
            transitions: 0,
            trips: 0,
        }
    }

    /// The current state (as last observed; an elapsed cooldown only
    /// becomes visible through [`CircuitBreaker::allow`]).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// The tuning this breaker runs with.
    pub fn config(&self) -> &BreakerConfig {
        &self.cfg
    }

    /// Times the breaker tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Total state transitions.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Total sim seconds spent open, including the current open period
    /// up to `now`.
    pub fn open_secs_total(&self, now: f64) -> f64 {
        let current = match self.state {
            BreakerState::Open => (now - self.opened_at).max(0.0),
            _ => 0.0,
        };
        self.open_accum + current
    }

    /// Seconds of cooldown left at `now` before an open breaker probes
    /// again; `0.0` unless open.
    pub fn open_remaining(&self, now: f64) -> f64 {
        match self.state {
            BreakerState::Open => (self.open_until - now).max(0.0),
            _ => 0.0,
        }
    }

    /// Whether a fresh upstream call may proceed at sim-time `now`. While
    /// open this refuses until the cooldown elapses, then transitions to
    /// half-open and admits probe traffic; the transition (if any) is
    /// returned for tracing.
    pub fn allow(&mut self, now: f64) -> (bool, Option<BreakerTransition>) {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => (true, None),
            BreakerState::Open => {
                if now >= self.open_until {
                    let t = self.transition(BreakerState::HalfOpen, now);
                    self.probes_ok = 0;
                    (true, Some(t))
                } else {
                    (false, None)
                }
            }
        }
    }

    /// Records a successful fresh audit finishing at `now`.
    pub fn on_success(&mut self, now: f64) -> Option<BreakerTransition> {
        match self.state {
            BreakerState::Closed => {
                self.record(false);
                None
            }
            BreakerState::HalfOpen => {
                self.probes_ok += 1;
                if self.probes_ok >= self.cfg.half_open_probes {
                    self.window.clear();
                    Some(self.transition(BreakerState::Closed, now))
                } else {
                    None
                }
            }
            // A straggler finishing after the breaker opened: ignore.
            BreakerState::Open => None,
        }
    }

    /// Records a failed fresh audit finishing at `now`. Only *retryable*
    /// failures — upstream unreliability — should be fed here; caller
    /// mistakes say nothing about the circuit's health.
    pub fn on_failure(&mut self, now: f64) -> Option<BreakerTransition> {
        match self.state {
            BreakerState::Closed => {
                self.record(true);
                let samples = self.window.len();
                let failures = self.window.iter().filter(|&&f| f).count();
                if samples >= self.cfg.min_samples
                    && failures as f64 / samples as f64 >= self.cfg.failure_threshold
                {
                    Some(self.trip(now))
                } else {
                    None
                }
            }
            // A failed probe re-opens immediately.
            BreakerState::HalfOpen => Some(self.trip(now)),
            BreakerState::Open => None,
        }
    }

    fn record(&mut self, failure: bool) {
        if self.window.len() == self.cfg.window {
            self.window.pop_front();
        }
        self.window.push_back(failure);
    }

    fn trip(&mut self, now: f64) -> BreakerTransition {
        let t = self.transition(BreakerState::Open, now);
        self.opened_at = now;
        self.open_until = now + self.cfg.open_secs;
        self.trips += 1;
        t
    }

    fn transition(&mut self, to: BreakerState, now: f64) -> BreakerTransition {
        if self.state == BreakerState::Open {
            self.open_accum += (now - self.opened_at).max(0.0);
        }
        let t = BreakerTransition {
            from: self.state,
            to,
            at_secs: now,
        };
        self.state = to;
        self.transitions += 1;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> BreakerConfig {
        BreakerConfig {
            window: 4,
            failure_threshold: 0.5,
            min_samples: 2,
            open_secs: 60.0,
            half_open_probes: 1,
        }
    }

    #[test]
    fn stays_closed_under_success() {
        let mut b = CircuitBreaker::new(quick_cfg());
        for i in 0..20 {
            assert!(b.allow(i as f64).0);
            assert_eq!(b.on_success(i as f64), None);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
        assert_eq!(b.open_secs_total(100.0), 0.0);
    }

    #[test]
    fn trips_at_threshold_and_refuses_while_open() {
        let mut b = CircuitBreaker::new(quick_cfg());
        assert_eq!(b.on_failure(1.0), None, "below min_samples");
        let t = b.on_failure(2.0).expect("2/2 failures >= 50%");
        assert_eq!(t.from, BreakerState::Closed);
        assert_eq!(t.to, BreakerState::Open);
        assert!(!b.allow(3.0).0);
        assert!(!b.allow(61.9).0, "cooldown runs from the trip");
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn half_open_probe_success_recloses() {
        let mut b = CircuitBreaker::new(quick_cfg());
        b.on_failure(0.0);
        b.on_failure(0.0).expect("tripped");
        let (ok, t) = b.allow(60.0);
        assert!(ok);
        assert_eq!(t.unwrap().to, BreakerState::HalfOpen);
        let t = b.on_success(61.0).expect("reclose");
        assert_eq!(t.to, BreakerState::Closed);
        // The old failures were flushed with the window.
        assert_eq!(b.on_failure(62.0), None);
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let mut b = CircuitBreaker::new(quick_cfg());
        b.on_failure(0.0);
        b.on_failure(0.0).expect("tripped");
        assert!(b.allow(60.0).0);
        let t = b.on_failure(65.0).expect("probe failed");
        assert_eq!(t.from, BreakerState::HalfOpen);
        assert_eq!(t.to, BreakerState::Open);
        assert!(!b.allow(100.0).0, "new cooldown from the re-trip");
        assert!(b.allow(125.0).0);
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn open_seconds_accumulate_across_periods() {
        let mut b = CircuitBreaker::new(quick_cfg());
        b.on_failure(0.0);
        b.on_failure(10.0).expect("tripped at t=10");
        assert_eq!(b.open_secs_total(40.0), 30.0);
        b.allow(70.0); // half-open at t=70: 60 open seconds banked
        assert_eq!(b.open_secs_total(90.0), 60.0);
        b.on_failure(90.0).expect("re-tripped at t=90");
        assert_eq!(b.open_secs_total(100.0), 70.0);
    }

    #[test]
    fn rolling_window_forgets_old_failures() {
        let cfg = BreakerConfig {
            window: 4,
            min_samples: 4,
            ..quick_cfg()
        };
        let mut b = CircuitBreaker::new(cfg);
        b.on_failure(0.0);
        for i in 0..10 {
            assert_eq!(b.on_success(i as f64), None);
        }
        // The early failure rolled out of the window long ago.
        assert_eq!(b.on_failure(11.0), None);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn never_allows_fresh_while_open() {
        // The breaker invariant the proptests pin: for any outcome
        // sequence, allow() is false whenever state is Open and the
        // cooldown has not elapsed.
        let mut b = CircuitBreaker::new(quick_cfg());
        let mut now = 0.0;
        for i in 0..400u32 {
            now += 0.5 + f64::from(i % 7);
            let (ok, _) = b.allow(now);
            if b.state() == BreakerState::Open {
                assert!(!ok);
                continue;
            }
            if !ok {
                continue;
            }
            if i % 3 == 0 {
                b.on_failure(now);
            } else {
                b.on_success(now);
            }
        }
    }

    #[test]
    #[should_panic(expected = "failure_threshold must be in (0, 1]")]
    fn rejects_bad_threshold() {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 0.0,
            ..BreakerConfig::standard()
        });
    }
}
