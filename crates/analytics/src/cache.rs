//! Result caches.
//!
//! §IV-C: "for the subsequent requests of analysis on the same accounts,
//! all the tools output the results in less than 5 seconds" — every tool
//! caches. Three StatusPeople rows and one Twitteraudit row of Table II
//! were *already* cached at the first request (2–3 s responses); the cache
//! supports pre-warming to reproduce that.

use fakeaudit_detectors::AuditOutcome;
use fakeaudit_twittersim::{AccountId, SimDuration, SimTime};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A cached audit result.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// The cached outcome.
    pub outcome: AuditOutcome,
    /// When the audit that produced it ran.
    pub assessed_at: SimTime,
}

/// Lifetime hit/miss statistics of a [`ResultCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served by a still-valid entry.
    pub hits: u64,
    /// Lookups that found nothing (or only an expired entry).
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`, or `None` before any lookup.
    pub fn hit_ratio(&self) -> Option<f64> {
        (self.lookups() > 0).then(|| self.hits as f64 / self.lookups() as f64)
    }
}

/// A per-target result cache with an optional TTL (`None` = results never
/// expire, as Twitteraudit's months-old reports demonstrate).
#[derive(Debug, Default)]
pub struct ResultCache {
    ttl: Option<SimDuration>,
    entries: HashMap<AccountId, CacheEntry>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Clone for ResultCache {
    fn clone(&self) -> Self {
        Self {
            ttl: self.ttl,
            entries: self.entries.clone(),
            hits: AtomicU64::new(self.hits.load(Ordering::Relaxed)),
            misses: AtomicU64::new(self.misses.load(Ordering::Relaxed)),
        }
    }
}

impl ResultCache {
    /// A cache whose entries never expire.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// A cache whose entries expire `ttl` after assessment.
    pub fn with_ttl(ttl: SimDuration) -> Self {
        Self {
            ttl: Some(ttl),
            ..Self::default()
        }
    }

    /// The configured TTL.
    pub fn ttl(&self) -> Option<SimDuration> {
        self.ttl
    }

    /// Looks up a still-valid entry at time `now`, recording the lookup in
    /// the cache's [`CacheStats`] (an expired entry counts as a miss).
    ///
    /// A zero TTL means entries are *never* fresh: every lookup misses,
    /// but the entries stay [`ResultCache::peek`]-able — the store-only
    /// configuration the chaos experiment uses to force a cold audit per
    /// request while keeping a stale answer on hand.
    pub fn get(&self, target: AccountId, now: SimTime) -> Option<&CacheEntry> {
        let found = self.entries.get(&target).filter(|entry| match self.ttl {
            Some(ttl) => ttl > SimDuration::ZERO && now.abs_diff(entry.assessed_at) <= ttl,
            None => true,
        });
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Looks up an entry *ignoring* the TTL and without touching the
    /// [`CacheStats`] — the degrade-to-stale overload path: an expired
    /// report is still a report, and serving it beats shedding the request.
    pub fn peek(&self, target: AccountId) -> Option<&CacheEntry> {
        self.entries.get(&target)
    }

    /// Lifetime hit/miss statistics (lookups survive [`ResultCache::clear`]).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Stores an outcome assessed at `assessed_at`.
    pub fn put(&mut self, target: AccountId, outcome: AuditOutcome, assessed_at: SimTime) {
        self.entries.insert(
            target,
            CacheEntry {
                outcome,
                assessed_at,
            },
        );
    }

    /// Number of entries (including expired ones not yet evicted).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fakeaudit_detectors::VerdictCounts;

    fn outcome(target: AccountId) -> AuditOutcome {
        AuditOutcome {
            tool_name: "t".into(),
            target,
            assessed: vec![],
            counts: VerdictCounts::default(),
            audited_at: SimTime::EPOCH,
            api_elapsed_secs: 1.0,
            api_calls: 1,
        }
    }

    #[test]
    fn unbounded_cache_never_expires() {
        let mut c = ResultCache::unbounded();
        c.put(AccountId(1), outcome(AccountId(1)), SimTime::from_days(0));
        assert!(c.get(AccountId(1), SimTime::from_days(10_000)).is_some());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn ttl_expires_entries() {
        let mut c = ResultCache::with_ttl(SimDuration::from_days(7));
        c.put(AccountId(1), outcome(AccountId(1)), SimTime::from_days(0));
        assert!(c.get(AccountId(1), SimTime::from_days(6)).is_some());
        assert!(c.get(AccountId(1), SimTime::from_days(8)).is_none());
    }

    #[test]
    fn zero_ttl_is_store_only() {
        let mut c = ResultCache::with_ttl(SimDuration::ZERO);
        c.put(AccountId(1), outcome(AccountId(1)), SimTime::from_days(3));
        assert!(
            c.get(AccountId(1), SimTime::from_days(3)).is_none(),
            "zero TTL must miss even at the assessment instant"
        );
        assert!(c.peek(AccountId(1)).is_some(), "entry stays stale-servable");
    }

    #[test]
    fn miss_on_unknown_target() {
        let c = ResultCache::unbounded();
        assert!(c.get(AccountId(9), SimTime::EPOCH).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn peek_ignores_ttl_and_stats() {
        let mut c = ResultCache::with_ttl(SimDuration::from_days(7));
        c.put(AccountId(1), outcome(AccountId(1)), SimTime::from_days(0));
        assert!(c.get(AccountId(1), SimTime::from_days(30)).is_none());
        assert!(
            c.peek(AccountId(1)).is_some(),
            "stale entries stay peekable"
        );
        assert!(c.peek(AccountId(2)).is_none());
        assert_eq!(c.stats().lookups(), 1, "peek must not count as a lookup");
    }

    #[test]
    fn put_overwrites() {
        let mut c = ResultCache::unbounded();
        c.put(AccountId(1), outcome(AccountId(1)), SimTime::from_days(1));
        c.put(AccountId(1), outcome(AccountId(1)), SimTime::from_days(5));
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.get(AccountId(1), SimTime::from_days(5))
                .unwrap()
                .assessed_at,
            SimTime::from_days(5)
        );
    }

    #[test]
    fn clear_empties() {
        let mut c = ResultCache::unbounded();
        c.put(AccountId(1), outcome(AccountId(1)), SimTime::EPOCH);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = ResultCache::with_ttl(SimDuration::from_days(7));
        assert_eq!(c.stats(), CacheStats::default());
        assert_eq!(c.stats().hit_ratio(), None);
        c.get(AccountId(1), SimTime::EPOCH); // miss: empty
        c.put(AccountId(1), outcome(AccountId(1)), SimTime::from_days(0));
        c.get(AccountId(1), SimTime::from_days(1)); // hit
        c.get(AccountId(1), SimTime::from_days(2)); // hit
        c.get(AccountId(1), SimTime::from_days(30)); // miss: expired
        let stats = c.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.lookups(), 4);
        assert_eq!(stats.hit_ratio(), Some(0.5));
    }

    #[test]
    fn stats_survive_clone_and_clear() {
        let mut c = ResultCache::unbounded();
        c.put(AccountId(1), outcome(AccountId(1)), SimTime::EPOCH);
        c.get(AccountId(1), SimTime::EPOCH);
        let cloned = c.clone();
        assert_eq!(cloned.stats().hits, 1);
        c.clear();
        assert_eq!(c.stats().hits, 1, "stats are lifetime, not per-fill");
    }
}
