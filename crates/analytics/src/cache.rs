//! Result caches.
//!
//! §IV-C: "for the subsequent requests of analysis on the same accounts,
//! all the tools output the results in less than 5 seconds" — every tool
//! caches. Three StatusPeople rows and one Twitteraudit row of Table II
//! were *already* cached at the first request (2–3 s responses); the cache
//! supports pre-warming to reproduce that.

use fakeaudit_detectors::AuditOutcome;
use fakeaudit_twittersim::{AccountId, SimDuration, SimTime};
use std::collections::HashMap;

/// A cached audit result.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// The cached outcome.
    pub outcome: AuditOutcome,
    /// When the audit that produced it ran.
    pub assessed_at: SimTime,
}

/// A per-target result cache with an optional TTL (`None` = results never
/// expire, as Twitteraudit's months-old reports demonstrate).
#[derive(Debug, Clone, Default)]
pub struct ResultCache {
    ttl: Option<SimDuration>,
    entries: HashMap<AccountId, CacheEntry>,
}

impl ResultCache {
    /// A cache whose entries never expire.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// A cache whose entries expire `ttl` after assessment.
    pub fn with_ttl(ttl: SimDuration) -> Self {
        Self {
            ttl: Some(ttl),
            entries: HashMap::new(),
        }
    }

    /// The configured TTL.
    pub fn ttl(&self) -> Option<SimDuration> {
        self.ttl
    }

    /// Looks up a still-valid entry at time `now`.
    pub fn get(&self, target: AccountId, now: SimTime) -> Option<&CacheEntry> {
        let entry = self.entries.get(&target)?;
        match self.ttl {
            Some(ttl) if now.abs_diff(entry.assessed_at) > ttl => None,
            _ => Some(entry),
        }
    }

    /// Stores an outcome assessed at `assessed_at`.
    pub fn put(&mut self, target: AccountId, outcome: AuditOutcome, assessed_at: SimTime) {
        self.entries.insert(
            target,
            CacheEntry {
                outcome,
                assessed_at,
            },
        );
    }

    /// Number of entries (including expired ones not yet evicted).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fakeaudit_detectors::VerdictCounts;

    fn outcome(target: AccountId) -> AuditOutcome {
        AuditOutcome {
            tool_name: "t".into(),
            target,
            assessed: vec![],
            counts: VerdictCounts::default(),
            audited_at: SimTime::EPOCH,
            api_elapsed_secs: 1.0,
            api_calls: 1,
        }
    }

    #[test]
    fn unbounded_cache_never_expires() {
        let mut c = ResultCache::unbounded();
        c.put(AccountId(1), outcome(AccountId(1)), SimTime::from_days(0));
        assert!(c.get(AccountId(1), SimTime::from_days(10_000)).is_some());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn ttl_expires_entries() {
        let mut c = ResultCache::with_ttl(SimDuration::from_days(7));
        c.put(AccountId(1), outcome(AccountId(1)), SimTime::from_days(0));
        assert!(c.get(AccountId(1), SimTime::from_days(6)).is_some());
        assert!(c.get(AccountId(1), SimTime::from_days(8)).is_none());
    }

    #[test]
    fn miss_on_unknown_target() {
        let c = ResultCache::unbounded();
        assert!(c.get(AccountId(9), SimTime::EPOCH).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn put_overwrites() {
        let mut c = ResultCache::unbounded();
        c.put(AccountId(1), outcome(AccountId(1)), SimTime::from_days(1));
        c.put(AccountId(1), outcome(AccountId(1)), SimTime::from_days(5));
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.get(AccountId(1), SimTime::from_days(5))
                .unwrap()
                .assessed_at,
            SimTime::from_days(5)
        );
    }

    #[test]
    fn clear_empties() {
        let mut c = ResultCache::unbounded();
        c.put(AccountId(1), outcome(AccountId(1)), SimTime::EPOCH);
        c.clear();
        assert!(c.is_empty());
    }
}
