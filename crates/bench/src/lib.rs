//! Shared plumbing for the benchmark harness: a tiny CLI-argument parser
//! used by every table-regeneration binary, plus common fixtures for the
//! Criterion benches.
//!
//! Binaries (one per table/experiment of the paper — see DESIGN.md §5):
//!
//! | binary | regenerates |
//! |--------|-------------|
//! | `table1` | Table I (API limits) |
//! | `table2` | Table II (response times) |
//! | `table3` | Table III (analysis results + ground-truth scoring) |
//! | `exp_ordering` | §IV-B follower-ordering experiment (E1) |
//! | `exp_bias` | §II-D sampling-bias example (E2) |
//! | `exp_crawl_budget` | §IV-B crawl budgets (E3) |
//! | `exp_fc_training` | §III FC construction (E4) |
//! | `exp_disagreement` | §IV-D disagreement analysis (E5) |
//! | `exp_ablation_sampling` | sampling ablation (A1) |
//! | `exp_service_load` | service under offered load (E8) |
//! | `exp_latency_attribution` | latency attribution under load (E9) |
//! | `exp_http_load` | wall-clock gateway bench (E11) |
//! | `exp_detect_time` | fault-burst detection time (E14) |
//!
//! All binaries accept `--quick` (reduced scale) and `--seed <n>`.
//!
//! [`ledger`] holds the bench ledger: the committed
//! `results/ledger.jsonl` history of headline numbers and the
//! regression comparator behind `fakeaudit bench record|compare`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ledger;

use fakeaudit_core::experiments::Scale;
use fakeaudit_population::{BuiltTarget, ClassMix, TargetScenario};
use fakeaudit_twittersim::Platform;

/// Parsed command-line options shared by every experiment binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOptions {
    /// Experiment scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Audit-history store directory (`--persist DIR`); experiments that
    /// support it append every completed audit there.
    pub persist: Option<String>,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            scale: Scale::full(),
            seed: 2014, // the paper's year
            persist: None,
        }
    }
}

/// Parses `--quick`, `--seed <n>` and `--persist <dir>` from arbitrary
/// argument iterators.
///
/// Unknown arguments are rejected with an error message so typos do not
/// silently run the wrong configuration.
///
/// # Errors
///
/// Returns a human-readable message on unknown flags or malformed seeds.
///
/// ```
/// use fakeaudit_bench::{parse_args, RunOptions};
/// let opts = parse_args(["--quick", "--seed", "7"].iter().map(|s| s.to_string()))?;
/// assert_eq!(opts.seed, 7);
/// assert_ne!(opts.scale, RunOptions::default().scale);
/// # Ok::<(), String>(())
/// ```
pub fn parse_args<I: Iterator<Item = String>>(mut args: I) -> Result<RunOptions, String> {
    let mut opts = RunOptions::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.scale = Scale::quick(),
            "--seed" => {
                let v = args
                    .next()
                    .ok_or_else(|| "--seed needs a value".to_string())?;
                opts.seed = v.parse().map_err(|e| format!("invalid seed {v:?}: {e}"))?;
            }
            "--persist" => {
                opts.persist = Some(
                    args.next()
                        .ok_or_else(|| "--persist needs a directory".to_string())?,
                );
            }
            other => {
                return Err(format!(
                    "unknown argument {other:?} (try --quick, --seed N, --persist DIR)"
                ))
            }
        }
    }
    Ok(opts)
}

/// Parses the process's own arguments, exiting with a usage message on
/// error — the entry point every binary calls first.
pub fn options_from_env() -> RunOptions {
    match parse_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

/// Builds the standard bench fixture: a mid-size target with a purchased
/// burst, the shape most benches exercise.
pub fn bench_target(followers: usize, seed: u64) -> (Platform, BuiltTarget) {
    let mut platform = Platform::new();
    let target = TargetScenario::new("bench_target", followers, standard_mix())
        .fake_recency_bias(15.0)
        .build(&mut platform, seed)
        .expect("bench scenario builds");
    (platform, target)
}

/// The ground-truth mix the bench fixture uses.
pub fn standard_mix() -> ClassMix {
    ClassMix::new(0.30, 0.15, 0.55).expect("valid mix")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args<'a>(v: &'a [&'a str]) -> impl Iterator<Item = String> + 'a {
        v.iter().map(|s| s.to_string())
    }

    #[test]
    fn defaults() {
        let o = parse_args(args(&[])).unwrap();
        assert_eq!(o, RunOptions::default());
        assert_eq!(o.seed, 2014);
        assert_eq!(o.scale, Scale::full());
    }

    #[test]
    fn quick_and_seed() {
        let o = parse_args(args(&["--quick", "--seed", "99"])).unwrap();
        assert_eq!(o.scale, Scale::quick());
        assert_eq!(o.seed, 99);
    }

    #[test]
    fn rejects_unknown_flag() {
        assert!(parse_args(args(&["--fast"])).is_err());
    }

    #[test]
    fn rejects_missing_seed_value() {
        assert!(parse_args(args(&["--seed"])).is_err());
    }

    #[test]
    fn rejects_bad_seed() {
        assert!(parse_args(args(&["--seed", "abc"])).is_err());
    }

    #[test]
    fn persist_takes_a_directory() {
        let o = parse_args(args(&["--persist", "history"])).unwrap();
        assert_eq!(o.persist.as_deref(), Some("history"));
        assert!(parse_args(args(&["--persist"])).is_err());
    }

    #[test]
    fn fixture_builds() {
        let (platform, target) = bench_target(500, 1);
        assert_eq!(platform.materialized_follower_count(target.target), 500);
    }
}
