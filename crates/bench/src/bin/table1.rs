//! Regenerates Table I: Twitter API types and limitations.

use fakeaudit_core::experiments::table1;

fn main() {
    println!("{}", table1::render());
}
