//! E11 — the gateway under wall-clock HTTP load.
//!
//! Boots the real `fakeaudit-gateway` listener on an ephemeral port over
//! the same prewarmed world as the E8 sweep, then drives it with the E8
//! workload shapes at wall speed:
//!
//! 1. `closed_loop` — keep-alive workers hammering back-to-back, the
//!    peak-throughput measurement;
//! 2. `poisson_open` — open-loop Poisson arrivals at a fixed rate, the
//!    steady-state latency measurement;
//! 3. `flash_crowd` — open-loop with an 8× burst, the overload/shedding
//!    measurement.
//!
//! Writes `results/BENCH_gateway.json` (schema in EXPERIMENTS.md, E11)
//! and prints a human table. Unlike the sim experiments these numbers
//! are *hardware-dependent* — the JSON is a trajectory artifact, not a
//! golden fixture, so it is uploaded from CI rather than committed.
//!
//! Usage: `exp_http_load [--quick] [--seed N] [--secs S] [--out PATH]
//! [--profile-out PATH] [--slo]` (`--quick` shrinks the world and halves
//! the open-loop windows; `--profile-out` writes the run's folded
//! self-time stacks in flamegraph-collapsed format; `--slo` arms the
//! PR-9 burn-rate monitor so the ledger can price its overhead — compare
//! a `--slo` run against a plain one with `fakeaudit bench compare`).
//!
//! Built with `--features alloc-profile`, the process heap routes
//! through the telemetry counting allocator and the JSON's `config`
//! gains `allocs_per_req` — the bench ledger then tracks allocation
//! regressions alongside latency ones.

use fakeaudit_analytics::BreakerConfig;
use fakeaudit_bench::{parse_args, RunOptions};
use fakeaudit_core::experiments::service_load::ServingWorld;
use fakeaudit_detectors::ToolId;
use fakeaudit_gateway::{
    render_bench_json, run_closed_loop, run_open_loop, Gateway, GatewayConfig, LoadSummary,
    ToolPool,
};
use fakeaudit_server::workload::{generate, ArrivalProcess, LoadSpec, Request};
use fakeaudit_server::{OverloadPolicy, ServerConfig};
use fakeaudit_stats::rng::derive_seed;
use fakeaudit_telemetry::{AllocScope, MonitorConfig, SelfTimeProfile, Telemetry, WallClock};
use std::sync::Arc;

// With the alloc-profile feature every heap operation of the whole
// process (gateway, workers and load generators alike) is counted; the
// per-request figure is therefore an upper bound on the serving path,
// deliberately — a regression anywhere in the process shows up.
#[cfg(feature = "alloc-profile")]
#[global_allocator]
static ALLOC: fakeaudit_telemetry::profile::CountingAllocator<std::alloc::System> =
    fakeaudit_telemetry::profile::CountingAllocator::new(std::alloc::System);

const TARGETS: usize = 4;
const WORKERS_PER_TOOL: usize = 2;
const QUEUE_CAPACITY: usize = 8;
/// One accept thread per load-generator connection: a keep-alive
/// connection occupies its accept thread for its whole lifetime, so a
/// sender pool larger than the accept pool would be *serialized* (later
/// connections starve until earlier ones close), not queued. Accept
/// threads park in blocking reads, so overcommitting the core count is
/// cheap; audit concurrency is still bounded by the worker pools.
const SENDERS: usize = 64;

struct HttpLoadOptions {
    run: RunOptions,
    secs: f64,
    out: String,
    profile_out: Option<String>,
    slo: bool,
}

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

/// Splits `--secs` / `--out` off and hands the rest to the shared
/// bench-arg parser.
fn options() -> HttpLoadOptions {
    let mut rest = Vec::new();
    let mut secs = None;
    let mut out = "results/BENCH_gateway.json".to_owned();
    let mut profile_out = None;
    let mut slo = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--secs" => match args.next().map(|v| v.parse::<f64>()) {
                Some(Ok(v)) if v > 0.0 => secs = Some(v),
                _ => fail("--secs needs a positive number"),
            },
            "--out" => match args.next() {
                Some(v) => out = v,
                None => fail("--out needs a path"),
            },
            "--profile-out" => match args.next() {
                Some(v) => profile_out = Some(v),
                None => fail("--profile-out needs a path"),
            },
            "--slo" => slo = true,
            _ => rest.push(arg),
        }
    }
    let run = match parse_args(rest.into_iter()) {
        Ok(opts) => opts,
        Err(msg) => fail(&format!(
            "{msg} (also: --secs S, --out PATH, --profile-out PATH, --slo)"
        )),
    };
    let quick = run.scale != fakeaudit_core::experiments::Scale::full();
    HttpLoadOptions {
        run,
        secs: secs.unwrap_or(if quick { 5.0 } else { 10.0 }),
        out,
        profile_out,
        slo,
    }
}

/// A fixed-size closed-loop work list cycling tools over Zipf targets.
fn closed_work(world: &ServingWorld, seed: u64, count: usize) -> Vec<Request> {
    // Reuse the workload generator for its Zipf target draw: a dense
    // Poisson schedule, then ignore the arrival times.
    let spec = LoadSpec {
        process: ArrivalProcess::Poisson { rate: 1.0 },
        duration_secs: count as f64,
        zipf_exponent: 1.1,
        tools: ToolId::ALL.to_vec(),
    };
    let mut work = generate(&spec, &world.targets, derive_seed(seed, "e11-closed"));
    work.truncate(count);
    work
}

fn print_row(s: &LoadSummary) {
    println!(
        "{:<13}{:>7}{:>9}{:>7}{:>8}{:>8}{:>11.1}{:>10.1}{:>10.1}{:>10.1}{:>8.1}%",
        s.name,
        s.offered,
        s.answered,
        s.shed,
        s.expired,
        s.errors,
        s.requests_per_sec(),
        s.latency_percentile(0.50) * 1e3,
        s.latency_percentile(0.95) * 1e3,
        s.latency_percentile(0.99) * 1e3,
        s.shed_rate() * 100.0,
    );
}

fn main() {
    let opts = options();
    let seed = opts.run.seed;
    eprintln!("building the prewarmed world ({TARGETS} targets) ...");
    let world = ServingWorld::build(opts.run.scale, seed, TARGETS);
    let telemetry = Telemetry::enabled();
    let pools: Vec<ToolPool> = ToolId::ALL
        .iter()
        .map(|&tool| {
            let mut backends = world.armed_backends(
                tool,
                WORKERS_PER_TOOL + 1,
                &telemetry,
                Some(BreakerConfig::standard()),
            );
            let stale = backends.pop().expect("workers + 1 clones");
            ToolPool {
                tool,
                workers: backends,
                stale,
            }
        })
        .collect();

    let config = GatewayConfig {
        accept_threads: SENDERS,
        server: ServerConfig {
            workers_per_tool: WORKERS_PER_TOOL,
            queue_capacity: QUEUE_CAPACITY,
            policy: OverloadPolicy::Shed,
            degraded_secs: 0.5,
            deadline_secs: None,
        },
        slo: opts.slo.then(|| MonitorConfig::wall_default(seed)),
        ..GatewayConfig::default()
    };
    let platform = Arc::new(world.platform.clone());
    let gateway = Gateway::bind(
        config,
        platform,
        pools,
        Arc::new(WallClock::new()),
        telemetry.clone(),
    )
    .expect("bind ephemeral port");
    let addr = gateway.local_addr();
    eprintln!("gateway listening on {addr}");

    let alloc_scope = AllocScope::start();

    // 1. Closed loop: peak sustainable throughput over keep-alive
    //    connections (offered load adapts to service rate).
    let work = closed_work(&world, seed, if opts.secs < 8.0 { 2_000 } else { 8_000 });
    eprintln!("closed loop: {} requests, 8 connections ...", work.len());
    let closed = run_closed_loop(addr, "closed_loop", &work, 8);

    // Rates for the open-loop scenarios sit relative to the measured
    // capacity so the poisson run stays below the knee and the flash
    // crowd bursts well past it, whatever this machine's speed.
    let capacity = closed.requests_per_sec().max(50.0);
    let poisson_rate = capacity * 0.5;
    let burst_base = capacity * 0.3;

    // 2. Open-loop Poisson below the knee.
    let spec = LoadSpec {
        process: ArrivalProcess::Poisson { rate: poisson_rate },
        duration_secs: opts.secs,
        zipf_exponent: 1.1,
        tools: ToolId::ALL.to_vec(),
    };
    let schedule = generate(&spec, &world.targets, derive_seed(seed, "e11-poisson"));
    eprintln!(
        "poisson open loop: {:.0} req/s for {:.0}s ({} arrivals) ...",
        poisson_rate,
        opts.secs,
        schedule.len()
    );
    let poisson = run_open_loop(addr, "poisson_open", &schedule, 1.0, SENDERS);

    // 3. Flash crowd: an 8x burst in the middle of the window.
    let spec = LoadSpec {
        process: ArrivalProcess::FlashCrowd {
            base_rate: burst_base,
            burst_start: opts.secs * 0.25,
            burst_secs: opts.secs * 0.10,
            burst_rate: burst_base * 8.0,
        },
        duration_secs: opts.secs,
        zipf_exponent: 1.1,
        tools: ToolId::ALL.to_vec(),
    };
    let schedule = generate(&spec, &world.targets, derive_seed(seed, "e11-flash"));
    eprintln!(
        "flash crowd: base {:.0} req/s, burst {:.0} req/s ({} arrivals) ...",
        burst_base,
        burst_base * 8.0,
        schedule.len()
    );
    let flash = run_open_loop(addr, "flash_crowd", &schedule, 1.0, SENDERS);

    let alloc_delta = alloc_scope.delta();
    let monitor_counts = gateway.monitor().map(|m| m.counts());
    let report = gateway.shutdown();
    let breaker_trips: u64 = telemetry
        .snapshot()
        .counters
        .iter()
        .filter(|(k, _)| {
            k.name == "breaker.transitions"
                && k.labels.iter().any(|(l, v)| l == "to" && v == "open")
        })
        .map(|&(_, v)| v)
        .sum();

    let scenarios = [closed, poisson, flash];
    println!(
        "E11: gateway under wall-clock HTTP load ({WORKERS_PER_TOOL} workers/tool, queue {QUEUE_CAPACITY}, policy shed)"
    );
    println!(
        "{:<13}{:>7}{:>9}{:>7}{:>8}{:>8}{:>11}{:>10}{:>10}{:>10}{:>9}",
        "scenario",
        "offered",
        "answered",
        "shed",
        "expired",
        "errors",
        "thru (r/s)",
        "p50 (ms)",
        "p95 (ms)",
        "p99 (ms)",
        "shed"
    );
    for s in &scenarios {
        print_row(s);
    }
    println!(
        "gateway totals: {} offered, {} completed, {} shed, {} breaker trips",
        report.offered(),
        report.completed(),
        report.shed(),
        breaker_trips
    );
    if let Some(c) = monitor_counts {
        println!(
            "SLO monitor: {} pending, {} fired, {} resolved, {} traces kept",
            c.pending,
            c.firing,
            c.resolved,
            c.traces_kept + c.traces_sampled
        );
    }

    let mut config = vec![
        ("seed", seed.to_string()),
        ("targets", TARGETS.to_string()),
        ("workers_per_tool", WORKERS_PER_TOOL.to_string()),
        ("queue_capacity", QUEUE_CAPACITY.to_string()),
        ("accept_threads", SENDERS.to_string()),
        ("open_loop_senders", SENDERS.to_string()),
        ("policy", "\"shed\"".to_owned()),
        ("open_loop_secs", format!("{:.1}", opts.secs)),
        ("slo", opts.slo.to_string()),
    ];
    let answered: u64 = scenarios.iter().map(|s| s.answered).sum();
    if fakeaudit_telemetry::profile::alloc_profiling_available() && answered > 0 {
        let allocs_per_req = alloc_delta.allocs as f64 / answered as f64;
        println!(
            "allocations: {} total ({} bytes), {:.1} allocs/answered request",
            alloc_delta.allocs, alloc_delta.bytes, allocs_per_req
        );
        config.push(("allocs_per_req", format!("{allocs_per_req:.1}")));
    }

    let json = render_bench_json(&config, breaker_trips, &scenarios);
    if let Some(parent) = std::path::Path::new(&opts.out).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    match std::fs::write(&opts.out, &json) {
        Ok(()) => println!("wrote {}", opts.out),
        Err(e) => {
            eprintln!("cannot write {}: {e}", opts.out);
            std::process::exit(1);
        }
    }

    if let Some(path) = &opts.profile_out {
        let profile = SelfTimeProfile::from_events(&telemetry.events());
        match std::fs::write(path, profile.folded()) {
            Ok(()) => println!(
                "wrote {path} ({} folded stacks, {} us self time)",
                profile.len(),
                profile.total_micros()
            ),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
