//! Regenerates the §IV-B follower-ordering experiment (E1).

use fakeaudit_bench::options_from_env;
use fakeaudit_core::experiments::ordering::{render, run_ordering, OrderingParams};

fn main() {
    let opts = options_from_env();
    let params = if opts.scale == fakeaudit_core::experiments::Scale::quick() {
        OrderingParams {
            initial_followers: 500,
            days: 10,
            arrivals_per_day: 15,
            unfollows_per_day: 2,
        }
    } else {
        OrderingParams::default()
    };
    println!("{}", render(&run_ordering(params, opts.seed)));
}
