//! Regenerates the cache-policy ablation (A2).

use fakeaudit_bench::options_from_env;
use fakeaudit_core::experiments::cache_ablation::{render, run_cache_ablation};

fn main() {
    let opts = options_from_env();
    println!("{}", render(&run_cache_ablation(opts.seed)));
}
