//! E15 — crash recovery under fault injection (`exp_crash_recovery`).
//!
//! Sweeps seeded crash points × fsync policies × crash modes over the
//! fault-injecting in-memory filesystem, plus a seeded-bit-flip
//! corruption arm, and scores rows acked vs recovered, acked rows
//! lost, WAL replays and quarantined segments (see
//! `experiments::crash_recovery`). Writes
//! `results/BENCH_recovery.json`.
//!
//! Like E14 this runs entirely off the wall clock — every fault is a
//! scripted op index — so same seed ⇒ byte-identical JSON on any
//! machine and the artifact doubles as a regression fixture for the
//! store's durability floors: the run aborts (exit 2) if `on-append`
//! ever loses an acked row, if `on-flush` loses a flush-acked row, or
//! if a corrupted segment fails an open instead of degrading.
//!
//! Usage: `exp_crash_recovery [--quick] [--seed N] [--out PATH]`

use fakeaudit_bench::{parse_args, RunOptions};
use fakeaudit_core::experiments::crash_recovery::{
    render, run_crash_recovery, CrashRecoveryResult,
};
use std::fmt::Write as _;

struct RecoveryOptions {
    run: RunOptions,
    out: String,
}

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

/// Splits `--out` off and hands the rest to the shared bench parser.
fn options() -> RecoveryOptions {
    let mut rest = Vec::new();
    let mut out = "results/BENCH_recovery.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(v) => out = v,
                None => fail("--out needs a path"),
            },
            _ => rest.push(arg),
        }
    }
    match parse_args(rest.into_iter()) {
        Ok(run) => RecoveryOptions { run, out },
        Err(msg) => fail(&format!("{msg} (also: --out PATH)")),
    }
}

fn render_json(seed: u64, r: &CrashRecoveryResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"bench\": \"recovery\",");
    let _ = writeln!(
        out,
        "  \"config\": {{\n    \"seed\": {seed},\n    \"crash_points\": {},\n    \
         \"rows_per_run\": {},\n    \"flush_threshold\": {}\n  }},",
        r.crash_points, r.rows_per_run, r.flush_threshold,
    );
    let _ = writeln!(out, "  \"scenarios\": [");
    for (i, c) in r.cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"fsync\": \"{}\", \"mode\": \"{}\", \"runs\": {}, \"op_space\": {}, \
             \"rows_acked\": {}, \"rows_flush_acked\": {}, \"rows_recovered\": {}, \
             \"acked_rows_lost\": {}, \"max_acked_lost\": {}, \"flushed_rows_lost\": {}, \
             \"wal_rows_recovered\": {}, \"quarantined_segments\": {}}}",
            c.fsync,
            c.mode,
            c.runs,
            c.op_space,
            c.rows_acked,
            c.rows_flush_acked,
            c.rows_recovered,
            c.acked_rows_lost,
            c.max_acked_lost,
            c.flushed_rows_lost,
            c.wal_rows_recovered,
            c.quarantined_segments,
        );
        let _ = writeln!(out, "{}", if i + 1 < r.cells.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ],");
    let cr = &r.corruption;
    let _ = writeln!(
        out,
        "  \"corruption\": {{\"flips\": {}, \"rows_per_store\": {}, \"verify_flagged\": {}, \
         \"opens_failed\": {}, \"quarantined_segments\": {}, \"rows_served\": {}, \
         \"rows_expected\": {}}}",
        cr.flips,
        cr.rows_per_store,
        cr.verify_flagged,
        cr.opens_failed,
        cr.quarantined_segments,
        cr.rows_served,
        cr.rows_expected,
    );
    let _ = writeln!(out, "}}");
    out
}

fn main() {
    let opts = options();
    let seed = opts.run.seed;
    let result = run_crash_recovery(opts.run.scale, seed);
    print!("{}", render(&result));

    // The durability floors are the point of the artifact: refuse to
    // write a fixture that documents a broken promise.
    for c in &result.cells {
        if c.fsync == "on-append" && c.acked_rows_lost != 0 {
            fail(&format!(
                "{}/{}: on-append lost {} acked rows — the ack is broken",
                c.fsync, c.mode, c.acked_rows_lost
            ));
        }
        if c.fsync != "never" && c.flushed_rows_lost != 0 {
            fail(&format!(
                "{}/{}: lost {} rows whose flush was acked",
                c.fsync, c.mode, c.flushed_rows_lost
            ));
        }
    }
    let cr = &result.corruption;
    if cr.opens_failed != 0 {
        fail("a corrupted segment failed Store::open instead of degrading");
    }
    if cr.verify_flagged != cr.flips {
        fail("verify missed a seeded bit flip");
    }

    let json = render_json(seed, &result);
    if let Some(parent) = std::path::Path::new(&opts.out).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    match std::fs::write(&opts.out, &json) {
        Ok(()) => println!("wrote {}", opts.out),
        Err(e) => fail(&format!("cannot write {}: {e}", opts.out)),
    }
}
