//! E14 — fault-burst detection time across alert window configs
//! (`exp_detect_time`).
//!
//! Replays the PR-5 `FaultPlan` burst process as a request-completion
//! stream and feeds the identical stream to one `SloMonitor` per window
//! config, measuring time-to-detect and time-to-resolve against the
//! ground-truth fault clusters (see `experiments::detect_time`). Writes
//! `results/BENCH_monitor.json`.
//!
//! Unlike E11/E13 this runs entirely on the simulated clock — same seed
//! ⇒ byte-identical JSON on any machine — so the artifact doubles as a
//! regression fixture, not just a trajectory upload.
//!
//! Usage: `exp_detect_time [--quick] [--seed N] [--out PATH]`

use fakeaudit_bench::{parse_args, RunOptions};
use fakeaudit_core::experiments::detect_time::{render, run_detect_time, DetectTimeResult};
use std::fmt::Write as _;

struct DetectOptions {
    run: RunOptions,
    out: String,
}

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

/// Splits `--out` off and hands the rest to the shared bench parser.
fn options() -> DetectOptions {
    let mut rest = Vec::new();
    let mut out = "results/BENCH_monitor.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(v) => out = v,
                None => fail("--out needs a path"),
            },
            _ => rest.push(arg),
        }
    }
    match parse_args(rest.into_iter()) {
        Ok(run) => DetectOptions { run, out },
        Err(msg) => fail(&format!("{msg} (also: --out PATH)")),
    }
}

fn render_json(seed: u64, r: &DetectTimeResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"bench\": \"monitor\",");
    let _ = writeln!(
        out,
        "  \"config\": {{\n    \"seed\": {seed},\n    \"duration_secs\": {:.1},\n    \
         \"step_secs\": {:.1},\n    \"fault_rate\": {},\n    \"burst_factor\": {:.1},\n    \
         \"requests\": {},\n    \"faults\": {},\n    \"incidents\": {}\n  }},",
        r.duration_secs,
        r.step_secs,
        r.fault_rate,
        r.burst_factor,
        r.requests,
        r.faults,
        r.bursts.len(),
    );
    let _ = writeln!(out, "  \"scenarios\": [");
    for (i, row) in r.rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"short_secs\": {:.1}, \"long_secs\": {:.1}, \
             \"burn_threshold\": {:.1}, \"pending_secs\": {:.1}, \"clear_secs\": {:.1}, \
             \"bursts\": {}, \"detected\": {}, \"fresh\": {}, \"carryover\": {}, \
             \"missed\": {}, \"false_firings\": {}, \"mean_ttd_secs\": {:.1}, \
             \"max_ttd_secs\": {:.1}, \"mean_ttr_secs\": {:.1}, \"transitions\": {}}}",
            row.config.name,
            row.config.short_secs,
            row.config.long_secs,
            row.config.burn_threshold,
            row.config.pending_secs,
            row.config.clear_secs,
            row.bursts,
            row.detected,
            row.fresh,
            row.carryover,
            row.missed,
            row.false_firings,
            row.mean_ttd_secs,
            row.max_ttd_secs,
            row.mean_ttr_secs,
            row.transitions,
        );
        let _ = writeln!(out, "{}", if i + 1 < r.rows.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn main() {
    let opts = options();
    let seed = opts.run.seed;
    let result = run_detect_time(opts.run.scale, seed);
    print!("{}", render(&result));

    if result.bursts.is_empty() {
        fail("fault stream produced no ground-truth incidents — nothing measured");
    }
    if result.rows.iter().all(|row| row.detected == 0) {
        fail("no window config detected any incident — the monitor is blind");
    }

    let json = render_json(seed, &result);
    if let Some(parent) = std::path::Path::new(&opts.out).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    match std::fs::write(&opts.out, &json) {
        Ok(()) => println!("wrote {}", opts.out),
        Err(e) => fail(&format!("cannot write {}: {e}", opts.out)),
    }
}
