//! Regenerates Table II: response time to the first analysis request for
//! the thirteen average-class accounts, measured against the paper's rows.

use fakeaudit_bench::options_from_env;
use fakeaudit_core::experiments::table2::{render, run_table2};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = options_from_env();
    let table = run_table2(opts.scale, opts.seed)?;
    println!("{}", render(&table));
    Ok(())
}
