//! Regenerates the crawl-budget analysis (E3): Table I sustained rates over
//! every testbed target, including the ~27-day Obama crawl.

use fakeaudit_core::experiments::crawl::{render, run_crawl_budgets};

fn main() {
    println!("{}", render(&run_crawl_budgets()));
}
