//! Regenerates the sampling ablation (A1): the commercial tools with their
//! prefix windows versus the same criteria over uniform samples.

use fakeaudit_bench::options_from_env;
use fakeaudit_core::experiments::ablation::{render, run_ablation, AblationParams};
use fakeaudit_core::experiments::Scale;

fn main() {
    let opts = options_from_env();
    let params = if opts.scale == Scale::quick() {
        AblationParams {
            followers: 6_000,
            ..AblationParams::default()
        }
    } else {
        AblationParams::default()
    };
    println!("{}", render(&run_ablation(params, opts.seed)));
}
