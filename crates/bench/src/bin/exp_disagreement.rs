//! Regenerates the disagreement analysis (E5) from a fresh Table III run.

use fakeaudit_bench::options_from_env;
use fakeaudit_core::experiments::disagreement::{render, run_disagreement};
use fakeaudit_core::experiments::table3::run_table3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = options_from_env();
    let table = run_table3(opts.scale, opts.seed)?;
    println!("{}", render(&run_disagreement(&table)));
    Ok(())
}
