//! Regenerates the §II-D sampling-bias worked example (E2).

use fakeaudit_bench::options_from_env;
use fakeaudit_core::experiments::bias::{render, run_bias, BiasParams};
use fakeaudit_core::experiments::Scale;

fn main() {
    let opts = options_from_env();
    let params = if opts.scale == Scale::quick() {
        BiasParams {
            genuine: 20_000,
            bought: 2_000,
            window: 500,
            sample_size: 500,
            repetitions: 30,
        }
    } else {
        BiasParams::default()
    };
    println!("{}", render(&run_bias(params, opts.seed)));
}
