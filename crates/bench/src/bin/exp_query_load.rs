//! E13 — analytics queries over a persisted audit history (`exp_query_load`).
//!
//! Persists a full E8 service-load sweep into a columnar history store,
//! then times every `fakeaudit query` kind over it: the four full-range
//! scans plus a time-windowed timeseries that must prune segments via
//! the zone maps. Writes `results/BENCH_store.json` in the bench-ledger
//! schema so `fakeaudit bench record|compare` tracks query-path
//! regressions exactly like the gateway's (E11).
//!
//! Ledger mapping: `requests_per_sec` is queries per wall second and
//! `shed_rate` is the *scanned fraction* — `rows_scanned / (rows_scanned
//! + rows_pruned)` — so a pruning regression (scanning rows the zone
//! maps used to skip) trips the higher-is-worse comparator.
//!
//! Exits nonzero if the windowed scenario prunes no rows: that would
//! mean the zone maps stopped working, not that the machine is slow.
//!
//! Usage: `exp_query_load [--quick] [--seed N] [--persist DIR] [--out PATH]`
//! (`--persist` reuses/creates a store at DIR instead of a throwaway
//! temp directory).

use fakeaudit_bench::{parse_args, RunOptions};
use fakeaudit_core::experiments::service_load::run_service_load_persisted;
use fakeaudit_server::flush_writer;
use fakeaudit_store::queries::{self, QueryKind, QueryOptions};
use fakeaudit_store::{open_shared, Store};
use fakeaudit_telemetry::Telemetry;
use std::fmt::Write as _;
use std::time::Instant;

struct QueryLoadOptions {
    run: RunOptions,
    out: String,
}

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

/// Splits `--out` off and hands the rest to the shared bench parser.
fn options() -> QueryLoadOptions {
    let mut rest = Vec::new();
    let mut out = "results/BENCH_store.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(v) => out = v,
                None => fail("--out needs a path"),
            },
            _ => rest.push(arg),
        }
    }
    match parse_args(rest.into_iter()) {
        Ok(run) => QueryLoadOptions { run, out },
        Err(msg) => fail(&format!("{msg} (also: --out PATH)")),
    }
}

/// One timed scenario: a query kind at fixed options, run `iters` times.
struct Scenario {
    name: &'static str,
    kind: QueryKind,
    opts: QueryOptions,
}

struct Measured {
    name: &'static str,
    iters: usize,
    wall_secs: f64,
    latencies_ms: Vec<f64>,
    rows_scanned: u64,
    rows_pruned: u64,
    segments_pruned: u64,
    result_rows: usize,
}

impl Measured {
    fn percentile(&self, p: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let idx = (p * (self.latencies_ms.len() - 1) as f64).round() as usize;
        self.latencies_ms[idx]
    }

    fn queries_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.iters as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// The ledger's `shed_rate` slot: fraction of stored rows the scan
    /// actually touched. Lower is better; 1.0 means no pruning.
    fn scanned_fraction(&self) -> f64 {
        let total = self.rows_scanned + self.rows_pruned;
        if total > 0 {
            self.rows_scanned as f64 / total as f64
        } else {
            0.0
        }
    }
}

fn measure(store: &Store, scenario: &Scenario, iters: usize) -> Measured {
    // One warmup run absorbs the lazy column-block reads.
    let report = queries::run(store, scenario.kind, &scenario.opts).unwrap_or_else(|e| {
        fail(&format!("query {} failed: {e}", scenario.name));
    });
    let mut latencies_ms = Vec::with_capacity(iters);
    let started = Instant::now();
    for _ in 0..iters {
        let t0 = Instant::now();
        let r = queries::run(store, scenario.kind, &scenario.opts).unwrap_or_else(|e| {
            fail(&format!("query {} failed: {e}", scenario.name));
        });
        latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            r.stats, report.stats,
            "{}: unstable scan stats",
            scenario.name
        );
    }
    let wall_secs = started.elapsed().as_secs_f64();
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    Measured {
        name: scenario.name,
        iters,
        wall_secs,
        latencies_ms,
        rows_scanned: report.stats.rows_scanned,
        rows_pruned: report.stats.rows_pruned,
        segments_pruned: report.stats.segments_pruned,
        result_rows: report.rows.len(),
    }
}

fn render_json(seed: u64, rows: u64, segments: u64, iters: usize, measured: &[Measured]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"bench\": \"store\",");
    let _ = writeln!(
        out,
        "  \"config\": {{\n    \"seed\": {seed},\n    \"rows\": {rows},\n    \
         \"segments\": {segments},\n    \"iters\": {iters}\n  }},"
    );
    let _ = writeln!(out, "  \"scenarios\": [");
    for (i, m) in measured.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"mode\": \"query\", \"offered\": {}, \"answered\": {}, \
             \"shed\": 0, \"expired\": 0, \"errors\": 0, \"wall_secs\": {:.3}, \
             \"requests_per_sec\": {:.2}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"shed_rate\": {:.4}, \"rows_scanned\": {}, \
             \"rows_pruned\": {}, \"segments_pruned\": {}, \"result_rows\": {}}}",
            m.name,
            m.iters,
            m.iters,
            m.wall_secs,
            m.queries_per_sec(),
            m.percentile(0.50),
            m.percentile(0.95),
            m.percentile(0.99),
            m.scanned_fraction(),
            m.rows_scanned,
            m.rows_pruned,
            m.segments_pruned,
            m.result_rows,
        );
        let _ = writeln!(out, "{}", if i + 1 < measured.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn main() {
    let opts = options();
    let seed = opts.run.seed;
    let quick = opts.run.scale != fakeaudit_core::experiments::Scale::full();

    // The store under test: `--persist DIR`, or a throwaway temp dir.
    let (dir, temp) = match opts.run.persist.clone() {
        Some(dir) => (std::path::PathBuf::from(dir), false),
        None => (
            std::env::temp_dir().join(format!("fakeaudit-e13-{}", std::process::id())),
            true,
        ),
    };

    eprintln!("persisting an E8 sweep into {} ...", dir.display());
    let writer = open_shared(&dir).unwrap_or_else(|e| {
        fail(&format!("cannot open history store {}: {e}", dir.display()));
    });
    run_service_load_persisted(opts.run.scale, seed, Some(writer.clone()));
    let health = flush_writer(&writer, &Telemetry::disabled())
        .unwrap_or_else(|e| fail(&format!("history flush failed: {e}")));
    drop(writer);
    eprintln!(
        "history: {} rows across {} segments",
        health.flushed_rows, health.segments
    );

    let store = Store::open(&dir).unwrap_or_else(|e| {
        fail(&format!("cannot read store {}: {e}", dir.display()));
    });
    let stats = store.stats();
    if stats.rows == 0 {
        fail("persisted store is empty — nothing to query");
    }
    let (ts_min, ts_max) = store.ts_bounds().expect("non-empty store has bounds");
    // The windowed scenario covers the earliest tenth of the recorded
    // span: high-rate cells fill several segments over the window, so
    // their later segments must fall to the zone maps.
    let min_secs = ts_min.div_euclid(1_000_000);
    let span_secs = (ts_max - ts_min).div_euclid(1_000_000).max(10);
    let windowed = QueryOptions {
        since_secs: Some(min_secs),
        until_secs: Some(min_secs + span_secs / 10),
        ..QueryOptions::default()
    };

    let scenarios = [
        Scenario {
            name: "timeseries",
            kind: QueryKind::Timeseries,
            opts: QueryOptions::default(),
        },
        Scenario {
            name: "drift",
            kind: QueryKind::Drift,
            opts: QueryOptions::default(),
        },
        Scenario {
            name: "retention",
            kind: QueryKind::Retention,
            opts: QueryOptions::default(),
        },
        Scenario {
            name: "topk",
            kind: QueryKind::Topk,
            opts: QueryOptions::default(),
        },
        Scenario {
            name: "timeseries_windowed",
            kind: QueryKind::Timeseries,
            opts: windowed,
        },
    ];

    let iters = if quick { 20 } else { 100 };
    let measured: Vec<Measured> = scenarios
        .iter()
        .map(|s| measure(&store, s, iters))
        .collect();

    println!(
        "E13: analytics queries over a persisted E8 history ({} rows, {} segments, {} iters)",
        stats.rows, stats.segments, iters
    );
    println!(
        "{:<22}{:>11}{:>10}{:>10}{:>10}{:>10}{:>10}{:>9}",
        "scenario", "qry/s", "p50 (ms)", "p95 (ms)", "p99 (ms)", "scanned", "pruned", "scan frac"
    );
    for m in &measured {
        println!(
            "{:<22}{:>11.1}{:>10.3}{:>10.3}{:>10.3}{:>10}{:>10}{:>8.0}%",
            m.name,
            m.queries_per_sec(),
            m.percentile(0.50),
            m.percentile(0.95),
            m.percentile(0.99),
            m.rows_scanned,
            m.rows_pruned,
            m.scanned_fraction() * 100.0,
        );
    }

    let json = render_json(seed, stats.rows, stats.segments, iters, &measured);
    if let Some(parent) = std::path::Path::new(&opts.out).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    match std::fs::write(&opts.out, &json) {
        Ok(()) => println!("wrote {}", opts.out),
        Err(e) => fail(&format!("cannot write {}: {e}", opts.out)),
    }

    if temp {
        let _ = std::fs::remove_dir_all(&dir);
    }

    let w = measured.last().expect("scenarios nonempty");
    if w.rows_pruned == 0 {
        fail("timeseries_windowed pruned zero rows — zone-map pruning is broken");
    }
    println!(
        "windowed scan pruned {} rows across {} segments via zone maps",
        w.rows_pruned, w.segments_pruned
    );
}
