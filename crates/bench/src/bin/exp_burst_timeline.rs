//! Regenerates the post-burst reporting timeline (E7).

use fakeaudit_bench::options_from_env;
use fakeaudit_core::experiments::burst::{render, run_burst, BurstParams};
use fakeaudit_core::experiments::Scale;

fn main() {
    let opts = options_from_env();
    let params = if opts.scale == Scale::quick() {
        BurstParams {
            organic_followers: 3_000,
            bought: 300,
            fc_sample: 1_000,
            ..BurstParams::default()
        }
    } else {
        BurstParams::default()
    };
    println!("{}", render(&run_burst(params, opts.seed)));
}
