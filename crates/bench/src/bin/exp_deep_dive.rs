//! Regenerates the Fakers-vs-Deep-Dive comparison (E6).

use fakeaudit_bench::options_from_env;
use fakeaudit_core::experiments::deep_dive::{render, run_deep_dive};

fn main() {
    let opts = options_from_env();
    println!("{}", render(&run_deep_dive(opts.scale, opts.seed)));
}
