//! Regenerates the FC-construction comparison (E4): literature rule sets vs
//! trained forests on a gold standard.

use fakeaudit_bench::options_from_env;
use fakeaudit_core::experiments::fc_training::{render, run_fc_training};

fn main() {
    let opts = options_from_env();
    println!(
        "{}",
        render(&run_fc_training(opts.scale.gold_per_class, opts.seed))
    );
}
