//! Regenerates Table III: per-target inactive/fake/genuine percentages for
//! all twenty testbed accounts under the four tools, plus the ground-truth
//! scoring annex the paper could not produce.

use fakeaudit_bench::options_from_env;
use fakeaudit_core::experiments::table3::{render, render_scores, run_table3};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = options_from_env();
    let table = run_table3(opts.scale, opts.seed)?;
    println!("{}", render(&table));
    println!("{}", render_scores(&table));
    Ok(())
}
