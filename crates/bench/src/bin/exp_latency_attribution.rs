//! Regenerates the latency-attribution sweep (E9).

use fakeaudit_bench::options_from_env;
use fakeaudit_core::experiments::latency_attribution::{render, run_latency_attribution};

fn main() {
    let opts = options_from_env();
    println!(
        "{}",
        render(&run_latency_attribution(opts.scale, opts.seed))
    );
}
