//! Regenerates the service-under-load sweep (E8).

use fakeaudit_bench::options_from_env;
use fakeaudit_core::experiments::service_load::{render, run_service_load};

fn main() {
    let opts = options_from_env();
    println!("{}", render(&run_service_load(opts.scale, opts.seed)));
}
