//! Regenerates the service-under-load sweep (E8).
//!
//! With `--persist DIR` every answered audit is also appended to a
//! columnar history store at `DIR`; the sweep then runs its cells
//! serially so the segment stream is byte-deterministic for a seed.

use fakeaudit_bench::options_from_env;
use fakeaudit_core::experiments::service_load::{render, run_service_load_persisted};
use fakeaudit_server::flush_writer;
use fakeaudit_store::open_shared;
use fakeaudit_telemetry::Telemetry;

fn main() {
    let opts = options_from_env();
    let writer = opts.persist.as_deref().map(|dir| {
        open_shared(dir).unwrap_or_else(|e| {
            eprintln!("cannot open history store {dir}: {e}");
            std::process::exit(1);
        })
    });
    println!(
        "{}",
        render(&run_service_load_persisted(
            opts.scale,
            opts.seed,
            writer.clone()
        ))
    );
    if let (Some(writer), Some(dir)) = (&writer, opts.persist.as_deref()) {
        match flush_writer(writer, &Telemetry::disabled()) {
            Ok(h) => eprintln!(
                "history: {} rows across {} segments in {dir}",
                h.flushed_rows, h.segments
            ),
            Err(e) => {
                eprintln!("history flush failed for {dir}: {e}");
                std::process::exit(1);
            }
        }
    }
}
