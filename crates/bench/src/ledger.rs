//! The bench ledger: committed history of headline bench numbers plus
//! the regression comparator behind `fakeaudit bench record|compare`.
//!
//! `results/BENCH_*.json` artifacts are point-in-time; nothing in the
//! repo compared them across commits, so a perf regression only showed
//! up when someone eyeballed two CI artifacts. The ledger closes that
//! loop with a committed `results/ledger.jsonl`: one line per recorded
//! run, each carrying the headline numbers (throughput, p50/p95/p99,
//! shed rate, allocations/request) of every scenario in a bench JSON.
//! `record` appends a line; `compare` checks a fresh bench JSON against
//! the most recent ledger line and flags any metric that moved past a
//! noise tolerance — the CLI exits nonzero on a regression, which is
//! what lets CI refuse a perf-regressing PR instead of archiving it.
//!
//! Everything here is hand-rolled like the rest of the workspace's JSON
//! handling (`telemetry::sink`, `gateway::wire`): the schemas are small
//! and closed, so the module carries its own minimal recursive-descent
//! JSON reader rather than a dependency.

use std::fmt::Write as _;

// ---------------------------------------------------------------------
// Minimal JSON reader
// ---------------------------------------------------------------------

/// A parsed JSON value. Only what the bench/ledger schemas need: numbers
/// are f64 (every headline metric is), object keys keep file order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in file order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member `key` of an object (`None` otherwise).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The f64 behind a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The str behind a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The slice behind an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document (surrounding whitespace allowed).
///
/// # Errors
///
/// A human-readable message naming the byte offset of the problem.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        // The ledger/bench schemas never emit surrogate
                        // pairs; map unpaired surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8 sequences pass through untouched.
                let s = &bytes[*pos..];
                let ch_len = std::str::from_utf8(s)
                    .map_err(|_| "invalid utf-8 in string".to_owned())?
                    .chars()
                    .next()
                    .map_or(1, char::len_utf8);
                out.push_str(std::str::from_utf8(&s[..ch_len]).unwrap());
                *pos += ch_len;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

// ---------------------------------------------------------------------
// Ledger schema
// ---------------------------------------------------------------------

/// One scenario's headline numbers, as recorded in a ledger line.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioNumbers {
    /// Scenario name (e.g. `closed_loop`, `poisson_open`, `flash_crowd`).
    pub name: String,
    /// Answered requests per wall second.
    pub requests_per_sec: f64,
    /// Median latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Fraction of offered load shed.
    pub shed_rate: f64,
    /// Allocations per answered request, when the run carried the
    /// counting allocator (`--features alloc-profile`); `None` otherwise.
    pub allocs_per_req: Option<f64>,
}

/// One recorded ledger line: a labelled set of scenario numbers taken
/// from one bench JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// Caller-supplied label (a commit, a PR, "baseline", …).
    pub label: String,
    /// Which bench produced the numbers (`gateway` for E11).
    pub bench: String,
    /// Per-scenario headline numbers, in bench-file order.
    pub scenarios: Vec<ScenarioNumbers>,
}

fn num_field(obj: &JsonValue, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

impl LedgerEntry {
    /// Extracts the headline numbers from a `BENCH_*.json` document
    /// (the `render_bench_json` schema: top-level `bench`, `config`,
    /// `scenarios`). `allocs_per_req` is read from `config` when the
    /// run recorded it.
    ///
    /// # Errors
    ///
    /// A message naming what failed to parse or which field is missing.
    pub fn from_bench_json(label: &str, text: &str) -> Result<Self, String> {
        let doc = parse_json(text)?;
        let bench = doc
            .get("bench")
            .and_then(JsonValue::as_str)
            .unwrap_or("unknown")
            .to_owned();
        let allocs_per_req = doc
            .get("config")
            .and_then(|c| c.get("allocs_per_req"))
            .and_then(JsonValue::as_f64);
        let raw = doc
            .get("scenarios")
            .and_then(JsonValue::as_arr)
            .ok_or("bench json has no scenarios array")?;
        let mut scenarios = Vec::with_capacity(raw.len());
        for s in raw {
            scenarios.push(ScenarioNumbers {
                name: s
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or("scenario without name")?
                    .to_owned(),
                requests_per_sec: num_field(s, "requests_per_sec")?,
                p50_ms: num_field(s, "p50_ms")?,
                p95_ms: num_field(s, "p95_ms")?,
                p99_ms: num_field(s, "p99_ms")?,
                shed_rate: num_field(s, "shed_rate")?,
                allocs_per_req,
            });
        }
        if scenarios.is_empty() {
            return Err("bench json has no scenarios".to_owned());
        }
        Ok(Self {
            label: label.to_owned(),
            bench,
            scenarios,
        })
    }

    /// Renders this entry as one ledger JSONL line (newline-terminated,
    /// fixed key order — byte-deterministic for identical numbers).
    pub fn to_jsonl_line(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"schema_version\":1,\"label\":{},\"bench\":{},\"scenarios\":[",
            quote(&self.label),
            quote(&self.bench)
        );
        for (i, s) in self.scenarios.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let allocs = match s.allocs_per_req {
                Some(v) => v.to_string(),
                None => "null".to_owned(),
            };
            let _ = write!(
                out,
                "{{\"name\":{},\"requests_per_sec\":{},\"p50_ms\":{},\"p95_ms\":{},\
                 \"p99_ms\":{},\"shed_rate\":{},\"allocs_per_req\":{allocs}}}",
                quote(&s.name),
                s.requests_per_sec,
                s.p50_ms,
                s.p95_ms,
                s.p99_ms,
                s.shed_rate,
            );
        }
        out.push_str("]}\n");
        out
    }

    /// Parses one ledger JSONL line.
    ///
    /// # Errors
    ///
    /// As [`parse_json`], plus missing-field messages.
    pub fn parse_line(line: &str) -> Result<Self, String> {
        let doc = parse_json(line)?;
        let raw = doc
            .get("scenarios")
            .and_then(JsonValue::as_arr)
            .ok_or("ledger line has no scenarios array")?;
        let mut scenarios = Vec::with_capacity(raw.len());
        for s in raw {
            scenarios.push(ScenarioNumbers {
                name: s
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or("scenario without name")?
                    .to_owned(),
                requests_per_sec: num_field(s, "requests_per_sec")?,
                p50_ms: num_field(s, "p50_ms")?,
                p95_ms: num_field(s, "p95_ms")?,
                p99_ms: num_field(s, "p99_ms")?,
                shed_rate: num_field(s, "shed_rate")?,
                allocs_per_req: s.get("allocs_per_req").and_then(JsonValue::as_f64),
            });
        }
        Ok(Self {
            label: doc
                .get("label")
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_owned(),
            bench: doc
                .get("bench")
                .and_then(JsonValue::as_str)
                .unwrap_or("unknown")
                .to_owned(),
            scenarios,
        })
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a whole `ledger.jsonl` file (blank lines skipped), oldest
/// first.
///
/// # Errors
///
/// The first bad line's error, prefixed with its line number.
pub fn parse_ledger(text: &str) -> Result<Vec<LedgerEntry>, String> {
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        entries.push(LedgerEntry::parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(entries)
}

/// Parses a tolerance argument: `15%` or `0.15` both mean ±15 %.
///
/// # Errors
///
/// Rejects non-numbers, negatives and NaN.
pub fn parse_tolerance(s: &str) -> Result<f64, String> {
    let (raw, percent) = match s.strip_suffix('%') {
        Some(stripped) => (stripped, true),
        None => (s, false),
    };
    let v: f64 = raw
        .trim()
        .parse()
        .map_err(|_| format!("bad tolerance {s:?} (use e.g. 15% or 0.15)"))?;
    let v = if percent { v / 100.0 } else { v };
    if !v.is_finite() || v < 0.0 {
        return Err(format!("bad tolerance {s:?} (must be >= 0)"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// `scenario/metric`, e.g. `closed_loop/p99_ms`.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Whether the move past tolerance is in the bad direction.
    pub regressed: bool,
}

impl Delta {
    fn relative_change(&self) -> f64 {
        if self.baseline.abs() < 1e-12 {
            if self.current.abs() < 1e-12 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.current - self.baseline) / self.baseline
        }
    }
}

/// The outcome of `bench compare`: every metric's delta plus the
/// regression verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareReport {
    /// Baseline entry label.
    pub baseline_label: String,
    /// Tolerance used (fraction).
    pub tolerance: f64,
    /// Every compared metric, in scenario order.
    pub deltas: Vec<Delta>,
    /// Scenarios present in exactly one side (compared as nothing,
    /// reported so a silently-dropped scenario is visible).
    pub unmatched: Vec<String>,
}

impl CompareReport {
    /// Whether any metric regressed past tolerance.
    pub fn regressed(&self) -> bool {
        self.deltas.iter().any(|d| d.regressed)
    }

    /// A human-readable table: one line per metric, regressions marked.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = writeln!(
            out,
            "bench compare vs {:?} (tolerance {:.0}%)",
            self.baseline_label,
            self.tolerance * 100.0
        );
        for d in &self.deltas {
            let change = d.relative_change();
            let pct = if change.is_finite() {
                format!("{:+.1}%", change * 100.0)
            } else {
                "new".to_owned()
            };
            let mark = if d.regressed { "  REGRESSED" } else { "" };
            let _ = writeln!(
                out,
                "  {:<28} {:>12.3} -> {:>12.3}  {pct}{mark}",
                d.metric, d.baseline, d.current
            );
        }
        for name in &self.unmatched {
            let _ = writeln!(out, "  {name:<28} (present in only one side)");
        }
        let _ = writeln!(
            out,
            "result: {}",
            if self.regressed() { "REGRESSION" } else { "ok" }
        );
        out
    }
}

/// Compares `current` against `baseline` with a relative `tolerance`.
///
/// Directionality per metric: latency (`p50/p95/p99`), shed rate and
/// allocations/request regress when they *rise* past tolerance;
/// throughput regresses when it *falls* past tolerance. Improvements
/// are never regressions. A shed rate whose baseline is 0 uses an
/// absolute floor of `tolerance` (e.g. 15% tolerance tolerates a shed
/// rate up to 0.15 from a clean baseline) — a relative threshold on a
/// zero baseline would flag any single shed request.
pub fn compare(baseline: &LedgerEntry, current: &LedgerEntry, tolerance: f64) -> CompareReport {
    let mut deltas = Vec::new();
    let mut unmatched = Vec::new();
    for b in &baseline.scenarios {
        let Some(c) = current.scenarios.iter().find(|c| c.name == b.name) else {
            unmatched.push(b.name.clone());
            continue;
        };
        let higher_is_worse = |metric: &str, base: f64, cur: f64| Delta {
            metric: format!("{}/{metric}", b.name),
            baseline: base,
            current: cur,
            regressed: cur > base * (1.0 + tolerance) + 1e-12
                && (base.abs() > 1e-12 || cur > tolerance),
        };
        deltas.push(Delta {
            metric: format!("{}/requests_per_sec", b.name),
            baseline: b.requests_per_sec,
            current: c.requests_per_sec,
            regressed: c.requests_per_sec < b.requests_per_sec * (1.0 - tolerance) - 1e-12,
        });
        deltas.push(higher_is_worse("p50_ms", b.p50_ms, c.p50_ms));
        deltas.push(higher_is_worse("p95_ms", b.p95_ms, c.p95_ms));
        deltas.push(higher_is_worse("p99_ms", b.p99_ms, c.p99_ms));
        deltas.push(higher_is_worse("shed_rate", b.shed_rate, c.shed_rate));
        if let (Some(ba), Some(ca)) = (b.allocs_per_req, c.allocs_per_req) {
            deltas.push(higher_is_worse("allocs_per_req", ba, ca));
        }
    }
    for c in &current.scenarios {
        if !baseline.scenarios.iter().any(|b| b.name == c.name) {
            unmatched.push(c.name.clone());
        }
    }
    CompareReport {
        baseline_label: baseline.label.clone(),
        tolerance,
        deltas,
        unmatched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bench JSON in the `render_bench_json` shape with adjustable
    /// latency scale.
    fn bench_json(latency_scale: f64, rps: f64) -> String {
        format!(
            "{{\n  \"schema_version\": 1,\n  \"bench\": \"gateway\",\n  \"config\": {{\n    \
             \"seed\": 7,\n    \"allocs_per_req\": 120.5\n  }},\n  \"breaker_trips\": 0,\n  \
             \"scenarios\": [\n    {{\"name\": \"closed_loop\", \"mode\": \"closed\", \
             \"offered\": 100, \"answered\": 100, \"shed\": 0, \"expired\": 0, \"errors\": 0, \
             \"wall_secs\": 1.0, \"requests_per_sec\": {rps:.2}, \"p50_ms\": {:.3}, \
             \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"shed_rate\": 0.0}}\n  ]\n}}\n",
            1.0 * latency_scale,
            2.0 * latency_scale,
            3.0 * latency_scale,
        )
    }

    #[test]
    fn json_reader_handles_the_bench_schema() {
        let doc = parse_json(&bench_json(1.0, 100.0)).unwrap();
        assert_eq!(
            doc.get("bench").and_then(JsonValue::as_str),
            Some("gateway")
        );
        assert_eq!(
            doc.get("config")
                .and_then(|c| c.get("seed"))
                .and_then(JsonValue::as_f64),
            Some(7.0)
        );
        let scenarios = doc.get("scenarios").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(scenarios.len(), 1);
        assert_eq!(
            scenarios[0].get("p99_ms").and_then(JsonValue::as_f64),
            Some(3.0)
        );
    }

    #[test]
    fn json_reader_rejects_malformed_input() {
        assert!(parse_json("{\"a\":").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{\"a\":1} trailing").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("nul").is_err());
        // Escapes and nesting round-trip.
        let v = parse_json(" {\"s\": \"a\\n\\\"b\\\"\", \"l\": [true, null, -2.5e1]} ").unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("a\n\"b\""));
        assert_eq!(v.get("l").and_then(JsonValue::as_arr).unwrap().len(), 3);
        assert_eq!(
            v.get("l").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-25.0)
        );
    }

    #[test]
    fn ledger_lines_round_trip() {
        let entry = LedgerEntry::from_bench_json("baseline", &bench_json(1.0, 100.0)).unwrap();
        assert_eq!(entry.bench, "gateway");
        assert_eq!(entry.scenarios[0].allocs_per_req, Some(120.5));
        let line = entry.to_jsonl_line();
        assert!(line.ends_with('\n'));
        let back = LedgerEntry::parse_line(line.trim_end()).unwrap();
        assert_eq!(back, entry);
        // Two lines make a ledger; order is preserved.
        let two = format!("{line}{line}");
        assert_eq!(parse_ledger(&two).unwrap().len(), 2);
        // Byte determinism: same numbers, same line.
        let again = LedgerEntry::from_bench_json("baseline", &bench_json(1.0, 100.0)).unwrap();
        assert_eq!(again.to_jsonl_line(), line);
    }

    #[test]
    fn tolerance_parses_percent_and_fraction() {
        assert_eq!(parse_tolerance("15%").unwrap(), 0.15);
        assert_eq!(parse_tolerance("0.15").unwrap(), 0.15);
        assert_eq!(parse_tolerance("0").unwrap(), 0.0);
        assert!(parse_tolerance("-5%").is_err());
        assert!(parse_tolerance("lots").is_err());
    }

    #[test]
    fn detects_injected_2x_latency_regression() {
        // The acceptance scenario: record a baseline, then hand compare a
        // run whose latencies doubled. 15% tolerance must flag it.
        let baseline = LedgerEntry::from_bench_json("baseline", &bench_json(1.0, 100.0)).unwrap();
        let slow = LedgerEntry::from_bench_json("candidate", &bench_json(2.0, 100.0)).unwrap();
        let report = compare(&baseline, &slow, 0.15);
        assert!(report.regressed());
        let bad: Vec<&str> = report
            .deltas
            .iter()
            .filter(|d| d.regressed)
            .map(|d| d.metric.as_str())
            .collect();
        assert_eq!(
            bad,
            vec![
                "closed_loop/p50_ms",
                "closed_loop/p95_ms",
                "closed_loop/p99_ms"
            ]
        );
        assert!(report.render().contains("REGRESSED"));
        assert!(report.render().contains("result: REGRESSION"));
    }

    #[test]
    fn tolerates_noise_within_band() {
        let baseline = LedgerEntry::from_bench_json("baseline", &bench_json(1.0, 100.0)).unwrap();
        let noisy = LedgerEntry::from_bench_json("candidate", &bench_json(1.1, 92.0)).unwrap();
        let report = compare(&baseline, &noisy, 0.15);
        assert!(!report.regressed(), "{}", report.render());
        assert!(report.render().contains("result: ok"));
    }

    #[test]
    fn throughput_drop_regresses_but_rise_does_not() {
        let baseline = LedgerEntry::from_bench_json("baseline", &bench_json(1.0, 100.0)).unwrap();
        let slower = LedgerEntry::from_bench_json("c", &bench_json(1.0, 70.0)).unwrap();
        let report = compare(&baseline, &slower, 0.15);
        assert!(report.regressed());
        assert!(report
            .deltas
            .iter()
            .any(|d| d.metric == "closed_loop/requests_per_sec" && d.regressed));
        // Faster and lower-latency is never a regression.
        let faster = LedgerEntry::from_bench_json("c", &bench_json(0.5, 150.0)).unwrap();
        assert!(!compare(&baseline, &faster, 0.15).regressed());
    }

    #[test]
    fn zero_baseline_shed_rate_uses_absolute_floor() {
        let baseline = LedgerEntry::from_bench_json("baseline", &bench_json(1.0, 100.0)).unwrap();
        let mut small_shed = baseline.clone();
        small_shed.scenarios[0].shed_rate = 0.05;
        assert!(!compare(&baseline, &small_shed, 0.15).regressed());
        let mut big_shed = baseline.clone();
        big_shed.scenarios[0].shed_rate = 0.4;
        let report = compare(&baseline, &big_shed, 0.15);
        assert!(report
            .deltas
            .iter()
            .any(|d| d.metric == "closed_loop/shed_rate" && d.regressed));
    }

    #[test]
    fn unmatched_scenarios_are_reported_not_ignored() {
        let baseline = LedgerEntry::from_bench_json("baseline", &bench_json(1.0, 100.0)).unwrap();
        let mut renamed = baseline.clone();
        renamed.scenarios[0].name = "open_loop".to_owned();
        let report = compare(&baseline, &renamed, 0.15);
        assert!(!report.regressed());
        assert_eq!(report.unmatched, vec!["closed_loop", "open_loop"]);
        assert!(report.render().contains("only one side"));
    }

    #[test]
    fn missing_fields_error_cleanly() {
        assert!(LedgerEntry::from_bench_json("x", "{}").is_err());
        assert!(LedgerEntry::from_bench_json("x", "{\"scenarios\":[{\"name\":\"a\"}]}").is_err());
        assert!(LedgerEntry::parse_line("{\"scenarios\":\"nope\"}").is_err());
        assert!(parse_ledger("{}\n").is_err());
    }
}
