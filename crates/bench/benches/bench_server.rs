//! E8 bench: the discrete-event server loop itself — one sweep cell at a
//! time, isolating the event-heap and admission-queue cost from the
//! audit work the backends do.

use criterion::{criterion_group, criterion_main, Criterion};
use fakeaudit_analytics::{OnlineService, ServiceProfile};
use fakeaudit_bench::bench_target;
use fakeaudit_detectors::StatusPeople;
use fakeaudit_server::{generate, LoadSpec, OverloadPolicy, ServerConfig, ServerSim};
use std::hint::black_box;

fn bench_server(c: &mut Criterion) {
    let (platform, target) = bench_target(2_000, 3);
    let mut base = OnlineService::new(
        StatusPeople::new(),
        ServiceProfile {
            daily_quota: None,
            ..ServiceProfile::statuspeople()
        },
        1,
    );
    base.prewarm(&platform, target.target).unwrap();
    let trace = generate(&LoadSpec::poisson(4.0, 300.0), &[target.target], 11);

    let mut group = c.benchmark_group("server_sim");
    group.sample_size(20);
    for policy in OverloadPolicy::ALL {
        group.bench_function(format!("sweep_cell_{}", policy.label()), |b| {
            b.iter(|| {
                let mut sim = ServerSim::new(
                    &platform,
                    ServerConfig {
                        policy,
                        ..ServerConfig::default()
                    },
                );
                sim.register(Box::new(base.clone()));
                black_box(sim.run(&trace).completed())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_server);
criterion_main!(benches);
