//! T2 bench: end-to-end audit pipeline per tool (the machinery behind
//! Table II). Criterion measures harness wall-time; the *simulated*
//! response seconds are printed by the `table2` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use fakeaudit_analytics::{OnlineService, ServiceProfile};
use fakeaudit_bench::bench_target;
use fakeaudit_detectors::{FakeProjectEngine, Socialbakers, StatusPeople, Twitteraudit};
use std::hint::black_box;

fn bench_tools(c: &mut Criterion) {
    let (platform, target) = bench_target(5_000, 42);
    let fc_engine = FakeProjectEngine::with_default_model(42).with_sample_size(2_000);

    let mut group = c.benchmark_group("response_time_pipeline");
    group.sample_size(10);

    group.bench_function("fake_classifier", |b| {
        b.iter(|| {
            let mut svc =
                OnlineService::new(fc_engine.clone(), ServiceProfile::fake_classifier(), 1);
            black_box(svc.request(&platform, target.target).unwrap().response_secs)
        })
    });
    group.bench_function("twitteraudit", |b| {
        b.iter(|| {
            let mut svc =
                OnlineService::new(Twitteraudit::new(), ServiceProfile::twitteraudit(), 1);
            black_box(svc.request(&platform, target.target).unwrap().response_secs)
        })
    });
    group.bench_function("statuspeople", |b| {
        b.iter(|| {
            let mut svc =
                OnlineService::new(StatusPeople::new(), ServiceProfile::statuspeople(), 1);
            black_box(svc.request(&platform, target.target).unwrap().response_secs)
        })
    });
    group.bench_function("socialbakers", |b| {
        b.iter(|| {
            let mut svc =
                OnlineService::new(Socialbakers::new(), ServiceProfile::socialbakers(), 1);
            black_box(svc.request(&platform, target.target).unwrap().response_secs)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tools);
criterion_main!(benches);
