//! T3 bench: per-account classification throughput of each tool's criteria
//! (the inner loop of Table III).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fakeaudit_bench::bench_target;
use fakeaudit_detectors::data::fetch_profiles_with_indexed_timelines;
use fakeaudit_detectors::{FakeProjectEngine, Socialbakers, StatusPeople, Twitteraudit};
use fakeaudit_twitter_api::{ApiConfig, ApiSession};
use std::hint::black_box;

fn bench_classify(c: &mut Criterion) {
    let (platform, target) = bench_target(3_000, 7);
    let ids: Vec<_> = target
        .followers_oldest_first
        .iter()
        .map(|&(id, _)| id)
        .collect();
    let mut session = ApiSession::new(&platform, ApiConfig::default());
    let data = fetch_profiles_with_indexed_timelines(&mut session, &ids, 200);
    let now = platform.now();

    let sp = StatusPeople::new();
    let sb = Socialbakers::new();
    let ta = Twitteraudit::new();
    let fc = FakeProjectEngine::with_default_model(7);

    let mut group = c.benchmark_group("classify_3000_accounts");
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("statuspeople_criteria", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for d in &data {
                black_box(sp.classify(d, now));
                n += 1;
            }
            n
        })
    });
    group.bench_function("socialbakers_criteria", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for d in &data {
                black_box(sb.classify(d, now));
                n += 1;
            }
            n
        })
    });
    group.bench_function("twitteraudit_score", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for d in &data {
                black_box(ta.classify(d, now));
                n += 1;
            }
            n
        })
    });
    group.bench_function("fake_classifier_forest", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for d in &data {
                black_box(fc.classify(d, now));
                n += 1;
            }
            n
        })
    });
    group.finish();
}

criterion_group!(benches, bench_classify);
criterion_main!(benches);
