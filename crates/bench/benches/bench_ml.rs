//! E4 bench: the from-scratch learners — CART fit, forest fit, forest
//! prediction over gold-standard features.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fakeaudit_detectors::features::{dataset_from_gold, FeatureSet};
use fakeaudit_ml::forest::ForestParams;
use fakeaudit_ml::tree::TreeParams;
use fakeaudit_ml::{Classifier, DecisionTree, RandomForest};
use fakeaudit_population::archetype::recommended_audit_time;
use fakeaudit_population::goldstandard::GoldStandard;
use std::hint::black_box;

fn bench_ml(c: &mut Criterion) {
    let gold = GoldStandard::generate(5, 200, recommended_audit_time());
    let data = dataset_from_gold(&gold, FeatureSet::ProfileOnly);
    let forest = RandomForest::fit(&data, ForestParams::default(), 1).unwrap();

    let mut group = c.benchmark_group("ml");
    group.sample_size(10);
    group.bench_function("cart_fit_600x10", |b| {
        b.iter(|| black_box(DecisionTree::fit(&data, TreeParams::default()).unwrap()))
    });
    group.bench_function("forest_fit_600x10_25trees", |b| {
        b.iter(|| black_box(RandomForest::fit(&data, ForestParams::default(), 1).unwrap()))
    });
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("forest_predict_600", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for r in data.rows() {
                black_box(forest.predict(r));
                n += 1;
            }
            n
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ml);
criterion_main!(benches);
