//! E2 bench: the sampling machinery of §II-D — uniform versus prefix draws
//! and the estimator-error measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use fakeaudit_stats::bias::{burst_population, measure_estimator_error};
use fakeaudit_stats::rng::rng_for;
use fakeaudit_stats::sampling::{PrefixSampler, Sampler, SamplingScheme, UniformSampler};
use std::hint::black_box;

fn bench_samplers(c: &mut Criterion) {
    let labels = burst_population(10_000, 100_000);

    let mut group = c.benchmark_group("sampling");
    group.bench_function("uniform_9604_of_110k", |b| {
        let mut rng = rng_for(1, "bench");
        b.iter(|| black_box(UniformSampler.draw_indices(&mut rng, labels.len(), 9_604)))
    });
    group.bench_function("prefix_1000_of_110k", |b| {
        let mut rng = rng_for(2, "bench");
        let s = PrefixSampler::new(1_000);
        b.iter(|| black_box(s.draw_indices(&mut rng, labels.len(), 1_000)))
    });
    group.bench_function("estimator_error_uniform", |b| {
        let mut rng = rng_for(3, "bench");
        b.iter(|| {
            black_box(measure_estimator_error(
                &mut rng,
                &labels,
                SamplingScheme::Uniform,
                9_604,
                5,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);
