//! T1/E3 bench: the simulated REST layer — pagination, bulk hydration, and
//! the token-bucket rate limiter.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fakeaudit_bench::bench_target;
use fakeaudit_twitter_api::rate_limit::TokenBucket;
use fakeaudit_twitter_api::{ApiConfig, ApiSession};
use std::hint::black_box;

fn bench_api(c: &mut Criterion) {
    let (platform, target) = bench_target(10_000, 9);
    let ids: Vec<_> = target
        .followers_oldest_first
        .iter()
        .map(|&(id, _)| id)
        .collect();

    let mut group = c.benchmark_group("api_session");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("followers_ids_10k", |b| {
        b.iter(|| {
            let mut s = ApiSession::new(&platform, ApiConfig::default());
            black_box(s.followers_ids(target.target).unwrap().len())
        })
    });
    group.bench_function("users_lookup_10k", |b| {
        b.iter(|| {
            let mut s = ApiSession::new(&platform, ApiConfig::default());
            black_box(s.users_lookup(&ids).unwrap().len())
        })
    });
    group.finish();

    let mut group = c.benchmark_group("rate_limiter");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("token_bucket_10k_acquires", |b| {
        b.iter(|| {
            let mut bucket = TokenBucket::new(180.0, 0.2);
            let mut t = 0.0;
            for _ in 0..10_000 {
                t += bucket.acquire(t) + 0.01;
            }
            black_box(t)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_api);
criterion_main!(benches);
