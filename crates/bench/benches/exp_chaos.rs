//! E10 bench: the chaos sweep end to end at quick scale — fault
//! injection, retry/backoff accounting and breaker bookkeeping on top
//! of the E8 event loop, so a regression in the resilience path shows
//! up as sweep wall-time.

use criterion::{criterion_group, criterion_main, Criterion};
use fakeaudit_core::experiments::chaos::run_chaos;
use fakeaudit_core::experiments::Scale;
use std::hint::black_box;

fn bench_chaos(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp_chaos");
    group.sample_size(10);
    group.bench_function("quick_sweep", |b| {
        b.iter(|| black_box(run_chaos(Scale::quick(), 7).rows.len()))
    });
    group.finish();
}

criterion_group!(benches, bench_chaos);
criterion_main!(benches);
