//! Telemetry overhead bench: the instrumented hot paths must stay within a
//! few percent of the untraced ones, and a disabled handle must cost
//! nothing measurable.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fakeaudit_bench::bench_target;
use fakeaudit_telemetry::Telemetry;
use fakeaudit_twitter_api::{ApiConfig, ApiSession};
use std::hint::black_box;

fn bench_telemetry(c: &mut Criterion) {
    let (platform, target) = bench_target(10_000, 9);

    // The session hot path under all three regimes: no handle, a disabled
    // handle (the default for every untraced run), and a live collector.
    let mut group = c.benchmark_group("session_instrumentation");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("followers_ids_10k_untraced", |b| {
        b.iter(|| {
            let mut s = ApiSession::new(&platform, ApiConfig::default());
            black_box(s.followers_ids(target.target).unwrap().len())
        })
    });
    group.bench_function("followers_ids_10k_disabled_handle", |b| {
        b.iter(|| {
            let mut s =
                ApiSession::with_telemetry(&platform, ApiConfig::default(), Telemetry::disabled());
            black_box(s.followers_ids(target.target).unwrap().len())
        })
    });
    group.bench_function("followers_ids_10k_enabled", |b| {
        b.iter(|| {
            let tel = Telemetry::enabled();
            let mut s = ApiSession::with_telemetry(&platform, ApiConfig::default(), tel);
            black_box(s.followers_ids(target.target).unwrap().len())
        })
    });
    group.finish();

    // Raw collector operation costs.
    let mut group = c.benchmark_group("telemetry_ops");
    group.throughput(Throughput::Elements(1));
    let tel = Telemetry::enabled();
    group.bench_function("counter_add", |b| {
        b.iter(|| tel.counter_add("bench.counter", &[("tool", "FC")], 1))
    });
    group.bench_function("observe", |b| {
        b.iter(|| tel.observe("bench.hist", &[("tool", "FC")], black_box(1.25)))
    });
    let disabled = Telemetry::disabled();
    group.bench_function("counter_add_disabled", |b| {
        b.iter(|| disabled.counter_add("bench.counter", &[("tool", "FC")], 1))
    });
    group.finish();

    // Span recording grows the event buffer; bench a bounded batch.
    let mut group = c.benchmark_group("telemetry_spans");
    group.throughput(Throughput::Elements(1_000));
    group.bench_function("span_1k", |b| {
        b.iter(|| {
            let tel = Telemetry::enabled();
            for i in 0..1_000u32 {
                tel.span(
                    "bench.span",
                    f64::from(i),
                    f64::from(i) + 0.5,
                    &[("endpoint", "followers_ids")],
                );
            }
            black_box(tel.events().len())
        })
    });
    group.bench_function("span_1k_to_jsonl", |b| {
        let tel = Telemetry::enabled();
        for i in 0..1_000u32 {
            tel.span(
                "bench.span",
                f64::from(i),
                f64::from(i) + 0.5,
                &[("endpoint", "followers_ids")],
            );
        }
        b.iter(|| {
            let mut out = Vec::with_capacity(128 * 1024);
            tel.write_jsonl(&mut out).unwrap();
            black_box(out.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_telemetry);
criterion_main!(benches);
