//! A2 bench: cache policy impact on service requests (fresh audit vs
//! cache hit), the mechanism behind the 2-3 s rows of Table II.

use criterion::{criterion_group, criterion_main, Criterion};
use fakeaudit_analytics::{OnlineService, ServiceProfile};
use fakeaudit_bench::bench_target;
use fakeaudit_detectors::StatusPeople;
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    let (platform, target) = bench_target(5_000, 3);

    let mut group = c.benchmark_group("service_cache");
    group.sample_size(20);
    group.bench_function("fresh_audit_every_time", |b| {
        b.iter(|| {
            let mut svc =
                OnlineService::new(StatusPeople::new(), ServiceProfile::statuspeople(), 1);
            black_box(svc.request(&platform, target.target).unwrap().response_secs)
        })
    });
    group.bench_function("cache_hit", |b| {
        let mut svc = OnlineService::new(StatusPeople::new(), ServiceProfile::statuspeople(), 1);
        svc.prewarm(&platform, target.target).unwrap();
        b.iter(|| black_box(svc.request(&platform, target.target).unwrap().response_secs))
    });
    group.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
