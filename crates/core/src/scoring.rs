//! Scoring tool outputs against hidden ground truth.
//!
//! The paper could only show that the tools *disagree*; with synthetic
//! targets every follower carries a hidden [`TrueClass`], so the
//! reproduction can additionally measure how *wrong* each tool is.

use fakeaudit_detectors::{AuditOutcome, Verdict};
use fakeaudit_population::archetype::presents_inactive;
use fakeaudit_population::{BuiltTarget, TrueClass};
use fakeaudit_twittersim::Platform;
use serde::{Deserialize, Serialize};
use std::fmt;

fn verdict_of(class: TrueClass) -> Verdict {
    match class {
        TrueClass::Inactive => Verdict::Inactive,
        TrueClass::Fake => Verdict::Fake,
        TrueClass::Genuine => Verdict::Genuine,
    }
}

/// Ground-truth scoring of one tool run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ToolScore {
    /// Assessed accounts with known ground truth.
    pub scored: usize,
    /// Fraction of verdicts exactly matching the hidden class.
    pub strict_accuracy: f64,
    /// Accuracy when a dormant fake judged `Inactive` also counts as
    /// correct — FC's published semantics, under which its inactive bucket
    /// deliberately absorbs dormant fakes.
    pub lenient_accuracy: f64,
    /// Absolute error of the tool's fake percentage versus the ground-truth
    /// fake share of the **whole** follower base (percentage points).
    pub fake_pct_error: f64,
    /// Absolute error of the genuine percentage (percentage points).
    pub genuine_pct_error: f64,
}

impl fmt::Display for ToolScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "strict {:.1}% / lenient {:.1}% accurate; fake% off by {:.1}, genuine% off by {:.1}",
            self.strict_accuracy * 100.0,
            self.lenient_accuracy * 100.0,
            self.fake_pct_error,
            self.genuine_pct_error
        )
    }
}

/// Scores an outcome against the target's ground truth.
///
/// Accounts in the sample without ground truth (none, in practice) are
/// skipped. Percentage errors compare the tool's reported percentages with
/// the population truth over **all** materialised followers — exactly the
/// error a magazine quoting the tool would commit.
pub fn score_against_truth(
    outcome: &AuditOutcome,
    target: &BuiltTarget,
    platform: &Platform,
) -> ToolScore {
    let now = outcome.audited_at;
    let mut scored = 0usize;
    let mut strict = 0usize;
    let mut lenient = 0usize;
    for &(id, verdict) in &outcome.assessed {
        let Some(class) = target.ground_truth(id) else {
            continue;
        };
        scored += 1;
        let exact = verdict == verdict_of(class);
        if exact {
            strict += 1;
            lenient += 1;
            continue;
        }
        let dormant_fake_as_inactive = class == TrueClass::Fake
            && verdict == Verdict::Inactive
            && platform
                .profile(id)
                .is_some_and(|p| presents_inactive(p, now));
        if dormant_fake_as_inactive {
            lenient += 1;
        }
    }
    let truth = target.true_mix();
    let denom = scored.max(1) as f64;
    ToolScore {
        scored,
        strict_accuracy: strict as f64 / denom,
        lenient_accuracy: lenient as f64 / denom,
        fake_pct_error: (outcome.fake_pct() - truth.fake() * 100.0).abs(),
        genuine_pct_error: (outcome.genuine_pct() - truth.genuine() * 100.0).abs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fakeaudit_detectors::engine::FollowerAuditor;
    use fakeaudit_detectors::{FakeProjectEngine, Twitteraudit};
    use fakeaudit_population::{ClassMix, TargetScenario};
    use fakeaudit_twitter_api::{ApiConfig, ApiSession};

    fn built() -> (Platform, BuiltTarget) {
        let mut platform = Platform::new();
        let t = TargetScenario::new("score", 3_000, ClassMix::new(0.30, 0.15, 0.55).unwrap())
            .fake_recency_bias(15.0)
            .build(&mut platform, 111)
            .unwrap();
        (platform, t)
    }

    use fakeaudit_population::BuiltTarget;

    #[test]
    fn fc_beats_prefix_tools_on_fake_error() {
        let (platform, t) = built();
        let mut s1 = ApiSession::new(&platform, ApiConfig::default());
        let fc = FakeProjectEngine::with_default_model(1)
            .with_sample_size(2_000)
            .audit(&mut s1, t.target, 1)
            .unwrap();
        let mut s2 = ApiSession::new(&platform, ApiConfig::default());
        let ta = Twitteraudit::new().audit(&mut s2, t.target, 2).unwrap();
        let fc_score = score_against_truth(&fc, &t, &platform);
        let ta_score = score_against_truth(&ta, &t, &platform);
        assert!(
            fc_score.genuine_pct_error < ta_score.genuine_pct_error,
            "FC genuine error {:.1} should beat TA {:.1}",
            fc_score.genuine_pct_error,
            ta_score.genuine_pct_error
        );
        assert!(fc_score.lenient_accuracy > 0.85, "{fc_score}");
    }

    #[test]
    fn lenient_is_at_least_strict() {
        let (platform, t) = built();
        let mut s = ApiSession::new(&platform, ApiConfig::default());
        let out = FakeProjectEngine::with_default_model(1)
            .with_sample_size(1_000)
            .audit(&mut s, t.target, 3)
            .unwrap();
        let score = score_against_truth(&out, &t, &platform);
        assert!(score.lenient_accuracy >= score.strict_accuracy);
        assert_eq!(score.scored, 1_000);
    }

    #[test]
    fn display_mentions_accuracy() {
        let (platform, t) = built();
        let mut s = ApiSession::new(&platform, ApiConfig::default());
        let out = Twitteraudit::new().audit(&mut s, t.target, 4).unwrap();
        let score = score_against_truth(&out, &t, &platform);
        assert!(score.to_string().contains("accurate"));
    }
}
