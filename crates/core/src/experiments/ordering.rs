//! E1 — §IV-B: does `GET followers/ids` order followers by follow time?
//!
//! The paper saved each target's full follower list once per day and
//! compared the lists day by day: "all the new entries in all the lists of
//! followers were always added at the end", confirming that a size-n prefix
//! of the API response is exactly the n newest followers. This driver
//! replays that methodology against the simulated API.

use fakeaudit_population::scenario::{grow_organic_daily, TargetScenario};
use fakeaudit_population::ClassMix;
use fakeaudit_stats::rng::{derive_seed, rng_for};
use fakeaudit_twitter_api::{ApiConfig, ApiSession};
use fakeaudit_twittersim::snapshot::SnapshotSeries;
use fakeaudit_twittersim::Platform;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Parameters for the ordering experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrderingParams {
    /// Initial follower base.
    pub initial_followers: usize,
    /// Days of daily snapshots.
    pub days: u32,
    /// Organic arrivals per day.
    pub arrivals_per_day: u32,
    /// Random unfollows per day (churn; the paper's targets saw little,
    /// but the methodology must be robust to it).
    pub unfollows_per_day: u32,
}

impl Default for OrderingParams {
    fn default() -> Self {
        Self {
            initial_followers: 2_000,
            days: 30,
            arrivals_per_day: 25,
            unfollows_per_day: 3,
        }
    }
}

/// The experiment's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderingResult {
    /// Parameters used.
    pub params: OrderingParams,
    /// Snapshots taken (days + 1: one before growth starts).
    pub snapshots: usize,
    /// New followers observed across all diffs.
    pub total_added: usize,
    /// Unfollows performed across the run.
    pub total_removed: usize,
    /// Diffs in which every addition sat at the head of the list.
    pub diffs_with_additions_at_head: usize,
    /// Total diffs compared.
    pub diffs: usize,
    /// The paper's thesis: every diff placed additions at the head.
    pub confirms_follow_time_ordering: bool,
}

/// Runs the ordering experiment.
///
/// # Panics
///
/// Panics only on internal inconsistencies (snapshot bookkeeping).
pub fn run_ordering(params: OrderingParams, seed: u64) -> OrderingResult {
    let mut platform = Platform::new();
    let built = TargetScenario::new(
        "ordering_target",
        params.initial_followers,
        ClassMix::new(0.3, 0.1, 0.6).expect("valid mix"),
    )
    .build(&mut platform, derive_seed(seed, "e1-build"))
    .expect("scenario builds");

    let mut series = SnapshotSeries::new();
    let snapshot = |platform: &Platform, series: &mut SnapshotSeries| {
        let mut session = ApiSession::new(platform, ApiConfig::default());
        let list = session.followers_ids(built.target).expect("target exists");
        series
            .push(platform.now(), list)
            .expect("snapshots are chronological");
    };

    snapshot(&platform, &mut series);
    let mut total_added = 0usize;
    let mut total_removed = 0usize;
    let mut churn_rng = rng_for(seed, "e1-churn");
    for day in 0..params.days {
        let added = grow_organic_daily(
            &mut platform,
            built.target,
            1,
            params.arrivals_per_day,
            derive_seed(seed, &format!("e1-day-{day}")),
        )
        .expect("organic growth");
        total_added += added[0].len();
        // Churn: a few random existing followers leave each day.
        for _ in 0..params.unfollows_per_day {
            let list = platform.followers_newest_first(built.target);
            if let Some(&victim) = list.choose(&mut churn_rng) {
                platform
                    .unfollow(victim, built.target)
                    .expect("victim follows the target");
                total_removed += 1;
            }
        }
        snapshot(&platform, &mut series);
    }

    let diffs = series.diffs().expect("at least two snapshots");
    let at_head = diffs.iter().filter(|d| d.additions_at_head).count();
    OrderingResult {
        params,
        snapshots: series.len(),
        total_added,
        total_removed,
        diffs_with_additions_at_head: at_head,
        diffs: diffs.len(),
        confirms_follow_time_ordering: series
            .confirms_follow_time_ordering()
            .expect("at least two snapshots"),
    }
}

/// Renders the experiment's verdict.
pub fn render(r: &OrderingResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E1: follower-list ordering (§IV-B)\n\
         {} snapshots over {} days, {} organic arrivals, {} unfollows",
        r.snapshots, r.params.days, r.total_added, r.total_removed
    );
    let _ = writeln!(
        out,
        "diffs with all new followers at the head of the list: {}/{}",
        r.diffs_with_additions_at_head, r.diffs
    );
    let _ = writeln!(
        out,
        "thesis confirmed: {} (the API returns followers in reverse follow order)",
        r.confirms_follow_time_ordering
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> OrderingParams {
        OrderingParams {
            initial_followers: 300,
            days: 6,
            arrivals_per_day: 10,
            unfollows_per_day: 0,
        }
    }

    #[test]
    fn thesis_is_confirmed() {
        let r = run_ordering(quick_params(), 1);
        assert!(r.confirms_follow_time_ordering);
        assert_eq!(r.diffs, 6);
        assert_eq!(r.diffs_with_additions_at_head, 6);
        assert_eq!(r.total_added, 60);
        assert_eq!(r.snapshots, 7);
        assert_eq!(r.total_removed, 0);
    }

    #[test]
    fn thesis_survives_churn() {
        // Unfollows remove entries without reordering the survivors, so
        // the additions-at-head property must still hold.
        let r = run_ordering(
            OrderingParams {
                unfollows_per_day: 5,
                ..quick_params()
            },
            2,
        );
        assert!(r.confirms_follow_time_ordering);
        assert_eq!(r.total_removed, 30);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            run_ordering(quick_params(), 2),
            run_ordering(quick_params(), 2)
        );
    }

    #[test]
    fn render_mentions_verdict() {
        let s = render(&run_ordering(quick_params(), 3));
        assert!(s.contains("thesis confirmed: true"));
        assert!(s.contains("6/6"));
    }
}
