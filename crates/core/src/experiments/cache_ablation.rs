//! A2 — ablation: what result caching does to freshness.
//!
//! §IV-C shows every tool serving repeat requests from cache in under five
//! seconds, and Twitteraudit serving a *seven-month-old* report as the
//! first response. Caching buys the Table II latencies at the price of
//! staleness: a purchased burst is invisible until the cache entry
//! expires. This driver sweeps the TTL and measures both sides of that
//! trade.

use fakeaudit_analytics::{OnlineService, ServiceProfile};
use fakeaudit_detectors::Socialbakers;
use fakeaudit_population::archetype::{self, TrueClass};
use fakeaudit_population::{ClassMix, TargetScenario};
use fakeaudit_stats::rng::{derive_seed, rng_for_indexed};
use fakeaudit_twittersim::{Platform, SimDuration};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One TTL configuration's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheAblationRow {
    /// Cache TTL in days; `None` = never expires.
    pub ttl_days: Option<u64>,
    /// Fraction of the daily requests served from cache.
    pub cache_hit_rate: f64,
    /// Mean response seconds across the window.
    pub mean_response_secs: f64,
    /// Days after the burst until a response first reflected it (fake share
    /// jumped); `None` if it never did within the window.
    pub burst_visible_after_days: Option<u32>,
}

/// Outcome of the cache ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheAblationResult {
    /// One row per TTL configuration.
    pub rows: Vec<CacheAblationRow>,
    /// Day (0-based, within the observation window) the burst landed.
    pub burst_day: u32,
    /// Observation days.
    pub days: u32,
}

/// Runs the cache ablation: one Socialbakers-style service per TTL, one
/// request per simulated day, a purchased burst landing mid-window.
///
/// # Panics
///
/// Panics on internal inconsistencies only.
pub fn run_cache_ablation(seed: u64) -> CacheAblationResult {
    const DAYS: u32 = 14;
    const BURST_DAY: u32 = 5;
    const FOLLOWERS: usize = 6_000;
    const BOUGHT: usize = 900;

    let ttls: [Option<u64>; 3] = [Some(0), Some(7), None];
    let mut rows = Vec::new();
    for (cfg_idx, ttl_days) in ttls.into_iter().enumerate() {
        let mut platform = Platform::new();
        let built = TargetScenario::new(
            "cache_target",
            FOLLOWERS,
            ClassMix::new(0.25, 0.01, 0.74).expect("valid mix"),
        )
        .build(&mut platform, derive_seed(seed, "a2-build"))
        .expect("scenario builds");

        let profile = ServiceProfile {
            cache_ttl_days: ttl_days,
            daily_quota: None,
            ..ServiceProfile::socialbakers()
        };
        let mut service = OnlineService::new(
            Socialbakers::new(),
            profile,
            derive_seed(seed, &format!("a2-svc-{cfg_idx}")),
        );

        let baseline_fake = {
            let r = service
                .request(&platform, built.target)
                .expect("audit runs");
            r.outcome.fake_pct()
        };

        let mut hits = 0u32;
        let mut total_secs = 0.0;
        let mut requests = 0u32;
        let mut burst_visible: Option<u32> = None;
        for day in 0..DAYS {
            platform.advance_clock(SimDuration::from_days(1));
            if day == BURST_DAY {
                for i in 0..BOUGHT {
                    let mut rng = rng_for_indexed(seed, &format!("a2-bought-{cfg_idx}"), i as u64);
                    let now = platform.now();
                    let mut acc = archetype::generate(
                        &mut rng,
                        TrueClass::Fake,
                        format!("a2_bought_{cfg_idx}_{i}"),
                        now,
                    );
                    if acc.profile.created_at > now {
                        acc.profile.created_at = now;
                    }
                    let id = platform
                        .register(acc.profile, acc.timeline)
                        .expect("unique names");
                    platform.follow(id, built.target).expect("valid follow");
                }
            }
            let r = service
                .request(&platform, built.target)
                .expect("audit runs");
            requests += 1;
            total_secs += r.response_secs;
            if r.served_from_cache {
                hits += 1;
            }
            if burst_visible.is_none()
                && day >= BURST_DAY
                && r.outcome.fake_pct() > baseline_fake + 5.0
            {
                burst_visible = Some(day - BURST_DAY);
            }
        }
        rows.push(CacheAblationRow {
            ttl_days,
            cache_hit_rate: f64::from(hits) / f64::from(requests),
            mean_response_secs: total_secs / f64::from(requests),
            burst_visible_after_days: burst_visible,
        });
    }
    CacheAblationResult {
        rows,
        burst_day: BURST_DAY,
        days: DAYS,
    }
}

/// Renders the TTL sweep.
pub fn render(r: &CacheAblationResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "A2: cache-policy ablation ({} daily requests, burst on day {})\n\
         {:>10}{:>12}{:>16}{:>22}",
        r.days, r.burst_day, "TTL", "hit rate", "mean resp (s)", "burst visible after"
    );
    for row in &r.rows {
        let _ = writeln!(
            out,
            "{:>10}{:>11.0}%{:>16.1}{:>22}",
            row.ttl_days
                .map_or("never".to_string(), |d| format!("{d}d")),
            row.cache_hit_rate * 100.0,
            row.mean_response_secs,
            row.burst_visible_after_days
                .map_or("never".to_string(), |d| format!("{d} days")),
        );
    }
    let _ = writeln!(
        out,
        "caching buys the sub-5s repeat responses of §IV-C at the price of\n\
         staleness: with an unbounded cache (Twitteraudit's policy) a\n\
         purchased burst never surfaces."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> &'static CacheAblationResult {
        static R: std::sync::OnceLock<CacheAblationResult> = std::sync::OnceLock::new();
        R.get_or_init(|| run_cache_ablation(1))
    }

    #[test]
    fn three_ttl_configurations() {
        assert_eq!(result().rows.len(), 3);
        assert_eq!(result().rows[0].ttl_days, Some(0));
        assert_eq!(result().rows[2].ttl_days, None);
    }

    #[test]
    fn no_cache_sees_the_burst_immediately() {
        let no_cache = &result().rows[0];
        assert_eq!(no_cache.cache_hit_rate, 0.0);
        assert_eq!(no_cache.burst_visible_after_days, Some(0));
    }

    #[test]
    fn unbounded_cache_never_sees_the_burst() {
        let unbounded = &result().rows[2];
        assert!(unbounded.cache_hit_rate > 0.99);
        assert_eq!(unbounded.burst_visible_after_days, None);
    }

    #[test]
    fn ttl_trades_latency_for_freshness() {
        let rows = &result().rows;
        // Hit rate rises with TTL; mean response falls.
        assert!(rows[0].cache_hit_rate < rows[1].cache_hit_rate);
        assert!(rows[1].cache_hit_rate <= rows[2].cache_hit_rate + 1e-9);
        assert!(rows[0].mean_response_secs > rows[2].mean_response_secs);
        // The 7-day TTL sees the burst when the entry expires (within 7d).
        let visible = rows[1]
            .burst_visible_after_days
            .expect("eventually visible");
        assert!(visible <= 7, "visible after {visible} days");
    }

    #[test]
    fn render_lists_policies() {
        let s = render(result());
        assert!(s.contains("never"));
        assert!(s.contains("7d"));
        assert!(s.contains("0d"));
    }
}
