//! T2 — Table II: response time to the first analysis request.
//!
//! The thirteen Italian average-class accounts are rebuilt synthetically;
//! the three StatusPeople results and one Twitteraudit result the vendors
//! had evidently pre-computed (§IV-C: responses of 2–3 s) are reproduced by
//! pre-warming those services' caches before the measured request.

use crate::experiments::Scale;
use crate::panel::AuditPanel;
use fakeaudit_analytics::ServiceError;
use fakeaudit_detectors::{FakeProjectEngine, ToolId};
use fakeaudit_population::testbed::{PaperResponseTimes, PaperTarget};
use fakeaudit_stats::rng::derive_seed;
use fakeaudit_telemetry::Telemetry;
use fakeaudit_twittersim::{Platform, SimDuration};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One measured row of Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Screen name.
    pub screen_name: String,
    /// Published follower count.
    pub followers: u64,
    /// Measured first-response seconds per tool (FC, TA, SP, SB).
    pub measured: PaperResponseTimes,
    /// The paper's Table II values for the same account.
    pub paper: PaperResponseTimes,
    /// Which tools served the first request from cache.
    pub cached: Vec<ToolId>,
}

/// The full Table II result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// Rows in the paper's order.
    pub rows: Vec<Table2Row>,
}

/// Runs the Table II experiment.
///
/// # Errors
///
/// Propagates [`ServiceError`] from any audit.
///
/// # Panics
///
/// Panics if the testbed data is inconsistent (cannot happen with the
/// shipped [`fakeaudit_population::testbed::PAPER_TARGETS`]).
pub fn run_table2(scale: Scale, seed: u64) -> Result<Table2, ServiceError> {
    run_table2_with_telemetry(scale, seed, Telemetry::disabled())
}

/// [`run_table2`] with every panel's signals routed into `telemetry` —
/// the spans and histograms decompose each Table II cell into rate-limit
/// wait, HTTP latency and site overhead.
///
/// # Errors
///
/// Propagates [`ServiceError`] from any audit.
///
/// # Panics
///
/// As [`run_table2`].
pub fn run_table2_with_telemetry(
    scale: Scale,
    seed: u64,
    telemetry: Telemetry,
) -> Result<Table2, ServiceError> {
    let fc_engine = FakeProjectEngine::with_default_model(derive_seed(seed, "t2-model"))
        .with_sample_size(scale.fc_sample);
    let mut rows = Vec::new();
    for (i, target) in PaperTarget::table2_targets().into_iter().enumerate() {
        let paper = target.response.expect("table2 targets have responses");
        let target_seed = derive_seed(seed, &format!("t2-{i}"));
        let mut platform = Platform::new();
        let built = target
            .scenario(scale.materialize_cap)
            .build(&mut platform, target_seed)
            .expect("scenario builds");
        let mut panel = AuditPanel::with_fc_engine(fc_engine.clone(), target_seed)
            .with_telemetry(telemetry.clone());

        // Reproduce the vendors' pre-computed results.
        let mut cached = Vec::new();
        if target.sp_cached {
            panel.prewarm(ToolId::StatusPeople, &platform, built.target)?;
            cached.push(ToolId::StatusPeople);
        }
        if target.ta_cached {
            panel.prewarm(ToolId::Twitteraudit, &platform, built.target)?;
            cached.push(ToolId::Twitteraudit);
        }
        // The paper issued its requests days after the vendors' crawls.
        platform.advance_clock(SimDuration::from_days(2));

        let result = panel.request_all(&platform, built.target)?;
        let secs = |tool: ToolId| result.of(tool).response_secs;
        rows.push(Table2Row {
            screen_name: target.screen_name.to_string(),
            followers: target.followers,
            measured: PaperResponseTimes {
                fc: secs(ToolId::FakeClassifier),
                ta: secs(ToolId::Twitteraudit),
                sp: secs(ToolId::StatusPeople),
                sb: secs(ToolId::Socialbakers),
            },
            paper,
            cached,
        });
    }
    Ok(Table2 { rows })
}

/// Renders measured-vs-paper response times.
pub fn render(table: &Table2) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table II: response time to first analysis request (seconds)\n\
         {:<18}{:>9} | {:>6}{:>6}{:>6}{:>6} | {:>6}{:>6}{:>6}{:>6}",
        "profile", "followers", "FC", "TA", "SP", "SB", "FC*", "TA*", "SP*", "SB*"
    );
    for r in &table.rows {
        let _ = writeln!(
            out,
            "@{:<17}{:>9} | {:>6.0}{:>6.0}{:>6.0}{:>6.0} | {:>6.0}{:>6.0}{:>6.0}{:>6.0}{}",
            r.screen_name,
            r.followers,
            r.measured.fc,
            r.measured.ta,
            r.measured.sp,
            r.measured.sb,
            r.paper.fc,
            r.paper.ta,
            r.paper.sp,
            r.paper.sb,
            if r.cached.is_empty() {
                String::new()
            } else {
                format!(
                    "   (cached: {})",
                    r.cached
                        .iter()
                        .map(|t| t.abbrev())
                        .collect::<Vec<_>>()
                        .join(",")
                )
            }
        );
    }
    let _ = writeln!(out, "(* = paper's measurement)");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_table() -> &'static Table2 {
        // Computing the 13-target table once keeps debug-mode test time
        // reasonable; every test reads the same immutable result.
        static TABLE: std::sync::OnceLock<Table2> = std::sync::OnceLock::new();
        TABLE.get_or_init(|| run_table2(Scale::quick(), 7).unwrap())
    }

    #[test]
    fn thirteen_rows_in_paper_order() {
        let t = quick_table();
        assert_eq!(t.rows.len(), 13);
        assert_eq!(t.rows[0].screen_name, "giovanniallevi");
        assert_eq!(t.rows[12].screen_name, "RudyZerbi");
    }

    #[test]
    fn cached_rows_answer_in_under_five_seconds() {
        let t = quick_table();
        let pinuccio = t
            .rows
            .iter()
            .find(|r| r.screen_name == "pinucciotwit")
            .unwrap();
        assert!(pinuccio.cached.contains(&ToolId::StatusPeople));
        assert!(pinuccio.cached.contains(&ToolId::Twitteraudit));
        assert!(
            pinuccio.measured.sp < 5.0,
            "SP cached {:.1}",
            pinuccio.measured.sp
        );
        assert!(
            pinuccio.measured.ta < 5.0,
            "TA cached {:.1}",
            pinuccio.measured.ta
        );
        // FC and SB are never pre-cached: full first-response times.
        assert!(pinuccio.measured.fc > 4.0 * pinuccio.measured.sp);
    }

    #[test]
    fn tool_ordering_matches_paper_on_uncached_rows() {
        // At quick scale the TA/SP middle of the ordering can compress
        // (TA's lookup schedule shrinks with the materialisation cap), but
        // the paper's extremes must hold on every uncached row: FC is the
        // slowest tool, SB the fastest. The full-scale bench reproduces the
        // complete FC > TA > SP > SB ordering.
        let t = quick_table();
        for r in t.rows.iter().filter(|r| r.cached.is_empty()) {
            for mid in [r.measured.ta, r.measured.sp] {
                assert!(
                    r.measured.fc > mid,
                    "@{}: FC {:.0}s not the slowest",
                    r.screen_name,
                    r.measured.fc
                );
                assert!(
                    r.measured.sb < mid,
                    "@{}: SB {:.0}s not the fastest",
                    r.screen_name,
                    r.measured.sb
                );
            }
        }
    }

    #[test]
    fn fc_grows_with_follower_count() {
        // Note: at quick scale the FC lookup schedule is fixed (sample
        // capped), but followers/ids pages still grow with the nominal
        // count.
        let t = quick_table();
        let first = &t.rows[0]; // 13.9K
        let last = &t.rows[12]; // 79.7K
        assert!(
            last.measured.fc > first.measured.fc,
            "FC {:.0}s at 79.7K vs {:.0}s at 13.9K",
            last.measured.fc,
            first.measured.fc
        );
    }

    #[test]
    fn render_contains_every_account() {
        let t = quick_table();
        let s = render(t);
        for r in &t.rows {
            assert!(s.contains(&r.screen_name));
        }
        assert!(s.contains("cached: TA,SP") || s.contains("cached: SP,TA"));
    }

    #[test]
    fn deterministic() {
        // Re-running with the cached table's seed must reproduce it.
        assert_eq!(&run_table2(Scale::quick(), 7).unwrap(), quick_table());
    }

    #[test]
    fn telemetry_run_matches_untraced_run() {
        let tel = Telemetry::enabled();
        let traced = run_table2_with_telemetry(Scale::quick(), 7, tel.clone()).unwrap();
        assert_eq!(
            &traced,
            quick_table(),
            "instrumentation must not perturb the simulation"
        );
        let snap = tel.snapshot();
        // 13 targets × 4 tools, minus the 4 pre-warmed (cached) first hits.
        assert_eq!(snap.counter_total("cache.hit"), 4);
        assert_eq!(snap.counter_total("cache.miss"), 13 * 4 - 4);
        assert!(snap.counter_total("api.calls") > 0);
        assert!(!tel.events().is_empty());
    }
}
