//! E10 — the audit service under an unreliable API (extension).
//!
//! Every earlier driver assumes the platform API answers; the paper's
//! §IV-C response-time bands were measured against vendors who clearly
//! could not always count on that. This driver asks the production
//! question: *when the upstream API starts failing, what does each
//! resilience layer buy?* It sweeps an injected per-call fault rate
//! against three service arms — no retries, capped-backoff retries, and
//! retries behind a per-tool circuit breaker that degrades to the last
//! cached report — and reports goodput (answered ÷ offered), tail
//! latency, the stale-served fraction and how long the circuit spent
//! open.
//!
//! Construction: every target is prewarmed once (so a stale answer
//! always exists) and the caches run with a **zero TTL** — entries are
//! stored but never fresh, forcing one cold audit per request so each
//! request is fully exposed to the injected faults. Only the two
//! profile-only tools (StatusPeople, Twitteraudit) are driven: their
//! per-audit call counts are fixed by the sample frame alone, so the
//! fault/failure pattern is a pure function of the seeded fault stream.
//! Arrivals are an arithmetic round-robin trace — no randomness — and
//! the three arms at a given fault rate clone the same prewarmed
//! services, so they face the same upstream fault sequence.
//!
//! Determinism: same seed ⇒ byte-identical tables, same argument as E8
//! (single-threaded event loop per cell, `crossbeam` fan-out collected
//! in grid order).

use fakeaudit_analytics::{BreakerConfig, OnlineService, ServiceProfile};
use fakeaudit_detectors::engine::FollowerAuditor;
use fakeaudit_detectors::{StatusPeople, ToolId, Twitteraudit};
use fakeaudit_server::{OverloadPolicy, Request, ServerConfig, ServerSim};
use fakeaudit_stats::rng::derive_seed;
use fakeaudit_store::SharedWriter;
use fakeaudit_telemetry::Telemetry;
use fakeaudit_twitter_api::fault::{FaultPlan, RetryPolicy};
use fakeaudit_twittersim::AccountId;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

use super::service_load::build_targets;
use super::Scale;

/// One `(arm, fault rate)` cell of the chaos sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosRow {
    /// Resilience arm label (`no-retry` / `retry` / `retry+breaker`).
    pub arm: String,
    /// Injected per-call fault rate (before burst correlation).
    pub fault_rate: f64,
    /// Requests that arrived within the window.
    pub offered: u64,
    /// Requests answered by a worker (fresh audit or breaker-stale).
    pub completed: u64,
    /// Requests answered from stale cache by the breaker while open.
    pub stale_served: u64,
    /// Requests whose audit failed (retry budget exhausted).
    pub failed: u64,
    /// Requests dropped at the deadline (the client hung up).
    pub expired: u64,
    /// Requests refused at admission.
    pub shed: u64,
    /// Answered requests ÷ offered requests.
    pub goodput: f64,
    /// Median end-to-end latency (simulated seconds).
    pub p50: f64,
    /// 99th-percentile latency.
    pub p99: f64,
    /// Total API retry attempts across the cell.
    pub retries: u64,
    /// Injected faults ÷ API call attempts actually observed.
    pub observed_fault_rate: f64,
    /// Total simulated seconds the circuit spent open (both tools).
    pub breaker_open_secs: f64,
    /// Times the circuit tripped closed → open.
    pub breaker_trips: u64,
}

/// Outcome of the chaos sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosResult {
    /// Rows grouped by arm, then ascending fault rate.
    pub rows: Vec<ChaosRow>,
    /// The swept per-call fault rates.
    pub rates: Vec<f64>,
    /// Arm labels in sweep order.
    pub arms: Vec<String>,
    /// Trace window in simulated seconds.
    pub duration_secs: f64,
    /// Targets in the round-robin set.
    pub targets: usize,
    /// Workers per tool.
    pub workers_per_tool: usize,
    /// End-to-end request deadline (simulated seconds).
    pub deadline_secs: f64,
}

/// One resilience arm: a retry policy and an optional breaker.
#[derive(Clone, Copy)]
struct Arm {
    label: &'static str,
    retry: RetryPolicy,
    breaker: Option<BreakerConfig>,
}

/// The three arms the acceptance story compares, in increasing order of
/// resilience machinery.
fn arms() -> [Arm; 3] {
    let retry = RetryPolicy::standard();
    // Trigger-happier than `BreakerConfig::standard()`: the sweep's
    // audits fail in single-digit percents once retries absorb most
    // faults, and the circuit must still trip on the clusters the bursty
    // plan produces within a ~90-request window.
    let breaker = BreakerConfig {
        window: 8,
        failure_threshold: 0.25,
        min_samples: 2,
        open_secs: 600.0,
        half_open_probes: 1,
    };
    [
        Arm {
            label: "no-retry",
            retry: RetryPolicy::none(),
            breaker: None,
        },
        Arm {
            label: "retry",
            retry,
            breaker: None,
        },
        Arm {
            label: "retry+breaker",
            retry,
            breaker: Some(breaker),
        },
    ]
}

/// The two profile-only services, quota-free, store-only caches (zero
/// TTL), prewarmed for every target so the breaker always has a stale
/// answer to degrade to.
fn build_chaos_services(
    seed: u64,
    platform: &fakeaudit_twittersim::Platform,
    targets: &[fakeaudit_population::BuiltTarget],
) -> (OnlineService<StatusPeople>, OnlineService<Twitteraudit>) {
    let chaos_profile = |p: ServiceProfile| ServiceProfile {
        daily_quota: None,
        cache_ttl_days: Some(0),
        ..p
    };
    let mut sp = OnlineService::new(
        StatusPeople::new(),
        chaos_profile(ServiceProfile::statuspeople()),
        derive_seed(seed, "e10-svc-sp"),
    );
    let mut ta = OnlineService::new(
        Twitteraudit::new(),
        chaos_profile(ServiceProfile::twitteraudit()),
        derive_seed(seed, "e10-svc-ta"),
    );
    for t in targets {
        sp.prewarm(platform, t.target).expect("sp prewarm");
        ta.prewarm(platform, t.target).expect("ta prewarm");
    }
    (sp, ta)
}

/// The deterministic arrival trace: strict round-robin over the two
/// tools and the target set at a fixed inter-arrival gap. No randomness
/// — the fault plan is the only source of variation in the sweep.
fn chaos_trace(duration_secs: f64, step_secs: f64, targets: &[AccountId]) -> Vec<Request> {
    let tools = [ToolId::StatusPeople, ToolId::Twitteraudit];
    let mut out = Vec::new();
    let mut i = 0u64;
    loop {
        let at = step_secs * (i + 1) as f64;
        if at > duration_secs {
            break;
        }
        out.push(Request {
            id: i,
            at,
            tool: tools[(i % 2) as usize],
            target: targets[(i as usize / 2) % targets.len()],
        });
        i += 1;
    }
    out
}

/// Arms one cloned service for a sweep cell.
fn armed<A: FollowerAuditor + Clone>(
    svc: &OnlineService<A>,
    plan: FaultPlan,
    arm: Arm,
    telemetry: &Telemetry,
) -> OnlineService<A> {
    let mut s = svc.clone().with_telemetry(telemetry.clone());
    if !plan.is_none() {
        s = s.with_fault_plan(plan, arm.retry);
    }
    if let Some(cfg) = arm.breaker {
        s = s.with_breaker(cfg);
    }
    s
}

/// The inputs every sweep cell shares: the prewarmed world, the trace,
/// the seed/config, and the history writer when the sweep persists.
struct CellContext<'a> {
    platform: &'a fakeaudit_twittersim::Platform,
    base: &'a (OnlineService<StatusPeople>, OnlineService<Twitteraudit>),
    trace: &'a [Request],
    seed: u64,
    config: ServerConfig,
    persist: Option<SharedWriter>,
}

/// Runs one sweep cell: fresh clones, one deterministic event loop, one
/// bounded telemetry buffer harvested into the row.
fn run_cell(ctx: &CellContext<'_>, arm: Arm, rate: f64) -> ChaosRow {
    // Bounded event buffer: a chaos cell emits an unbounded stream of
    // fault/retry spans under high rates; the metrics the row needs
    // survive dropping old trace events.
    let telemetry = Telemetry::with_event_capacity(4_096);
    let plan = FaultPlan::bursty(derive_seed(ctx.seed, "e10-plan"), rate, 6.0);
    let mut sim = ServerSim::with_telemetry(ctx.platform, ctx.config, telemetry.clone());
    if let Some(writer) = &ctx.persist {
        sim.persist_into(writer.clone());
    }
    sim.register(Box::new(armed(&ctx.base.0, plan, arm, &telemetry)));
    sim.register(Box::new(armed(&ctx.base.1, plan, arm, &telemetry)));
    let report = sim.run(ctx.trace);
    let snap = telemetry.snapshot();
    let calls = snap.counter_total("api.calls");
    let faults = snap.counter_total("api.faults");
    // `0.0.max(..)` also normalises the `-0.0` an empty sum yields.
    let breaker_open_secs = 0.0f64.max(
        ["SP", "TA"]
            .iter()
            .filter_map(|tool| snap.gauge("breaker.open_secs", &[("tool", tool)]))
            .sum(),
    );
    let breaker_trips = ["SP", "TA"]
        .iter()
        .filter_map(|tool| snap.counter("breaker.transitions", &[("tool", tool), ("to", "open")]))
        .sum();
    let offered = report.offered();
    let answered = report.completed() + report.degraded();
    ChaosRow {
        arm: arm.label.to_string(),
        fault_rate: rate,
        offered,
        completed: report.completed(),
        stale_served: snap.counter_total("service.stale_served"),
        failed: report.failed(),
        expired: report.expired(),
        shed: report.shed(),
        goodput: if offered > 0 {
            answered as f64 / offered as f64
        } else {
            0.0
        },
        p50: report.latency_percentile(0.5),
        p99: report.latency_percentile(0.99),
        retries: snap.counter_total("api.retries"),
        observed_fault_rate: if calls > 0 {
            faults as f64 / calls as f64
        } else {
            0.0
        },
        breaker_open_secs,
        breaker_trips,
    }
}

/// Runs the E10 chaos sweep.
///
/// # Panics
///
/// Panics on internal inconsistencies only (scenario build, prewarm).
pub fn run_chaos(scale: Scale, seed: u64) -> ChaosResult {
    run_chaos_persisted(scale, seed, None)
}

/// Runs the E10 chaos sweep, optionally appending every answered audit
/// to a shared history-store writer.
///
/// With a writer the cells run serially in grid order so the persisted
/// segment stream is byte-deterministic; without one the sweep keeps the
/// `crossbeam` fan-out.
///
/// # Panics
///
/// Panics on internal inconsistencies only (scenario build, prewarm).
pub fn run_chaos_persisted(scale: Scale, seed: u64, persist: Option<SharedWriter>) -> ChaosResult {
    const TARGETS: usize = 4;
    let quick = scale.materialize_cap < 10_000;
    let rates: Vec<f64> = if quick {
        vec![0.0, 0.10]
    } else {
        vec![0.0, 0.05, 0.10, 0.20]
    };
    let duration_secs = if quick { 3_000.0 } else { 9_000.0 };
    let step_secs = 16.0;
    let config = ServerConfig {
        workers_per_tool: 2,
        queue_capacity: 8,
        policy: OverloadPolicy::Shed,
        degraded_secs: 0.5,
        deadline_secs: Some(240.0),
    };

    let (platform, targets) = build_targets(scale, seed, TARGETS);
    let base = build_chaos_services(seed, &platform, &targets);
    let ranked: Vec<AccountId> = targets.iter().map(|t| t.target).collect();
    let trace = chaos_trace(duration_secs, step_secs, &ranked);

    let arm_list = arms();
    let cells: Vec<(usize, usize)> = (0..arm_list.len())
        .flat_map(|a| (0..rates.len()).map(move |r| (a, r)))
        .collect();
    let ctx = CellContext {
        platform: &platform,
        base: &base,
        trace: &trace,
        seed,
        config,
        persist,
    };
    let rows: Vec<ChaosRow> = if ctx.persist.is_some() {
        cells
            .iter()
            .map(|&(a, r)| run_cell(&ctx, arm_list[a], rates[r]))
            .collect()
    } else {
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = cells
                .iter()
                .map(|&(a, r)| {
                    let ctx = &ctx;
                    let (arm, rate) = (arm_list[a], rates[r]);
                    s.spawn(move |_| run_cell(ctx, arm, rate))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep cell panicked"))
                .collect()
        })
        .expect("crossbeam scope")
    };

    ChaosResult {
        rows,
        rates,
        arms: arm_list.iter().map(|a| a.label.to_string()).collect(),
        duration_secs,
        targets: TARGETS,
        workers_per_tool: config.workers_per_tool,
        deadline_secs: config.deadline_secs.expect("chaos sweep sets a deadline"),
    }
}

/// Renders the sweep table.
pub fn render(r: &ChaosResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E10: audit under an unreliable API ({} targets, {} workers/tool, \
         {:.0}s deadline, {:.0}s window)",
        r.targets, r.workers_per_tool, r.deadline_secs, r.duration_secs
    );
    let _ = writeln!(
        out,
        "{:<15}{:>6}{:>9}{:>8}{:>7}{:>7}{:>7}{:>9}{:>9}{:>9}{:>9}{:>7}",
        "arm",
        "rate",
        "offered",
        "answrd",
        "stale",
        "fail",
        "expd",
        "goodput",
        "p50 (s)",
        "p99 (s)",
        "open(s)",
        "trips"
    );
    for row in &r.rows {
        let _ = writeln!(
            out,
            "{:<15}{:>5.0}%{:>9}{:>8}{:>7}{:>7}{:>7}{:>8.0}%{:>9.1}{:>9.1}{:>9.0}{:>7}",
            row.arm,
            row.fault_rate * 100.0,
            row.offered,
            row.completed,
            row.stale_served,
            row.failed,
            row.expired,
            row.goodput * 100.0,
            row.p50,
            row.p99,
            row.breaker_open_secs,
            row.breaker_trips,
        );
    }
    let _ = writeln!(
        out,
        "reading order: at a given fault rate, retries convert most failed\n\
         calls into slower successes, and the breaker converts the failure\n\
         clusters that exhaust retries into instant stale answers — goodput\n\
         climbs arm over arm while p99 stays bounded by the deadline."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> &'static ChaosResult {
        static R: std::sync::OnceLock<ChaosResult> = std::sync::OnceLock::new();
        R.get_or_init(|| run_chaos(Scale::quick(), 7))
    }

    fn row<'a>(r: &'a ChaosResult, arm: &str, rate: f64) -> &'a ChaosRow {
        r.rows
            .iter()
            .find(|row| row.arm == arm && row.fault_rate == rate)
            .expect("cell exists")
    }

    #[test]
    fn grid_covers_arms_by_rates() {
        let r = result();
        assert_eq!(r.rows.len(), r.arms.len() * r.rates.len());
        for arm in &r.arms {
            assert_eq!(
                r.rows.iter().filter(|row| &row.arm == arm).count(),
                r.rates.len(),
                "{arm}"
            );
        }
    }

    #[test]
    fn same_seed_same_table() {
        let again = run_chaos(Scale::quick(), 7);
        assert_eq!(result(), &again);
        assert_eq!(render(result()), render(&again));
    }

    #[test]
    fn conservation_holds_in_every_cell() {
        for row in &result().rows {
            assert_eq!(
                row.completed + row.shed + row.failed + row.expired,
                row.offered,
                "{} @ {}",
                row.arm,
                row.fault_rate
            );
        }
    }

    #[test]
    fn fault_free_arms_are_identical_and_lossless() {
        let r = result();
        let rows: Vec<_> = r.rows.iter().filter(|row| row.fault_rate == 0.0).collect();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(
                row.goodput, 1.0,
                "{}: fault-free arm must answer all",
                row.arm
            );
            assert_eq!(row.failed, 0);
            assert_eq!(row.stale_served, 0);
            assert_eq!(row.retries, 0);
            assert_eq!(row.observed_fault_rate, 0.0);
            assert_eq!(row.breaker_trips, 0);
        }
        // The resilience machinery is pure overhead when nothing fails:
        // all three arms must produce the same service numbers.
        for later in &rows[1..] {
            assert_eq!(rows[0].completed, later.completed);
            assert_eq!(rows[0].p50, later.p50);
            assert_eq!(rows[0].p99, later.p99);
        }
    }

    #[test]
    fn goodput_strictly_improves_with_each_resilience_layer() {
        let r = result();
        let rate = 0.10;
        let none = row(r, "no-retry", rate);
        let retry = row(r, "retry", rate);
        let breaker = row(r, "retry+breaker", rate);
        assert!(
            none.goodput < retry.goodput,
            "retries must beat bare failures: {} vs {}",
            none.goodput,
            retry.goodput
        );
        assert!(
            retry.goodput < breaker.goodput,
            "the breaker must beat bare retries: {} vs {}",
            retry.goodput,
            breaker.goodput
        );
    }

    #[test]
    fn faulty_cells_show_the_machinery_working() {
        let r = result();
        let rate = 0.10;
        let none = row(r, "no-retry", rate);
        let retry = row(r, "retry", rate);
        let breaker = row(r, "retry+breaker", rate);
        assert_eq!(none.retries, 0, "no-retry arm must never retry");
        assert!(retry.retries > 0, "retry arm must retry");
        assert!(none.observed_fault_rate > 0.05, "faults must actually fire");
        assert!(none.failed > retry.failed, "retries must absorb failures");
        assert!(breaker.breaker_trips > 0, "circuit must trip at 10%");
        assert!(breaker.breaker_open_secs > 0.0);
        assert!(breaker.stale_served > 0, "open circuit must serve stale");
        assert_eq!(none.breaker_trips, 0);
        assert_eq!(retry.breaker_trips, 0);
    }

    #[test]
    fn render_lists_every_arm() {
        let text = render(result());
        for arm in ["no-retry", "retry", "retry+breaker"] {
            assert!(text.contains(arm), "{arm} missing:\n{text}");
        }
        assert!(text.contains("goodput"));
    }
}
