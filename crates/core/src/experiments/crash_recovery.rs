//! E15 — crash recovery under fault injection (extension).
//!
//! The durability counterpart to E10's request-path chaos: instead of
//! an unreliable upstream API, the *disk* misbehaves. Every run drives
//! the PR-10 [`StoreWriter`] over the fault-injecting [`MemIo`] — a
//! POSIX-pessimistic in-memory filesystem where unsynced bytes die on
//! reboot — kills it at a seeded I/O-operation index (before the op, a
//! torn write, or just after), reboots the disk, and reopens with
//! [`Store::open_with`]. The sweep crosses those seeded crash points
//! with every [`FsyncPolicy`] × crash-mode cell and scores what the
//! ack meant: rows acked vs rows recovered, acked rows lost, WAL rows
//! replayed, segments quarantined.
//!
//! The headline numbers are the durability floors the store promises:
//! `on-append` must lose **zero** acked rows at any crash point,
//! `on-flush` must keep every row whose segment flush was acked, and
//! even `never` must recover an ordered prefix of the appended stream
//! — recovery may shorten history but can never reorder or fabricate
//! it (the driver panics on a prefix violation rather than scoring
//! it). A separate corruption arm writes clean multi-segment stores,
//! flips one seeded bit per store, and checks the degrade contract:
//! `verify` flags the damage, `open` quarantines the bad segment and
//! serves the rest — never a failed open, never silently wrong rows.
//!
//! Determinism: the fault script is keyed on the mutating-op counter
//! and the workload performs the identical op sequence every run, so
//! the crash-point space is measured by a fault-free dry run and the
//! seeded points always land inside the append/flush path. Same seed
//! ⇒ byte-identical tables.

use fakeaudit_stats::rng::derive_seed;
use fakeaudit_store::{
    verify_with, AuditRecord, CrashMode, FaultScript, FsyncPolicy, MemIo, Projection, ScanOptions,
    Store, StoreIo, StoreWriter,
};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

use super::Scale;

/// Store directory inside the simulated filesystem.
const DIR: &str = "/history";

/// Rows per flushed segment; small enough that every run crosses
/// several flush boundaries.
const THRESHOLD: usize = 5;

/// Segments per store in the corruption arm.
const CORRUPT_SEGMENTS: u64 = 6;

/// One `fsync policy × crash mode` cell of the sweep, aggregated over
/// every seeded crash point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashCell {
    /// Fsync policy label (`never` / `on-flush` / `on-append`).
    pub fsync: String,
    /// Crash mode label (`before` / `torn` / `after`).
    pub mode: String,
    /// Crash points swept (one crashed run each).
    pub runs: u64,
    /// Mutating I/O ops a fault-free run performs — the space the
    /// seeded crash points are drawn from.
    pub op_space: u64,
    /// Appends acked across all runs (the writer returned `Ok`).
    pub rows_acked: u64,
    /// Rows covered by acked segment flushes across all runs.
    pub rows_flush_acked: u64,
    /// Rows present after reboot + recovery across all runs.
    pub rows_recovered: u64,
    /// Σ max(0, acked − recovered): acked rows the crash destroyed.
    pub acked_rows_lost: u64,
    /// Worst single-run acked loss.
    pub max_acked_lost: u64,
    /// Σ max(0, flush-acked − recovered): flushed rows destroyed.
    pub flushed_rows_lost: u64,
    /// Acked rows replayed from WAL tails during recovery.
    pub wal_rows_recovered: u64,
    /// Segments quarantined during recovery (torn flushes land as
    /// `.tmp` removals, not quarantines, so this stays 0 here).
    pub quarantined_segments: u64,
}

/// The corruption arm: one seeded bit flip per clean multi-segment
/// store, then verify + reopen.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorruptionSummary {
    /// Stores written and flipped (one bit each).
    pub flips: u64,
    /// Rows each store held before the flip.
    pub rows_per_store: u64,
    /// Flips `verify` reported as corruption before any repair.
    pub verify_flagged: u64,
    /// `Store::open` calls that failed (the contract demands 0).
    pub opens_failed: u64,
    /// Segments quarantined across all reopens.
    pub quarantined_segments: u64,
    /// Rows still served across all reopens (around the quarantine).
    pub rows_served: u64,
    /// Rows expected if every flip costs exactly its one segment.
    pub rows_expected: u64,
}

/// Outcome of the E15 crash-recovery sweep.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashRecoveryResult {
    /// One row per `fsync × mode` cell, in sweep order.
    pub cells: Vec<CrashCell>,
    /// The seeded-bit-flip corruption arm.
    pub corruption: CorruptionSummary,
    /// Crash points sampled per cell.
    pub crash_points: u64,
    /// Rows each crashed run tries to append.
    pub rows_per_run: u64,
    /// Flush threshold (rows per segment).
    pub flush_threshold: u64,
}

/// SplitMix64 — the one-liner generator the fault scripts key on; kept
/// local so the sweep's op indices never depend on `rand` internals.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A distinct, recognisable row: `trace_id` carries the append index,
/// which is how recovery's prefix property is checked.
fn row(i: u64) -> AuditRecord {
    AuditRecord {
        target: 100 + i % 5,
        ts_micros: i as i64 * 45_000_000,
        tool: ["FC", "TA", "SP", "SB"][(i % 4) as usize].to_string(),
        verdict: ["fake", "inactive", "genuine"][(i % 3) as usize].to_string(),
        outcome: "completed".to_string(),
        fake_ratio: i as f64,
        fake_count: i * 3,
        sample_size: 900,
        api_calls: 4,
        trace_id: i,
    }
}

/// Appends `rows` rows (or as many as the injected fault allows) and
/// returns (acked appends, rows covered by acked flushes).
fn drive_writer(io: &Arc<MemIo>, fsync: FsyncPolicy, rows: u64) -> (u64, u64) {
    let mut writer =
        StoreWriter::open_with(Arc::clone(io) as Arc<dyn StoreIo>, DIR, THRESHOLD, fsync)
            .expect("open on pristine dir performs no mutating I/O");
    let mut acked = 0u64;
    let mut flush_acked = 0u64;
    for i in 0..rows {
        match writer.append(row(i)) {
            Ok(flush) => {
                acked += 1;
                if let Some(info) = flush {
                    flush_acked += info.rows as u64;
                }
            }
            Err(_) => break,
        }
    }
    (acked, flush_acked)
}

/// What one reboot + recovery yielded.
struct Recovered {
    rows: u64,
    wal_rows: u64,
    quarantined: u64,
}

/// Reopens the rebooted disk and enforces the prefix property: the
/// recovered `trace_id`s must be exactly `0..n` in order.
fn recover(io: &MemIo, label: &str) -> Recovered {
    let store = Store::open_with(io, Path::new(DIR))
        .unwrap_or_else(|e| panic!("{label}: recovery must never fail open: {e}"));
    let scan = store
        .scan(&ScanOptions {
            projection: Projection::all(),
            ..ScanOptions::default()
        })
        .expect("scan after recovery");
    for (pos, r) in scan.rows.iter().enumerate() {
        assert_eq!(
            r.trace_id, pos as u64,
            "{label}: recovered rows must be the appended prefix"
        );
    }
    let rec = store.recovery();
    Recovered {
        rows: scan.rows.len() as u64,
        wal_rows: rec.wal_rows_recovered,
        quarantined: rec.quarantined.len() as u64,
    }
}

/// Sweeps one `fsync × mode` cell over `points` seeded crash ops.
fn run_cell(
    seed: u64,
    fsync: FsyncPolicy,
    mode: CrashMode,
    mode_label: &str,
    rows: u64,
    points: u64,
) -> CrashCell {
    // Fault-free dry run: how many mutating ops does the full workload
    // perform under this policy? Crash points land inside that space.
    let dry = MemIo::shared(FaultScript::default());
    let (dry_acked, _) = drive_writer(&dry, fsync, rows);
    assert_eq!(dry_acked, rows, "fault-free run must ack every row");
    let op_space = dry.op_count();
    assert!(op_space > 0);

    let cell_seed = derive_seed(seed, &format!("e15-{}-{mode_label}", fsync.as_str()));
    let mut cell = CrashCell {
        fsync: fsync.as_str().to_string(),
        mode: mode_label.to_string(),
        runs: points,
        op_space,
        rows_acked: 0,
        rows_flush_acked: 0,
        rows_recovered: 0,
        acked_rows_lost: 0,
        max_acked_lost: 0,
        flushed_rows_lost: 0,
        wal_rows_recovered: 0,
        quarantined_segments: 0,
    };
    for k in 0..points {
        let crash_at = 1 + splitmix(cell_seed.wrapping_add(k)) % op_space;
        let io = MemIo::shared(FaultScript {
            crash_at_op: Some(crash_at),
            crash_mode: Some(mode),
            ..FaultScript::default()
        });
        let (acked, flush_acked) = drive_writer(&io, fsync, rows);
        io.reboot();
        let label = format!(
            "fsync={} mode={mode_label} crash_at={crash_at}",
            fsync.as_str()
        );
        let rec = recover(io.as_ref(), &label);
        cell.rows_acked += acked;
        cell.rows_flush_acked += flush_acked;
        cell.rows_recovered += rec.rows;
        let lost = acked.saturating_sub(rec.rows);
        cell.acked_rows_lost += lost;
        cell.max_acked_lost = cell.max_acked_lost.max(lost);
        cell.flushed_rows_lost += flush_acked.saturating_sub(rec.rows);
        cell.wal_rows_recovered += rec.wal_rows;
        cell.quarantined_segments += rec.quarantined;
    }
    cell
}

/// The corruption arm: clean store, one seeded bit flip in one segment,
/// then `verify` (must flag it) and `open` (must quarantine and serve).
fn run_corruption(seed: u64, flips: u64) -> CorruptionSummary {
    let rows = CORRUPT_SEGMENTS * THRESHOLD as u64;
    let arm_seed = derive_seed(seed, "e15-corruption");
    let mut summary = CorruptionSummary {
        flips,
        rows_per_store: rows,
        verify_flagged: 0,
        opens_failed: 0,
        quarantined_segments: 0,
        rows_served: 0,
        rows_expected: flips * (rows - THRESHOLD as u64),
    };
    for k in 0..flips {
        let io = MemIo::shared(FaultScript::default());
        let (acked, flushed) = drive_writer(&io, FsyncPolicy::OnFlush, rows);
        assert_eq!(
            (acked, flushed),
            (rows, rows),
            "clean store must flush fully"
        );

        let mut segments: Vec<String> = io
            .list(Path::new(DIR))
            .expect("list store dir")
            .into_iter()
            .filter(|n| n.ends_with(".fas"))
            .collect();
        segments.sort();
        assert_eq!(segments.len() as u64, CORRUPT_SEGMENTS);
        let r = splitmix(arm_seed.wrapping_add(k));
        let victim = Path::new(DIR).join(&segments[(r % CORRUPT_SEGMENTS) as usize]);
        let len = io.read(&victim).expect("read victim").len();
        io.flip_bit(&victim, (splitmix(r) % len as u64) as usize, (r % 8) as u8);

        let report = verify_with(io.as_ref(), Path::new(DIR)).expect("verify walks the dir");
        if !report.issues.is_empty() {
            summary.verify_flagged += 1;
        }
        match Store::open_with(io.as_ref(), Path::new(DIR)) {
            Ok(store) => {
                summary.quarantined_segments += store.recovery().quarantined.len() as u64;
                summary.rows_served += store.total_rows();
            }
            Err(_) => summary.opens_failed += 1,
        }
    }
    summary
}

/// Runs the E15 crash-recovery sweep.
///
/// # Panics
///
/// Panics if recovery ever fails to open or yields anything other than
/// an ordered prefix of the appended stream — those are store bugs, not
/// outcomes to score.
pub fn run_crash_recovery(scale: Scale, seed: u64) -> CrashRecoveryResult {
    let quick = scale.materialize_cap < 10_000;
    let rows_per_run: u64 = if quick { 32 } else { 96 };
    let crash_points: u64 = if quick { 10 } else { 24 };
    let flips: u64 = if quick { 8 } else { 24 };

    let modes = [
        (CrashMode::Before, "before"),
        (CrashMode::Torn(0.5), "torn"),
        (CrashMode::After, "after"),
    ];
    let mut cells = Vec::new();
    for fsync in [
        FsyncPolicy::Never,
        FsyncPolicy::OnFlush,
        FsyncPolicy::OnAppend,
    ] {
        for (mode, label) in modes {
            cells.push(run_cell(
                seed,
                fsync,
                mode,
                label,
                rows_per_run,
                crash_points,
            ));
        }
    }

    CrashRecoveryResult {
        cells,
        corruption: run_corruption(seed, flips),
        crash_points,
        rows_per_run,
        flush_threshold: THRESHOLD as u64,
    }
}

/// Renders the sweep table.
pub fn render(r: &CrashRecoveryResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E15: crash recovery under fault injection ({} seeded crash points per cell, \
         {} rows/run, flush threshold {})",
        r.crash_points, r.rows_per_run, r.flush_threshold
    );
    let _ = writeln!(
        out,
        "{:<11}{:<8}{:>6}{:>6}{:>8}{:>9}{:>10}{:>6}{:>9}{:>9}{:>9}",
        "fsync",
        "mode",
        "runs",
        "ops",
        "acked",
        "flushed",
        "recovered",
        "lost",
        "maxlost",
        "flshlost",
        "walrows"
    );
    for c in &r.cells {
        let _ = writeln!(
            out,
            "{:<11}{:<8}{:>6}{:>6}{:>8}{:>9}{:>10}{:>6}{:>9}{:>9}{:>9}",
            c.fsync,
            c.mode,
            c.runs,
            c.op_space,
            c.rows_acked,
            c.rows_flush_acked,
            c.rows_recovered,
            c.acked_rows_lost,
            c.max_acked_lost,
            c.flushed_rows_lost,
            c.wal_rows_recovered,
        );
    }
    let cr = &r.corruption;
    let _ = writeln!(
        out,
        "corruption: {} seeded bit flips over {}-row stores — verify flagged {}, \
         opens failed {}, quarantined {}, rows served {}/{}",
        cr.flips,
        cr.rows_per_store,
        cr.verify_flagged,
        cr.opens_failed,
        cr.quarantined_segments,
        cr.rows_served,
        cr.flips * cr.rows_per_store,
    );
    let _ = writeln!(
        out,
        "reading order: `lost` is the durability headline — it must be 0 on every \
         on-append row (the ack was a promise) and `flshlost` 0 on every on-flush row; \
         `never` rows show what skipping fsync costs at the worst crash point. `walrows` \
         is recovery doing its job: acked-but-unflushed rows replayed from the journal. \
         The corruption line is the degrade contract: flips are detected by verify and \
         quarantined at open — never a failed open."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn result() -> &'static CrashRecoveryResult {
        static RESULT: OnceLock<CrashRecoveryResult> = OnceLock::new();
        RESULT.get_or_init(|| run_crash_recovery(Scale::quick(), 42))
    }

    #[test]
    fn sweep_covers_every_policy_and_mode() {
        let r = result();
        assert_eq!(r.cells.len(), 9);
        for fsync in ["never", "on-flush", "on-append"] {
            for mode in ["before", "torn", "after"] {
                assert!(
                    r.cells.iter().any(|c| c.fsync == fsync && c.mode == mode),
                    "missing cell {fsync}/{mode}"
                );
            }
        }
        assert!(r.cells.iter().all(|c| c.runs == r.crash_points));
    }

    #[test]
    fn on_append_never_loses_acked_rows() {
        for c in result().cells.iter().filter(|c| c.fsync == "on-append") {
            assert_eq!(
                c.acked_rows_lost, 0,
                "{}/{}: on-append lost acked rows",
                c.fsync, c.mode
            );
            assert_eq!(c.max_acked_lost, 0);
        }
    }

    #[test]
    fn on_flush_never_loses_flush_acked_rows() {
        for c in result().cells.iter().filter(|c| c.fsync != "never") {
            assert_eq!(
                c.flushed_rows_lost, 0,
                "{}/{}: lost rows whose flush was acked",
                c.fsync, c.mode
            );
        }
    }

    #[test]
    fn corruption_degrades_instead_of_failing_open() {
        let cr = &result().corruption;
        assert_eq!(cr.opens_failed, 0, "a bit flip must never fail Store::open");
        assert_eq!(cr.verify_flagged, cr.flips, "verify must flag every flip");
        assert_eq!(cr.quarantined_segments, cr.flips, "one quarantine per flip");
        assert_eq!(cr.rows_served, cr.rows_expected, "serve everything else");
    }

    #[test]
    fn same_seed_same_table() {
        let again = run_crash_recovery(Scale::quick(), 42);
        assert_eq!(&again, result());
        assert_eq!(render(&again), render(result()));
    }
}
