//! E14 — fault-burst detection time across alert window configs
//! (extension).
//!
//! E10 measured what resilience machinery buys *the request path* when
//! the upstream API misbehaves; this driver measures what the window
//! geometry of the SLO monitor buys *the operator*. It replays the
//! PR-5 [`FaultPlan`] burst process as a request-completion stream —
//! one request every `step_secs`, each one failed iff the seeded
//! [`FaultInjector`] draws a fault — and feeds the identical stream to
//! one [`SloMonitor`] per window config. Ground truth falls out of the
//! injector itself: fault draws closer together than `gap_secs` form a
//! cluster, and clusters of at least `min_faults` faults are the
//! incidents an on-call human would want paged about.
//!
//! Per config the driver reports **time-to-detect** (first `firing`
//! transition covering a burst, minus the burst's first fault),
//! **time-to-resolve** (the covering alert's `resolved` transition,
//! minus the burst's last fault), the miss count (incidents that never
//! fired) and the false count (firings covering no incident). The sweep
//! makes the Google-SRE trade concrete: short windows detect in seconds
//! but page on blips; long windows never false-page but sit on small
//! incidents — which is why production configs run both rules at once.
//!
//! Determinism: the stream is one seeded draw per request, the monitor
//! ticks on exact bucket multiples of the simulated clock, and every
//! config replays the same stream — same seed ⇒ byte-identical tables.

use fakeaudit_stats::rng::derive_seed;
use fakeaudit_telemetry::{
    AlertTransition, BurnRule, MonitorConfig, Signal, SloMonitor, Telemetry, TransitionKind,
};
use fakeaudit_twitter_api::fault::{FaultInjector, FaultPlan};
use fakeaudit_twitter_api::Endpoint;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

use super::Scale;

/// The route label the replayed stream observes under.
const ROUTE: &str = "api";

/// Inter-fault gap (seconds) below which two faults belong to the same
/// ground-truth cluster.
const GAP_SECS: f64 = 60.0;

/// Minimum faults for a cluster to count as a pageable incident.
const MIN_FAULTS: usize = 5;

/// One ground-truth fault burst derived from the injector's own draws.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstTruth {
    /// Time of the burst's first fault (simulated seconds).
    pub start_secs: f64,
    /// Time of the burst's last fault.
    pub end_secs: f64,
    /// Faults in the cluster.
    pub faults: usize,
}

/// One window config of the sweep: a single named burn rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowConfig {
    /// Config label (`fast` / `balanced` / `conservative`).
    pub name: String,
    /// Short (fast) burn window, seconds.
    pub short_secs: f64,
    /// Long (slow) burn window, seconds.
    pub long_secs: f64,
    /// Burn-rate threshold both windows must clear.
    pub burn_threshold: f64,
    /// Dwell before `pending` escalates to `firing`, seconds.
    pub pending_secs: f64,
    /// Healthy dwell before `firing` resolves, seconds.
    pub clear_secs: f64,
}

/// Detection outcomes for one window config over the whole stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectRow {
    /// The window config this row measured.
    pub config: WindowConfig,
    /// Ground-truth incidents in the stream (same for every row).
    pub bursts: usize,
    /// Incidents covered by at least one firing alert.
    pub detected: usize,
    /// Detected incidents whose alert *fired for them* (the interval
    /// began at or after the burst started) — the TTD population.
    pub fresh: usize,
    /// Detected incidents covered by an alert still firing from an
    /// earlier burst: the config cannot tell adjacent incidents apart.
    pub carryover: usize,
    /// Incidents that never fired.
    pub missed: usize,
    /// Firing intervals covering no incident (pages on blips).
    pub false_firings: usize,
    /// Mean time-to-detect over fresh detections, seconds.
    pub mean_ttd_secs: f64,
    /// Worst time-to-detect over fresh detections, seconds.
    pub max_ttd_secs: f64,
    /// Mean time-to-resolve, per firing interval against the last
    /// incident it covers, seconds.
    pub mean_ttr_secs: f64,
    /// Alert-log transitions the config emitted (pending+firing+resolved).
    pub transitions: u64,
}

/// Outcome of the E14 detection-time sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectTimeResult {
    /// One row per window config, in sweep order.
    pub rows: Vec<DetectRow>,
    /// The ground-truth incidents every config was measured against.
    pub bursts: Vec<BurstTruth>,
    /// Stream length, simulated seconds.
    pub duration_secs: f64,
    /// Inter-request gap, simulated seconds.
    pub step_secs: f64,
    /// Base per-request fault probability of the plan.
    pub fault_rate: f64,
    /// Burst correlation factor of the plan.
    pub burst_factor: f64,
    /// Requests replayed.
    pub requests: u64,
    /// Faults the injector drew (in and out of clusters).
    pub faults: u64,
}

/// The three window geometries the sweep compares — the `sim_default`
/// page/ticket pair plus a deliberately twitchy fast config.
fn window_configs() -> Vec<WindowConfig> {
    let mk = |name: &str, short, long, burn, pending, clear| WindowConfig {
        name: name.to_string(),
        short_secs: short,
        long_secs: long,
        burn_threshold: burn,
        pending_secs: pending,
        clear_secs: clear,
    };
    vec![
        mk("fast", 30.0, 120.0, 4.0, 10.0, 30.0),
        mk("balanced", 60.0, 300.0, 8.0, 30.0, 60.0),
        mk("conservative", 300.0, 1200.0, 2.0, 60.0, 120.0),
    ]
}

/// One request-completion observation of the replayed stream.
struct Obs {
    at_secs: f64,
    ok: bool,
}

/// Replays the fault plan into a completion stream: one request per
/// `step_secs`, failed iff the injector draws a fault for that attempt.
fn fault_stream(
    seed: u64,
    rate: f64,
    burst_factor: f64,
    duration_secs: f64,
    step: f64,
) -> Vec<Obs> {
    let plan = FaultPlan::bursty(derive_seed(seed, "e14-plan"), rate, burst_factor);
    let mut injector = FaultInjector::new(plan);
    let mut out = Vec::new();
    let mut i = 0u64;
    loop {
        let at = step * (i + 1) as f64;
        if at > duration_secs {
            break;
        }
        out.push(Obs {
            at_secs: at,
            ok: injector.draw(Endpoint::ALL[0]).is_none(),
        });
        i += 1;
    }
    out
}

/// Clusters the stream's fault times into ground-truth incidents.
fn ground_truth(stream: &[Obs]) -> Vec<BurstTruth> {
    let mut bursts = Vec::new();
    let mut open: Option<BurstTruth> = None;
    for obs in stream.iter().filter(|o| !o.ok) {
        match &mut open {
            Some(b) if obs.at_secs - b.end_secs <= GAP_SECS => {
                b.end_secs = obs.at_secs;
                b.faults += 1;
            }
            _ => {
                if let Some(b) = open.take() {
                    bursts.push(b);
                }
                open = Some(BurstTruth {
                    start_secs: obs.at_secs,
                    end_secs: obs.at_secs,
                    faults: 1,
                });
            }
        }
    }
    bursts.extend(open);
    bursts.retain(|b| b.faults >= MIN_FAULTS);
    bursts
}

/// A fired availability alert's lifetime, from the transition log.
#[derive(Debug, Clone, Copy)]
struct FiringInterval {
    fire_at: f64,
    resolve_at: Option<f64>,
}

/// Folds the transition log into firing intervals (availability only —
/// the replay holds latency fixed so the latency machines stay idle).
fn firing_intervals(log: &[AlertTransition]) -> Vec<FiringInterval> {
    let mut out: Vec<FiringInterval> = Vec::new();
    for t in log.iter().filter(|t| t.signal == Signal::Availability) {
        match t.to {
            TransitionKind::Firing => out.push(FiringInterval {
                fire_at: t.at_secs,
                resolve_at: None,
            }),
            TransitionKind::Resolved => {
                if let Some(open) = out.iter_mut().rev().find(|i| i.resolve_at.is_none()) {
                    open.resolve_at = Some(t.at_secs);
                }
            }
            TransitionKind::Pending => {}
        }
    }
    out
}

/// Runs one window config over the shared stream and scores it.
fn run_config(cfg: &WindowConfig, stream: &[Obs], bursts: &[BurstTruth], seed: u64) -> DetectRow {
    let bucket_secs = 10.0;
    let monitor = SloMonitor::new(
        MonitorConfig {
            bucket_secs,
            availability_objective: 0.99,
            latency_quantile: 0.95,
            // The replay's latency is constant and far below this, so
            // only the availability machines ever move.
            latency_objective_secs: f64::INFINITY,
            rules: vec![BurnRule::new(
                &cfg.name,
                cfg.short_secs,
                cfg.long_secs,
                cfg.burn_threshold,
                cfg.pending_secs,
                cfg.clear_secs,
            )],
            history_capacity: 8,
            history_interval_secs: f64::INFINITY,
            sample_keep: 0.0,
            parked_capacity: 64,
            seed: derive_seed(seed, "e14-monitor"),
        },
        Telemetry::with_event_capacity(256),
    );
    // Interleave observations with bucket-aligned ticks, exactly as
    // `ServerSim` does, then drain past the end so trailing alerts
    // resolve deterministically.
    let mut next_tick = bucket_secs;
    for obs in stream {
        while next_tick <= obs.at_secs {
            monitor.tick(next_tick);
            next_tick += bucket_secs;
        }
        monitor.observe_request(ROUTE, obs.at_secs, Some(1.0), obs.ok, None);
    }
    let drain = stream.last().map_or(0.0, |o| o.at_secs)
        + cfg.long_secs
        + cfg.pending_secs
        + cfg.clear_secs;
    while next_tick <= drain + bucket_secs {
        monitor.tick(next_tick);
        next_tick += bucket_secs;
    }

    let log = monitor.transitions();
    let intervals = firing_intervals(&log);
    // An alert may legitimately fire slightly after a burst's last fault
    // (the windows still see it); anything later than the short window
    // plus the pending dwell is no longer "detecting" that burst.
    let slack = cfg.short_secs + cfg.pending_secs + bucket_secs;
    let covers = |i: &FiringInterval, b: &BurstTruth| {
        i.fire_at <= b.end_secs + slack && i.resolve_at.map_or(true, |r| r >= b.start_secs)
    };

    let mut ttds = Vec::new();
    let mut carryover = 0usize;
    let mut missed = 0usize;
    for b in bursts {
        match intervals.iter().find(|i| covers(i, b)) {
            // A covering interval that began before the burst is an
            // alert still firing from an earlier incident — "covered",
            // but its fire time says nothing about *this* burst.
            Some(i) if i.fire_at < b.start_secs => carryover += 1,
            Some(i) => ttds.push(i.fire_at - b.start_secs),
            None => missed += 1,
        }
    }
    // TTR is a property of the firing interval: how long after the last
    // incident it covered truly ended did the alert clear? (An interval
    // spanning several adjacent bursts is measured against the last.)
    let ttrs: Vec<f64> = intervals
        .iter()
        .filter_map(|i| {
            let last_end = bursts
                .iter()
                .filter(|b| covers(i, b))
                .map(|b| b.end_secs)
                .fold(f64::NEG_INFINITY, f64::max);
            match i.resolve_at {
                Some(r) if last_end.is_finite() => Some((r - last_end).max(0.0)),
                _ => None,
            }
        })
        .collect();
    let false_firings = intervals
        .iter()
        .filter(|i| !bursts.iter().any(|b| covers(i, b)))
        .count();
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    DetectRow {
        config: cfg.clone(),
        bursts: bursts.len(),
        detected: bursts.len() - missed,
        fresh: ttds.len(),
        carryover,
        missed,
        false_firings,
        mean_ttd_secs: mean(&ttds),
        max_ttd_secs: ttds.iter().copied().fold(0.0, f64::max),
        mean_ttr_secs: mean(&ttrs),
        transitions: log.len() as u64,
    }
}

/// Runs the E14 detection-time sweep.
///
/// # Panics
///
/// Panics on internal inconsistencies only (an invalid fault plan or
/// monitor config).
pub fn run_detect_time(scale: Scale, seed: u64) -> DetectTimeResult {
    let quick = scale.materialize_cap < 10_000;
    let duration_secs = if quick { 3_600.0 } else { 14_400.0 };
    let step_secs = 2.0;
    // A fault every ~100 draws, each igniting a hot streak that keeps
    // burning with probability rate × factor ≈ 0.95 per draw: incidents
    // of ~40 s (geometric tail into minutes) every few minutes, against
    // a burn-1.0 background — exactly the regime burn-rate alerting is
    // tuned for.
    let fault_rate = 0.01;
    let burst_factor = 95.0;

    let stream = fault_stream(seed, fault_rate, burst_factor, duration_secs, step_secs);
    let bursts = ground_truth(&stream);
    let rows = window_configs()
        .iter()
        .map(|cfg| run_config(cfg, &stream, &bursts, seed))
        .collect();

    DetectTimeResult {
        rows,
        faults: stream.iter().filter(|o| !o.ok).count() as u64,
        requests: stream.len() as u64,
        bursts,
        duration_secs,
        step_secs,
        fault_rate,
        burst_factor,
    }
}

/// Renders the sweep table.
pub fn render(r: &DetectTimeResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E14: fault-burst detection time ({:.0}s stream, {} requests, {} faults, \
         {} incidents ≥{} faults)",
        r.duration_secs,
        r.requests,
        r.faults,
        r.bursts.len(),
        MIN_FAULTS
    );
    let _ = writeln!(
        out,
        "{:<14}{:>12}{:>7}{:>8}{:>7}{:>7}{:>7}{:>7}{:>10}{:>10}{:>10}",
        "config",
        "windows",
        "burn",
        "detect",
        "fresh",
        "carry",
        "miss",
        "false",
        "ttd (s)",
        "max (s)",
        "ttr (s)"
    );
    for row in &r.rows {
        let _ = writeln!(
            out,
            "{:<14}{:>12}{:>6.1}x{:>8}{:>7}{:>7}{:>7}{:>7}{:>10.1}{:>10.1}{:>10.1}",
            row.config.name,
            format!("{:.0}/{:.0}", row.config.short_secs, row.config.long_secs),
            row.config.burn_threshold,
            row.detected,
            row.fresh,
            row.carryover,
            row.missed,
            row.false_firings,
            row.mean_ttd_secs,
            row.max_ttd_secs,
            row.mean_ttr_secs,
        );
    }
    let _ = writeln!(
        out,
        "reading order: tighter windows fire fresh on each incident in tens\n\
         of seconds and clear between them, at the cost of paging on blips;\n\
         the conservative pair never false-pages but smears adjacent bursts\n\
         into one long alert (carry) and resolves long after the incident —\n\
         run a fast rule for paging and a slow one for ticketing, as the\n\
         monitor defaults do."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> &'static DetectTimeResult {
        static R: std::sync::OnceLock<DetectTimeResult> = std::sync::OnceLock::new();
        R.get_or_init(|| run_detect_time(Scale::quick(), 7))
    }

    #[test]
    fn stream_has_incidents_to_detect() {
        let r = result();
        assert!(r.faults > 0, "plan must inject faults");
        assert!(
            r.bursts.len() >= 3,
            "stream must contain clustered incidents: {:?}",
            r.bursts
        );
        for b in &r.bursts {
            assert!(b.faults >= MIN_FAULTS);
            assert!(b.end_secs >= b.start_secs);
        }
        // Bursts are disjoint and ordered.
        for w in r.bursts.windows(2) {
            assert!(w[0].end_secs + GAP_SECS < w[1].start_secs);
        }
    }

    #[test]
    fn same_seed_same_table() {
        let again = run_detect_time(Scale::quick(), 7);
        assert_eq!(result(), &again);
        assert_eq!(render(result()), render(&again));
    }

    #[test]
    fn every_config_scores_every_burst() {
        let r = result();
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            assert_eq!(row.bursts, r.bursts.len(), "{}", row.config.name);
            assert_eq!(row.detected + row.missed, row.bursts, "{}", row.config.name);
            assert_eq!(
                row.fresh + row.carryover,
                row.detected,
                "{}",
                row.config.name
            );
        }
    }

    #[test]
    fn fast_config_detects_most_and_quickest() {
        let r = result();
        let fast = &r.rows[0];
        let conservative = &r.rows[2];
        assert!(fast.fresh > 0, "fast config must fire fresh on real bursts");
        assert!(
            fast.detected >= conservative.detected,
            "shorter windows must not detect fewer incidents: {} vs {}",
            fast.detected,
            conservative.detected
        );
        assert!(
            fast.fresh > conservative.fresh,
            "short windows must fire fresh per incident where long ones smear: \
             {} vs {}",
            fast.fresh,
            conservative.fresh
        );
        assert!(
            conservative.carryover > 0,
            "long windows must smear adjacent bursts into one alert"
        );
        if conservative.fresh > 0 {
            assert!(
                fast.mean_ttd_secs <= conservative.mean_ttd_secs,
                "shorter windows must detect sooner: {} vs {}",
                fast.mean_ttd_secs,
                conservative.mean_ttd_secs
            );
        }
        assert!(
            fast.mean_ttr_secs < conservative.mean_ttr_secs,
            "shorter windows must clear sooner: {} vs {}",
            fast.mean_ttr_secs,
            conservative.mean_ttr_secs
        );
    }

    #[test]
    fn detected_bursts_resolve() {
        // The drain runs past every window + dwell, so each detected
        // burst's covering alert must have resolved (ttr measured).
        for row in &result().rows {
            if row.detected > 0 {
                assert!(
                    row.mean_ttr_secs > 0.0,
                    "{}: detections must resolve after the drain",
                    row.config.name
                );
            }
        }
    }

    #[test]
    fn render_lists_every_config() {
        let text = render(result());
        for name in ["fast", "balanced", "conservative"] {
            assert!(text.contains(name), "{name} missing:\n{text}");
        }
        assert!(text.contains("ttd (s)"));
    }
}
