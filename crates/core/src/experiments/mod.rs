//! One driver per table/figure/experiment of the paper.
//!
//! | id | paper artefact | module |
//! |----|----------------|--------|
//! | T1 | Table I (API limits) | [`table1`] |
//! | T2 | Table II (response times) | [`table2`] |
//! | T3 | Table III (analysis results) | [`table3`] |
//! | E1 | §IV-B follower ordering | [`ordering`] |
//! | E2 | §II-D sampling-bias example | [`bias`] |
//! | E3 | §IV-B Obama crawl budget | [`crawl`] |
//! | E4 | §III FC construction (rules vs learner) | [`fc_training`] |
//! | E5 | §IV-D disagreement vs follower count | [`disagreement`] |
//! | E6 | §II-A Fakers vs Deep Dive | [`deep_dive`] |
//! | E7 | post-burst reporting timeline (extension) | [`burst`] |
//! | E8 | service under offered load (extension) | [`service_load`] |
//! | E9 | latency attribution under load (extension) | [`latency_attribution`] |
//! | E10 | audit under an unreliable API (extension) | [`chaos`] |
//! | E14 | fault-burst detection time (extension) | [`detect_time`] |
//! | E15 | crash recovery under fault injection (extension) | [`crash_recovery`] |
//! | A1 | ablation: prefix vs uniform sampling | [`ablation`] |
//! | A2 | ablation: cache policy (latency vs staleness) | [`cache_ablation`] |
//!
//! Every driver takes a [`Scale`] and a seed and returns a structured
//! result plus a rendered text table; the `fakeaudit-bench` binaries print
//! those renders, and EXPERIMENTS.md archives them next to the paper's
//! numbers.

pub mod ablation;
pub mod bias;
pub mod burst;
pub mod cache_ablation;
pub mod chaos;
pub mod crash_recovery;
pub mod crawl;
pub mod deep_dive;
pub mod detect_time;
pub mod disagreement;
pub mod fc_training;
pub mod latency_attribution;
pub mod ordering;
pub mod service_load;
pub mod table1;
pub mod table2;
pub mod table3;

use serde::{Deserialize, Serialize};

/// How much of each target to materialise — the knob between fast checks
/// and full reproduction runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scale {
    /// Maximum materialised followers per target (the nominal count is
    /// pinned above this; percentages are scale-invariant).
    pub materialize_cap: usize,
    /// FC sample size (the paper's 9 604, or smaller for quick runs).
    pub fc_sample: u64,
    /// Gold-standard accounts per class for FC model training.
    pub gold_per_class: usize,
}

impl Scale {
    /// The full reproduction scale used for EXPERIMENTS.md.
    pub fn full() -> Self {
        Self {
            materialize_cap: 50_000,
            fc_sample: 9_604,
            gold_per_class: 400,
        }
    }

    /// A reduced scale for debug-mode tests and smoke runs.
    pub fn quick() -> Self {
        Self {
            materialize_cap: 2_500,
            fc_sample: 1_200,
            gold_per_class: 120,
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::full()
    }
}

/// Formats a `(inactive, fake, genuine)` row as Table III prints it.
pub(crate) fn fmt_row3(row: (f64, f64, f64)) -> String {
    format!("{:>5.1} {:>5.1} {:>5.1}", row.0, row.1, row.2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let q = Scale::quick();
        let f = Scale::full();
        assert!(q.materialize_cap < f.materialize_cap);
        assert!(q.fc_sample < f.fc_sample);
        assert_eq!(f.fc_sample, 9_604);
        assert_eq!(Scale::default(), f);
    }

    #[test]
    fn row_formatting() {
        assert_eq!(fmt_row3((25.0, 1.4, 73.6)), " 25.0   1.4  73.6");
    }
}
