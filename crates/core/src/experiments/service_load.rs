//! E8 — the service under offered load (extension).
//!
//! Table II times one client's request; this driver extends it to the
//! question a production deployment actually faces: *how does latency
//! degrade as offered load approaches capacity, and what does each
//! overload policy trade away past the knee?* It sweeps an open-loop
//! Poisson arrival rate across all three admission policies and reports
//! throughput, latency percentiles and shed/degrade rates per cell.
//!
//! The sweep deliberately drives **prewarmed** (cache-served) traffic:
//! every target has a cached report at every tool, so per-request service
//! time sits in the 2–4 s §IV-C band and the saturation knee is set by
//! queueing alone (capacity ≈ workers ÷ mean service time). Cold-start
//! heavy tails — a fresh FC audit takes tens of simulated minutes — are
//! exercised separately in `examples/service_under_load.rs`, where they
//! belong: one flash crowd, not a steady-state sweep.
//!
//! Determinism: each sweep cell runs a single-threaded event loop over
//! services cloned from one prewarmed base set, and the arrival trace per
//! rate is derived from the master seed alone — so the table is
//! byte-identical across runs. `crossbeam` fans the independent cells
//! across OS threads; results are collected in grid order, so the
//! parallelism never touches the output.

use fakeaudit_analytics::{OnlineService, ServiceProfile};
use fakeaudit_detectors::{FakeProjectEngine, Socialbakers, StatusPeople, Twitteraudit};
use fakeaudit_population::{BuiltTarget, ClassMix, TargetScenario};
use fakeaudit_server::{generate, LoadSpec, OverloadPolicy, ServerConfig, ServerSim};
use fakeaudit_stats::rng::derive_seed;
use fakeaudit_store::SharedWriter;
use fakeaudit_twittersim::{AccountId, Platform};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

use super::Scale;

/// One `(policy, offered rate)` cell of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceLoadRow {
    /// Overload policy label (`block` / `shed` / `degrade`).
    pub policy: String,
    /// Offered arrival rate in requests/second.
    pub offered_rate: f64,
    /// Requests that arrived within the window.
    pub offered: u64,
    /// Requests served by a worker.
    pub completed: u64,
    /// Requests answered from stale cache (degrade policy).
    pub degraded: u64,
    /// Requests refused at admission.
    pub shed: u64,
    /// Requests that reached a worker but errored.
    pub failed: u64,
    /// Answered requests (completed + degraded) per second of makespan.
    pub throughput: f64,
    /// Worker-served requests per second of makespan — the curve that
    /// saturates at the knee under every policy (block stretches the
    /// makespan, shed and degrade divert the overflow, but workers never
    /// serve faster than capacity).
    pub served_throughput: f64,
    /// Median end-to-end latency (simulated seconds).
    pub p50: f64,
    /// 95th-percentile latency.
    pub p95: f64,
    /// 99th-percentile latency.
    pub p99: f64,
    /// Fraction of offered requests shed.
    pub shed_rate: f64,
    /// Mean worker utilisation in `[0, 1]`.
    pub utilisation: f64,
}

/// Outcome of the offered-load sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceLoadResult {
    /// Rows grouped by policy, then ascending rate.
    pub rows: Vec<ServiceLoadRow>,
    /// The swept arrival rates (req/s).
    pub rates: Vec<f64>,
    /// Trace window in simulated seconds.
    pub duration_secs: f64,
    /// Workers per tool.
    pub workers_per_tool: usize,
    /// Admission-queue capacity per tool.
    pub queue_capacity: usize,
    /// Prewarmed targets in the popularity set.
    pub targets: usize,
}

/// Builds the popularity-ranked target set on one platform. Shared with
/// E9, which attributes latency over the same prewarmed world.
pub(super) fn build_targets(scale: Scale, seed: u64, count: usize) -> (Platform, Vec<BuiltTarget>) {
    let followers = (scale.materialize_cap / 10).max(400);
    let mut platform = Platform::new();
    let targets = (0..count)
        .map(|i| {
            TargetScenario::new(
                format!("e8_target_{i}"),
                followers,
                ClassMix::new(0.25, 0.15, 0.60).expect("valid mix"),
            )
            .build(&mut platform, derive_seed(seed, &format!("e8-build-{i}")))
            .expect("scenario builds")
        })
        .collect();
    (platform, targets)
}

/// The four services, quota-free (the sweep measures queueing, not
/// Socialbakers' ten-a-day limit) and prewarmed for every target.
pub(super) fn build_services(
    scale: Scale,
    seed: u64,
    platform: &Platform,
    targets: &[BuiltTarget],
) -> Services {
    let unquoted = |p: ServiceProfile| ServiceProfile {
        daily_quota: None,
        ..p
    };
    let mut services = Services {
        fc: OnlineService::new(
            FakeProjectEngine::with_default_model(derive_seed(seed, "e8-fc-model"))
                .with_sample_size(scale.fc_sample),
            unquoted(ServiceProfile::fake_classifier()),
            derive_seed(seed, "e8-svc-fc"),
        ),
        ta: OnlineService::new(
            Twitteraudit::new(),
            unquoted(ServiceProfile::twitteraudit()),
            derive_seed(seed, "e8-svc-ta"),
        ),
        sp: OnlineService::new(
            StatusPeople::new(),
            unquoted(ServiceProfile::statuspeople()),
            derive_seed(seed, "e8-svc-sp"),
        ),
        sb: OnlineService::new(
            Socialbakers::new(),
            unquoted(ServiceProfile::socialbakers()),
            derive_seed(seed, "e8-svc-sb"),
        ),
    };
    for t in targets {
        services.fc.prewarm(platform, t.target).expect("fc prewarm");
        services.ta.prewarm(platform, t.target).expect("ta prewarm");
        services.sp.prewarm(platform, t.target).expect("sp prewarm");
        services.sb.prewarm(platform, t.target).expect("sb prewarm");
    }
    services
}

/// The prewarmed base service set, cloned once per sweep cell.
#[derive(Clone)]
pub(super) struct Services {
    pub(super) fc: OnlineService<FakeProjectEngine>,
    pub(super) ta: OnlineService<Twitteraudit>,
    pub(super) sp: OnlineService<StatusPeople>,
    pub(super) sb: OnlineService<Socialbakers>,
}

/// A prewarmed serving world for the *wall-clock* entry points — the
/// `fakeaudit serve` gateway and the `exp_http_load` bench driver.
///
/// Same construction as the E8 sweep (popularity-ranked targets, quota-
/// free Table II services, every target prewarmed at every tool), so
/// wall-clock measurements and sim sweeps describe the same workload.
/// The world is built once and backends are *cloned* out of it: each
/// gateway worker thread owns an independent clone, exactly as each E8
/// sweep cell does.
#[derive(Clone)]
pub struct ServingWorld {
    /// The platform every service audits against.
    pub platform: Platform,
    /// Popularity-ranked prewarmed targets (the Zipf universe).
    pub targets: Vec<AccountId>,
    base: Services,
}

impl ServingWorld {
    /// Builds the platform, `target_count` prewarmed targets, and the
    /// four quota-free services.
    ///
    /// # Panics
    ///
    /// Panics on internal inconsistencies only (scenario build, prewarm).
    pub fn build(scale: Scale, seed: u64, target_count: usize) -> Self {
        let (platform, built) = build_targets(scale, seed, target_count);
        let base = build_services(scale, seed, &platform, &built);
        Self {
            platform,
            targets: built.iter().map(|t| t.target).collect(),
            base,
        }
    }

    /// `copies` independent backend clones for `tool`, boxed for a
    /// gateway worker pool (plus one more for the stale-read path).
    pub fn backends(
        &self,
        tool: fakeaudit_detectors::ToolId,
        copies: usize,
    ) -> Vec<Box<dyn fakeaudit_server::AuditBackend + Send>> {
        self.armed_backends(
            tool,
            copies,
            &fakeaudit_telemetry::Telemetry::disabled(),
            None,
        )
    }

    /// [`ServingWorld::backends`] with each clone recording service-level
    /// metrics (cache hits, breaker transitions) into `telemetry` and,
    /// when `breaker` is given, guarding its fresh-audit path with a
    /// per-clone circuit breaker.
    pub fn armed_backends(
        &self,
        tool: fakeaudit_detectors::ToolId,
        copies: usize,
        telemetry: &fakeaudit_telemetry::Telemetry,
        breaker: Option<fakeaudit_analytics::BreakerConfig>,
    ) -> Vec<Box<dyn fakeaudit_server::AuditBackend + Send>> {
        use fakeaudit_detectors::ToolId;
        fn arm<A: fakeaudit_detectors::FollowerAuditor + Clone>(
            svc: &OnlineService<A>,
            telemetry: &fakeaudit_telemetry::Telemetry,
            breaker: Option<fakeaudit_analytics::BreakerConfig>,
        ) -> OnlineService<A> {
            let svc = svc.clone().with_telemetry(telemetry.clone());
            match breaker {
                Some(cfg) => svc.with_breaker(cfg),
                None => svc,
            }
        }
        (0..copies)
            .map(|_| -> Box<dyn fakeaudit_server::AuditBackend + Send> {
                match tool {
                    ToolId::FakeClassifier => Box::new(arm(&self.base.fc, telemetry, breaker)),
                    ToolId::Twitteraudit => Box::new(arm(&self.base.ta, telemetry, breaker)),
                    ToolId::StatusPeople => Box::new(arm(&self.base.sp, telemetry, breaker)),
                    ToolId::Socialbakers => Box::new(arm(&self.base.sb, telemetry, breaker)),
                }
            })
            .collect()
    }
}

/// Runs one sweep cell: fresh clones, one deterministic event loop.
fn run_cell(
    platform: &Platform,
    base: &Services,
    trace: &[fakeaudit_server::Request],
    policy: OverloadPolicy,
    rate: f64,
    config: ServerConfig,
    persist: Option<SharedWriter>,
) -> ServiceLoadRow {
    let clones = base.clone();
    let mut sim = ServerSim::new(platform, ServerConfig { policy, ..config });
    if let Some(writer) = persist {
        sim.persist_into(writer);
    }
    sim.register(Box::new(clones.fc));
    sim.register(Box::new(clones.ta));
    sim.register(Box::new(clones.sp));
    sim.register(Box::new(clones.sb));
    let report = sim.run(trace);
    ServiceLoadRow {
        policy: policy.label().to_string(),
        offered_rate: rate,
        offered: report.offered(),
        completed: report.completed(),
        degraded: report.degraded(),
        shed: report.shed(),
        failed: report.failed(),
        throughput: report.throughput(),
        served_throughput: if report.makespan > 0.0 {
            report.completed() as f64 / report.makespan
        } else {
            0.0
        },
        p50: report.latency_percentile(0.5),
        p95: report.latency_percentile(0.95),
        p99: report.latency_percentile(0.99),
        shed_rate: report.shed_rate(),
        utilisation: report.utilisation(),
    }
}

/// Runs the E8 offered-load sweep.
///
/// # Panics
///
/// Panics on internal inconsistencies only (scenario build, prewarm).
pub fn run_service_load(scale: Scale, seed: u64) -> ServiceLoadResult {
    run_service_load_persisted(scale, seed, None)
}

/// [`run_service_load`] with an optional audit-history writer. With a
/// writer the cells run *serially* in grid order — every completed audit
/// appends through the one shared writer, and serial order is what makes
/// the resulting segment bytes a pure function of the seed. Without one
/// the independent cells fan out across OS threads as before.
///
/// # Panics
///
/// Panics on internal inconsistencies only (scenario build, prewarm).
pub fn run_service_load_persisted(
    scale: Scale,
    seed: u64,
    persist: Option<SharedWriter>,
) -> ServiceLoadResult {
    const TARGETS: usize = 4;
    let quick = scale.materialize_cap < 10_000;
    let rates: Vec<f64> = if quick {
        vec![0.6, 2.4, 9.6]
    } else {
        vec![0.5, 1.0, 2.0, 4.0, 8.0]
    };
    let duration_secs = if quick { 400.0 } else { 1_200.0 };
    let config = ServerConfig {
        workers_per_tool: 2,
        queue_capacity: 8,
        policy: OverloadPolicy::Shed,
        degraded_secs: 0.5,
        deadline_secs: None,
    };

    let (platform, targets) = build_targets(scale, seed, TARGETS);
    let base = build_services(scale, seed, &platform, &targets);
    let ranked: Vec<AccountId> = targets.iter().map(|t| t.target).collect();

    // One trace per rate, shared across policies so the three policy rows
    // at a given rate answer the *same* arrivals.
    let traces: Vec<Vec<fakeaudit_server::Request>> = rates
        .iter()
        .enumerate()
        .map(|(i, &rate)| {
            let spec = LoadSpec::poisson(rate, duration_secs);
            generate(&spec, &ranked, derive_seed(seed, &format!("e8-trace-{i}")))
        })
        .collect();

    // Fan the independent cells across OS threads; collect in grid order
    // so thread scheduling never reorders the table. A history writer
    // forces the serial path: interleaved appends from concurrent cells
    // would make the segment bytes depend on thread scheduling.
    let cells: Vec<(OverloadPolicy, usize)> = OverloadPolicy::ALL
        .iter()
        .flat_map(|&p| (0..rates.len()).map(move |i| (p, i)))
        .collect();
    let rows: Vec<ServiceLoadRow> = match persist {
        Some(writer) => cells
            .iter()
            .map(|&(policy, i)| {
                run_cell(
                    &platform,
                    &base,
                    &traces[i],
                    policy,
                    rates[i],
                    config,
                    Some(writer.clone()),
                )
            })
            .collect(),
        None => crossbeam::thread::scope(|s| {
            let handles: Vec<_> = cells
                .iter()
                .map(|&(policy, i)| {
                    let (platform, base, trace) = (&platform, &base, &traces[i]);
                    let rate = rates[i];
                    s.spawn(move |_| run_cell(platform, base, trace, policy, rate, config, None))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep cell panicked"))
                .collect()
        })
        .expect("crossbeam scope"),
    };

    ServiceLoadResult {
        rows,
        rates,
        duration_secs,
        workers_per_tool: config.workers_per_tool,
        queue_capacity: config.queue_capacity,
        targets: TARGETS,
    }
}

/// Renders the sweep table.
pub fn render(r: &ServiceLoadResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E8: service under offered load ({} targets, {} workers/tool, queue {}, {:.0}s window)",
        r.targets, r.workers_per_tool, r.queue_capacity, r.duration_secs
    );
    let _ = writeln!(
        out,
        "{:<9}{:>7}{:>9}{:>9}{:>9}{:>7}{:>11}{:>9}{:>9}{:>9}{:>7}",
        "policy",
        "rate",
        "offered",
        "done",
        "degraded",
        "shed",
        "thru (r/s)",
        "p50 (s)",
        "p95 (s)",
        "p99 (s)",
        "util"
    );
    for row in &r.rows {
        let _ = writeln!(
            out,
            "{:<9}{:>7.1}{:>9}{:>9}{:>9}{:>7}{:>11.2}{:>9.1}{:>9.1}{:>9.1}{:>6.0}%",
            row.policy,
            row.offered_rate,
            row.offered,
            row.completed,
            row.degraded,
            row.shed,
            row.served_throughput,
            row.p50,
            row.p95,
            row.p99,
            row.utilisation * 100.0,
        );
    }
    let _ = writeln!(
        out,
        "past the knee (≈ workers ÷ mean cached service time) the policies\n\
         diverge: block preserves every request but lets p99 run away,\n\
         shed holds latency flat by refusing the overflow, and degrade\n\
         answers it with stale reports in sub-second time."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> &'static ServiceLoadResult {
        static R: std::sync::OnceLock<ServiceLoadResult> = std::sync::OnceLock::new();
        R.get_or_init(|| run_service_load(Scale::quick(), 7))
    }

    fn rows_of<'a>(r: &'a ServiceLoadResult, policy: &str) -> Vec<&'a ServiceLoadRow> {
        r.rows.iter().filter(|row| row.policy == policy).collect()
    }

    #[test]
    fn grid_covers_policies_by_rates() {
        let r = result();
        assert_eq!(r.rows.len(), 3 * r.rates.len());
        for policy in ["block", "shed", "degrade"] {
            assert_eq!(rows_of(r, policy).len(), r.rates.len(), "{policy}");
        }
    }

    #[test]
    fn same_seed_same_table() {
        let again = run_service_load(Scale::quick(), 7);
        assert_eq!(result(), &again);
        assert_eq!(render(result()), render(&again));
    }

    #[test]
    fn conservation_holds_in_every_cell() {
        for row in &result().rows {
            assert_eq!(
                row.completed + row.degraded + row.shed + row.failed,
                row.offered,
                "{} @ {}",
                row.policy,
                row.offered_rate
            );
            assert_eq!(row.failed, 0, "quota-free sweep must not fail requests");
        }
    }

    #[test]
    fn throughput_saturates_past_the_knee() {
        for policy in ["block", "shed", "degrade"] {
            let rows = rows_of(result(), policy);
            let (low, high) = (rows.first().unwrap(), rows.last().unwrap());
            // Below the knee the service keeps up with the offered rate...
            assert!(
                low.throughput > low.offered_rate * 0.8,
                "{policy}: low-rate throughput {} vs offered {}",
                low.throughput,
                low.offered_rate
            );
            // ...past it, worker-served throughput caps out well below it.
            assert!(
                high.served_throughput < high.offered_rate * 0.6,
                "{policy}: served throughput {} vs offered {}",
                high.served_throughput,
                high.offered_rate
            );
            // The knee itself is policy-independent: workers never serve
            // faster than capacity, whichever way the overflow is handled.
            assert!(
                high.served_throughput > low.throughput * 0.8,
                "{policy}: saturated plateau {} fell below low-load rate {}",
                high.served_throughput,
                low.throughput
            );
        }
    }

    #[test]
    fn policies_diverge_past_the_knee() {
        let r = result();
        let last = |policy| *rows_of(r, policy).last().unwrap();
        let (block, shed, degrade) = (last("block"), last("shed"), last("degrade"));
        // Block answers everything at the price of runaway latency.
        assert_eq!(block.shed, 0);
        assert_eq!(block.completed, block.offered);
        assert!(
            block.p99 > shed.p99 * 2.0,
            "block p99 {} vs shed p99 {}",
            block.p99,
            shed.p99
        );
        // Shed keeps latency bounded by refusing the overflow.
        assert!(shed.shed_rate > 0.3, "shed rate {}", shed.shed_rate);
        // Degrade answers the overflow from stale cache instead of shedding
        // (every sweep target is prewarmed, so nothing is ever cold).
        assert!(degrade.degraded > 0);
        assert_eq!(degrade.shed, 0);
        assert!(degrade.p99 <= block.p99);
    }

    #[test]
    fn latency_percentiles_rise_with_load() {
        for policy in ["block", "shed", "degrade"] {
            let rows = rows_of(result(), policy);
            let (low, high) = (rows.first().unwrap(), rows.last().unwrap());
            assert!(
                high.p99 >= low.p99,
                "{policy}: p99 {} at high load vs {} at low",
                high.p99,
                low.p99
            );
            for row in rows {
                assert!(row.p50 <= row.p95 && row.p95 <= row.p99);
            }
        }
    }

    #[test]
    fn render_lists_every_policy_and_rate() {
        let text = render(result());
        for policy in ["block", "shed", "degrade"] {
            assert!(text.contains(policy), "{policy} missing:\n{text}");
        }
        assert!(text.contains("thru (r/s)"));
        assert!(text.contains("p99"));
    }

    #[test]
    fn persisted_sweep_matches_parallel_and_is_byte_deterministic() {
        use fakeaudit_store::{open_shared, Store};
        let base =
            std::env::temp_dir().join(format!("fakeaudit-e8-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let dirs = [base.join("a"), base.join("b")];
        for dir in &dirs {
            let writer = open_shared(dir).expect("open store");
            let table = run_service_load_persisted(Scale::quick(), 7, Some(writer.clone()));
            // Serial persisted cells must reproduce the crossbeam table.
            assert_eq!(&table, result());
            let telemetry = fakeaudit_telemetry::Telemetry::disabled();
            let health = fakeaudit_server::flush_writer(&writer, &telemetry).expect("flush");
            assert!(health.flushed_rows > 0, "sweep persisted no audits");
        }
        let list = |dir: &std::path::Path| {
            let mut names: Vec<String> = std::fs::read_dir(dir)
                .expect("read store dir")
                .map(|e| e.expect("entry").file_name().into_string().expect("utf8"))
                .collect();
            names.sort();
            names
        };
        let (a, b) = (list(&dirs[0]), list(&dirs[1]));
        assert_eq!(a, b, "same seed must write the same segment files");
        assert!(!a.is_empty());
        for name in &a {
            let left = std::fs::read(dirs[0].join(name)).expect("read a");
            let right = std::fs::read(dirs[1].join(name)).expect("read b");
            assert_eq!(left, right, "{name} differs between identical runs");
        }
        let store = Store::open(&dirs[0]).expect("open for read");
        let answered: u64 = result().rows.iter().map(|r| r.completed + r.degraded).sum();
        assert_eq!(store.total_rows(), answered, "one row per answered audit");
        let _ = std::fs::remove_dir_all(&base);
    }
}
