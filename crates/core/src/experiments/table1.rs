//! T1 — Table I: Twitter API types and limitations.
//!
//! Table I is configuration, not measurement; the reproduction renders it
//! from the same endpoint catalogue every other experiment consumes, so a
//! drift between the table and the simulator is impossible.

use fakeaudit_twitter_api::endpoint::{render_table1, Endpoint};

/// One row of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Row {
    /// The endpoint.
    pub endpoint: Endpoint,
    /// Elements per request.
    pub items_per_request: usize,
    /// Max requests per minute.
    pub requests_per_minute: u32,
}

/// The four rows of Table I.
pub fn run_table1() -> Vec<Table1Row> {
    Endpoint::ALL
        .iter()
        .map(|&e| Table1Row {
            endpoint: e,
            items_per_request: e.items_per_request(),
            requests_per_minute: e.requests_per_minute(),
        })
        .collect()
}

/// Renders Table I as the paper prints it.
pub fn render() -> String {
    render_table1()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_match_paper() {
        let rows = run_table1();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].items_per_request, 5_000);
        assert_eq!(rows[0].requests_per_minute, 1);
        assert_eq!(rows[2].items_per_request, 100);
        assert_eq!(rows[2].requests_per_minute, 12);
    }

    #[test]
    fn render_is_nonempty() {
        assert!(render().contains("GET followers/ids"));
    }
}
