//! T3 — Table III: fake-follower analysis results for the twenty targets.
//!
//! Each synthetic target's ground truth is calibrated to the paper's FC
//! row (DESIGN.md §7); the commercial tools' rows then *emerge* from their
//! documented methodologies run over the simulated API. The reproduction
//! additionally scores every tool against ground truth — the measurement
//! the paper could not make on live accounts.

use crate::experiments::{fmt_row3, Scale};
use crate::panel::AuditPanel;
use crate::scoring::{score_against_truth, ToolScore};
use fakeaudit_analytics::ServiceError;
use fakeaudit_detectors::{FakeProjectEngine, ToolId};
use fakeaudit_population::testbed::{PaperTarget, PAPER_TARGETS};
use fakeaudit_population::ClassMix;
use fakeaudit_stats::bootstrap::bootstrap_ci;
use fakeaudit_stats::rng::{derive_seed, rng_for};
use fakeaudit_twittersim::Platform;
use serde::Serialize;
use std::fmt::Write as _;

/// One measured row of Table III.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Table3Row {
    /// Screen name.
    pub screen_name: String,
    /// Published follower count.
    pub followers: u64,
    /// Realised ground-truth mix of the materialised follower base.
    pub truth: ClassMix,
    /// Measured FC row (inactive %, fake %, genuine %).
    pub fc: (f64, f64, f64),
    /// Measured Twitteraudit row (fake %, genuine %).
    pub ta: (f64, f64),
    /// Measured StatusPeople row.
    pub sp: (f64, f64, f64),
    /// Measured Socialbakers row.
    pub sb: (f64, f64, f64),
    /// The paper's rows, for side-by-side comparison.
    pub paper: PaperTarget,
    /// Ground-truth scores per tool (FC, TA, SP, SB order).
    pub scores: Vec<(ToolId, ToolScore)>,
}

/// The full Table III result.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Table3 {
    /// Rows in the paper's order.
    pub rows: Vec<Table3Row>,
}

/// Runs the Table III experiment over all twenty targets (or a subset via
/// `filter`, e.g. only the low class for smoke tests).
///
/// # Errors
///
/// Propagates [`ServiceError`] from any audit.
pub fn run_table3_filtered<F>(scale: Scale, seed: u64, filter: F) -> Result<Table3, ServiceError>
where
    F: Fn(&PaperTarget) -> bool,
{
    let fc_engine = FakeProjectEngine::with_default_model(derive_seed(seed, "t3-model"))
        .with_sample_size(scale.fc_sample);
    let mut rows = Vec::new();
    for (i, target) in PAPER_TARGETS.iter().enumerate() {
        if !filter(target) {
            continue;
        }
        let target_seed = derive_seed(seed, &format!("t3-{i}"));
        let mut platform = Platform::new();
        let built = target
            .scenario(scale.materialize_cap)
            .build(&mut platform, target_seed)
            .expect("scenario builds");
        let mut panel = AuditPanel::with_fc_engine(fc_engine.clone(), target_seed);
        let result = panel.request_all(&platform, built.target)?;
        let row3 = |tool: ToolId| result.of(tool).outcome.counts.as_row();
        let scores = ToolId::ALL
            .iter()
            .map(|&tool| {
                (
                    tool,
                    score_against_truth(&result.of(tool).outcome, &built, &platform),
                )
            })
            .collect();
        let ta_full = row3(ToolId::Twitteraudit);
        rows.push(Table3Row {
            screen_name: target.screen_name.to_string(),
            followers: target.followers,
            truth: built.true_mix(),
            fc: row3(ToolId::FakeClassifier),
            ta: (ta_full.1, ta_full.2),
            sp: row3(ToolId::StatusPeople),
            sb: row3(ToolId::Socialbakers),
            paper: *target,
            scores,
        });
    }
    Ok(Table3 { rows })
}

/// Runs the full twenty-target Table III.
///
/// # Errors
///
/// Propagates [`ServiceError`].
pub fn run_table3(scale: Scale, seed: u64) -> Result<Table3, ServiceError> {
    run_table3_filtered(scale, seed, |_| true)
}

/// Renders measured rows beside the paper's rows.
pub fn render(table: &Table3) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table III: fake follower analysis results (measured | paper)\n\
         {:<18}{:>9} | {:^17} | {:^11} | {:^17} | {:^17}",
        "profile",
        "followers",
        "FC inact/fake/good",
        "TA fake/good",
        "SP inact/fake/good",
        "SB inact/fake/good"
    );
    for r in &table.rows {
        let _ = writeln!(
            out,
            "@{:<17}{:>9} | {} | {:>5.1} {:>5.1} | {} | {}",
            r.screen_name,
            r.followers,
            fmt_row3(r.fc),
            r.ta.0,
            r.ta.1,
            fmt_row3(r.sp),
            fmt_row3(r.sb)
        );
        let _ = writeln!(
            out,
            "  paper:{:>20} {} | {:>5.1} {:>5.1} | {} | {}",
            "",
            fmt_row3(r.paper.fc),
            r.paper.ta.0,
            r.paper.ta.1,
            fmt_row3(r.paper.sp),
            fmt_row3(r.paper.sb)
        );
    }
    out
}

/// Per-tool summary of the scoring annex: mean lenient accuracy across
/// targets with a percentile-bootstrap 95% interval.
pub fn score_summary(table: &Table3) -> Vec<(ToolId, f64, f64, f64)> {
    let mut rng = rng_for(0, "t3-score-boot");
    ToolId::ALL
        .iter()
        .map(|&tool| {
            let accs: Vec<f64> = table
                .rows
                .iter()
                .map(|r| {
                    r.scores
                        .iter()
                        .find(|(t, _)| *t == tool)
                        .expect("all tools scored")
                        .1
                        .lenient_accuracy
                })
                .collect();
            let mean = accs.iter().sum::<f64>() / accs.len().max(1) as f64;
            if accs.len() < 2 {
                return (tool, mean, mean, mean);
            }
            let ci = bootstrap_ci(
                &mut rng,
                &accs,
                |xs| xs.iter().sum::<f64>() / xs.len() as f64,
                1_000,
                0.95,
            );
            (tool, mean, ci.low, ci.high)
        })
        .collect()
}

/// Renders the ground-truth scoring annex (reproduction-only data).
pub fn render_scores(table: &Table3) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ground-truth scoring (lenient accuracy / |fake% error| / |genuine% error|)\n\
         {:<18} {:>22} {:>22} {:>22} {:>22}",
        "profile", "FC", "TA", "SP", "SB"
    );
    for r in &table.rows {
        let cell = |tool: ToolId| {
            let (_, s) = r
                .scores
                .iter()
                .find(|(t, _)| *t == tool)
                .expect("all tools scored");
            format!(
                "{:>5.1}% {:>6.1} {:>6.1}",
                s.lenient_accuracy * 100.0,
                s.fake_pct_error,
                s.genuine_pct_error
            )
        };
        let _ = writeln!(
            out,
            "@{:<17} {:>22} {:>22} {:>22} {:>22}",
            r.screen_name,
            cell(ToolId::FakeClassifier),
            cell(ToolId::Twitteraudit),
            cell(ToolId::StatusPeople),
            cell(ToolId::Socialbakers)
        );
    }
    let _ = writeln!(
        out,
        "mean lenient accuracy (bootstrap 95% CI over targets):"
    );
    for (tool, mean, lo, hi) in score_summary(table) {
        let _ = writeln!(
            out,
            "  {:<4} {:>5.1}%  [{:>5.1}%, {:>5.1}%]",
            tool.abbrev(),
            mean * 100.0,
            lo * 100.0,
            hi * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fakeaudit_population::testbed::FollowerClass;

    fn low_class_table() -> &'static Table3 {
        static TABLE: std::sync::OnceLock<Table3> = std::sync::OnceLock::new();
        TABLE.get_or_init(|| {
            run_table3_filtered(Scale::quick(), 11, |t| t.class == FollowerClass::Low).unwrap()
        })
    }

    #[test]
    fn low_class_has_four_rows() {
        let t = low_class_table();
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.rows[0].screen_name, "RobDWaller");
    }

    #[test]
    fn fc_row_tracks_paper_fc_row() {
        // The FC engine on the calibrated population must land near the
        // paper's FC percentages (the calibration anchor).
        let t = low_class_table();
        for r in &t.rows {
            let (pi, _, pg) = r.paper.fc;
            assert!(
                (r.fc.0 - pi).abs() < 12.0,
                "@{} FC inactive {:.1} vs paper {:.1}",
                r.screen_name,
                r.fc.0,
                pi
            );
            assert!(
                (r.fc.2 - pg).abs() < 12.0,
                "@{} FC genuine {:.1} vs paper {:.1}",
                r.screen_name,
                r.fc.2,
                pg
            );
        }
    }

    #[test]
    fn fc_outscores_commercial_tools_on_truth() {
        let t = low_class_table();
        for r in &t.rows {
            let acc = |tool: ToolId| {
                r.scores
                    .iter()
                    .find(|(x, _)| *x == tool)
                    .unwrap()
                    .1
                    .lenient_accuracy
            };
            let fc = acc(ToolId::FakeClassifier);
            assert!(fc > 0.8, "@{} FC lenient accuracy {fc:.2}", r.screen_name);
        }
    }

    #[test]
    fn rows_sum_to_100() {
        let t = low_class_table();
        for r in &t.rows {
            for row in [r.fc, r.sp, r.sb] {
                assert!((row.0 + row.1 + row.2 - 100.0).abs() < 1e-6);
            }
            assert!((r.ta.0 + r.ta.1 - 100.0).abs() < 1e-6);
        }
    }

    #[test]
    fn renders_contain_paper_rows() {
        let t = low_class_table();
        let s = render(t);
        assert!(s.contains("@RobDWaller"));
        assert!(s.contains("paper:"));
        let sc = render_scores(t);
        assert!(sc.contains("Ground-truth scoring"));
        assert!(sc.contains("bootstrap 95% CI"));
    }

    #[test]
    fn deterministic() {
        let a = run_table3_filtered(Scale::quick(), 5, |t| t.followers < 3_000).unwrap();
        let b = run_table3_filtered(Scale::quick(), 5, |t| t.followers < 3_000).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn score_summary_bounds() {
        let t = low_class_table();
        let summary = score_summary(t);
        assert_eq!(summary.len(), 4);
        for (tool, mean, lo, hi) in summary {
            assert!(lo <= mean && mean <= hi, "{tool}: {lo} {mean} {hi}");
            assert!((0.0..=1.0).contains(&mean));
        }
        // FC's mean accuracy beats every commercial tool's.
        let s = score_summary(t);
        let fc = s[0].1;
        for &(_, mean, _, _) in &s[1..] {
            assert!(fc >= mean - 0.02, "FC {fc} vs {mean}");
        }
    }
}
