//! E7 — the Romney scenario as a time series (extension; §I motivates the
//! paper with the 2012 "sudden jump in the number of followers").
//!
//! A target buys a batch of fakes; we then track every tool's fake share
//! day by day as organic growth slowly buries the burst below each tool's
//! sampling window. The series quantifies two things the paper only
//! narrates: (i) right after a burst the prefix tools over-report by large
//! factors while FC stays at the truth, and (ii) the over-reporting decays
//! as the burst ages out of the head of the list.

use fakeaudit_detectors::engine::FollowerAuditor;
use fakeaudit_detectors::{FakeProjectEngine, Socialbakers, StatusPeople, Twitteraudit};
use fakeaudit_population::archetype::{self, TrueClass};
use fakeaudit_population::scenario::grow_organic_daily;
use fakeaudit_population::{BuiltTarget, ClassMix, TargetScenario};
use fakeaudit_stats::rng::{derive_seed, rng_for_indexed};
use fakeaudit_twitter_api::{ApiConfig, ApiSession};
use fakeaudit_twittersim::{AccountId, Platform};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Parameters for the burst timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurstParams {
    /// Organic follower base before the purchase.
    pub organic_followers: usize,
    /// Fakes purchased on day 0.
    pub bought: usize,
    /// Organic arrivals per day after the purchase.
    pub organic_per_day: u32,
    /// Days at which to audit (day 0 = right after the purchase).
    pub audit_days: [u32; 4],
    /// FC sample size.
    pub fc_sample: u64,
}

impl Default for BurstParams {
    fn default() -> Self {
        Self {
            organic_followers: 15_000,
            bought: 1_500,
            organic_per_day: 120,
            audit_days: [0, 7, 14, 28],
            fc_sample: 4_000,
        }
    }
}

/// One audited day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BurstPoint {
    /// Days since the purchase.
    pub day: u32,
    /// Ground-truth fake share at that day, %.
    pub truth_fake_pct: f64,
    /// Fake share reported per tool, % (FC, TA, SP, SB).
    pub fc: f64,
    /// Twitteraudit.
    pub ta: f64,
    /// StatusPeople.
    pub sp: f64,
    /// Socialbakers.
    pub sb: f64,
}

/// The burst time series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BurstResult {
    /// Parameters used.
    pub params: BurstParams,
    /// One point per audited day.
    pub points: Vec<BurstPoint>,
}

fn buy_fakes(
    platform: &mut Platform,
    built: &BuiltTarget,
    truth: &mut HashMap<AccountId, bool>,
    count: usize,
    seed: u64,
) {
    for i in 0..count {
        let mut rng = rng_for_indexed(seed, "e7-bought", i as u64);
        let now = platform.now();
        let mut acc = archetype::generate(&mut rng, TrueClass::Fake, format!("e7_bought_{i}"), now);
        if acc.profile.created_at > now {
            acc.profile.created_at = now;
        }
        let id = platform
            .register(acc.profile, acc.timeline)
            .expect("unique names");
        platform.follow(id, built.target).expect("valid follow");
        truth.insert(id, true);
    }
}

/// Runs the burst timeline.
///
/// # Panics
///
/// Panics if `audit_days` is not strictly increasing.
pub fn run_burst(params: BurstParams, seed: u64) -> BurstResult {
    assert!(
        params.audit_days.windows(2).all(|w| w[0] < w[1]),
        "audit days must be strictly increasing"
    );
    let mut platform = Platform::new();
    // Organic base: almost no fakes.
    let built = TargetScenario::new(
        "e7_politician",
        params.organic_followers,
        ClassMix::new(0.25, 0.01, 0.74).expect("valid mix"),
    )
    .build(&mut platform, derive_seed(seed, "e7-base"))
    .expect("scenario builds");

    // Track fake ground truth across the burst and organic growth.
    let mut is_fake: HashMap<AccountId, bool> = built
        .followers_oldest_first
        .iter()
        .map(|&(id, c)| (id, c == TrueClass::Fake))
        .collect();

    buy_fakes(&mut platform, &built, &mut is_fake, params.bought, seed);

    let fc = FakeProjectEngine::with_default_model(derive_seed(seed, "e7-model"))
        .with_sample_size(params.fc_sample);
    let ta = Twitteraudit::new();
    let sp = StatusPeople::new();
    let sb = Socialbakers::new();

    let mut points = Vec::new();
    let mut day_cursor = 0u32;
    for &day in &params.audit_days {
        if day > day_cursor {
            let grown = grow_organic_daily(
                &mut platform,
                built.target,
                day - day_cursor,
                params.organic_per_day,
                derive_seed(seed, &format!("e7-grow-{day}")),
            )
            .expect("organic growth");
            for id in grown.into_iter().flatten() {
                is_fake.insert(id, false);
            }
            day_cursor = day;
        }
        let truth_fake_pct = {
            let total = platform.materialized_follower_count(built.target) as f64;
            let fakes = is_fake.values().filter(|&&f| f).count() as f64;
            fakes / total * 100.0
        };
        let audit = |engine: &dyn FollowerAuditor, tag: &str| {
            let mut session = ApiSession::new(&platform, ApiConfig::default());
            engine
                .audit(
                    &mut session,
                    built.target,
                    derive_seed(seed, &format!("e7-{tag}-{day}")),
                )
                .expect("audit runs")
                .fake_pct()
        };
        points.push(BurstPoint {
            day,
            truth_fake_pct,
            fc: audit(&fc, "fc"),
            ta: audit(&ta, "ta"),
            sp: audit(&sp, "sp"),
            sb: audit(&sb, "sb"),
        });
    }
    BurstResult { params, points }
}

/// Renders the series.
pub fn render(r: &BurstResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E7: fake share reported after buying {} fakes onto {} organic followers\n\
         {:>5}{:>9}{:>8}{:>8}{:>8}{:>8}",
        r.params.bought, r.params.organic_followers, "day", "truth%", "FC", "TA", "SP", "SB"
    );
    for p in &r.points {
        let _ = writeln!(
            out,
            "{:>5}{:>9.1}{:>8.1}{:>8.1}{:>8.1}{:>8.1}",
            p.day, p.truth_fake_pct, p.fc, p.ta, p.sp, p.sb
        );
    }
    let _ = writeln!(
        out,
        "the prefix tools spike right after the burst and decay as organic\n\
         arrivals push the bought batch out of their windows; FC tracks the\n\
         truth throughout."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> BurstParams {
        BurstParams {
            organic_followers: 3_000,
            bought: 300,
            organic_per_day: 120,
            audit_days: [0, 4, 8, 16],
            fc_sample: 1_000,
        }
    }

    #[test]
    fn prefix_tools_spike_then_decay() {
        let r = run_burst(quick(), 1);
        assert_eq!(r.points.len(), 4);
        let first = &r.points[0];
        let last = &r.points[3];
        // Right after the burst the bought batch fills SB's newest-2000
        // window; 16 days of organic arrivals push it out entirely, so the
        // reported fake share collapses — the spike-then-decay signature.
        assert!(
            first.sb > last.sb + 3.0,
            "SB day0 {:.1} should spike above day16 {:.1}",
            first.sb,
            last.sb
        );
        // And the day-0 spike exceeds what SB's criteria find once the
        // window no longer over-samples the burst.
        assert!(
            first.sb - first.truth_fake_pct > last.sb - last.truth_fake_pct,
            "overshoot must decay: day0 {:.1}/{:.1} vs day16 {:.1}/{:.1}",
            first.sb,
            first.truth_fake_pct,
            last.sb,
            last.truth_fake_pct
        );
    }

    #[test]
    fn fc_tracks_truth_throughout() {
        let r = run_burst(quick(), 2);
        for p in &r.points {
            // FC's inactive bucket absorbs dormant fakes, so its fake share
            // sits at or below the ground-truth share — never at the
            // inflated prefix level.
            assert!(
                p.fc <= p.truth_fake_pct + 3.0,
                "day {}: FC {:.1} vs truth {:.1}",
                p.day,
                p.fc,
                p.truth_fake_pct
            );
        }
    }

    #[test]
    fn truth_dilutes_with_organic_growth() {
        let r = run_burst(quick(), 3);
        for w in r.points.windows(2) {
            assert!(w[1].truth_fake_pct <= w[0].truth_fake_pct + 1e-9);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(run_burst(quick(), 4), run_burst(quick(), 4));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_days() {
        run_burst(
            BurstParams {
                audit_days: [0, 5, 5, 10],
                ..quick()
            },
            1,
        );
    }

    #[test]
    fn render_has_all_days() {
        let r = run_burst(quick(), 5);
        let s = render(&r);
        for p in &r.points {
            assert!(s.contains(&format!("\n{:>5}", p.day)));
        }
    }
}
