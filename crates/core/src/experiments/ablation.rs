//! A1 — ablation: how much of the commercial tools' error is *sampling*?
//!
//! DESIGN.md §4 asks: if the same tools drew their samples uniformly from
//! the full follower list (instead of the newest-`k` prefix), how far would
//! their fake percentages move towards the truth? The answer separates the
//! two failure modes the paper identifies — biased sampling and opaque
//! criteria.

use fakeaudit_detectors::data::{fetch_profiles, fetch_profiles_with_indexed_timelines};
use fakeaudit_detectors::{Socialbakers, StatusPeople, Twitteraudit, Verdict, VerdictCounts};
use fakeaudit_population::{BuiltTarget, ClassMix, TargetScenario};
use fakeaudit_stats::rng::{derive_seed, rng_for};
use fakeaudit_stats::sampling::{Sampler, UniformSampler};
use fakeaudit_twitter_api::{ApiConfig, ApiSession};
use fakeaudit_twittersim::Platform;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One tool's fake percentage under both samplers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Tool name.
    pub tool: String,
    /// Fake % with the tool's own prefix sampling.
    pub prefix_fake_pct: f64,
    /// Fake % with uniform sampling over the full list (same sample size,
    /// same criteria).
    pub uniform_fake_pct: f64,
}

/// Outcome of the sampling ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationResult {
    /// Ground-truth fake percentage of the population.
    pub truth_fake_pct: f64,
    /// Per-tool rows (TA, SP, SB).
    pub rows: Vec<AblationRow>,
}

/// Parameters for the ablation scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AblationParams {
    /// Materialised followers.
    pub followers: usize,
    /// Ground-truth fake fraction (placed with a strong recency burst).
    pub fake_fraction: f64,
    /// Recency bias of the burst.
    pub recency_bias: f64,
}

impl Default for AblationParams {
    fn default() -> Self {
        Self {
            followers: 20_000,
            fake_fraction: 0.10,
            recency_bias: 30.0,
        }
    }
}

/// Runs the sampling ablation.
///
/// # Panics
///
/// Panics if `params.fake_fraction` is not in `[0, 0.8]`.
pub fn run_ablation(params: AblationParams, seed: u64) -> AblationResult {
    assert!(
        (0.0..=0.8).contains(&params.fake_fraction),
        "fake fraction out of range"
    );
    let mix =
        ClassMix::new(0.2, params.fake_fraction, 0.8 - params.fake_fraction).expect("valid mix");
    let mut platform = Platform::new();
    let built: BuiltTarget = TargetScenario::new("ablation", params.followers, mix)
        .fake_recency_bias(params.recency_bias)
        .build(&mut platform, derive_seed(seed, "a1-build"))
        .expect("scenario builds");
    let now = platform.now();

    let ta = Twitteraudit::new();
    let sp = StatusPeople::new();
    let sb = Socialbakers::new();

    let mut rows = Vec::new();

    // Twitteraudit.
    {
        let mut s = ApiSession::new(&platform, ApiConfig::default());
        let prefix = {
            use fakeaudit_detectors::engine::FollowerAuditor;
            ta.audit(&mut s, built.target, derive_seed(seed, "a1-ta"))
                .expect("audit runs")
                .fake_pct()
        };
        let uniform = {
            let mut s = ApiSession::new(&platform, ApiConfig::default());
            let all = s.followers_ids(built.target).expect("target exists");
            let mut rng = rng_for(seed, "a1-ta-uni");
            let sample = UniformSampler::new().draw(&mut rng, &all, ta.frame().assess);
            let data = fetch_profiles(&mut s, &sample).expect("fault-free fetch");
            let counts: VerdictCounts = data.iter().map(|d| ta.classify(d, now)).collect();
            counts.percentage(Verdict::Fake)
        };
        rows.push(AblationRow {
            tool: "Twitteraudit".into(),
            prefix_fake_pct: prefix,
            uniform_fake_pct: uniform,
        });
    }

    // StatusPeople.
    {
        use fakeaudit_detectors::engine::FollowerAuditor;
        let mut s = ApiSession::new(&platform, ApiConfig::default());
        let prefix = sp
            .audit(&mut s, built.target, derive_seed(seed, "a1-sp"))
            .expect("audit runs")
            .fake_pct();
        let uniform = {
            let mut s = ApiSession::new(&platform, ApiConfig::default());
            let all = s.followers_ids(built.target).expect("target exists");
            let mut rng = rng_for(seed, "a1-sp-uni");
            let sample = UniformSampler::new().draw(&mut rng, &all, sp.frame().assess);
            let data = fetch_profiles(&mut s, &sample).expect("fault-free fetch");
            let counts: VerdictCounts = data.iter().map(|d| sp.classify(d, now)).collect();
            counts.percentage(Verdict::Fake)
        };
        rows.push(AblationRow {
            tool: "StatusPeople".into(),
            prefix_fake_pct: prefix,
            uniform_fake_pct: uniform,
        });
    }

    // Socialbakers.
    {
        use fakeaudit_detectors::engine::FollowerAuditor;
        let mut s = ApiSession::new(&platform, ApiConfig::default());
        let prefix = sb
            .audit(&mut s, built.target, derive_seed(seed, "a1-sb"))
            .expect("audit runs")
            .fake_pct();
        let uniform = {
            let mut s = ApiSession::new(&platform, ApiConfig::default());
            let all = s.followers_ids(built.target).expect("target exists");
            let mut rng = rng_for(seed, "a1-sb-uni");
            let sample = UniformSampler::new().draw(&mut rng, &all, sb.frame().assess);
            let data = fetch_profiles_with_indexed_timelines(&mut s, &sample, 200)
                .expect("fault-free fetch");
            let counts: VerdictCounts = data.iter().map(|d| sb.classify(d, now)).collect();
            counts.percentage(Verdict::Fake)
        };
        rows.push(AblationRow {
            tool: "Socialbakers".into(),
            prefix_fake_pct: prefix,
            uniform_fake_pct: uniform,
        });
    }

    AblationResult {
        truth_fake_pct: params.fake_fraction * 100.0,
        rows,
    }
}

/// Renders the ablation comparison.
pub fn render(r: &AblationResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "A1: prefix vs uniform sampling inside the commercial tools\n\
         (ground truth: {:.1}% fake, bought recently)\n\
         {:<16}{:>14}{:>16}",
        r.truth_fake_pct, "tool", "prefix fake%", "uniform fake%"
    );
    for row in &r.rows {
        let _ = writeln!(
            out,
            "{:<16}{:>14.1}{:>16.1}",
            row.tool, row.prefix_fake_pct, row.uniform_fake_pct
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> AblationParams {
        AblationParams {
            followers: 6_000,
            fake_fraction: 0.10,
            recency_bias: 30.0,
        }
    }

    #[test]
    fn uniform_sampling_reduces_burst_overreporting_where_criteria_allow() {
        // Tools that keep a separate inactive bucket (SP, SB) over-report
        // fakes under a recency burst mainly because of *sampling*; drawing
        // the same sample uniformly moves their fake share down towards the
        // truth. Twitteraudit is different: it folds dormant accounts into
        // its fake bucket, so a uniform sample (which reaches the stale
        // tail) can *raise* its fake share — sampling alone cannot fix a
        // tool whose criteria conflate classes. Both effects are the point
        // of this ablation.
        let r = run_ablation(quick(), 1);
        assert_eq!(r.rows.len(), 3);
        for name in ["StatusPeople", "Socialbakers"] {
            let row = r.rows.iter().find(|x| x.tool == name).unwrap();
            assert!(
                row.uniform_fake_pct < row.prefix_fake_pct,
                "{name}: uniform {:.1} should sit below prefix {:.1}",
                row.uniform_fake_pct,
                row.prefix_fake_pct
            );
        }
        let ta = r.rows.iter().find(|x| x.tool == "Twitteraudit").unwrap();
        assert!(
            ta.uniform_fake_pct > r.truth_fake_pct,
            "TA keeps over-reporting even uniformly (criteria conflation): {:.1}",
            ta.uniform_fake_pct
        );
    }

    #[test]
    fn prefix_sampling_overreports_fakes_under_burst() {
        let r = run_ablation(quick(), 2);
        // The burst sits at the head of the list: the tools with a separate
        // inactive bucket must report more fakes from their prefix windows
        // than from uniform samples. (TA is excluded here — its conflation
        // of dormant accounts with fakes can push the *uniform* estimate
        // higher; see the companion test.)
        for name in ["StatusPeople", "Socialbakers"] {
            let row = r.rows.iter().find(|x| x.tool == name).unwrap();
            assert!(
                row.prefix_fake_pct > row.uniform_fake_pct - 1.0,
                "{}: prefix {:.1} vs uniform {:.1}",
                row.tool,
                row.prefix_fake_pct,
                row.uniform_fake_pct
            );
        }
        // And the narrow-window SB must over-report the truth outright.
        let sb = r.rows.iter().find(|x| x.tool == "Socialbakers").unwrap();
        assert!(
            sb.prefix_fake_pct > r.truth_fake_pct,
            "SB prefix {:.1} vs truth {:.1}",
            sb.prefix_fake_pct,
            r.truth_fake_pct
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(run_ablation(quick(), 3), run_ablation(quick(), 3));
    }

    #[test]
    fn render_has_three_tools() {
        let s = render(&run_ablation(quick(), 4));
        assert!(s.contains("Twitteraudit"));
        assert!(s.contains("StatusPeople"));
        assert!(s.contains("Socialbakers"));
    }

    #[test]
    #[should_panic(expected = "fake fraction out of range")]
    fn rejects_bad_fraction() {
        run_ablation(
            AblationParams {
                fake_fraction: 0.9,
                ..quick()
            },
            1,
        );
    }
}
