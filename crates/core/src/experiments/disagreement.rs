//! E5 — §IV-D: "the more followers a target has, the less the fake
//! followers analytics agree."
//!
//! Quantifies the claim over the Table III rows: per-target disagreement
//! (range and dispersion of the tools' fake percentages) correlated with
//! the target's follower count.

use crate::compare::{disagreement, outcome_from_row, Disagreement};
use crate::experiments::table3::Table3;
use fakeaudit_stats::correlation;
use fakeaudit_twittersim::AccountId;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Disagreement for one target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisagreementRow {
    /// Screen name.
    pub screen_name: String,
    /// Follower count.
    pub followers: u64,
    /// Cross-tool disagreement.
    pub disagreement: Disagreement,
}

/// Outcome of the disagreement experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisagreementResult {
    /// Per-target rows, in Table III order.
    pub rows: Vec<DisagreementRow>,
    /// Pearson correlation between log10(followers) and the fake-percentage
    /// range.
    pub correlation_log_followers_vs_fake_range: f64,
    /// Spearman rank correlation between follower count and the
    /// fake-percentage range (robust to the count skew).
    pub spearman_followers_vs_fake_range: f64,
}

/// Pearson correlation of two equal-length samples.
///
/// # Panics
///
/// Panics when lengths differ or fewer than 2 points are given.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx * vy).sqrt()
    }
}

/// Derives the disagreement analysis from a (measured) Table III.
pub fn run_disagreement(table: &Table3) -> DisagreementResult {
    let rows: Vec<DisagreementRow> = table
        .rows
        .iter()
        .map(|r| {
            let target = AccountId(0);
            // Rebuild count-level outcomes from the percentage rows on a
            // common base so chi-square sees comparable totals.
            let base = 1_000.0;
            let from = |inact: f64, fake: f64, good: f64| {
                outcome_from_row(
                    "row",
                    target,
                    (inact / 100.0 * base) as u64,
                    (fake / 100.0 * base) as u64,
                    (good / 100.0 * base) as u64,
                )
            };
            let outs = [
                from(r.fc.0, r.fc.1, r.fc.2),
                from(0.0, r.ta.0, r.ta.1),
                from(r.sp.0, r.sp.1, r.sp.2),
                from(r.sb.0, r.sb.1, r.sb.2),
            ];
            let refs: Vec<_> = outs.iter().collect();
            DisagreementRow {
                screen_name: r.screen_name.clone(),
                followers: r.followers,
                disagreement: disagreement(&refs),
            }
        })
        .collect();
    let xs: Vec<f64> = rows.iter().map(|r| (r.followers as f64).log10()).collect();
    let raw: Vec<f64> = rows.iter().map(|r| r.followers as f64).collect();
    let ys: Vec<f64> = rows.iter().map(|r| r.disagreement.fake_range).collect();
    let (correlation, spearman) = if rows.len() >= 2 {
        (
            pearson(&xs, &ys),
            correlation::spearman(&raw, &ys).expect("validated samples"),
        )
    } else {
        (0.0, 0.0)
    };
    DisagreementResult {
        rows,
        correlation_log_followers_vs_fake_range: correlation,
        spearman_followers_vs_fake_range: spearman,
    }
}

/// Renders the disagreement table and correlation.
pub fn render(r: &DisagreementResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E5: cross-tool disagreement vs follower count\n\
         {:<18}{:>11}{:>14}{:>12}",
        "profile", "followers", "fake% range", "fake% sd"
    );
    for row in &r.rows {
        let _ = writeln!(
            out,
            "@{:<17}{:>11}{:>14.1}{:>12.1}",
            row.screen_name, row.followers, row.disagreement.fake_range, row.disagreement.fake_std
        );
    }
    let _ = writeln!(
        out,
        "Pearson correlation, log10(followers) vs fake% range: {:+.2}",
        r.correlation_log_followers_vs_fake_range
    );
    let _ = writeln!(
        out,
        "Spearman rank correlation, followers vs fake% range:  {:+.2}",
        r.spearman_followers_vs_fake_range
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::table3::run_table3_filtered;
    use crate::experiments::Scale;

    #[test]
    fn pearson_reference_cases() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[6.0, 4.0, 2.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn pearson_length_mismatch_panics() {
        pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn disagreement_rows_from_measured_table() {
        let t = run_table3_filtered(Scale::quick(), 13, |x| x.followers < 4_000).unwrap();
        let d = run_disagreement(&t);
        assert_eq!(d.rows.len(), t.rows.len());
        for row in &d.rows {
            assert!(row.disagreement.fake_range >= 0.0);
            assert_eq!(row.disagreement.tools, 4);
        }
    }

    #[test]
    fn render_shows_correlation() {
        let t = run_table3_filtered(Scale::quick(), 13, |x| x.followers < 4_000).unwrap();
        let s = render(&run_disagreement(&t));
        assert!(s.contains("Pearson correlation"));
        assert!(s.contains("Spearman rank correlation"));
    }
}
