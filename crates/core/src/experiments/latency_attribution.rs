//! E9 — latency attribution under load (extension).
//!
//! E8 answers *how slow* the audit service gets as offered load
//! approaches capacity; this driver answers *where the time goes*. It
//! reruns the prewarmed E8 sweep with live causal tracing on, so every
//! answered request leaves a `server.request` → `server.queue_wait` /
//! `server.service` span tree, then decomposes the p50 and p99 request
//! per tool into queue / crawl / cache / compute shares and evaluates an
//! SLO (p95 latency + availability) over sliding sim-time windows.
//!
//! The sweep is cache-served end to end (every target prewarmed at every
//! tool), so the crawl share is structurally zero here — fresh-crawl
//! attribution shows up in `fakeaudit audit --telemetry` traces instead.
//! The story this table tells is the handover from cache to queue: at
//! low rate the tail request is cache time, past the knee it is queue
//! wait almost entirely.
//!
//! Determinism: each rate cell owns a private [`Telemetry`] handle and a
//! single-threaded event loop, so span ids are allocated in event order
//! and the table (and any exported trace) is byte-identical across runs.
//! `crossbeam` fans the cells across OS threads; results are collected
//! in rate order.

use fakeaudit_server::{generate, LoadSpec, OverloadPolicy, ServerConfig, ServerSim};
use fakeaudit_stats::rng::derive_seed;
use fakeaudit_telemetry::{Breakdown, LatencyAttribution, SloSpec, Telemetry};
use fakeaudit_twittersim::AccountId;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

use super::service_load::{build_services, build_targets};
use super::Scale;

/// One `(rate, tool)` cell: where the median and tail request's latency
/// went, as percentage shares of that request's total.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributionRow {
    /// Offered arrival rate in requests/second.
    pub offered_rate: f64,
    /// Tool abbreviation, or `ALL` for the aggregate row.
    pub tool: String,
    /// Answered requests attributed for this tool.
    pub requests: u64,
    /// p50 request's end-to-end latency (simulated seconds).
    pub p50_total: f64,
    /// p50 queue-wait share in percent.
    pub p50_queue: f64,
    /// p50 API-crawl share in percent.
    pub p50_crawl: f64,
    /// p50 cache-read share in percent.
    pub p50_cache: f64,
    /// p50 remainder (classification, overheads) in percent.
    pub p50_compute: f64,
    /// p99 request's end-to-end latency (simulated seconds).
    pub p99_total: f64,
    /// p99 queue-wait share in percent.
    pub p99_queue: f64,
    /// p99 API-crawl share in percent.
    pub p99_crawl: f64,
    /// p99 cache-read share in percent.
    pub p99_cache: f64,
    /// p99 remainder share in percent.
    pub p99_compute: f64,
}

/// SLO verdict for one rate: sliding-window evaluation of the trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloRow {
    /// Offered arrival rate in requests/second.
    pub offered_rate: f64,
    /// Windows evaluated.
    pub windows: u64,
    /// Windows where either error budget burned past 1×.
    pub violated: u64,
    /// Worst availability burn rate across windows.
    pub worst_availability_burn: f64,
    /// Worst latency burn rate across windows.
    pub worst_latency_burn: f64,
}

/// Outcome of the latency-attribution sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyAttributionResult {
    /// Attribution rows grouped by ascending rate, then tool name.
    pub rows: Vec<AttributionRow>,
    /// One SLO verdict per rate, ascending.
    pub slo: Vec<SloRow>,
    /// The swept arrival rates (req/s).
    pub rates: Vec<f64>,
    /// Trace window in simulated seconds.
    pub duration_secs: f64,
    /// Workers per tool.
    pub workers_per_tool: usize,
    /// Admission-queue capacity per tool.
    pub queue_capacity: usize,
    /// Prewarmed targets in the popularity set.
    pub targets: usize,
    /// Latency objective (seconds at the spec quantile).
    pub latency_objective_secs: f64,
    /// Availability objective in `[0, 1]`.
    pub availability_objective: f64,
}

/// `part / total` as a percentage share; zero for an empty total.
fn share(b: &Breakdown, part: f64) -> f64 {
    if b.total > 0.0 {
        100.0 * part / b.total
    } else {
        0.0
    }
}

/// Runs one rate cell with live tracing and reduces its trace.
fn run_cell(
    platform: &fakeaudit_twittersim::Platform,
    base: &super::service_load::Services,
    trace: &[fakeaudit_server::Request],
    rate: f64,
    config: ServerConfig,
    spec: &SloSpec,
) -> (Vec<AttributionRow>, SloRow) {
    let clones = base.clone();
    let telemetry = Telemetry::enabled();
    let mut sim = ServerSim::with_telemetry(platform, config, telemetry.clone());
    sim.register(Box::new(clones.fc));
    sim.register(Box::new(clones.ta));
    sim.register(Box::new(clones.sp));
    sim.register(Box::new(clones.sb));
    let _report = sim.run(trace);

    let events = telemetry.events();
    let attribution = LatencyAttribution::from_events(&events);
    let rows = attribution
        .tools
        .iter()
        .map(|t| AttributionRow {
            offered_rate: rate,
            tool: t.tool.clone(),
            requests: t.requests as u64,
            p50_total: t.p50.total,
            p50_queue: share(&t.p50, t.p50.queue),
            p50_crawl: share(&t.p50, t.p50.crawl),
            p50_cache: share(&t.p50, t.p50.cache),
            p50_compute: share(&t.p50, t.p50.compute),
            p99_total: t.p99.total,
            p99_queue: share(&t.p99, t.p99.queue),
            p99_crawl: share(&t.p99, t.p99.crawl),
            p99_cache: share(&t.p99, t.p99.cache),
            p99_compute: share(&t.p99, t.p99.compute),
        })
        .collect();

    let slo = spec.evaluate(&events);
    let violated = slo.violations().len() as u64;
    let worst = |f: fn(&fakeaudit_telemetry::SloWindow) -> f64| {
        slo.windows.iter().map(f).fold(0.0, f64::max)
    };
    let slo_row = SloRow {
        offered_rate: rate,
        windows: slo.windows.len() as u64,
        violated,
        worst_availability_burn: worst(|w| w.availability_burn),
        worst_latency_burn: worst(|w| w.latency_burn),
    };
    (rows, slo_row)
}

/// Runs the E9 latency-attribution sweep.
///
/// # Panics
///
/// Panics on internal inconsistencies only (scenario build, prewarm).
pub fn run_latency_attribution(scale: Scale, seed: u64) -> LatencyAttributionResult {
    const TARGETS: usize = 4;
    let quick = scale.materialize_cap < 10_000;
    let rates: Vec<f64> = if quick {
        vec![0.6, 9.6]
    } else {
        vec![0.5, 2.0, 8.0]
    };
    let duration_secs = if quick { 400.0 } else { 1_200.0 };
    let config = ServerConfig {
        workers_per_tool: 2,
        queue_capacity: 8,
        policy: OverloadPolicy::Shed,
        degraded_secs: 0.5,
        deadline_secs: None,
    };
    let spec = SloSpec::default();

    let (platform, targets) = build_targets(scale, seed, TARGETS);
    let base = build_services(scale, seed, &platform, &targets);
    let ranked: Vec<AccountId> = targets.iter().map(|t| t.target).collect();

    let traces: Vec<Vec<fakeaudit_server::Request>> = rates
        .iter()
        .enumerate()
        .map(|(i, &rate)| {
            let load = LoadSpec::poisson(rate, duration_secs);
            generate(&load, &ranked, derive_seed(seed, &format!("e9-trace-{i}")))
        })
        .collect();

    let cells: Vec<(Vec<AttributionRow>, SloRow)> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = traces
            .iter()
            .zip(&rates)
            .map(|(trace, &rate)| {
                let (platform, base, spec) = (&platform, &base, &spec);
                s.spawn(move |_| run_cell(platform, base, trace, rate, config, spec))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep cell panicked"))
            .collect()
    })
    .expect("crossbeam scope");

    let mut rows = Vec::new();
    let mut slo = Vec::new();
    for (cell_rows, cell_slo) in cells {
        rows.extend(cell_rows);
        slo.push(cell_slo);
    }
    LatencyAttributionResult {
        rows,
        slo,
        rates,
        duration_secs,
        workers_per_tool: config.workers_per_tool,
        queue_capacity: config.queue_capacity,
        targets: TARGETS,
        latency_objective_secs: spec.latency_objective_secs,
        availability_objective: spec.availability_objective,
    }
}

/// Renders the attribution and SLO tables.
pub fn render(r: &LatencyAttributionResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E9: latency attribution under load ({} targets, {} workers/tool, queue {}, {:.0}s window)",
        r.targets, r.workers_per_tool, r.queue_capacity, r.duration_secs
    );
    let _ = writeln!(
        out,
        "{:<7}{:<5}{:>9}  {:<4}{:>9}{:>8}{:>8}{:>8}{:>9}",
        "rate", "tool", "requests", "pct", "total_s", "queue%", "crawl%", "cache%", "compute%"
    );
    for row in &r.rows {
        for (label, total, queue, crawl, cache, compute) in [
            (
                "p50",
                row.p50_total,
                row.p50_queue,
                row.p50_crawl,
                row.p50_cache,
                row.p50_compute,
            ),
            (
                "p99",
                row.p99_total,
                row.p99_queue,
                row.p99_crawl,
                row.p99_cache,
                row.p99_compute,
            ),
        ] {
            let _ = writeln!(
                out,
                "{:<7.1}{:<5}{:>9}  {:<4}{:>9.3}{:>8.1}{:>8.1}{:>8.1}{:>9.1}",
                row.offered_rate,
                row.tool,
                row.requests,
                label,
                total,
                queue,
                crawl,
                cache,
                compute
            );
        }
    }
    let _ = writeln!(
        out,
        "SLO: p95 latency <= {:.0}s and availability >= {:.0}% over sliding windows",
        r.latency_objective_secs,
        r.availability_objective * 100.0
    );
    let _ = writeln!(
        out,
        "{:<7}{:>9}{:>10}{:>13}{:>13}",
        "rate", "windows", "violated", "avail burn", "lat burn"
    );
    for s in &r.slo {
        let _ = writeln!(
            out,
            "{:<7.1}{:>9}{:>10}{:>13.2}{:>13.2}",
            s.offered_rate, s.windows, s.violated, s.worst_availability_burn, s.worst_latency_burn
        );
    }
    let _ = writeln!(
        out,
        "the tail request's budget migrates as the service saturates: at\n\
         low rate it is cache-read time, past the knee the queue owns it,\n\
         and the availability budget burns as shed answers mount."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> &'static LatencyAttributionResult {
        static R: std::sync::OnceLock<LatencyAttributionResult> = std::sync::OnceLock::new();
        R.get_or_init(|| run_latency_attribution(Scale::quick(), 7))
    }

    fn all_row(r: &LatencyAttributionResult, rate: f64) -> &AttributionRow {
        r.rows
            .iter()
            .find(|row| row.offered_rate == rate && row.tool == "ALL")
            .expect("ALL row present")
    }

    #[test]
    fn every_rate_attributes_every_tool() {
        let r = result();
        for &rate in &r.rates {
            let tools: Vec<&str> = r
                .rows
                .iter()
                .filter(|row| row.offered_rate == rate)
                .map(|row| row.tool.as_str())
                .collect();
            assert!(tools.len() >= 5, "4 tools + ALL at rate {rate}: {tools:?}");
            assert!(tools.contains(&"ALL"));
        }
    }

    #[test]
    fn same_seed_same_result() {
        let again = run_latency_attribution(Scale::quick(), 7);
        assert_eq!(result(), &again);
        assert_eq!(render(result()), render(&again));
    }

    #[test]
    fn shares_sum_to_the_request() {
        for row in &result().rows {
            for (total, parts) in [
                (
                    row.p50_total,
                    row.p50_queue + row.p50_crawl + row.p50_cache + row.p50_compute,
                ),
                (
                    row.p99_total,
                    row.p99_queue + row.p99_crawl + row.p99_cache + row.p99_compute,
                ),
            ] {
                if total > 0.0 {
                    assert!(
                        (parts - 100.0).abs() < 0.5,
                        "{} @ {}: shares sum to {parts}",
                        row.tool,
                        row.offered_rate
                    );
                }
            }
        }
    }

    #[test]
    fn prewarmed_sweep_never_crawls() {
        for row in &result().rows {
            assert_eq!(row.p50_crawl, 0.0, "{} @ {}", row.tool, row.offered_rate);
            assert_eq!(row.p99_crawl, 0.0, "{} @ {}", row.tool, row.offered_rate);
        }
    }

    #[test]
    fn queue_owns_the_tail_past_the_knee() {
        let r = result();
        let (low, high) = (
            all_row(r, *r.rates.first().unwrap()),
            all_row(r, *r.rates.last().unwrap()),
        );
        assert!(
            high.p99_queue > low.p99_queue,
            "p99 queue share should rise with load: {} vs {}",
            high.p99_queue,
            low.p99_queue
        );
        assert!(
            high.p99_queue > 50.0,
            "past the knee the tail is queue-dominated: {}",
            high.p99_queue
        );
    }

    #[test]
    fn slo_holds_below_the_knee_and_breaks_past_it() {
        let r = result();
        let (low, high) = (r.slo.first().unwrap(), r.slo.last().unwrap());
        assert!(low.windows > 0);
        assert_eq!(low.violated, 0, "below the knee the SLO holds");
        assert!(high.violated > 0, "past the knee shed answers burn budget");
        assert!(high.worst_availability_burn > 1.0);
    }

    #[test]
    fn render_lists_attribution_and_slo() {
        let text = render(result());
        assert!(text.contains("E9: latency attribution"));
        assert!(text.contains("queue%"));
        assert!(text.contains("violated"));
        assert!(text.contains("ALL"));
    }
}
