//! E3 — §IV-B: crawl budgets ("gathering Obama's followers took ~27 days").

use fakeaudit_population::testbed::PAPER_TARGETS;
use fakeaudit_twitter_api::crawl::CrawlBudget;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One crawl-budget row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrawlRow {
    /// Screen name.
    pub screen_name: String,
    /// Follower count.
    pub followers: u64,
    /// Budget for the id list + all profiles (what the authors crawled).
    pub profiles: CrawlBudget,
    /// Budget including one timeline page per follower.
    pub with_timelines: CrawlBudget,
}

/// Crawl budgets for every testbed target.
pub fn run_crawl_budgets() -> Vec<CrawlRow> {
    PAPER_TARGETS
        .iter()
        .map(|t| CrawlRow {
            screen_name: t.screen_name.to_string(),
            followers: t.followers,
            profiles: CrawlBudget::for_followers(t.followers, false),
            with_timelines: CrawlBudget::for_followers(t.followers, true),
        })
        .collect()
}

/// Renders the crawl-budget table.
pub fn render(rows: &[CrawlRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E3: full-crawl budgets at Table I sustained rates\n\
         {:<18}{:>11} {:>14} {:>18}",
        "profile", "followers", "ids+profiles", "+timelines"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "@{:<17}{:>11} {:>14} {:>18}",
            r.screen_name,
            r.followers,
            r.profiles.total.to_string(),
            r.with_timelines.total.to_string()
        );
    }
    let _ = writeln!(
        out,
        "(paper: crawling @BarackObama's full follower set took \"around 27 days\")"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_rows() {
        assert_eq!(run_crawl_budgets().len(), 20);
    }

    #[test]
    fn obama_row_matches_paper_claim() {
        let rows = run_crawl_budgets();
        let obama = rows
            .iter()
            .find(|r| r.screen_name == "BarackObama")
            .unwrap();
        let days = obama.profiles.total_days();
        assert!((25.0..32.0).contains(&days), "Obama crawl {days:.1} days");
    }

    #[test]
    fn budgets_grow_with_followers() {
        let rows = run_crawl_budgets();
        for w in rows.windows(2) {
            if w[0].followers <= w[1].followers {
                assert!(w[0].profiles.total <= w[1].profiles.total);
            }
        }
    }

    #[test]
    fn render_mentions_27_days() {
        let s = render(&run_crawl_budgets());
        assert!(s.contains("27 days"));
        assert!(s.contains("@BarackObama"));
    }
}
