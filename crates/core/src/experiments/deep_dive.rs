//! E6 — §II-A: StatusPeople "Fakers" versus the "Deep Dive".
//!
//! In January 2014 StatusPeople reported that their Deep Dive tool (first
//! 1.25 M records, 33 K assessed) produced very different scores from the
//! public Fakers app (newest 35 K, 700 assessed) on mega-accounts:
//! @BarackObama shifted from 70 % to 45 % fake, Lady Gaga from 71 % to
//! 39 %, Shakira from 79 % to 49 %. The mechanism is exactly the paper's
//! sampling argument: widening the window dilutes the newest-follower bias.
//! This driver reproduces the *shift* on synthetic mega-accounts.
//!
//! Under the scale substitution (DESIGN.md), windows are scaled by
//! `materialised / nominal` so each variant keeps its real *fraction* of
//! the follower base.

use crate::experiments::Scale;
use fakeaudit_detectors::engine::{FollowerAuditor, PrefixFrame};
use fakeaudit_detectors::statuspeople::{SpCriteria, StatusPeople};
use fakeaudit_population::{ClassMix, TargetScenario};
use fakeaudit_stats::rng::derive_seed;
use fakeaudit_twitter_api::{ApiConfig, ApiSession};
use fakeaudit_twittersim::Platform;
use serde::Serialize;
use std::fmt::Write as _;

/// A mega-account for the Deep Dive comparison. Ground-truth mixes for
/// Lady Gaga and Shakira were never published; we reuse Obama's FC-derived
/// shape (documented assumption — the experiment's target is the *shift*,
/// not absolute scores).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MegaAccount {
    /// Screen name.
    pub screen_name: &'static str,
    /// Nominal follower count (2014 figures).
    pub followers: u64,
    /// Blog-reported Fakers "fake" score (%, fake + inactive combined).
    pub blog_fakers: f64,
    /// Blog-reported Deep Dive score (%).
    pub blog_deep_dive: f64,
}

/// The three accounts named in the StatusPeople blog post.
pub const MEGA_ACCOUNTS: &[MegaAccount] = &[
    MegaAccount {
        screen_name: "BarackObama_dd",
        followers: 41_000_000,
        blog_fakers: 70.0,
        blog_deep_dive: 45.0,
    },
    MegaAccount {
        screen_name: "ladygaga_dd",
        followers: 41_000_000,
        blog_fakers: 71.0,
        blog_deep_dive: 39.0,
    },
    MegaAccount {
        screen_name: "shakira_dd",
        followers: 24_000_000,
        blog_fakers: 79.0,
        blog_deep_dive: 49.0,
    },
];

/// One measured comparison row.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DeepDiveRow {
    /// The account.
    pub account: MegaAccount,
    /// Fakers non-genuine share (fake + inactive), %.
    pub fakers_non_genuine: f64,
    /// Deep Dive non-genuine share, %.
    pub deep_dive_non_genuine: f64,
    /// Ground-truth non-genuine share, %.
    pub truth_non_genuine: f64,
}

/// Outcome of the Deep Dive experiment.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DeepDiveResult {
    /// One row per mega-account.
    pub rows: Vec<DeepDiveRow>,
}

fn scaled_frame(frame: PrefixFrame, nominal: u64, materialized: usize) -> PrefixFrame {
    let scale = materialized as f64 / nominal as f64;
    let window = ((frame.window as f64 * scale).round() as usize).clamp(1, materialized);
    let assess = ((frame.assess as f64 * scale).round() as usize)
        .clamp(1, window)
        .max(window.min(600)); // keep enough samples for stable percentages
    PrefixFrame { window, assess }
}

/// Runs the Fakers-vs-Deep-Dive comparison.
///
/// # Panics
///
/// Panics only on internal inconsistencies (scenario construction).
pub fn run_deep_dive(scale: Scale, seed: u64) -> DeepDiveResult {
    // Obama-shaped base (FC row: ~66% non-genuine overall) with the burst
    // structure the blog shift implies: the bought batch is packed into the
    // extreme head (it saturates the newest-35K window but dilutes across
    // the newest-1.25M one) while the dormant bulk sits in the stale tail.
    // The bought batch must be smaller than the Deep Dive window (else both
    // windows saturate): 1.2% of the base, packed into the extreme head.
    let mix = ClassMix::from_percentages(64.4, 1.2, 34.4).expect("valid mix");
    let mut rows = Vec::new();
    for (i, account) in MEGA_ACCOUNTS.iter().enumerate() {
        let materialized = scale.materialize_cap.min(account.followers as usize);
        let mut platform = Platform::new();
        let built = TargetScenario::new(account.screen_name, materialized, mix)
            .fake_recency_bias(80.0)
            .inactive_staleness_bias(12.0)
            .nominal_followers(account.followers)
            .build(&mut platform, derive_seed(seed, &format!("e6-{i}")))
            .expect("scenario builds");

        let run = |frame: PrefixFrame, tag: &str| {
            let sp = StatusPeople::new()
                .with_frame(scaled_frame(frame, account.followers, materialized))
                .with_criteria(SpCriteria::default());
            let mut session = ApiSession::new(&platform, ApiConfig::default());
            let out = sp
                .audit(
                    &mut session,
                    built.target,
                    derive_seed(seed, &format!("e6-{i}-{tag}")),
                )
                .expect("audit runs");
            out.fake_pct() + out.inactive_pct()
        };
        let fakers = run(StatusPeople::new().frame(), "fakers");
        let deep = run(StatusPeople::deep_dive().frame(), "deep");
        let truth = (1.0 - built.true_mix().genuine()) * 100.0;
        rows.push(DeepDiveRow {
            account: *account,
            fakers_non_genuine: fakers,
            deep_dive_non_genuine: deep,
            truth_non_genuine: truth,
        });
    }
    DeepDiveResult { rows }
}

/// Renders the comparison beside the blog's figures.
pub fn render(r: &DeepDiveResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E6: StatusPeople Fakers vs Deep Dive on mega-accounts\n\
         (non-genuine share, %; blog figures from Jan 2014 in parentheses)\n\
         {:<18}{:>12}{:>20}{:>22}{:>10}",
        "account", "followers", "Fakers (blog)", "Deep Dive (blog)", "truth"
    );
    for row in &r.rows {
        let _ = writeln!(
            out,
            "@{:<17}{:>12}{:>13.1} ({:>4.0}){:>15.1} ({:>4.0}){:>10.1}",
            row.account.screen_name,
            row.account.followers,
            row.fakers_non_genuine,
            row.account.blog_fakers,
            row.deep_dive_non_genuine,
            row.account.blog_deep_dive,
            row.truth_non_genuine
        );
    }
    let _ = writeln!(
        out,
        "same tool, same criteria, different window: the score moves by tens\n\
         of points (the blog's 70%->45% Obama shift) because the newest-35K\n\
         window saturates on the freshly bought batch while the 1.25M window\n\
         dilutes it — the score is an artefact of the sampling frame, which\n\
         is §II-A's point."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> DeepDiveResult {
        // Scale::quick()'s 2 500-account cap scales the Fakers window down
        // to ~2 slots — pure noise. This experiment needs enough
        // materialisation for the 0.085% window to hold tens of accounts.
        let scale = Scale {
            materialize_cap: 30_000,
            ..Scale::quick()
        };
        run_deep_dive(scale, 3)
    }

    #[test]
    fn three_mega_accounts() {
        let r = quick();
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn window_choice_moves_the_score_by_double_digits() {
        // The blog's headline shift, reproduced in direction and order of
        // magnitude: the Fakers window reads far more non-genuine than the
        // Deep Dive window on the same account with the same criteria.
        // (Note the real shift also *undershot* the FC-implied truth —
        // widening the window does not make the score correct, it just
        // makes it different; the instability is the finding. The scale
        // substitution compresses the magnitude: the scaled Fakers window
        // has tens of slots, so its saturation is bounded.)
        for row in &quick().rows {
            assert!(
                row.fakers_non_genuine > row.deep_dive_non_genuine + 4.0,
                "@{}: Fakers {:.1} vs Deep Dive {:.1}",
                row.account.screen_name,
                row.fakers_non_genuine,
                row.deep_dive_non_genuine
            );
        }
    }

    #[test]
    fn scaled_frames_preserve_fractions() {
        let f = scaled_frame(
            PrefixFrame {
                window: 35_000,
                assess: 700,
            },
            41_000_000,
            50_000,
        );
        // 35K/41M of 50K ≈ 43.
        assert!((40..=250).contains(&f.window), "window {}", f.window);
        let d = scaled_frame(
            PrefixFrame {
                window: 1_250_000,
                assess: 33_000,
            },
            41_000_000,
            50_000,
        );
        assert!(
            d.window > f.window * 10,
            "deep {} vs fakers {}",
            d.window,
            f.window
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            run_deep_dive(Scale::quick(), 5),
            run_deep_dive(Scale::quick(), 5)
        );
    }

    #[test]
    fn render_shows_blog_numbers() {
        let s = render(&quick());
        assert!(s.contains("70)"), "{s}");
        assert!(s.contains("45)"), "{s}");
        assert!(s.contains("Deep Dive"));
    }
}
