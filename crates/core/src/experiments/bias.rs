//! E2 — §II-D: the sampling-bias worked example.
//!
//! "If an account with 100K genuine followers buys 10K fake followers, the
//! application could show a 100% of fake, while the right percentage should
//! be around 9%." This driver reproduces the example exactly: the bought
//! followers are the newest, the commercial tools sample the head of the
//! list, FC samples uniformly. It also measures the empirical coverage of
//! the 95% Wald interval under both samplers — the paper's point that the
//! estimator's guarantees hold only for unbiased samples.

use fakeaudit_stats::bias::{burst_population, measure_estimator_error, EstimatorTrial};
use fakeaudit_stats::estimator::{ConfidenceLevel, ProportionEstimate};
use fakeaudit_stats::rng::rng_for;
use fakeaudit_stats::sampling::SamplingScheme;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Parameters for the bias experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BiasParams {
    /// Genuine (older) followers.
    pub genuine: usize,
    /// Bought (newest) fake followers.
    pub bought: usize,
    /// The prefix window the commercial tool samples.
    pub window: usize,
    /// Sample size per repetition.
    pub sample_size: usize,
    /// Repetitions for the empirical trials.
    pub repetitions: usize,
}

impl Default for BiasParams {
    /// The paper's numbers: 100K genuine + 10K bought, a 1000-record tool
    /// window, FC's 9604 sample.
    fn default() -> Self {
        Self {
            genuine: 100_000,
            bought: 10_000,
            window: 1_000,
            sample_size: 1_000,
            repetitions: 50,
        }
    }
}

/// Outcome of the bias experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BiasResult {
    /// Parameters used.
    pub params: BiasParams,
    /// True population fake share.
    pub truth: f64,
    /// Prefix-sampler trial (the commercial tools).
    pub prefix: EstimatorTrial,
    /// Uniform-sampler trial (FC).
    pub uniform: EstimatorTrial,
    /// Empirical 95% Wald coverage under prefix sampling.
    pub prefix_coverage: f64,
    /// Empirical 95% Wald coverage under uniform sampling.
    pub uniform_coverage: f64,
}

fn coverage<R: rand::Rng + ?Sized>(
    rng: &mut R,
    labels: &[bool],
    scheme: SamplingScheme,
    sample_size: usize,
    repetitions: usize,
    truth: f64,
) -> f64 {
    let mut covered = 0usize;
    for _ in 0..repetitions {
        let idx = scheme.draw_indices(rng, labels.len(), sample_size);
        let positives = idx.iter().filter(|&&i| labels[i]).count() as u64;
        let est = ProportionEstimate::new(positives, idx.len() as u64).expect("non-empty sample");
        if est.wald(ConfidenceLevel::P95).contains(truth) {
            covered += 1;
        }
    }
    covered as f64 / repetitions as f64
}

/// Runs the bias experiment.
///
/// # Panics
///
/// Panics if `params` describe an empty population or zero samples.
pub fn run_bias(params: BiasParams, seed: u64) -> BiasResult {
    let labels = burst_population(params.bought, params.genuine);
    let truth = params.bought as f64 / (params.bought + params.genuine) as f64;
    let mut rng = rng_for(seed, "e2");
    let prefix_scheme = SamplingScheme::Prefix {
        window: params.window,
    };
    let prefix = measure_estimator_error(
        &mut rng,
        &labels,
        prefix_scheme,
        params.sample_size,
        params.repetitions,
    );
    let uniform = measure_estimator_error(
        &mut rng,
        &labels,
        SamplingScheme::Uniform,
        params.sample_size,
        params.repetitions,
    );
    let prefix_coverage = coverage(
        &mut rng,
        &labels,
        prefix_scheme,
        params.sample_size,
        params.repetitions,
        truth,
    );
    let uniform_coverage = coverage(
        &mut rng,
        &labels,
        SamplingScheme::Uniform,
        params.sample_size,
        params.repetitions,
        truth,
    );
    BiasResult {
        params,
        truth,
        prefix,
        uniform,
        prefix_coverage,
        uniform_coverage,
    }
}

/// Renders the worked example.
pub fn render(r: &BiasResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E2: sampling bias (§II-D worked example)\n\
         population: {} genuine + {} bought (truth: {:.1}% fake)",
        r.params.genuine,
        r.params.bought,
        r.truth * 100.0
    );
    let _ = writeln!(
        out,
        "prefix sampler (window {}):  mean estimate {:.1}% fake, mean |error| {:.1} pts, 95% CI coverage {:.0}%",
        r.params.window,
        r.prefix.mean_estimate * 100.0,
        r.prefix.mean_abs_error * 100.0,
        r.prefix_coverage * 100.0
    );
    let _ = writeln!(
        out,
        "uniform sampler (FC):        mean estimate {:.1}% fake, mean |error| {:.1} pts, 95% CI coverage {:.0}%",
        r.uniform.mean_estimate * 100.0,
        r.uniform.mean_abs_error * 100.0,
        r.uniform_coverage * 100.0
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> BiasParams {
        BiasParams {
            genuine: 10_000,
            bought: 1_000,
            window: 100,
            sample_size: 100,
            repetitions: 30,
        }
    }

    #[test]
    fn paper_example_reproduces() {
        let r = run_bias(quick(), 1);
        // Truth ≈ 9.1%; the tool says ~100%.
        assert!((r.truth - 1.0 / 11.0).abs() < 1e-9);
        assert!(r.prefix.mean_estimate > 0.99, "{:?}", r.prefix);
        // FC stays close.
        assert!(
            (r.uniform.mean_estimate - r.truth).abs() < 0.03,
            "{:?}",
            r.uniform
        );
    }

    #[test]
    fn coverage_collapses_under_prefix_sampling() {
        let r = run_bias(quick(), 2);
        assert_eq!(r.prefix_coverage, 0.0, "biased CI should never cover truth");
        assert!(
            r.uniform_coverage > 0.8,
            "uniform coverage {:.2}",
            r.uniform_coverage
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(run_bias(quick(), 3), run_bias(quick(), 3));
    }

    #[test]
    fn render_has_both_samplers() {
        let s = render(&run_bias(quick(), 4));
        assert!(s.contains("prefix sampler"));
        assert!(s.contains("uniform sampler"));
    }

    #[test]
    fn default_params_match_paper() {
        let p = BiasParams::default();
        assert_eq!(p.genuine, 100_000);
        assert_eq!(p.bought, 10_000);
    }
}
