//! E4 — §III: how the FC engine was constructed.
//!
//! The Fake Project methodology tested literature rule sets and feature
//! sets on a gold standard and found that "algorithms based on
//! classification rules do not succeed in detecting the fakes … while
//! better results were achieved by relying on those features proposed by
//! Academia for spam accounts detection". This driver reproduces that
//! comparison: Camisani-Calzolari rules, StateOfSearch signals, the
//! Socialbakers criteria (as a binary fake detector), and random forests on
//! the profile-only and with-timeline feature sets, all evaluated on a
//! held-out gold standard plus 5-fold cross-validation.

use fakeaudit_detectors::data::AccountData;
use fakeaudit_detectors::features::{dataset_from_gold, FeatureSet};
use fakeaudit_detectors::rules::{CamisaniCalzolari, RuleSet, StateOfSearch};
use fakeaudit_detectors::Socialbakers;
use fakeaudit_ml::eval::cross_validate;
use fakeaudit_ml::forest::ForestParams;
use fakeaudit_ml::tree::TreeParams;
use fakeaudit_ml::{
    Classifier, ConfusionMatrix, DecisionTree, GaussianNaiveBayes, KNearestNeighbors, RandomForest,
};
use fakeaudit_population::archetype::recommended_audit_time;
use fakeaudit_population::goldstandard::GoldStandard;
use fakeaudit_population::TrueClass;
use fakeaudit_stats::rng::derive_seed;
use fakeaudit_twittersim::AccountId;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Binary detection metrics of one approach on the held-out set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E4Row {
    /// Approach name.
    pub name: String,
    /// Accuracy on the held-out gold standard.
    pub accuracy: f64,
    /// Precision on the fake class.
    pub precision: f64,
    /// Recall on the fake class.
    pub recall: f64,
    /// F1 on the fake class.
    pub f1: f64,
    /// Matthews correlation coefficient.
    pub mcc: f64,
}

/// Outcome of the FC-construction experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FcTrainingResult {
    /// Gold-standard accounts per class.
    pub per_class: usize,
    /// One row per approach, rule sets first, learners after.
    pub rows: Vec<E4Row>,
    /// 5-fold cross-validated accuracy of the profile-only forest.
    pub forest_cv_accuracy: f64,
    /// `(feature name, importance)` of the profile-only forest, sorted by
    /// importance — which signals the optimised classifier actually leans
    /// on.
    pub feature_importance: Vec<(String, f64)>,
}

fn row_from_matrix(name: &str, cm: &ConfusionMatrix) -> E4Row {
    E4Row {
        name: name.to_string(),
        accuracy: cm.accuracy(),
        precision: cm.precision(1),
        recall: cm.recall(1),
        f1: cm.f1(1),
        mcc: cm.mcc(),
    }
}

fn evaluate_rule_set<R: RuleSet + ?Sized>(rules: &R, gold: &GoldStandard) -> E4Row {
    let now = gold.observed_at();
    let mut cm = ConfusionMatrix::new(2);
    for (i, acc) in gold.accounts().iter().enumerate() {
        let data = AccountData {
            id: AccountId(i as u64),
            profile: acc.profile.clone(),
            recent_tweets: Some(acc.timeline.recent_tweets(AccountId(i as u64), 200)),
        };
        let actual = usize::from(acc.class == TrueClass::Fake);
        let predicted = usize::from(rules.is_fake(&data, now));
        cm.record(actual, predicted);
    }
    row_from_matrix(rules.name(), &cm)
}

fn evaluate_socialbakers_criteria(gold: &GoldStandard) -> E4Row {
    let sb = Socialbakers::new();
    let now = gold.observed_at();
    let mut cm = ConfusionMatrix::new(2);
    for (i, acc) in gold.accounts().iter().enumerate() {
        let data = AccountData {
            id: AccountId(i as u64),
            profile: acc.profile.clone(),
            recent_tweets: Some(acc.timeline.recent_tweets(AccountId(i as u64), 200)),
        };
        let actual = usize::from(acc.class == TrueClass::Fake);
        // As a fake detector: suspicious (whether the flow would later call
        // it inactive or fake) counts as a fake call.
        let predicted = usize::from(sb.suspicion_points(&data, now) >= 3);
        cm.record(actual, predicted);
    }
    row_from_matrix("Socialbakers criteria", &cm)
}

/// Runs the FC-construction experiment with `per_class` gold accounts per
/// class.
///
/// # Panics
///
/// Panics if `per_class < 10` (folds would degenerate).
pub fn run_fc_training(per_class: usize, seed: u64) -> FcTrainingResult {
    assert!(per_class >= 10, "need at least 10 accounts per class");
    let now = recommended_audit_time();
    let train_gold = GoldStandard::generate(derive_seed(seed, "e4-train"), per_class, now);
    let test_gold = GoldStandard::generate(derive_seed(seed, "e4-test"), per_class, now);

    let mut rows = vec![
        evaluate_rule_set(&CamisaniCalzolari, &test_gold),
        evaluate_rule_set(&StateOfSearch, &test_gold),
        evaluate_socialbakers_criteria(&test_gold),
    ];

    let train_profile = dataset_from_gold(&train_gold, FeatureSet::ProfileOnly);
    let test_profile = dataset_from_gold(&test_gold, FeatureSet::ProfileOnly);

    // The learner families [12] compared, all on the cheap profile set.
    let eval_learner = |clf: &dyn Classifier, name: &str| {
        row_from_matrix(name, &ConfusionMatrix::evaluate(clf, &test_profile))
    };
    let nb = GaussianNaiveBayes::fit(&train_profile).expect("non-empty training set");
    rows.push(eval_learner(&nb, "Gaussian naive Bayes (profile)"));
    let knn = KNearestNeighbors::fit(&train_profile, 7).expect("non-empty training set");
    rows.push(eval_learner(&knn, "7-NN (profile)"));
    let cart =
        DecisionTree::fit(&train_profile, TreeParams::default()).expect("non-empty training set");
    rows.push(eval_learner(&cart, "CART tree (profile)"));

    let mut feature_importance = Vec::new();
    for (name, set) in [
        ("Random forest (profile features)", FeatureSet::ProfileOnly),
        (
            "Random forest (+timeline features)",
            FeatureSet::WithTimeline,
        ),
    ] {
        let train = dataset_from_gold(&train_gold, set);
        let test = dataset_from_gold(&test_gold, set);
        let forest = RandomForest::fit(&train, ForestParams::default(), derive_seed(seed, name))
            .expect("non-empty training set");
        let cm = ConfusionMatrix::evaluate(&forest, &test);
        rows.push(row_from_matrix(name, &cm));
        if set == FeatureSet::ProfileOnly {
            feature_importance = train
                .feature_names()
                .iter()
                .cloned()
                .zip(forest.feature_importance())
                .collect();
            feature_importance.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite importances"));
        }
    }

    let cv_data = dataset_from_gold(&train_gold, FeatureSet::ProfileOnly);
    let cv = cross_validate(&cv_data, 5, derive_seed(seed, "e4-cv"), |fold| {
        RandomForest::fit(
            fold,
            ForestParams::default(),
            derive_seed(seed, "e4-cv-fit"),
        )
        .expect("non-empty fold")
    });

    FcTrainingResult {
        per_class,
        rows,
        forest_cv_accuracy: cv.mean_accuracy(),
        feature_importance,
    }
}

/// Renders the approach-comparison table.
pub fn render(r: &FcTrainingResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E4: FC construction — rule sets vs trained classifiers\n\
         (held-out gold standard, {} accounts per class)\n\
         {:<36}{:>9}{:>10}{:>8}{:>8}{:>8}",
        r.per_class, "approach", "accuracy", "precision", "recall", "F1", "MCC"
    );
    for row in &r.rows {
        let _ = writeln!(
            out,
            "{:<36}{:>9.3}{:>10.3}{:>8.3}{:>8.3}{:>8.3}",
            row.name, row.accuracy, row.precision, row.recall, row.f1, row.mcc
        );
    }
    let _ = writeln!(
        out,
        "profile-feature forest, 5-fold CV accuracy: {:.3}",
        r.forest_cv_accuracy
    );
    let _ = writeln!(out, "forest feature importances (profile set):");
    for (name, imp) in &r.feature_importance {
        let _ = writeln!(out, "  {name:<28}{imp:>7.3}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> FcTrainingResult {
        run_fc_training(60, 1)
    }

    #[test]
    fn eight_approaches_compared() {
        let r = quick();
        assert_eq!(r.rows.len(), 8);
        assert!(r.rows[0].name.contains("Camisani"));
        assert!(r.rows[3].name.contains("Bayes"));
        assert!(r.rows[7].name.contains("timeline"));
    }

    #[test]
    fn trained_forest_beats_rule_sets() {
        // The paper's central E4 finding.
        let r = quick();
        let best_rules = r.rows[..3].iter().map(|x| x.f1).fold(f64::MIN, f64::max);
        let forest = r
            .rows
            .iter()
            .find(|x| x.name.contains("profile features"))
            .unwrap();
        assert!(
            forest.f1 >= best_rules,
            "forest F1 {:.3} must be at least the best rule set {:.3}",
            forest.f1,
            best_rules
        );
        assert!(
            forest.accuracy > 0.9,
            "forest accuracy {:.3}",
            forest.accuracy
        );
    }

    #[test]
    fn cross_validation_is_consistent_with_holdout() {
        let r = quick();
        let forest = r
            .rows
            .iter()
            .find(|x| x.name.contains("profile features"))
            .unwrap();
        assert!(
            (r.forest_cv_accuracy - forest.accuracy).abs() < 0.1,
            "CV {:.3} vs hold-out {:.3}",
            r.forest_cv_accuracy,
            forest.accuracy
        );
    }

    #[test]
    fn metrics_are_probabilities() {
        for row in &quick().rows {
            for v in [row.accuracy, row.precision, row.recall, row.f1] {
                assert!((0.0..=1.0).contains(&v), "{}: {v}", row.name);
            }
            assert!((-1.0..=1.0).contains(&row.mcc));
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(run_fc_training(30, 2), run_fc_training(30, 2));
    }

    #[test]
    fn feature_importances_are_a_sorted_distribution() {
        let r = quick();
        assert_eq!(r.feature_importance.len(), 10);
        let total: f64 = r.feature_importance.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-9, "sum {total}");
        for w in r.feature_importance.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // The follow-graph ratio family should matter: either the ratio
        // itself or its friends/followers constituents rank highly.
        let top4: Vec<&str> = r.feature_importance[..4]
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert!(
            top4.iter()
                .any(|n| n.contains("ratio") || n.contains("friends") || n.contains("followers")),
            "top features {top4:?}"
        );
    }

    #[test]
    fn render_lists_all_approaches() {
        let r = quick();
        let s = render(&r);
        for row in &r.rows {
            assert!(s.contains(&row.name));
        }
    }

    #[test]
    #[should_panic(expected = "at least 10 accounts")]
    fn tiny_gold_standard_panics() {
        run_fc_training(5, 1);
    }
}
