//! Disagreement metrics over Table III rows (§IV-D).
//!
//! "Overall, we may observe that there is a general disagreement on such
//! results … it seems that the more followers a target has, the less the
//! fake followers analytics agree." This module quantifies that
//! observation: ranges and dispersions of the tools' percentages, and a
//! chi-square test of homogeneity over their verdict counts.

use fakeaudit_detectors::{AuditOutcome, Verdict};
use fakeaudit_stats::hypothesis::{chi_square, ChiSquareTest};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Disagreement across a set of tool outcomes for one target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Disagreement {
    /// Number of tools compared.
    pub tools: usize,
    /// Max − min of the fake percentages.
    pub fake_range: f64,
    /// Population standard deviation of the fake percentages.
    pub fake_std: f64,
    /// Max − min of the genuine percentages.
    pub genuine_range: f64,
    /// Population standard deviation of the genuine percentages.
    pub genuine_std: f64,
    /// Chi-square homogeneity p-value over the fake/genuine counts
    /// (`None` when the table is degenerate, e.g. a tool found nothing).
    pub homogeneity_p: Option<f64>,
}

fn spread(values: &[f64]) -> (f64, f64) {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    (max - min, var.sqrt())
}

/// Computes disagreement metrics over at least two outcomes.
///
/// # Panics
///
/// Panics with fewer than two outcomes.
pub fn disagreement(outcomes: &[&AuditOutcome]) -> Disagreement {
    assert!(outcomes.len() >= 2, "need at least two tools to disagree");
    let fakes: Vec<f64> = outcomes.iter().map(|o| o.fake_pct()).collect();
    let genuines: Vec<f64> = outcomes.iter().map(|o| o.genuine_pct()).collect();
    let (fake_range, fake_std) = spread(&fakes);
    let (genuine_range, genuine_std) = spread(&genuines);
    // Homogeneity over non-genuine vs genuine counts (the 2-column view
    // every tool supports, since TA lacks an inactive bucket).
    let table: Vec<Vec<u64>> = outcomes
        .iter()
        .map(|o| vec![o.counts.fake + o.counts.inactive, o.counts.genuine])
        .collect();
    let homogeneity_p = chi_square(&table).ok().map(|t: ChiSquareTest| t.p_value);
    Disagreement {
        tools: outcomes.len(),
        fake_range,
        fake_std,
        genuine_range,
        genuine_std,
        homogeneity_p,
    }
}

impl fmt::Display for Disagreement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fake% range {:.1} (sd {:.1}), genuine% range {:.1} (sd {:.1})",
            self.fake_range, self.fake_std, self.genuine_range, self.genuine_std
        )?;
        if let Some(p) = self.homogeneity_p {
            write!(f, ", homogeneity p={p:.2e}")?;
        }
        Ok(())
    }
}

/// Builds synthetic outcome values for quick what-if comparisons (used by
/// tests and the disagreement experiment's unit checks).
pub fn outcome_from_row(
    tool_name: &str,
    target: fakeaudit_twittersim::AccountId,
    inactive: u64,
    fake: u64,
    genuine: u64,
) -> AuditOutcome {
    let mut counts = fakeaudit_detectors::VerdictCounts::default();
    for _ in 0..inactive {
        counts.record(Verdict::Inactive);
    }
    for _ in 0..fake {
        counts.record(Verdict::Fake);
    }
    for _ in 0..genuine {
        counts.record(Verdict::Genuine);
    }
    AuditOutcome {
        tool_name: tool_name.to_string(),
        target,
        assessed: Vec::new(),
        counts,
        audited_at: fakeaudit_twittersim::SimTime::EPOCH,
        api_elapsed_secs: 0.0,
        api_calls: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fakeaudit_twittersim::AccountId;

    #[test]
    fn identical_tools_have_zero_disagreement() {
        let a = outcome_from_row("a", AccountId(1), 30, 20, 50);
        let b = outcome_from_row("b", AccountId(1), 30, 20, 50);
        let d = disagreement(&[&a, &b]);
        assert_eq!(d.fake_range, 0.0);
        assert_eq!(d.genuine_range, 0.0);
        assert!(d.homogeneity_p.unwrap() > 0.9);
    }

    #[test]
    fn opposite_tools_disagree_significantly() {
        let a = outcome_from_row("a", AccountId(1), 0, 90, 10);
        let b = outcome_from_row("b", AccountId(1), 0, 10, 90);
        let d = disagreement(&[&a, &b]);
        assert_eq!(d.fake_range, 80.0);
        assert!(d.homogeneity_p.unwrap() < 0.001);
    }

    #[test]
    fn four_tool_spread() {
        let outs = [
            outcome_from_row("fc", AccountId(1), 97, 1, 2),
            outcome_from_row("ta", AccountId(1), 0, 55, 45),
            outcome_from_row("sp", AccountId(1), 48, 44, 8),
            outcome_from_row("sb", AccountId(1), 17, 35, 48),
        ];
        let refs: Vec<&AuditOutcome> = outs.iter().collect();
        let d = disagreement(&refs);
        assert_eq!(d.tools, 4);
        assert!(d.fake_range > 50.0);
        assert!(d.genuine_range > 40.0);
        assert!(d.fake_std > 15.0);
    }

    #[test]
    fn degenerate_table_yields_no_p() {
        // Both tools put everything in one column: chi-square degenerates.
        let a = outcome_from_row("a", AccountId(1), 0, 10, 0);
        let b = outcome_from_row("b", AccountId(1), 0, 20, 0);
        let d = disagreement(&[&a, &b]);
        assert!(d.homogeneity_p.is_none());
    }

    #[test]
    #[should_panic(expected = "need at least two tools")]
    fn single_outcome_panics() {
        let a = outcome_from_row("a", AccountId(1), 1, 1, 1);
        disagreement(&[&a]);
    }

    #[test]
    fn display_mentions_ranges() {
        let a = outcome_from_row("a", AccountId(1), 0, 90, 10);
        let b = outcome_from_row("b", AccountId(1), 0, 10, 90);
        let s = disagreement(&[&a, &b]).to_string();
        assert!(s.contains("range 80.0"));
    }
}
