//! The audit panel: all four analytics run over the same target.

use fakeaudit_analytics::{OnlineService, ServiceError, ServiceProfile, ServiceResponse};
use fakeaudit_detectors::{FakeProjectEngine, Socialbakers, StatusPeople, ToolId, Twitteraudit};
use fakeaudit_stats::rng::derive_seed;
use fakeaudit_telemetry::Telemetry;
use fakeaudit_twittersim::{AccountId, Platform};
use std::fmt;

/// The four services of §IV, sharing one seed family.
#[derive(Debug)]
pub struct AuditPanel {
    fc: OnlineService<FakeProjectEngine>,
    ta: OnlineService<Twitteraudit>,
    sp: OnlineService<StatusPeople>,
    sb: OnlineService<Socialbakers>,
}

impl AuditPanel {
    /// Builds a panel with default engines and calibrated service profiles.
    /// The FC engine trains its default model from `seed`.
    pub fn new(seed: u64) -> Self {
        Self::with_fc_engine(FakeProjectEngine::with_default_model(seed), seed)
    }

    /// Builds a panel around a caller-supplied FC engine (pre-trained model
    /// or modified sample size).
    pub fn with_fc_engine(fc: FakeProjectEngine, seed: u64) -> Self {
        Self {
            fc: OnlineService::new(
                fc,
                ServiceProfile::fake_classifier(),
                derive_seed(seed, "svc-fc"),
            ),
            ta: OnlineService::new(
                Twitteraudit::new(),
                ServiceProfile::twitteraudit(),
                derive_seed(seed, "svc-ta"),
            ),
            sp: OnlineService::new(
                StatusPeople::new(),
                ServiceProfile::statuspeople(),
                derive_seed(seed, "svc-sp"),
            ),
            sb: OnlineService::new(
                Socialbakers::new(),
                ServiceProfile::socialbakers(),
                derive_seed(seed, "svc-sb"),
            ),
        }
    }

    /// Routes every service's signals into one shared `telemetry` handle,
    /// so the whole panel's spans and metrics land on a single sim-time
    /// axis. Returns `self` for builder-style chaining.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.set_telemetry(telemetry);
        self
    }

    /// Replaces every service's telemetry handle in place.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.fc.set_telemetry(telemetry.clone());
        self.ta.set_telemetry(telemetry.clone());
        self.sp.set_telemetry(telemetry.clone());
        self.sb.set_telemetry(telemetry);
    }

    /// The FC service.
    pub fn fc(&mut self) -> &mut OnlineService<FakeProjectEngine> {
        &mut self.fc
    }

    /// The Twitteraudit service.
    pub fn ta(&mut self) -> &mut OnlineService<Twitteraudit> {
        &mut self.ta
    }

    /// The StatusPeople service.
    pub fn sp(&mut self) -> &mut OnlineService<StatusPeople> {
        &mut self.sp
    }

    /// The Socialbakers service.
    pub fn sb(&mut self) -> &mut OnlineService<Socialbakers> {
        &mut self.sb
    }

    /// Pre-computes (and caches) one tool's result for `target` — used to
    /// reproduce the pre-cached rows of Table II.
    ///
    /// # Errors
    ///
    /// Propagates [`ServiceError`].
    pub fn prewarm(
        &mut self,
        tool: ToolId,
        platform: &Platform,
        target: AccountId,
    ) -> Result<(), ServiceError> {
        match tool {
            ToolId::FakeClassifier => self.fc.prewarm(platform, target),
            ToolId::Twitteraudit => self.ta.prewarm(platform, target),
            ToolId::StatusPeople => self.sp.prewarm(platform, target),
            ToolId::Socialbakers => self.sb.prewarm(platform, target),
        }
    }

    /// Requests an analysis of `target` from one tool.
    ///
    /// # Errors
    ///
    /// Propagates [`ServiceError`].
    pub fn request(
        &mut self,
        tool: ToolId,
        platform: &Platform,
        target: AccountId,
    ) -> Result<ServiceResponse, ServiceError> {
        match tool {
            ToolId::FakeClassifier => self.fc.request(platform, target),
            ToolId::Twitteraudit => self.ta.request(platform, target),
            ToolId::StatusPeople => self.sp.request(platform, target),
            ToolId::Socialbakers => self.sb.request(platform, target),
        }
    }

    /// Requests an analysis from all four tools (Table III row order).
    ///
    /// # Errors
    ///
    /// Fails on the first tool error.
    pub fn request_all(
        &mut self,
        platform: &Platform,
        target: AccountId,
    ) -> Result<PanelResult, ServiceError> {
        let mut responses = Vec::with_capacity(4);
        for tool in ToolId::ALL {
            responses.push((tool, self.request(tool, platform, target)?));
        }
        Ok(PanelResult { responses })
    }
}

/// Responses from all four tools for one target.
#[derive(Debug, Clone, PartialEq)]
pub struct PanelResult {
    responses: Vec<(ToolId, ServiceResponse)>,
}

impl PanelResult {
    /// The `(tool, response)` pairs in Table III order.
    pub fn responses(&self) -> &[(ToolId, ServiceResponse)] {
        &self.responses
    }

    /// The response of one tool.
    pub fn of(&self, tool: ToolId) -> &ServiceResponse {
        &self
            .responses
            .iter()
            .find(|(t, _)| *t == tool)
            .expect("panel ran all tools")
            .1
    }
}

impl fmt::Display for PanelResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (tool, r) in &self.responses {
            writeln!(f, "{:<4} {}", tool.abbrev(), r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fakeaudit_population::{ClassMix, TargetScenario};

    fn built(n: usize) -> (Platform, fakeaudit_population::BuiltTarget) {
        let mut platform = Platform::new();
        let t = TargetScenario::new("panel", n, ClassMix::new(0.3, 0.2, 0.5).unwrap())
            .build(&mut platform, 101)
            .unwrap();
        (platform, t)
    }

    fn small_panel(seed: u64) -> AuditPanel {
        // Reduced FC sample to keep debug-mode tests quick, but still large
        // enough that FC's call schedule dominates the other tools'
        // (the Table II ordering only emerges when FC hydrates more
        // profiles than anyone else).
        AuditPanel::with_fc_engine(
            FakeProjectEngine::with_default_model(seed).with_sample_size(2_000),
            seed,
        )
    }

    #[test]
    fn panel_runs_all_four_tools() {
        let (platform, t) = built(2_000);
        let mut panel = small_panel(1);
        let result = panel.request_all(&platform, t.target).unwrap();
        assert_eq!(result.responses().len(), 4);
        for tool in ToolId::ALL {
            let r = result.of(tool);
            assert!(r.outcome.counts.total() > 0, "{tool} produced no verdicts");
        }
    }

    #[test]
    fn fc_is_slowest_first_response() {
        // The Table II ordering: FC >> TA > SP > SB.
        let (platform, t) = built(3_000);
        let mut panel = small_panel(2);
        let result = panel.request_all(&platform, t.target).unwrap();
        let secs = |tool| result.of(tool).response_secs;
        assert!(secs(ToolId::FakeClassifier) > secs(ToolId::Twitteraudit));
        assert!(secs(ToolId::Twitteraudit) > secs(ToolId::StatusPeople));
        assert!(secs(ToolId::StatusPeople) > secs(ToolId::Socialbakers));
    }

    #[test]
    fn prewarm_caches_one_tool_only() {
        let (platform, t) = built(1_500);
        let mut panel = small_panel(3);
        panel
            .prewarm(ToolId::StatusPeople, &platform, t.target)
            .unwrap();
        let result = panel.request_all(&platform, t.target).unwrap();
        assert!(result.of(ToolId::StatusPeople).served_from_cache);
        assert!(!result.of(ToolId::Twitteraudit).served_from_cache);
        assert!(!result.of(ToolId::Socialbakers).served_from_cache);
    }

    #[test]
    fn shared_telemetry_sees_all_four_tools() {
        let (platform, t) = built(1_500);
        let tel = Telemetry::enabled();
        let mut panel = small_panel(5).with_telemetry(tel.clone());
        panel.request_all(&platform, t.target).unwrap();
        let snap = tel.snapshot();
        let tools = snap.label_values("service.response_secs", "tool");
        for tool in ToolId::ALL {
            assert!(
                tools.iter().any(|v| v == tool.abbrev()),
                "{tool} missing from shared registry"
            );
        }
        assert_eq!(snap.counter_total("cache.miss"), 4);
    }

    #[test]
    fn display_lists_abbrevs() {
        let (platform, t) = built(1_000);
        let mut panel = small_panel(4);
        let result = panel.request_all(&platform, t.target).unwrap();
        let s = result.to_string();
        for tool in ToolId::ALL {
            assert!(s.contains(tool.abbrev()), "missing {tool}");
        }
    }
}
