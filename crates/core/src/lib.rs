//! *fakeaudit* — a full reproduction of
//! "A Criticism to Society (as seen by Twitter analytics)"
//! (Cresci, Di Pietro, Petrocchi, Spognardi, Tesconi — IIT-CNR / ICDCS
//! workshops, 2014).
//!
//! The paper audits the trustworthiness of commercial Twitter fake-follower
//! analytics (StatusPeople, Socialbakers, Twitteraudit) by comparing them
//! against the authors' statistically sound Fake Project classifier. This
//! crate assembles the full reproduction stack —
//! [`fakeaudit_twittersim`] (synthetic platform), [`fakeaudit_twitter_api`]
//! (rate-limited API), [`fakeaudit_population`] (ground-truth workloads),
//! [`fakeaudit_ml`] + [`fakeaudit_detectors`] (the four engines),
//! [`fakeaudit_analytics`] (web-service behaviour) — into:
//!
//! * [`panel`] — the [`panel::AuditPanel`]: all four services run over the
//!   same target, as §IV does;
//! * [`scoring`] — scoring every tool against the hidden ground truth
//!   (something the paper could not do with live accounts);
//! * [`compare`] — disagreement metrics over Table III rows;
//! * [`experiments`] — one driver per table/figure/experiment of the
//!   paper, each returning structured results plus a rendered text table
//!   (see DESIGN.md §5 for the experiment index).
//!
//! # Quickstart
//!
//! ```
//! use fakeaudit_core::panel::AuditPanel;
//! use fakeaudit_population::{ClassMix, TargetScenario};
//! use fakeaudit_twittersim::Platform;
//!
//! // A 2000-follower account whose ground truth we control: 30% inactive,
//! // 20% fake (bought recently), 50% genuine.
//! let mut platform = Platform::new();
//! let target = TargetScenario::new("celebrity", 2_000, ClassMix::new(0.3, 0.2, 0.5)?)
//!     .fake_recency_bias(10.0)
//!     .build(&mut platform, 42)?;
//!
//! // Audit it with all four tools.
//! let mut panel = AuditPanel::new(42);
//! let result = panel.request_all(&platform, target.target)?;
//! for (tool, response) in result.responses() {
//!     println!("{tool}: {response}");
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod experiments;
pub mod panel;
pub mod scoring;

pub use compare::Disagreement;
pub use panel::{AuditPanel, PanelResult};
pub use scoring::ToolScore;
