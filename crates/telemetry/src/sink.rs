//! Trace sinks: the JSON-lines encoding.
//!
//! Each record becomes one line with a fixed key order:
//!
//! ```json
//! {"type":"span","name":"api.call","t0":0,"t1":1.25,"attrs":{"endpoint":"followers_ids"}}
//! ```
//!
//! The schema deliberately contains **only sim-time fields** (`t0`, `t1`);
//! no wall-clock timestamp ever enters a record, so traces from identical
//! seeds are byte-identical. Numbers are rendered with Rust's shortest
//! round-trip `f64` formatting, which is itself deterministic.

use crate::trace::TraceEvent;
use std::fmt::Write as _;
use std::io::{self, Write};

/// Appends the JSON escape of `s` (without surrounding quotes) to `out`.
pub(crate) fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        // JSON has no Infinity/NaN; `null` keeps the line parseable.
        out.push_str("null");
    }
}

/// Encodes one record as a single JSON line (no trailing newline).
pub fn event_to_json(e: &TraceEvent) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"type\":\"");
    out.push_str(e.kind.as_str());
    out.push_str("\",\"name\":\"");
    escape_json_into(&e.name, &mut out);
    out.push_str("\",\"t0\":");
    push_f64(e.t0, &mut out);
    out.push_str(",\"t1\":");
    push_f64(e.t1, &mut out);
    out.push_str(",\"attrs\":{");
    for (i, (k, v)) in e.attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json_into(k, &mut out);
        out.push_str("\":\"");
        escape_json_into(v, &mut out);
        out.push('"');
    }
    out.push_str("}}");
    out
}

/// Writes every record as JSON lines.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_jsonl<W: Write>(events: &[TraceEvent], w: &mut W) -> io::Result<()> {
    for e in events {
        w.write_all(event_to_json(e).as_bytes())?;
        w.write_all(b"\n")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_key_order_and_values() {
        let e = TraceEvent::span("api.call", 0.0, 1.25, &[("endpoint", "followers_ids")]);
        assert_eq!(
            event_to_json(&e),
            "{\"type\":\"span\",\"name\":\"api.call\",\"t0\":0,\"t1\":1.25,\
             \"attrs\":{\"endpoint\":\"followers_ids\"}}"
        );
    }

    #[test]
    fn point_event_repeats_time() {
        let e = TraceEvent::point("quota.rejected", 3.5, &[]);
        assert_eq!(
            event_to_json(&e),
            "{\"type\":\"event\",\"name\":\"quota.rejected\",\"t0\":3.5,\"t1\":3.5,\"attrs\":{}}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let e = TraceEvent::point("x", 0.0, &[("k", "a\"b\\c\nd")]);
        let line = event_to_json(&e);
        assert!(line.contains("a\\\"b\\\\c\\nd"));
        let mut s = String::new();
        escape_json_into("\u{1}", &mut s);
        assert_eq!(s, "\\u0001");
    }

    #[test]
    fn non_finite_becomes_null() {
        let e = TraceEvent::point("x", f64::NAN, &[]);
        assert!(event_to_json(&e).contains("\"t0\":null"));
    }

    #[test]
    fn jsonl_is_one_line_per_event() {
        let events = vec![
            TraceEvent::point("a", 0.0, &[]),
            TraceEvent::point("b", 1.0, &[]),
        ];
        let mut buf = Vec::new();
        write_jsonl(&events, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
    }
}
