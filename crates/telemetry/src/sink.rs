//! Trace sinks: the JSON-lines encoding and its parser.
//!
//! Each record becomes one line with a fixed key order:
//!
//! ```json
//! {"type":"span","name":"api.call","t0":0,"t1":1.25,"id":3,"parent":1,"attrs":{"endpoint":"followers_ids"}}
//! ```
//!
//! `id` and `parent` appear only when the record carries them (spans
//! recorded through a [`TraceContext`](crate::TraceContext)); flat records
//! keep the pre-causal shape. The schema deliberately contains **only
//! sim-time fields** (`t0`, `t1`); no wall-clock timestamp ever enters a
//! record, so traces from identical seeds are byte-identical. Numbers are
//! rendered with Rust's shortest round-trip `f64` formatting, which is
//! itself deterministic.
//!
//! [`parse_jsonl`] reads the encoding back — the `fakeaudit trace`
//! subcommands analyze traces from disk without any external JSON
//! dependency. The parser accepts exactly what the writer emits (fixed
//! key order, one record per line), which is all it ever needs to read.

use crate::trace::{SpanId, TraceEvent};
use std::fmt::Write as _;
use std::io::{self, Write};

/// Appends the JSON escape of `s` (without surrounding quotes) to `out`.
pub(crate) fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

pub(crate) fn push_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        // JSON has no Infinity/NaN; `null` keeps the line parseable.
        out.push_str("null");
    }
}

/// Encodes one record as a single JSON line (no trailing newline).
pub fn event_to_json(e: &TraceEvent) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"type\":\"");
    out.push_str(e.kind.as_str());
    out.push_str("\",\"name\":\"");
    escape_json_into(&e.name, &mut out);
    out.push_str("\",\"t0\":");
    push_f64(e.t0, &mut out);
    out.push_str(",\"t1\":");
    push_f64(e.t1, &mut out);
    if let Some(SpanId(id)) = e.id {
        let _ = write!(out, ",\"id\":{id}");
    }
    if let Some(SpanId(parent)) = e.parent {
        let _ = write!(out, ",\"parent\":{parent}");
    }
    out.push_str(",\"attrs\":{");
    for (i, (k, v)) in e.attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json_into(k, &mut out);
        out.push_str("\":\"");
        escape_json_into(v, &mut out);
        out.push('"');
    }
    out.push_str("}}");
    out
}

/// Writes every record as JSON lines.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_jsonl<W: Write>(events: &[TraceEvent], w: &mut W) -> io::Result<()> {
    for e in events {
        w.write_all(event_to_json(e).as_bytes())?;
        w.write_all(b"\n")?;
    }
    Ok(())
}

/// A parse failure: the offending (1-based) line and a description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A cursor over one JSONL record.
struct Scanner<'a> {
    rest: &'a str,
}

impl<'a> Scanner<'a> {
    fn expect(&mut self, token: &str) -> Result<(), String> {
        match self.rest.strip_prefix(token) {
            Some(rest) => {
                self.rest = rest;
                Ok(())
            }
            None => Err(format!(
                "expected {token:?} at {:?}",
                &self.rest[..self.rest.len().min(20)]
            )),
        }
    }

    fn peek(&self, token: &str) -> bool {
        self.rest.starts_with(token)
    }

    /// Reads a JSON string (after the opening quote), unescaping.
    fn string(&mut self) -> Result<String, String> {
        self.expect("\"")?;
        let mut out = String::new();
        let mut chars = self.rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.rest = &self.rest[i + 1..];
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'u')) => {
                        let hex: String = (0..4)
                            .filter_map(|_| chars.next())
                            .map(|(_, c)| c)
                            .collect();
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|e| format!("bad \\u escape {hex:?}: {e}"))?;
                        out.push(
                            char::from_u32(code).ok_or_else(|| format!("bad codepoint {code}"))?,
                        );
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                c => out.push(c),
            }
        }
        Err("unterminated string".into())
    }

    /// Reads a JSON number or `null` (as NaN).
    fn number(&mut self) -> Result<f64, String> {
        if self.peek("null") {
            self.rest = &self.rest[4..];
            return Ok(f64::NAN);
        }
        let end = self
            .rest
            .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
            .unwrap_or(self.rest.len());
        let (num, rest) = self.rest.split_at(end);
        self.rest = rest;
        num.parse().map_err(|e| format!("bad number {num:?}: {e}"))
    }
}

/// Parses one line of the writer's encoding back into a [`TraceEvent`].
fn parse_line(line: &str) -> Result<TraceEvent, String> {
    let mut s = Scanner { rest: line.trim() };
    s.expect("{\"type\":")?;
    let kind = match s.string()?.as_str() {
        "span" => crate::EventKind::Span,
        "event" => crate::EventKind::Point,
        other => return Err(format!("unknown record type {other:?}")),
    };
    s.expect(",\"name\":")?;
    let name = s.string()?;
    s.expect(",\"t0\":")?;
    let t0 = s.number()?;
    s.expect(",\"t1\":")?;
    let t1 = s.number()?;
    let mut id = None;
    if s.peek(",\"id\":") {
        s.expect(",\"id\":")?;
        id = Some(SpanId(s.number()? as u64));
    }
    let mut parent = None;
    if s.peek(",\"parent\":") {
        s.expect(",\"parent\":")?;
        parent = Some(SpanId(s.number()? as u64));
    }
    s.expect(",\"attrs\":{")?;
    let mut attrs = Vec::new();
    if !s.peek("}") {
        loop {
            let key = s.string()?;
            s.expect(":")?;
            let value = s.string()?;
            attrs.push((key, value));
            if s.peek(",") {
                s.expect(",")?;
            } else {
                break;
            }
        }
    }
    s.expect("}}")?;
    if !s.rest.is_empty() {
        return Err(format!("trailing input {:?}", s.rest));
    }
    Ok(TraceEvent {
        kind,
        name,
        t0,
        t1,
        id,
        parent,
        attrs,
    })
}

/// Parses a JSONL trace written by [`write_jsonl`]. Blank lines are
/// skipped.
///
/// # Errors
///
/// [`ParseError`] with the first offending line.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, ParseError> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| {
            parse_line(line).map_err(|message| ParseError {
                line: i + 1,
                message,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_key_order_and_values() {
        let e = TraceEvent::span("api.call", 0.0, 1.25, &[("endpoint", "followers_ids")]);
        assert_eq!(
            event_to_json(&e),
            "{\"type\":\"span\",\"name\":\"api.call\",\"t0\":0,\"t1\":1.25,\
             \"attrs\":{\"endpoint\":\"followers_ids\"}}"
        );
    }

    #[test]
    fn identity_fields_are_encoded_when_present() {
        let e = TraceEvent::span_in("s", 0.0, 1.0, &[], SpanId(4), Some(SpanId(2)));
        assert_eq!(
            event_to_json(&e),
            "{\"type\":\"span\",\"name\":\"s\",\"t0\":0,\"t1\":1,\
             \"id\":4,\"parent\":2,\"attrs\":{}}"
        );
        let root = TraceEvent::span_in("r", 0.0, 1.0, &[], SpanId(1), None);
        assert!(!event_to_json(&root).contains("parent"));
    }

    #[test]
    fn point_event_repeats_time() {
        let e = TraceEvent::point("quota.rejected", 3.5, &[]);
        assert_eq!(
            event_to_json(&e),
            "{\"type\":\"event\",\"name\":\"quota.rejected\",\"t0\":3.5,\"t1\":3.5,\"attrs\":{}}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let e = TraceEvent::point("x", 0.0, &[("k", "a\"b\\c\nd")]);
        let line = event_to_json(&e);
        assert!(line.contains("a\\\"b\\\\c\\nd"));
        let mut s = String::new();
        escape_json_into("\u{1}", &mut s);
        assert_eq!(s, "\\u0001");
    }

    #[test]
    fn non_finite_becomes_null() {
        let e = TraceEvent::point("x", f64::NAN, &[]);
        assert!(event_to_json(&e).contains("\"t0\":null"));
    }

    #[test]
    fn jsonl_is_one_line_per_event() {
        let events = vec![
            TraceEvent::point("a", 0.0, &[]),
            TraceEvent::point("b", 1.0, &[]),
        ];
        let mut buf = Vec::new();
        write_jsonl(&events, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn parse_round_trips_the_writer() {
        let events = vec![
            TraceEvent::span_in(
                "server.request",
                0.0,
                4.5,
                &[("tool", "TA"), ("outcome", "completed")],
                SpanId(1),
                None,
            ),
            TraceEvent::span_in(
                "api.call",
                1.0,
                2.25,
                &[("endpoint", "x")],
                SpanId(2),
                Some(SpanId(1)),
            ),
            TraceEvent::point_in("server.shed", 9.0, &[("tool", "SB")], Some(SpanId(1))),
            TraceEvent::point("quota.rejected", 3.0, &[]),
            TraceEvent::span("legacy.flat", 0.5, 0.75, &[("k", "va\"l\nue")]),
        ];
        let mut buf = Vec::new();
        write_jsonl(&events, &mut buf).unwrap();
        let parsed = parse_jsonl(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn parse_skips_blank_lines_and_reports_position() {
        let text = "\n{\"type\":\"event\",\"name\":\"a\",\"t0\":0,\"t1\":0,\"attrs\":{}}\n\n";
        assert_eq!(parse_jsonl(text).unwrap().len(), 1);
        let err = parse_jsonl("{\"type\":\"span\"").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("trace line 1"));
        let err = parse_jsonl("{\"type\":\"blob\",\"name\":\"a\",\"t0\":0,\"t1\":0,\"attrs\":{}}")
            .unwrap_err();
        assert!(err.message.contains("unknown record type"));
    }

    #[test]
    fn parse_handles_null_times() {
        let line = "{\"type\":\"event\",\"name\":\"x\",\"t0\":null,\"t1\":null,\"attrs\":{}}";
        let e = &parse_jsonl(line).unwrap()[0];
        assert!(e.t0.is_nan() && e.t1.is_nan());
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        let line = "{\"type\":\"event\",\"name\":\"x\",\"t0\":0,\"t1\":0,\"attrs\":{}} extra";
        assert!(parse_jsonl(line).unwrap_err().message.contains("trailing"));
    }
}
