//! Trace sinks: the JSON-lines encoding and its parser.
//!
//! Each record becomes one line with a fixed key order:
//!
//! ```json
//! {"type":"span","name":"api.call","t0":0,"t1":1.25,"id":3,"parent":1,"attrs":{"endpoint":"followers_ids"}}
//! ```
//!
//! `id` and `parent` appear only when the record carries them (spans
//! recorded through a [`TraceContext`](crate::TraceContext)); flat records
//! keep the pre-causal shape. The schema deliberately contains **only
//! sim-time fields** (`t0`, `t1`); no wall-clock timestamp ever enters a
//! record, so traces from identical seeds are byte-identical. Numbers are
//! rendered with Rust's shortest round-trip `f64` formatting, which is
//! itself deterministic.
//!
//! [`parse_jsonl`] reads the encoding back — the `fakeaudit trace`
//! subcommands analyze traces from disk without any external JSON
//! dependency. The parser accepts exactly what the writer emits (fixed
//! key order, one record per line), which is all it ever needs to read.

use crate::trace::{SpanId, TraceEvent};
use std::fmt::Write as _;
use std::io::{self, Write};

/// Appends the JSON escape of `s` (without surrounding quotes) to `out`.
pub(crate) fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

pub(crate) fn push_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        // JSON has no Infinity/NaN; `null` keeps the line parseable.
        out.push_str("null");
    }
}

/// Encodes one record as a single JSON line (no trailing newline).
pub fn event_to_json(e: &TraceEvent) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"type\":\"");
    out.push_str(e.kind.as_str());
    out.push_str("\",\"name\":\"");
    escape_json_into(&e.name, &mut out);
    out.push_str("\",\"t0\":");
    push_f64(e.t0, &mut out);
    out.push_str(",\"t1\":");
    push_f64(e.t1, &mut out);
    if let Some(SpanId(id)) = e.id {
        let _ = write!(out, ",\"id\":{id}");
    }
    if let Some(SpanId(parent)) = e.parent {
        let _ = write!(out, ",\"parent\":{parent}");
    }
    out.push_str(",\"attrs\":{");
    for (i, (k, v)) in e.attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json_into(k, &mut out);
        out.push_str("\":\"");
        escape_json_into(v, &mut out);
        out.push('"');
    }
    out.push_str("}}");
    out
}

/// Writes every record as JSON lines.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_jsonl<W: Write>(events: &[TraceEvent], w: &mut W) -> io::Result<()> {
    let mut sink = JsonlSink::new(w);
    for e in events {
        sink.write_event(e)?;
    }
    sink.flush()
}

/// How many encoded bytes [`JsonlSink`] accumulates before issuing one
/// `write_all` to the underlying writer.
pub const DEFAULT_SINK_BUFFER: usize = 64 * 1024;

/// A buffered JSONL writer: encodes each event into an internal buffer
/// and hands the buffer to the underlying writer in large chunks, so a
/// trace dump is a handful of `write` syscalls instead of two per event.
///
/// The encoding is [`event_to_json`] + `\n` exactly — output through a
/// sink is byte-identical to the historical line-at-a-time writer, which
/// the golden-trace fixtures pin.
///
/// An optional byte cap ([`JsonlSink::with_max_bytes`]) bounds the total
/// output: once writing a line would exceed the cap, that line and all
/// later ones are dropped (counted by [`JsonlSink::dropped`]) rather than
/// truncated mid-record, so a capped file is still valid JSONL. The
/// wall-clock gateway uses this so tracing can never fill a disk while a
/// listener runs unattended.
///
/// Buffered bytes reach the writer only on [`JsonlSink::flush`] /
/// [`JsonlSink::into_inner`] (or when the buffer crosses its threshold);
/// callers that need durability must flush explicitly.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    buf: Vec<u8>,
    flush_threshold: usize,
    max_bytes: Option<u64>,
    /// Bytes accepted (buffered or written) so far.
    accepted: u64,
    dropped: u64,
}

impl<W: Write> JsonlSink<W> {
    /// A sink with the default buffer threshold and no byte cap.
    pub fn new(out: W) -> Self {
        Self::with_threshold(out, DEFAULT_SINK_BUFFER)
    }

    /// A sink flushing to `out` whenever the buffer reaches
    /// `flush_threshold` bytes (minimum 1: every event flushes).
    pub fn with_threshold(out: W, flush_threshold: usize) -> Self {
        Self {
            out,
            buf: Vec::with_capacity(flush_threshold.clamp(1, DEFAULT_SINK_BUFFER)),
            flush_threshold: flush_threshold.max(1),
            max_bytes: None,
            accepted: 0,
            dropped: 0,
        }
    }

    /// Caps total output at `cap` bytes; whole lines past the cap are
    /// dropped and counted.
    #[must_use]
    pub fn with_max_bytes(mut self, cap: u64) -> Self {
        self.max_bytes = Some(cap);
        self
    }

    /// Encodes and buffers one event.
    ///
    /// Returns `false` if the event was dropped by the byte cap.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer when the buffer
    /// spills.
    pub fn write_event(&mut self, e: &TraceEvent) -> io::Result<bool> {
        let line = event_to_json(e);
        let needed = line.len() as u64 + 1;
        if let Some(cap) = self.max_bytes {
            if self.accepted + needed > cap {
                self.dropped += 1;
                return Ok(false);
            }
        }
        self.buf.extend_from_slice(line.as_bytes());
        self.buf.push(b'\n');
        self.accepted += needed;
        if self.buf.len() >= self.flush_threshold {
            self.spill()?;
        }
        Ok(true)
    }

    /// Events rejected by the byte cap so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Bytes accepted (buffered or written) so far.
    pub fn bytes_accepted(&self) -> u64 {
        self.accepted
    }

    fn spill(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            self.out.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Writes any buffered bytes and flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.spill()?;
        self.out.flush()
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the final flush.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.flush()?;
        Ok(self.out)
    }
}

/// A parse failure: the offending (1-based) line and a description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A cursor over one JSONL record.
struct Scanner<'a> {
    rest: &'a str,
}

impl<'a> Scanner<'a> {
    fn expect(&mut self, token: &str) -> Result<(), String> {
        match self.rest.strip_prefix(token) {
            Some(rest) => {
                self.rest = rest;
                Ok(())
            }
            None => Err(format!(
                "expected {token:?} at {:?}",
                &self.rest[..self.rest.len().min(20)]
            )),
        }
    }

    fn peek(&self, token: &str) -> bool {
        self.rest.starts_with(token)
    }

    /// Reads a JSON string (after the opening quote), unescaping.
    fn string(&mut self) -> Result<String, String> {
        self.expect("\"")?;
        let mut out = String::new();
        let mut chars = self.rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.rest = &self.rest[i + 1..];
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'u')) => {
                        let hex: String = (0..4)
                            .filter_map(|_| chars.next())
                            .map(|(_, c)| c)
                            .collect();
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|e| format!("bad \\u escape {hex:?}: {e}"))?;
                        out.push(
                            char::from_u32(code).ok_or_else(|| format!("bad codepoint {code}"))?,
                        );
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                c => out.push(c),
            }
        }
        Err("unterminated string".into())
    }

    /// Reads a JSON number or `null` (as NaN).
    fn number(&mut self) -> Result<f64, String> {
        if self.peek("null") {
            self.rest = &self.rest[4..];
            return Ok(f64::NAN);
        }
        let end = self
            .rest
            .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
            .unwrap_or(self.rest.len());
        let (num, rest) = self.rest.split_at(end);
        self.rest = rest;
        num.parse().map_err(|e| format!("bad number {num:?}: {e}"))
    }
}

/// Parses one line of the writer's encoding back into a [`TraceEvent`].
fn parse_line(line: &str) -> Result<TraceEvent, String> {
    let mut s = Scanner { rest: line.trim() };
    s.expect("{\"type\":")?;
    let kind = match s.string()?.as_str() {
        "span" => crate::EventKind::Span,
        "event" => crate::EventKind::Point,
        other => return Err(format!("unknown record type {other:?}")),
    };
    s.expect(",\"name\":")?;
    let name = s.string()?;
    s.expect(",\"t0\":")?;
    let t0 = s.number()?;
    s.expect(",\"t1\":")?;
    let t1 = s.number()?;
    let mut id = None;
    if s.peek(",\"id\":") {
        s.expect(",\"id\":")?;
        id = Some(SpanId(s.number()? as u64));
    }
    let mut parent = None;
    if s.peek(",\"parent\":") {
        s.expect(",\"parent\":")?;
        parent = Some(SpanId(s.number()? as u64));
    }
    s.expect(",\"attrs\":{")?;
    let mut attrs = Vec::new();
    if !s.peek("}") {
        loop {
            let key = s.string()?;
            s.expect(":")?;
            let value = s.string()?;
            attrs.push((key, value));
            if s.peek(",") {
                s.expect(",")?;
            } else {
                break;
            }
        }
    }
    s.expect("}}")?;
    if !s.rest.is_empty() {
        return Err(format!("trailing input {:?}", s.rest));
    }
    Ok(TraceEvent {
        kind,
        name,
        t0,
        t1,
        id,
        parent,
        attrs,
    })
}

/// Parses a JSONL trace written by [`write_jsonl`]. Blank lines are
/// skipped.
///
/// # Errors
///
/// [`ParseError`] with the first offending line.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, ParseError> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| {
            parse_line(line).map_err(|message| ParseError {
                line: i + 1,
                message,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_key_order_and_values() {
        let e = TraceEvent::span("api.call", 0.0, 1.25, &[("endpoint", "followers_ids")]);
        assert_eq!(
            event_to_json(&e),
            "{\"type\":\"span\",\"name\":\"api.call\",\"t0\":0,\"t1\":1.25,\
             \"attrs\":{\"endpoint\":\"followers_ids\"}}"
        );
    }

    #[test]
    fn identity_fields_are_encoded_when_present() {
        let e = TraceEvent::span_in("s", 0.0, 1.0, &[], SpanId(4), Some(SpanId(2)));
        assert_eq!(
            event_to_json(&e),
            "{\"type\":\"span\",\"name\":\"s\",\"t0\":0,\"t1\":1,\
             \"id\":4,\"parent\":2,\"attrs\":{}}"
        );
        let root = TraceEvent::span_in("r", 0.0, 1.0, &[], SpanId(1), None);
        assert!(!event_to_json(&root).contains("parent"));
    }

    #[test]
    fn point_event_repeats_time() {
        let e = TraceEvent::point("quota.rejected", 3.5, &[]);
        assert_eq!(
            event_to_json(&e),
            "{\"type\":\"event\",\"name\":\"quota.rejected\",\"t0\":3.5,\"t1\":3.5,\"attrs\":{}}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let e = TraceEvent::point("x", 0.0, &[("k", "a\"b\\c\nd")]);
        let line = event_to_json(&e);
        assert!(line.contains("a\\\"b\\\\c\\nd"));
        let mut s = String::new();
        escape_json_into("\u{1}", &mut s);
        assert_eq!(s, "\\u0001");
    }

    #[test]
    fn non_finite_becomes_null() {
        let e = TraceEvent::point("x", f64::NAN, &[]);
        assert!(event_to_json(&e).contains("\"t0\":null"));
    }

    #[test]
    fn jsonl_is_one_line_per_event() {
        let events = vec![
            TraceEvent::point("a", 0.0, &[]),
            TraceEvent::point("b", 1.0, &[]),
        ];
        let mut buf = Vec::new();
        write_jsonl(&events, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn parse_round_trips_the_writer() {
        let events = vec![
            TraceEvent::span_in(
                "server.request",
                0.0,
                4.5,
                &[("tool", "TA"), ("outcome", "completed")],
                SpanId(1),
                None,
            ),
            TraceEvent::span_in(
                "api.call",
                1.0,
                2.25,
                &[("endpoint", "x")],
                SpanId(2),
                Some(SpanId(1)),
            ),
            TraceEvent::point_in("server.shed", 9.0, &[("tool", "SB")], Some(SpanId(1))),
            TraceEvent::point("quota.rejected", 3.0, &[]),
            TraceEvent::span("legacy.flat", 0.5, 0.75, &[("k", "va\"l\nue")]),
        ];
        let mut buf = Vec::new();
        write_jsonl(&events, &mut buf).unwrap();
        let parsed = parse_jsonl(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn parse_skips_blank_lines_and_reports_position() {
        let text = "\n{\"type\":\"event\",\"name\":\"a\",\"t0\":0,\"t1\":0,\"attrs\":{}}\n\n";
        assert_eq!(parse_jsonl(text).unwrap().len(), 1);
        let err = parse_jsonl("{\"type\":\"span\"").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("trace line 1"));
        let err = parse_jsonl("{\"type\":\"blob\",\"name\":\"a\",\"t0\":0,\"t1\":0,\"attrs\":{}}")
            .unwrap_err();
        assert!(err.message.contains("unknown record type"));
    }

    #[test]
    fn parse_handles_null_times() {
        let line = "{\"type\":\"event\",\"name\":\"x\",\"t0\":null,\"t1\":null,\"attrs\":{}}";
        let e = &parse_jsonl(line).unwrap()[0];
        assert!(e.t0.is_nan() && e.t1.is_nan());
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        let line = "{\"type\":\"event\",\"name\":\"x\",\"t0\":0,\"t1\":0,\"attrs\":{}} extra";
        assert!(parse_jsonl(line).unwrap_err().message.contains("trailing"));
    }

    /// A writer that records each `write` call so tests can observe how
    /// many syscall-equivalents the sink issues.
    #[derive(Default)]
    struct CountingWriter {
        writes: usize,
        bytes: Vec<u8>,
    }

    impl Write for CountingWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.writes += 1;
            self.bytes.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn sample_events(n: usize) -> Vec<TraceEvent> {
        (0..n)
            .map(|i| TraceEvent::point(&format!("event{i}"), i as f64, &[("k", "v")]))
            .collect()
    }

    #[test]
    fn sink_output_is_byte_identical_to_unbuffered_writer() {
        let events = sample_events(50);
        let mut unbuffered = Vec::new();
        for e in &events {
            unbuffered.extend_from_slice(event_to_json(e).as_bytes());
            unbuffered.push(b'\n');
        }
        let mut buffered = Vec::new();
        write_jsonl(&events, &mut buffered).unwrap();
        assert_eq!(buffered, unbuffered);
    }

    #[test]
    fn sink_batches_writes() {
        let events = sample_events(100);
        let mut w = CountingWriter::default();
        let mut sink = JsonlSink::new(&mut w);
        for e in &events {
            sink.write_event(e).unwrap();
        }
        sink.flush().unwrap();
        // 100 events, well under the 64 KiB threshold: one spill at flush.
        assert_eq!(w.writes, 1);
        assert_eq!(
            parse_jsonl(std::str::from_utf8(&w.bytes).unwrap()).unwrap(),
            events
        );
    }

    #[test]
    fn sink_spills_when_threshold_crossed() {
        let events = sample_events(10);
        let mut w = CountingWriter::default();
        let mut sink = JsonlSink::with_threshold(&mut w, 1);
        for e in &events {
            sink.write_event(e).unwrap();
        }
        sink.flush().unwrap();
        assert_eq!(w.writes, 10);
    }

    #[test]
    fn sink_holds_bytes_until_flush() {
        let mut w = CountingWriter::default();
        let mut sink = JsonlSink::new(&mut w);
        sink.write_event(&TraceEvent::point("a", 0.0, &[])).unwrap();
        assert!(sink.bytes_accepted() > 0);
        sink.flush().unwrap();
        assert!(!w.bytes.is_empty());
    }

    #[test]
    fn sink_cap_drops_whole_lines() {
        let events = sample_events(10);
        let one_line = event_to_json(&events[0]).len() as u64 + 1;
        let mut out = Vec::new();
        let mut sink = JsonlSink::new(&mut out).with_max_bytes(one_line * 3 + 1);
        let mut accepted = 0;
        for e in &events {
            if sink.write_event(e).unwrap() {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 3);
        assert_eq!(sink.dropped(), 7);
        sink.flush().unwrap();
        // Capped output is still valid JSONL — no mid-record truncation.
        let parsed = parse_jsonl(std::str::from_utf8(&out).unwrap()).unwrap();
        assert_eq!(parsed.len(), 3);
    }

    #[test]
    fn sink_into_inner_flushes() {
        let events = sample_events(3);
        let sink = {
            let mut sink = JsonlSink::new(Vec::new());
            for e in &events {
                sink.write_event(e).unwrap();
            }
            sink
        };
        let out = sink.into_inner().unwrap();
        assert_eq!(
            parse_jsonl(std::str::from_utf8(&out).unwrap()).unwrap(),
            events
        );
    }
}
