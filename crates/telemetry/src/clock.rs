//! Time sources for spans, metrics and SLO windows.
//!
//! Everything in this crate stamps events with plain `f64` seconds; until
//! ISSUE 6 those seconds always came from the *simulated* clock, threaded
//! explicitly through the event loops. The wall-clock gateway serves real
//! sockets, so it needs a time source of its own — but the analysis layer
//! ([`crate::analyze`]) must not care which world produced the numbers.
//!
//! [`Clock`] is that seam: a monotonic `now_secs()` supplier. Two
//! implementations ship here:
//!
//! * [`WallClock`] — `Instant`-based monotonic wall time, zeroed at
//!   construction. The gateway's accept and worker threads stamp queue
//!   waits, service spans and breaker decisions through one shared
//!   instance, so every span lands on a single coherent time axis and the
//!   SLO evaluator's sliding windows work unchanged.
//! * [`ManualClock`] — an explicitly advanced clock for tests and for
//!   driving the same code paths from a simulator, where *the caller*
//!   owns time.
//!
//! The simulators themselves keep passing explicit `f64`s — determinism
//! there comes from never consulting a clock object at all — but any
//! component that must run in both worlds (the gateway's dispatcher, the
//! load generator) takes an `Arc<dyn Clock>` instead of hard-coding
//! `Instant::now()`.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic supplier of seconds since some fixed origin.
///
/// Implementations must be monotonic (successive calls never go
/// backwards) and cheap — the gateway consults the clock several times
/// per request on the hot path.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Seconds elapsed since this clock's origin.
    fn now_secs(&self) -> f64;
}

/// Monotonic wall time, zeroed at construction.
///
/// Backed by [`Instant`], so it never observes system-clock jumps. Every
/// thread sharing one `WallClock` sees the same time axis, which is what
/// makes cross-thread spans (queue wait measured by the accept thread,
/// service measured by a worker) comparable.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A clock whose origin is *now*.
    #[must_use]
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_secs(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }
}

/// A clock advanced only by explicit calls — the deterministic stand-in
/// for tests and sim-driven use of wall-clock components.
///
/// Interior-mutable (the value lives in an atomic), so one handle can be
/// shared as `Arc<ManualClock>` and advanced from the driving side while
/// readers hold `Arc<dyn Clock>`.
#[derive(Debug, Default)]
pub struct ManualClock {
    /// Current time, stored as `f64::to_bits`.
    bits: AtomicU64,
}

impl ManualClock {
    /// A clock reading `at` seconds.
    #[must_use]
    pub fn new(at: f64) -> Self {
        Self {
            bits: AtomicU64::new(at.to_bits()),
        }
    }

    /// Jumps the clock to `secs`. Monotonicity is the caller's contract;
    /// jumping backwards is allowed for tests but breaks the [`Clock`]
    /// expectations of downstream consumers.
    pub fn set(&self, secs: f64) {
        self.bits.store(secs.to_bits(), Ordering::SeqCst);
    }

    /// Advances the clock by `delta` seconds.
    pub fn advance(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::SeqCst);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

impl Clock for ManualClock {
    fn now_secs(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn wall_clock_is_monotonic_and_starts_near_zero() {
        let clock = WallClock::new();
        let a = clock.now_secs();
        let b = clock.now_secs();
        assert!(a >= 0.0);
        assert!(b >= a);
        assert!(a < 60.0, "origin should be construction time, got {a}");
    }

    #[test]
    fn manual_clock_set_and_advance() {
        let clock = ManualClock::new(5.0);
        assert_eq!(clock.now_secs(), 5.0);
        clock.advance(2.5);
        assert_eq!(clock.now_secs(), 7.5);
        clock.set(100.0);
        assert_eq!(clock.now_secs(), 100.0);
    }

    #[test]
    fn manual_clock_defaults_to_zero() {
        assert_eq!(ManualClock::default().now_secs(), 0.0);
    }

    #[test]
    fn clocks_share_through_trait_objects() {
        let manual = Arc::new(ManualClock::new(1.0));
        let shared: Arc<dyn Clock> = manual.clone();
        manual.advance(1.0);
        assert_eq!(shared.now_secs(), 2.0);
    }

    #[test]
    fn manual_clock_advances_under_contention() {
        let clock = Arc::new(ManualClock::new(0.0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let clock = Arc::clone(&clock);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        clock.advance(0.001);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!((clock.now_secs() - 4.0).abs() < 1e-9);
    }
}
