//! End-of-run summary reports.
//!
//! [`RunReport`] condenses a telemetry handle into the human-readable
//! table the CLI prints after an instrumented run: total API traffic,
//! rate-limit wait, cache effectiveness, quota rejections, the per-tool
//! response-time breakdown behind Table II (rate-limit wait vs. HTTP
//! latency vs. site overhead), detector verdict tallies, and a full dump
//! of every registered metric.

use crate::analyze::LatencyAttribution;
use crate::metrics::MetricsSnapshot;
use crate::trace::EventKind;
use crate::Telemetry;
use std::fmt;
use std::fmt::Write as _;

/// A rendered-on-demand summary of one instrumented run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Metrics at report time.
    pub snapshot: MetricsSnapshot,
    /// Spans recorded in the trace.
    pub span_count: usize,
    /// Point events recorded in the trace.
    pub point_count: usize,
    /// Per-tool percentile latency attribution, when the trace carries
    /// causal request trees (empty otherwise).
    pub attribution: LatencyAttribution,
}

impl RunReport {
    /// Captures a report from `telemetry` (empty when disabled).
    pub fn from_telemetry(telemetry: &Telemetry) -> Self {
        let events = telemetry.events();
        // Only causal traces (spans with ids) yield request trees worth
        // attributing; flat legacy traces keep the section out.
        let attribution = if events.iter().any(|e| e.id.is_some()) {
            LatencyAttribution::from_events(&events)
        } else {
            LatencyAttribution::default()
        };
        Self {
            snapshot: telemetry.snapshot(),
            span_count: events.iter().filter(|e| e.kind == EventKind::Span).count(),
            point_count: events.iter().filter(|e| e.kind == EventKind::Point).count(),
            attribution,
        }
    }

    /// Cache hit ratio in `[0, 1]`, or `None` before any lookup.
    pub fn cache_hit_ratio(&self) -> Option<f64> {
        let hits = self.snapshot.counter_total("cache.hit");
        let misses = self.snapshot.counter_total("cache.miss");
        let total = hits + misses;
        (total > 0).then(|| hits as f64 / total as f64)
    }

    /// Injected-fault rate actually observed: faults per API call
    /// attempt. `None` when no faults were recorded (fault-free runs keep
    /// the resilience section out of the report entirely).
    pub fn observed_fault_rate(&self) -> Option<f64> {
        let faults = self.snapshot.counter_total("api.faults");
        let attempts = self.snapshot.counter_total("api.calls");
        (faults > 0 && attempts > 0).then(|| faults as f64 / attempts as f64)
    }

    /// Mean retries per API call attempt.
    pub fn retries_per_call(&self) -> f64 {
        let attempts = self.snapshot.counter_total("api.calls");
        if attempts == 0 {
            return 0.0;
        }
        self.snapshot.counter_total("api.retries") as f64 / attempts as f64
    }

    /// Fraction of served responses answered from the stale cache by an
    /// open circuit breaker, in `[0, 1]`.
    pub fn stale_served_fraction(&self) -> f64 {
        let stale = self.snapshot.counter_total("service.stale_served");
        let served = self.snapshot.counter_total("cache.hit")
            + self.snapshot.counter_total("cache.miss")
            + stale;
        if served == 0 {
            return 0.0;
        }
        stale as f64 / served as f64
    }

    /// Total circuit-breaker open time across tools, in sim seconds.
    pub fn breaker_open_secs(&self) -> f64 {
        self.snapshot
            .label_values("breaker.open_secs", "tool")
            .iter()
            .filter_map(|tool| self.snapshot.gauge("breaker.open_secs", &[("tool", tool)]))
            .sum()
    }

    /// Renders the summary table.
    pub fn render(&self) -> String {
        let s = &self.snapshot;
        let mut out = String::new();
        let _ = writeln!(out, "telemetry run summary");
        let _ = writeln!(out, "=====================");
        let _ = writeln!(
            out,
            "API calls           {:>10}   rate-limit wait {:.1}s   http latency {:.1}s",
            s.counter_total("api.calls"),
            s.histogram_sum("api.rate_limit_wait_secs"),
            s.histogram_sum("api.latency_secs"),
        );
        let hits = s.counter_total("cache.hit");
        let misses = s.counter_total("cache.miss");
        match self.cache_hit_ratio() {
            Some(ratio) => {
                let _ = writeln!(
                    out,
                    "cache               {hits:>10} hits / {misses} misses ({:.1}% hit ratio)",
                    ratio * 100.0
                );
            }
            None => {
                let _ = writeln!(out, "cache               {:>10} lookups", 0);
            }
        }
        let _ = writeln!(
            out,
            "quota rejections    {:>10}",
            s.counter_total("quota.rejected")
        );
        let _ = writeln!(
            out,
            "trace               {:>10} spans, {} events",
            self.span_count, self.point_count
        );

        let tools = s.label_values("service.response_secs", "tool");
        if !tools.is_empty() {
            let _ = writeln!(
                out,
                "\nfresh response breakdown (simulated seconds, mean per tool)"
            );
            let _ = writeln!(
                out,
                "{:<6}{:>4} {:>10} {:>8} {:>8} {:>10} {:>10} {:>10}",
                "tool", "n", "response", "p50", "p95", "rl-wait", "latency", "overhead"
            );
            for tool in &tools {
                let fresh = s.histogram(
                    "service.response_secs",
                    &[("tool", tool), ("source", "fresh")],
                );
                let Some(fresh) = fresh else { continue };
                let mean_of = |name: &str| {
                    s.histogram(name, &[("tool", tool)])
                        .map(|h| h.mean())
                        .unwrap_or(0.0)
                };
                let _ = writeln!(
                    out,
                    "{:<6}{:>4} {:>10.1} {:>8.1} {:>8.1} {:>10.1} {:>10.1} {:>10.1}",
                    tool,
                    fresh.count,
                    fresh.mean(),
                    fresh.p50(),
                    fresh.p95(),
                    mean_of("service.rate_limit_wait_secs"),
                    mean_of("service.api_latency_secs"),
                    mean_of("service.overhead_secs"),
                );
            }
            let cached_rows: Vec<_> = tools
                .iter()
                .filter_map(|tool| {
                    s.histogram(
                        "service.response_secs",
                        &[("tool", tool), ("source", "cache")],
                    )
                    .map(|h| (tool.clone(), h.count, h.mean(), h.p95()))
                })
                .collect();
            if !cached_rows.is_empty() {
                let _ = writeln!(out, "\ncached responses");
                let _ = writeln!(
                    out,
                    "{:<6}{:>4} {:>10} {:>8}",
                    "tool", "n", "mean secs", "p95"
                );
                for (tool, n, mean, p95) in cached_rows {
                    let _ = writeln!(out, "{tool:<6}{n:>4} {mean:>10.1} {p95:>8.1}");
                }
            }
        }

        let server_tools = s.label_values("server.offered", "tool");
        if !server_tools.is_empty() {
            let _ = writeln!(out, "\nservice under load (per tool)");
            let _ = writeln!(
                out,
                "{:<6}{:>8} {:>8} {:>8} {:>6} {:>7} {:>9} {:>9} {:>9} {:>9}",
                "tool",
                "offered",
                "done",
                "degraded",
                "shed",
                "failed",
                "lat p50",
                "lat p95",
                "lat p99",
                "wait p95"
            );
            for tool in &server_tools {
                let labels = [("tool", tool.as_str())];
                let count_of = |name: &str| s.counter(name, &labels).unwrap_or(0);
                let latency = s.histogram("server.latency_secs", &labels);
                let quantile_of = |q: f64| latency.map(|h| h.quantile(q)).unwrap_or(0.0);
                let wait_p95 = s
                    .histogram("server.queue_wait_secs", &labels)
                    .map(|h| h.p95())
                    .unwrap_or(0.0);
                let _ = writeln!(
                    out,
                    "{:<6}{:>8} {:>8} {:>8} {:>6} {:>7} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
                    tool,
                    count_of("server.offered"),
                    count_of("server.completed"),
                    count_of("server.degraded"),
                    count_of("server.shed"),
                    count_of("server.failed"),
                    quantile_of(0.5),
                    quantile_of(0.95),
                    quantile_of(0.99),
                    wait_p95,
                );
            }
        }

        // Only unreliable-upstream runs carry these series; fault-free
        // runs render byte-identically to pre-fault builds.
        let has_breaker = !s.label_values("breaker.open_secs", "tool").is_empty();
        if self.observed_fault_rate().is_some() || has_breaker {
            let _ = writeln!(
                out,
                "
upstream resilience"
            );
            let _ = writeln!(
                out,
                "API faults          {:>10}   observed rate {:.1}%   retries {} ({:.2}/call)",
                s.counter_total("api.faults"),
                self.observed_fault_rate().unwrap_or(0.0) * 100.0,
                s.counter_total("api.retries"),
                self.retries_per_call(),
            );
            let _ = writeln!(
                out,
                "backoff wait        {:>9.1}s   call failures {}",
                s.histogram_sum("api.backoff_secs"),
                s.counter_total("api.call_failures"),
            );
            let _ = writeln!(
                out,
                "stale served        {:>10}   ({:.1}% of served)   breaker open {:.0}s, {} transitions",
                s.counter_total("service.stale_served"),
                self.stale_served_fraction() * 100.0,
                self.breaker_open_secs(),
                s.counter_total("breaker.transitions"),
            );
        }

        if !self.attribution.tools.is_empty() {
            let _ = writeln!(out);
            out.push_str(&self.attribution.render());
        }

        let verdict_tools = s.label_values("detector.classified", "tool");
        if !verdict_tools.is_empty() {
            let _ = writeln!(out, "\ndetector verdicts");
            let _ = writeln!(
                out,
                "{:<6}{:>10} {:>10} {:>10}",
                "tool", "inactive", "fake", "genuine"
            );
            for tool in &verdict_tools {
                let count_of = |verdict: &str| {
                    s.counter(
                        "detector.classified",
                        &[("tool", tool), ("verdict", verdict)],
                    )
                    .unwrap_or(0)
                };
                let _ = writeln!(
                    out,
                    "{:<6}{:>10} {:>10} {:>10}",
                    tool,
                    count_of("inactive"),
                    count_of("fake"),
                    count_of("genuine"),
                );
            }
        }

        if !s.counters.is_empty() {
            let _ = writeln!(out, "\ncounters");
            for (key, v) in &s.counters {
                let _ = writeln!(out, "  {key:<52} {v}");
            }
        }
        if !s.gauges.is_empty() {
            let _ = writeln!(out, "\ngauges");
            for (key, v) in &s.gauges {
                let _ = writeln!(out, "  {key:<52} {v}");
            }
        }
        if !s.histograms.is_empty() {
            let _ = writeln!(
                out,
                "\nhistograms (count / mean / p50 / p95 / p99 / min / max)"
            );
            for (key, h) in &s.histograms {
                let _ = writeln!(
                    out,
                    "  {key:<52} {} / {:.3} / {:.3} / {:.3} / {:.3} / {:.3} / {:.3}",
                    h.count,
                    h.mean(),
                    h.p50(),
                    h.p95(),
                    h.p99(),
                    h.min,
                    h.max
                );
            }
        }
        out
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_telemetry() -> Telemetry {
        let tel = Telemetry::enabled();
        tel.counter_add("api.calls", &[("endpoint", "followers_ids")], 4);
        tel.observe(
            "api.rate_limit_wait_secs",
            &[("endpoint", "followers_ids")],
            30.0,
        );
        tel.counter_add("cache.hit", &[("tool", "TA")], 1);
        tel.counter_add("cache.miss", &[("tool", "TA")], 3);
        tel.observe(
            "service.response_secs",
            &[("tool", "TA"), ("source", "fresh")],
            47.0,
        );
        tel.observe("service.rate_limit_wait_secs", &[("tool", "TA")], 0.0);
        tel.observe("service.api_latency_secs", &[("tool", "TA")], 44.0);
        tel.observe("service.overhead_secs", &[("tool", "TA")], 3.0);
        tel.counter_add(
            "detector.classified",
            &[("tool", "TA"), ("verdict", "fake")],
            9,
        );
        tel.span("service.request", 0.0, 47.0, &[("tool", "TA")]);
        tel.event("quota.rejected", 50.0, &[("tool", "SB")]);
        tel.counter_add("quota.rejected", &[("tool", "SB")], 1);
        tel
    }

    #[test]
    fn report_renders_headline_and_breakdown() {
        let report = RunReport::from_telemetry(&sample_telemetry());
        assert_eq!(report.span_count, 1);
        assert_eq!(report.point_count, 1);
        assert_eq!(report.cache_hit_ratio(), Some(0.25));
        let text = report.render();
        assert!(text.contains("API calls"));
        assert!(text.contains("25.0% hit ratio"));
        assert!(text.contains("fresh response breakdown"));
        assert!(text.contains("TA"));
        assert!(text.contains("detector verdicts"));
        assert!(text.contains("quota rejections"));
        assert!(text.to_string().contains("histograms"));
    }

    #[test]
    fn report_renders_server_section_with_percentiles() {
        let tel = sample_telemetry();
        tel.counter_add("server.offered", &[("tool", "FC")], 40);
        tel.counter_add("server.completed", &[("tool", "FC")], 30);
        tel.counter_add("server.shed", &[("tool", "FC")], 10);
        for i in 0..30 {
            tel.observe(
                "server.latency_secs",
                &[("tool", "FC")],
                2.0 + i as f64 * 0.2,
            );
            tel.observe("server.queue_wait_secs", &[("tool", "FC")], i as f64 * 0.1);
        }
        let text = RunReport::from_telemetry(&tel).render();
        assert!(text.contains("service under load"), "{text}");
        assert!(text.contains("lat p99"));
        assert!(text.contains("FC"));
        assert!(text.contains("p50 / p95 / p99"), "histogram dump header");
    }

    #[test]
    fn fault_free_report_has_no_resilience_section() {
        let text = RunReport::from_telemetry(&sample_telemetry()).render();
        assert!(!text.contains("upstream resilience"));
    }

    #[test]
    fn faulty_run_reports_resilience_numbers() {
        let tel = sample_telemetry();
        tel.counter_add(
            "api.faults",
            &[("endpoint", "users_lookup"), ("kind", "unavailable")],
            2,
        );
        tel.counter_add("api.retries", &[("endpoint", "users_lookup")], 2);
        tel.observe("api.backoff_secs", &[("endpoint", "users_lookup")], 3.5);
        tel.counter_add("service.stale_served", &[("tool", "TA")], 1);
        tel.gauge_set("breaker.open_secs", &[("tool", "TA")], 120.0);
        tel.counter_add("breaker.transitions", &[("tool", "TA"), ("to", "open")], 1);
        let report = RunReport::from_telemetry(&tel);
        assert_eq!(report.observed_fault_rate(), Some(0.5));
        assert_eq!(report.retries_per_call(), 0.5);
        assert!((report.stale_served_fraction() - 0.2).abs() < 1e-12);
        assert_eq!(report.breaker_open_secs(), 120.0);
        let text = report.render();
        assert!(text.contains("upstream resilience"), "{text}");
        assert!(text.contains("observed rate 50.0%"));
        assert!(text.contains("breaker open 120s, 1 transitions"));
    }

    #[test]
    fn report_includes_attribution_for_causal_traces() {
        let tel = Telemetry::enabled();
        let req = tel.root_context().child();
        req.span("server.queue_wait", 0.0, 1.0, &[("tool", "TA")]);
        req.record(
            "server.request",
            0.0,
            4.0,
            &[("tool", "TA"), ("outcome", "completed")],
        );
        let report = RunReport::from_telemetry(&tel);
        assert_eq!(report.attribution.tools.len(), 1);
        let text = report.render();
        assert!(text.contains("latency attribution"), "{text}");
        assert!(text.contains("queue%"));
    }

    #[test]
    fn flat_traces_render_without_attribution_section() {
        let text = RunReport::from_telemetry(&sample_telemetry()).render();
        assert!(!text.contains("latency attribution"));
    }

    #[test]
    fn disabled_telemetry_renders_empty_report() {
        let report = RunReport::from_telemetry(&Telemetry::disabled());
        assert_eq!(report.cache_hit_ratio(), None);
        let text = report.render();
        assert!(text.contains("telemetry run summary"));
        assert!(!text.contains("fresh response breakdown"));
    }

    #[test]
    fn display_matches_render() {
        let r = RunReport::from_telemetry(&sample_telemetry());
        assert_eq!(r.to_string(), r.render());
    }
}
