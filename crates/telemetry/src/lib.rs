//! Sim-clock telemetry for the audit pipeline.
//!
//! The paper's headline evidence is *operational* — Table I rate limits,
//! Table II response times, the 27-day Obama crawl — so the reproduction
//! treats crawl-cost accounting as a first-class artefact. This crate is
//! the measurement substrate every layer shares:
//!
//! * [`trace`] — spans and point events keyed to **simulated time** (f64
//!   seconds, never the wall clock), so traces are deterministic and
//!   byte-replayable; since ISSUE 4 spans carry a [`SpanId`] and parent
//!   link, threaded through the request path as an explicit
//!   [`TraceContext`] argument, so every request is a causal tree;
//! * [`metrics`] — a thread-safe registry of counters, gauges and
//!   histograms with labelled names (`api.calls{endpoint=followers_ids}`,
//!   `cache.hit{tool=TA}`, `service.response_secs{tool,source}` …);
//! * [`sink`] — the JSON-lines trace encoding (buffered via
//!   [`JsonlSink`]) and its parser;
//! * [`clock`] — the [`Clock`] seam between simulated seconds and
//!   `Instant`-based wall time, so the wall-clock gateway and the
//!   simulators share one analysis layer;
//! * [`analyze`] — the trace-tree analysis layer: per-request waterfalls,
//!   critical-path latency attribution, the Chrome trace-event exporter
//!   and the sliding-window SLO evaluator;
//! * [`monitor`] — the *streaming* half of the SLO story: per-route
//!   sliding time-bucket windows, multi-window multi-burn-rate alerting
//!   with a `Pending → Firing → Resolved` state machine, a fixed-capacity
//!   metrics history ring, and the tail-based trace sampler that decides
//!   which request trees the bounded trace buffer must retain;
//! * [`profile`] — per-span self-time aggregation folding whole traces
//!   into deterministic folded-stack flamegraph text, plus the opt-in
//!   counting global allocator (feature `alloc-profile`);
//! * [`report`] — the end-of-run summary table ([`RunReport`]).
//!
//! The entry point is [`Telemetry`], a cheaply cloneable handle that every
//! instrumented component shares. A **disabled** handle (the default) makes
//! every recording call a branch on a null pointer — the instrumented hot
//! paths stay within noise of their uninstrumented cost — while an
//! **enabled** handle collects into one shared registry and trace:
//!
//! ```
//! use fakeaudit_telemetry::{RunReport, Telemetry};
//!
//! let tel = Telemetry::enabled();
//! tel.counter_add("api.calls", &[("endpoint", "followers_ids")], 2);
//! tel.span("api.call", 0.0, 1.4, &[("endpoint", "followers_ids")]);
//!
//! let mut jsonl = Vec::new();
//! tel.write_jsonl(&mut jsonl).unwrap();
//! assert_eq!(jsonl.iter().filter(|&&b| b == b'\n').count(), 1);
//! assert!(RunReport::from_telemetry(&tel).render().contains("API calls"));
//! ```

// `forbid` everywhere except under `alloc-profile`, whose counting
// global allocator is the one sanctioned `unsafe` block in the crate
// (a `GlobalAlloc` impl cannot be written without it); `deny` still
// requires that block to carry an explicit `#[allow]` + SAFETY note.
#![cfg_attr(not(feature = "alloc-profile"), forbid(unsafe_code))]
#![cfg_attr(feature = "alloc-profile", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod analyze;
pub mod clock;
pub mod metrics;
pub mod monitor;
pub mod profile;
pub mod report;
pub mod sink;
pub mod trace;

pub use analyze::{
    Breakdown, ChromeTraceOptions, LatencyAttribution, SloReport, SloSpec, SloWindow,
    ToolAttribution, TraceTree,
};
pub use clock::{Clock, ManualClock, WallClock};
pub use metrics::{Exemplar, HistogramSnapshot, MetricKey, MetricsRegistry, MetricsSnapshot};
pub use monitor::{
    AlertPhase, AlertTransition, BurnRule, HistoryFrame, MonitorConfig, MonitorCounts, Signal,
    SloMonitor, TransitionKind,
};
pub use profile::{AllocCounts, AllocScope, SelfTimeProfile};
pub use report::RunReport;
pub use sink::JsonlSink;
pub use trace::{EventKind, SpanId, TraceContext, TraceEvent};

use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Tail-sampling retention state: which request trees must survive
/// trace-buffer eviction, and the side lane holding protected events the
/// ring would otherwise have dropped.
#[derive(Debug, Default)]
struct Retention {
    /// Span id → root span id of its request tree, registered when the
    /// span's context is opened (parents are opened before children, so
    /// the parent's root is always known by then).
    roots: HashMap<u64, u64>,
    /// Root ids whose whole tree must survive eviction: error, slow, and
    /// alert-exemplar trees, plus the seeded-probabilistic keepers.
    protected: HashSet<u64>,
    /// Protected events rescued from ring eviction, oldest first.
    parked: VecDeque<TraceEvent>,
    /// Bound on `parked`; beyond it even protected events are dropped
    /// (and counted) rather than growing without limit.
    parked_capacity: usize,
    /// Protected events the parked lane itself had to drop.
    parked_dropped: u64,
}

impl Retention {
    /// Caps the span→root index: past the threshold, mappings for
    /// unprotected trees are discarded (their events fall back to plain
    /// oldest-first eviction, which is what they would get anyway).
    fn prune_roots(&mut self) {
        const MAX_ROOTS: usize = 1 << 18;
        if self.roots.len() > MAX_ROOTS {
            let protected = &self.protected;
            self.roots.retain(|_, root| protected.contains(root));
        }
    }
}

/// A point-in-time view of the tail-sampling retention state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetentionStats {
    /// Root ids currently pinned against eviction.
    pub protected: usize,
    /// Protected events rescued into the parked lane so far.
    pub parked: usize,
    /// Protected events the bounded parked lane itself dropped.
    pub parked_dropped: u64,
}

#[derive(Debug, Default)]
struct Inner {
    registry: MetricsRegistry,
    events: Mutex<VecDeque<TraceEvent>>,
    /// Next span id minus one; ids start at 1 in allocation order.
    span_ids: AtomicU64,
    /// Trace-buffer bound; `None` keeps every event (the default, which
    /// golden traces rely on).
    event_capacity: Option<usize>,
    /// Events evicted oldest-first once the buffer hit its bound.
    dropped_events: AtomicU64,
    /// Fast-path flag for [`Inner::retention`]: avoids a second lock per
    /// recorded span when no sampler is installed (the default).
    retention_on: AtomicBool,
    /// Tail-sampling state; `None` until a monitor installs it.
    retention: Mutex<Option<Retention>>,
}

/// A shared telemetry handle: either disabled (every call is a no-op
/// branch) or backed by one registry + trace shared by all clones.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// A no-op handle; recording costs one branch. This is the default.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A collecting handle. Clones share the same registry and trace.
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// A collecting handle whose trace buffer keeps at most `capacity`
    /// events: once full, each new event evicts the oldest and bumps
    /// [`Telemetry::dropped_events`]. Metrics are unaffected — only the
    /// event trace is bounded. Long chaos sweeps use this so retry storms
    /// cannot grow the trace without bound; golden-trace runs use
    /// [`Telemetry::enabled`], which never drops.
    pub fn with_event_capacity(capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                event_capacity: Some(capacity.max(1)),
                ..Inner::default()
            })),
        }
    }

    /// Trace events evicted by the buffer bound so far (0 when unbounded
    /// or disabled).
    pub fn dropped_events(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.dropped_events.load(Ordering::Relaxed))
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The root [`TraceContext`] for this handle: no parent span; child
    /// spans recorded through it become trace roots. Thread the returned
    /// context (or a [`TraceContext::child`] of it) explicitly through the
    /// request path — contexts are never stored in thread-locals.
    pub fn root_context(&self) -> TraceContext {
        TraceContext::root(self.clone())
    }

    /// Allocates the next span id (`None` when disabled). Ids start at 1
    /// and follow allocation order, which is deterministic for the
    /// single-threaded simulators.
    pub(crate) fn alloc_span_id(&self) -> Option<SpanId> {
        self.inner
            .as_ref()
            .map(|inner| SpanId(inner.span_ids.fetch_add(1, Ordering::Relaxed) + 1))
    }

    /// Installs tail-sampling retention on this handle's trace buffer:
    /// from now on, span→root lineage is tracked as contexts open, and
    /// events of trees pinned via [`Telemetry::protect_tree`] survive
    /// ring eviction in a bounded side lane of `parked_capacity` events.
    ///
    /// Without a bound ([`Telemetry::enabled`]) nothing is ever evicted,
    /// so retention only changes behaviour on bounded handles. Installing
    /// twice keeps the existing state and tightens nothing.
    pub fn enable_tail_retention(&self, parked_capacity: usize) {
        if let Some(inner) = &self.inner {
            let mut retention = inner.retention.lock();
            if retention.is_none() {
                *retention = Some(Retention {
                    parked_capacity: parked_capacity.max(1),
                    ..Retention::default()
                });
            }
            inner.retention_on.store(true, Ordering::Release);
        }
    }

    /// Pins the request tree rooted at `root` against trace-buffer
    /// eviction. No-op unless [`Telemetry::enable_tail_retention`] ran.
    pub fn protect_tree(&self, root: SpanId) {
        if let Some(inner) = &self.inner {
            if inner.retention_on.load(Ordering::Acquire) {
                if let Some(ret) = inner.retention.lock().as_mut() {
                    ret.protected.insert(root.0);
                }
            }
        }
    }

    /// The tail-sampling retention counters, when installed.
    pub fn retention_stats(&self) -> Option<RetentionStats> {
        let inner = self.inner.as_ref()?;
        let retention = inner.retention.lock();
        retention.as_ref().map(|ret| RetentionStats {
            protected: ret.protected.len(),
            parked: ret.parked.len(),
            parked_dropped: ret.parked_dropped,
        })
    }

    /// Records `id`'s tree lineage while retention is on: the root of a
    /// span is its parent's root, or itself at the top of a tree. Called
    /// by [`TraceContext::child`], where parent ids are always known.
    pub(crate) fn register_span(&self, id: SpanId, parent: Option<SpanId>) {
        if let Some(inner) = &self.inner {
            if inner.retention_on.load(Ordering::Acquire) {
                if let Some(ret) = inner.retention.lock().as_mut() {
                    let root = match parent {
                        Some(p) => ret.roots.get(&p.0).copied().unwrap_or(p.0),
                        None => id.0,
                    };
                    ret.roots.insert(id.0, root);
                    ret.prune_roots();
                }
            }
        }
    }

    /// Appends a fully built record to the trace, evicting the oldest
    /// event first when a buffer bound is set and reached. With tail
    /// retention installed, evicted events of protected trees are parked
    /// instead of dropped.
    pub(crate) fn push_event(&self, event: TraceEvent) {
        if let Some(inner) = &self.inner {
            let mut events = inner.events.lock();
            if inner.event_capacity.is_some_and(|cap| events.len() >= cap) {
                if let Some(evicted) = events.pop_front() {
                    if !self.park_if_protected(inner, evicted) {
                        inner.dropped_events.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            events.push_back(event);
        }
    }

    /// Moves `evicted` to the parked lane when its tree is protected;
    /// returns whether it was rescued. The tree of a span is looked up by
    /// its own id, of a point by its parent's.
    fn park_if_protected(&self, inner: &Inner, evicted: TraceEvent) -> bool {
        if !inner.retention_on.load(Ordering::Acquire) {
            return false;
        }
        let Some(ret) = &mut *inner.retention.lock() else {
            return false;
        };
        let Some(member) = evicted.id.or(evicted.parent) else {
            return false;
        };
        let root = ret.roots.get(&member.0).copied().unwrap_or(member.0);
        if !ret.protected.contains(&root) {
            return false;
        }
        if ret.parked.len() >= ret.parked_capacity {
            ret.parked_dropped += 1;
            return false;
        }
        ret.parked.push_back(evicted);
        true
    }

    /// Records a closed span `[t0, t1]` in simulated seconds.
    pub fn span(&self, name: &str, t0: f64, t1: f64, attrs: &[(&str, &str)]) {
        if self.inner.is_some() {
            self.push_event(TraceEvent::span(name, t0, t1, attrs));
        }
    }

    /// Records a point event at simulated time `t`.
    pub fn event(&self, name: &str, t: f64, attrs: &[(&str, &str)]) {
        if self.inner.is_some() {
            self.push_event(TraceEvent::point(name, t, attrs));
        }
    }

    /// Adds `n` to a counter.
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], n: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.counter_add(name, labels, n);
        }
    }

    /// Sets a gauge.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge_set(name, labels, v);
        }
    }

    /// Records one histogram observation.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.observe(name, labels, v);
        }
    }

    /// Records one histogram observation carrying an exemplar trace id,
    /// so `/metrics` renderings can link the histogram's worst bucket
    /// back to a concrete trace.
    pub fn observe_with_exemplar(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        v: f64,
        trace_id: &str,
    ) {
        if let Some(inner) = &self.inner {
            inner
                .registry
                .observe_with_exemplar(name, labels, v, trace_id);
        }
    }

    /// A deterministic snapshot of the registry (empty when disabled).
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => inner.registry.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// A copy of the trace so far (empty when disabled). With tail
    /// retention installed, parked events — protected-tree events rescued
    /// from ring eviction, which are older than everything still in the
    /// ring — come first.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => {
                let events = inner.events.lock();
                let retention = inner.retention.lock();
                let mut out: Vec<TraceEvent> = retention
                    .as_ref()
                    .map_or_else(Vec::new, |r| r.parked.iter().cloned().collect());
                out.extend(events.iter().cloned());
                out
            }
            None => Vec::new(),
        }
    }

    /// Writes the trace as JSON lines.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_jsonl<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        sink::write_jsonl(&self.events(), w)
    }

    /// Renders the end-of-run summary table.
    pub fn summary(&self) -> String {
        RunReport::from_telemetry(self).render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        tel.counter_add("x", &[], 1);
        tel.span("s", 0.0, 1.0, &[]);
        tel.event("e", 0.0, &[]);
        tel.gauge_set("g", &[], 1.0);
        tel.observe("h", &[], 1.0);
        assert!(tel.events().is_empty());
        assert_eq!(tel.snapshot(), MetricsSnapshot::default());
        let mut buf = Vec::new();
        tel.write_jsonl(&mut buf).unwrap();
        assert!(buf.is_empty());
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Telemetry::default().is_enabled());
    }

    #[test]
    fn clones_share_the_same_collector() {
        let tel = Telemetry::enabled();
        let clone = tel.clone();
        clone.counter_add("api.calls", &[], 3);
        clone.span("api.call", 0.0, 2.0, &[]);
        assert_eq!(tel.snapshot().counter_total("api.calls"), 3);
        assert_eq!(tel.events().len(), 1);
    }

    #[test]
    fn events_preserve_recording_order() {
        let tel = Telemetry::enabled();
        tel.event("first", 5.0, &[]);
        tel.event("second", 1.0, &[]);
        let events = tel.events();
        assert_eq!(events[0].name, "first");
        assert_eq!(events[1].name, "second");
    }

    #[test]
    fn bounded_buffer_drops_oldest_and_counts() {
        let tel = Telemetry::with_event_capacity(3);
        for i in 0..5 {
            tel.event(&format!("e{i}"), i as f64, &[]);
        }
        let names: Vec<_> = tel.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["e2", "e3", "e4"]);
        assert_eq!(tel.dropped_events(), 2);
        // Metrics are not bounded by the event capacity.
        tel.counter_add("c", &[], 7);
        assert_eq!(tel.snapshot().counter_total("c"), 7);
    }

    #[test]
    fn unbounded_handle_never_drops() {
        let tel = Telemetry::enabled();
        for i in 0..100 {
            tel.event("e", i as f64, &[]);
        }
        assert_eq!(tel.events().len(), 100);
        assert_eq!(tel.dropped_events(), 0);
    }

    #[test]
    fn summary_is_renderable() {
        let tel = Telemetry::enabled();
        tel.counter_add("api.calls", &[("endpoint", "users_lookup")], 2);
        assert!(tel.summary().contains("API calls"));
    }

    #[test]
    fn handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Telemetry>();
    }
}
