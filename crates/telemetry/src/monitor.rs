//! The streaming SLO monitor: live burn-rate alerting, metrics history,
//! and tail-based trace sampling.
//!
//! [`crate::analyze::SloSpec`] answers the SLO question *offline*, after
//! a trace is complete. This module is the live half the serving stack
//! needs: a [`SloMonitor`] fed one observation per finished request and
//! ticked on the [`crate::Clock`] seam — explicit sim seconds from the
//! discrete-event server, wall seconds from the gateway's background
//! thread — so the same engine is byte-deterministic under a simulator
//! and real-time under load.
//!
//! Three cooperating pieces:
//!
//! * **Sliding time-bucket windows + multi-window multi-burn-rate
//!   alerts.** Each route keeps sparse fixed-width time buckets counting
//!   total / erroring / slow requests. Every [`BurnRule`] is a
//!   Google-SRE-style *fast + slow window pair*: an alert condition holds
//!   only while **both** the short and the long window burn their error
//!   budget faster than the rule's threshold — the short window gives
//!   fast detection and fast resolution, the long window keeps one noisy
//!   minute from paging. Availability and latency burn are tracked as
//!   separate signals per rule, with burn defined exactly as in
//!   [`crate::analyze::SloSpec`]: `bad_fraction / (1 − objective)`.
//! * **A `Pending → Firing → Resolved` state machine** per
//!   (route, rule, signal), [`AlertMachine`], in which no transition
//!   skips a state: a breach must dwell `pending_secs` before it fires
//!   and clear `clear_secs` before it resolves. Every transition is
//!   appended to a deterministic alert log and emitted as a
//!   `monitor.alert` telemetry point, so two same-seed sim runs produce
//!   byte-identical logs.
//! * **Tail-based trace sampling.** The gateway's trace buffer is a
//!   bounded ring; without a policy it keeps whatever happened last.
//!   The monitor decides at request *completion* (the tail, when the
//!   outcome is known) which trees matter: error and slow trees are
//!   always pinned, a seeded coin keeps a fraction of the boring ones,
//!   and every alert that fires pins its exemplar tree — so an alert's
//!   `exemplar=span#N` always resolves to a retained tree. Pinning uses
//!   [`crate::Telemetry::protect_tree`]; protected events evicted from
//!   the ring are parked instead of dropped.
//!
//! The monitor also snapshots a fixed-capacity **metrics history ring**
//! every `history_interval_secs`: per-family counter deltas and latency
//! quantiles, giving `GET /metrics/history` a short flight recorder
//! without external storage.

use crate::metrics::HistogramSnapshot;
use crate::trace::SpanId;
use crate::Telemetry;
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;

/// One multi-window burn-rate rule: a fast + slow window pair with one
/// threshold. The alert condition holds while **both** windows burn
/// faster than `burn_threshold`.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnRule {
    /// Rule label (`page`, `ticket`, …) used in logs and endpoints.
    pub name: String,
    /// The fast window (seconds): quick to rise, quick to clear.
    pub short_secs: f64,
    /// The slow window (seconds): keeps brief blips from alerting.
    pub long_secs: f64,
    /// Minimum burn rate (error budget consumed ÷ budget) on both
    /// windows for the condition to hold.
    pub burn_threshold: f64,
    /// Seconds the condition must hold before `Pending` becomes
    /// `Firing`.
    pub pending_secs: f64,
    /// Seconds the condition must stay clear before the alert resolves.
    pub clear_secs: f64,
}

impl BurnRule {
    /// A named fast/slow pair with explicit dwell times.
    #[must_use]
    pub fn new(
        name: &str,
        short_secs: f64,
        long_secs: f64,
        burn_threshold: f64,
        pending_secs: f64,
        clear_secs: f64,
    ) -> Self {
        Self {
            name: name.to_string(),
            short_secs,
            long_secs,
            burn_threshold,
            pending_secs,
            clear_secs,
        }
    }
}

/// Which error budget a machine watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Signal {
    /// Failed/shed/expired requests against the availability objective.
    Availability,
    /// Requests slower than the latency objective against the quantile
    /// budget.
    Latency,
}

impl Signal {
    /// Label used in logs, metrics and endpoints.
    pub fn as_str(self) -> &'static str {
        match self {
            Signal::Availability => "availability",
            Signal::Latency => "latency",
        }
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Everything the monitor needs to know up front.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorConfig {
    /// Width of one counting bucket (seconds). Window sums and tick
    /// cadence quantise to this.
    pub bucket_secs: f64,
    /// Availability objective, e.g. `0.99`.
    pub availability_objective: f64,
    /// The latency quantile whose complement is the slow-request budget
    /// (0.95 ⇒ 5 % of requests may be slow), mirroring
    /// [`crate::analyze::SloSpec`].
    pub latency_quantile: f64,
    /// A request slower than this (seconds) is "slow".
    pub latency_objective_secs: f64,
    /// The fast/slow window pairs to evaluate.
    pub rules: Vec<BurnRule>,
    /// Frames kept in the metrics history ring.
    pub history_capacity: usize,
    /// Seconds between history frames.
    pub history_interval_secs: f64,
    /// Probability of keeping a healthy, fast request tree (error and
    /// slow trees are always kept).
    pub sample_keep: f64,
    /// Bound on the parked lane holding protected events rescued from
    /// ring eviction (see [`Telemetry::enable_tail_retention`]).
    pub parked_capacity: usize,
    /// Seed for the sampling coin; same seed + same observation stream ⇒
    /// identical decisions.
    pub seed: u64,
}

impl MonitorConfig {
    /// Defaults scaled to *simulated* seconds (Table-II-style audit
    /// latencies run tens of seconds): detection windows of minutes,
    /// latency objective matching [`crate::analyze::SloSpec`]'s 30 s.
    #[must_use]
    pub fn sim_default(seed: u64) -> Self {
        Self {
            bucket_secs: 10.0,
            availability_objective: 0.99,
            latency_quantile: 0.95,
            latency_objective_secs: 30.0,
            rules: vec![
                BurnRule::new("page", 60.0, 300.0, 8.0, 30.0, 60.0),
                BurnRule::new("ticket", 300.0, 1200.0, 2.0, 60.0, 120.0),
            ],
            history_capacity: 64,
            history_interval_secs: 60.0,
            sample_keep: 0.10,
            parked_capacity: 4096,
            seed,
        }
    }

    /// Defaults scaled to *wall* seconds for the live gateway: windows
    /// of seconds, a 250 ms latency objective, so a CI fault burst fires
    /// and resolves within one short run.
    #[must_use]
    pub fn wall_default(seed: u64) -> Self {
        Self {
            bucket_secs: 1.0,
            availability_objective: 0.99,
            latency_quantile: 0.95,
            latency_objective_secs: 0.25,
            rules: vec![
                BurnRule::new("fast", 5.0, 20.0, 4.0, 1.0, 5.0),
                BurnRule::new("slow", 30.0, 120.0, 2.0, 5.0, 15.0),
            ],
            history_capacity: 120,
            history_interval_secs: 5.0,
            sample_keep: 0.05,
            parked_capacity: 4096,
            seed,
        }
    }

    /// The longest window any rule evaluates.
    fn max_window_secs(&self) -> f64 {
        self.rules
            .iter()
            .map(|r| r.long_secs.max(r.short_secs))
            .fold(0.0, f64::max)
    }
}

/// The observable phase of one alert machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertPhase {
    /// No incident.
    Idle,
    /// The condition breached; dwelling before firing.
    Pending,
    /// The alert is live.
    Firing,
}

impl AlertPhase {
    /// Label used in endpoints (`ok` for idle — a healthy route).
    pub fn as_str(self) -> &'static str {
        match self {
            AlertPhase::Idle => "ok",
            AlertPhase::Pending => "pending",
            AlertPhase::Firing => "firing",
        }
    }
}

/// The transition an [`AlertMachine::step`] produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionKind {
    /// `Idle → Pending`: the condition breached.
    Pending,
    /// `Pending → Firing`: the breach outlived the pending dwell.
    Firing,
    /// `Pending → Idle` or `Firing → Idle`: the incident ended.
    Resolved,
}

impl TransitionKind {
    /// Label used in logs, metrics and endpoints.
    pub fn as_str(self) -> &'static str {
        match self {
            TransitionKind::Pending => "pending",
            TransitionKind::Firing => "firing",
            TransitionKind::Resolved => "resolved",
        }
    }
}

impl fmt::Display for TransitionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The `Pending → Firing → Resolved` state machine for one
/// (route, rule, signal).
///
/// Driven by [`AlertMachine::step`] once per tick with the current
/// breach verdict. By construction no transition skips a state: an
/// incident always enters through `Pending`, `Firing` is only reachable
/// from `Pending`, and both exit through a single `Resolved` transition
/// back to idle. At most one transition per step.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertMachine {
    pending_secs: f64,
    clear_secs: f64,
    state: MachineState,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum MachineState {
    Idle,
    Pending { since: f64 },
    Firing { clear_since: Option<f64> },
}

impl AlertMachine {
    /// A machine with the given dwell times, starting idle.
    #[must_use]
    pub fn new(pending_secs: f64, clear_secs: f64) -> Self {
        Self {
            pending_secs,
            clear_secs,
            state: MachineState::Idle,
        }
    }

    /// The machine's observable phase.
    pub fn phase(&self) -> AlertPhase {
        match self.state {
            MachineState::Idle => AlertPhase::Idle,
            MachineState::Pending { .. } => AlertPhase::Pending,
            MachineState::Firing { .. } => AlertPhase::Firing,
        }
    }

    /// Advances the machine to `now` given whether the alert condition
    /// currently holds. Returns the transition taken, if any.
    pub fn step(&mut self, now: f64, breach: bool) -> Option<TransitionKind> {
        match self.state {
            MachineState::Idle => {
                if breach {
                    self.state = MachineState::Pending { since: now };
                    return Some(TransitionKind::Pending);
                }
                None
            }
            MachineState::Pending { since } => {
                if !breach {
                    self.state = MachineState::Idle;
                    return Some(TransitionKind::Resolved);
                }
                if now - since >= self.pending_secs {
                    self.state = MachineState::Firing { clear_since: None };
                    return Some(TransitionKind::Firing);
                }
                None
            }
            MachineState::Firing { clear_since } => {
                if breach {
                    if clear_since.is_some() {
                        self.state = MachineState::Firing { clear_since: None };
                    }
                    return None;
                }
                let since = clear_since.unwrap_or(now);
                if now - since >= self.clear_secs {
                    self.state = MachineState::Idle;
                    return Some(TransitionKind::Resolved);
                }
                self.state = MachineState::Firing {
                    clear_since: Some(since),
                };
                None
            }
        }
    }
}

/// One line of the alert log: a state-machine transition with the burn
/// rates that drove it.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTransition {
    /// When the transition happened (monitor-clock seconds).
    pub at_secs: f64,
    /// The route (gateway route label or sim tool abbreviation).
    pub route: String,
    /// The [`BurnRule`] name.
    pub rule: String,
    /// Which budget breached.
    pub signal: Signal,
    /// The transition taken.
    pub to: TransitionKind,
    /// Burn rate on the fast window at transition time.
    pub short_burn: f64,
    /// Burn rate on the slow window at transition time.
    pub long_burn: f64,
    /// The pinned exemplar trace for firing transitions.
    pub exemplar: Option<SpanId>,
}

impl AlertTransition {
    /// The deterministic one-line log rendering.
    pub fn render(&self) -> String {
        let exemplar = self
            .exemplar
            .map_or_else(|| "-".to_string(), |id| id.to_string());
        format!(
            "t={:.1} route={} rule={} signal={} to={} short={:.2}x long={:.2}x exemplar={}",
            self.at_secs,
            self.route,
            self.rule,
            self.signal,
            self.to,
            self.short_burn,
            self.long_burn,
            exemplar
        )
    }
}

/// One frame of the metrics history ring.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryFrame {
    /// Frame time (monitor-clock seconds).
    pub at_secs: f64,
    /// Per-family counter increments since the previous frame, name
    /// order, zero deltas omitted.
    pub counter_deltas: Vec<(String, u64)>,
    /// Per-family `[p50, p95, p99]` over all label sets, name order.
    pub quantiles: Vec<(String, [f64; 3])>,
}

/// Cumulative monitor counters, for `/debug/vars` and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MonitorCounts {
    /// `→ Pending` transitions so far.
    pub pending: u64,
    /// `→ Firing` transitions so far.
    pub firing: u64,
    /// `→ Resolved` transitions so far.
    pub resolved: u64,
    /// Machines currently pending.
    pub active_pending: u64,
    /// Machines currently firing.
    pub active_firing: u64,
    /// Trees pinned because they erred or ran slow.
    pub traces_kept: u64,
    /// Healthy trees pinned by the sampling coin.
    pub traces_sampled: u64,
    /// Healthy trees left to ring eviction.
    pub traces_dropped: u64,
}

/// One route's sparse time-bucket counts plus its alert machines.
#[derive(Debug)]
struct Series {
    /// Ascending by bucket index; sparse (empty buckets not stored).
    buckets: VecDeque<Bucket>,
    /// Most recent erroring tree, the availability exemplar.
    last_bad: Option<SpanId>,
    /// Most recent slow tree, the latency exemplar.
    last_slow: Option<SpanId>,
    /// Rule-major, then availability before latency.
    machines: Vec<AlertMachine>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Bucket {
    index: u64,
    total: u64,
    bad: u64,
    slow: u64,
}

impl Series {
    fn new(rules: &[BurnRule]) -> Self {
        let machines = rules
            .iter()
            .flat_map(|r| {
                [
                    AlertMachine::new(r.pending_secs, r.clear_secs),
                    AlertMachine::new(r.pending_secs, r.clear_secs),
                ]
            })
            .collect();
        Self {
            buckets: VecDeque::new(),
            last_bad: None,
            last_slow: None,
            machines,
        }
    }

    /// Adds one observation to the bucket covering `at_secs`.
    fn observe(&mut self, bucket_secs: f64, at_secs: f64, bad: bool, slow: bool) {
        let index = (at_secs.max(0.0) / bucket_secs).floor() as u64;
        // Find the bucket from the back: observations arrive in
        // near-time order, so this is O(1) in the sim and short under
        // wall-clock jitter.
        let pos = self.buckets.iter().rposition(|b| b.index <= index);
        let slot = match pos {
            Some(i) if self.buckets[i].index == index => i,
            Some(i) => {
                self.buckets.insert(
                    i + 1,
                    Bucket {
                        index,
                        ..Bucket::default()
                    },
                );
                i + 1
            }
            None => {
                self.buckets.push_front(Bucket {
                    index,
                    ..Bucket::default()
                });
                0
            }
        };
        let b = &mut self.buckets[slot];
        b.total += 1;
        b.bad += u64::from(bad);
        b.slow += u64::from(slow);
    }

    /// Drops buckets entirely behind every window ending at `now`.
    fn evict(&mut self, bucket_secs: f64, now: f64, max_window: f64) {
        let horizon = now - max_window - bucket_secs;
        while let Some(front) = self.buckets.front() {
            if (front.index + 1) as f64 * bucket_secs > horizon {
                break;
            }
            self.buckets.pop_front();
        }
    }

    /// `(total, bad, slow)` over the window `(now − window, now]`.
    fn window_counts(&self, bucket_secs: f64, now: f64, window: f64) -> (u64, u64, u64) {
        let (mut total, mut bad, mut slow) = (0, 0, 0);
        for b in &self.buckets {
            let start = b.index as f64 * bucket_secs;
            if start > now {
                continue; // A completion observed ahead of the tick clock.
            }
            if start + bucket_secs > now - window {
                total += b.total;
                bad += b.bad;
                slow += b.slow;
            }
        }
        (total, bad, slow)
    }
}

/// Mutable monitor state behind one lock.
#[derive(Debug)]
struct MonitorState {
    series: BTreeMap<String, Series>,
    log: Vec<AlertTransition>,
    /// Transitions evicted once the log hit [`LOG_CAPACITY`].
    log_dropped: u64,
    counts: MonitorCounts,
    rng: u64,
    history: VecDeque<HistoryFrame>,
    prev_counters: BTreeMap<String, u64>,
    next_history_at: f64,
    last_tick: f64,
}

/// Bound on the in-memory alert log; far above any honest run, it only
/// guards a flapping misconfiguration.
const LOG_CAPACITY: usize = 4096;

/// The streaming SLO engine. Cheap to clone; all clones share state.
///
/// Feed it [`SloMonitor::observe_request`] per finished request and
/// [`SloMonitor::tick`] on whatever clock drives the deployment.
#[derive(Debug, Clone)]
pub struct SloMonitor {
    config: Arc<MonitorConfig>,
    state: Arc<Mutex<MonitorState>>,
    telemetry: Telemetry,
}

impl SloMonitor {
    /// A monitor over `telemetry`, which also installs tail-sampling
    /// retention on its trace buffer.
    #[must_use]
    pub fn new(config: MonitorConfig, telemetry: Telemetry) -> Self {
        telemetry.enable_tail_retention(config.parked_capacity);
        let next_history_at = config.history_interval_secs;
        let seed = config.seed;
        Self {
            config: Arc::new(config),
            state: Arc::new(Mutex::new(MonitorState {
                series: BTreeMap::new(),
                log: Vec::new(),
                log_dropped: 0,
                counts: MonitorCounts::default(),
                rng: seed ^ 0x6D6F_6E69_746F_72, // "monitor"
                history: VecDeque::new(),
                prev_counters: BTreeMap::new(),
                next_history_at,
                last_tick: 0.0,
            })),
            telemetry,
        }
    }

    /// The configuration the monitor runs.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Records one finished request: `ok` is the client-visible verdict
    /// (5xx, shed, expired and failed are *not* ok), `latency_secs` the
    /// end-to-end latency when one exists (shed requests have none), and
    /// `root` the request's trace-tree root for the tail sampler.
    pub fn observe_request(
        &self,
        route: &str,
        end_secs: f64,
        latency_secs: Option<f64>,
        ok: bool,
        root: Option<SpanId>,
    ) {
        let slow = latency_secs.is_some_and(|l| l >= self.config.latency_objective_secs);
        let bad = !ok;
        let mut state = self.state.lock();
        let series = state
            .series
            .entry(route.to_string())
            .or_insert_with(|| Series::new(&self.config.rules));
        series.observe(self.config.bucket_secs, end_secs, bad, slow);
        if bad {
            if root.is_some() {
                series.last_bad = root;
            }
        } else if slow && root.is_some() {
            series.last_slow = root;
        }
        // Tail decision: the outcome is known, so pin what matters.
        if let Some(root) = root {
            if bad || slow {
                self.telemetry.protect_tree(root);
                state.counts.traces_kept += 1;
                self.telemetry
                    .counter_add("monitor.traces", &[("decision", "kept")], 1);
            } else if next_unit(&mut state.rng) < self.config.sample_keep {
                self.telemetry.protect_tree(root);
                state.counts.traces_sampled += 1;
                self.telemetry
                    .counter_add("monitor.traces", &[("decision", "sampled")], 1);
            } else {
                state.counts.traces_dropped += 1;
                self.telemetry
                    .counter_add("monitor.traces", &[("decision", "dropped")], 1);
            }
        }
    }

    /// Evaluates every (route, rule, signal) at `now`, drives the state
    /// machines, logs and emits transitions, and snapshots the history
    /// ring when a frame is due. Returns the transitions taken this
    /// tick.
    pub fn tick(&self, now: f64) -> Vec<AlertTransition> {
        let config = &*self.config;
        let max_window = config.max_window_secs();
        let avail_budget = (1.0 - config.availability_objective).max(f64::EPSILON);
        let lat_budget = (1.0 - config.latency_quantile).max(f64::EPSILON);
        let mut state = self.state.lock();
        state.last_tick = now;
        let mut transitions = Vec::new();
        let mut protect = Vec::new();

        for (route, series) in &mut state.series {
            series.evict(config.bucket_secs, now, max_window);
            for (r, rule) in config.rules.iter().enumerate() {
                let windows = [rule.short_secs, rule.long_secs].map(|w| {
                    let (total, bad, slow) = series.window_counts(config.bucket_secs, now, w);
                    if total == 0 {
                        (0.0, 0.0)
                    } else {
                        (
                            (bad as f64 / total as f64) / avail_budget,
                            (slow as f64 / total as f64) / lat_budget,
                        )
                    }
                });
                let signals = [
                    (Signal::Availability, windows[0].0, windows[1].0),
                    (Signal::Latency, windows[0].1, windows[1].1),
                ];
                for (s, (signal, short_burn, long_burn)) in signals.into_iter().enumerate() {
                    let breach =
                        short_burn >= rule.burn_threshold && long_burn >= rule.burn_threshold;
                    let machine = &mut series.machines[r * 2 + s];
                    let Some(to) = machine.step(now, breach) else {
                        continue;
                    };
                    let exemplar = if to == TransitionKind::Firing {
                        let root = match signal {
                            Signal::Availability => series.last_bad.or(series.last_slow),
                            Signal::Latency => series.last_slow.or(series.last_bad),
                        };
                        if let Some(root) = root {
                            protect.push(root);
                        }
                        root
                    } else {
                        None
                    };
                    transitions.push(AlertTransition {
                        at_secs: now,
                        route: route.clone(),
                        rule: rule.name.clone(),
                        signal,
                        to,
                        short_burn,
                        long_burn,
                        exemplar,
                    });
                }
            }
        }

        // An alert's exemplar must survive the ring: pin it the moment
        // the alert fires.
        for root in protect {
            self.telemetry.protect_tree(root);
        }
        for t in &transitions {
            match t.to {
                TransitionKind::Pending => state.counts.pending += 1,
                TransitionKind::Firing => state.counts.firing += 1,
                TransitionKind::Resolved => state.counts.resolved += 1,
            }
            self.telemetry
                .counter_add("monitor.alerts", &[("state", t.to.as_str())], 1);
            let exemplar = t
                .exemplar
                .map_or_else(|| "-".to_string(), |id| id.to_string());
            self.telemetry.event(
                "monitor.alert",
                t.at_secs,
                &[
                    ("route", &t.route),
                    ("rule", &t.rule),
                    ("signal", t.signal.as_str()),
                    ("to", t.to.as_str()),
                    ("exemplar", &exemplar),
                ],
            );
        }
        if !transitions.is_empty() {
            state.log.extend(transitions.iter().cloned());
            let overflow = state.log.len().saturating_sub(LOG_CAPACITY);
            if overflow > 0 {
                state.log.drain(..overflow);
                state.log_dropped += overflow as u64;
            }
        }
        let (pending, firing) =
            state
                .series
                .values()
                .flat_map(|s| s.machines.iter())
                .fold((0, 0), |(p, f), m| match m.phase() {
                    AlertPhase::Idle => (p, f),
                    AlertPhase::Pending => (p + 1, f),
                    AlertPhase::Firing => (p, f + 1),
                });
        state.counts.active_pending = pending;
        state.counts.active_firing = firing;
        self.telemetry
            .gauge_set("monitor.alerts_firing", &[], firing as f64);
        self.telemetry
            .gauge_set("monitor.alerts_pending", &[], pending as f64);

        if now >= state.next_history_at {
            self.capture_history(&mut state, now);
            let interval = config.history_interval_secs.max(f64::EPSILON);
            // Skip straight past any missed frames (idle gateway).
            let behind = ((now - state.next_history_at) / interval).floor() + 1.0;
            state.next_history_at += behind * interval;
        }
        transitions
    }

    /// Appends one history frame from the live metrics registry.
    fn capture_history(&self, state: &mut MonitorState, now: f64) {
        let snap = self.telemetry.snapshot();
        let mut totals: BTreeMap<String, u64> = BTreeMap::new();
        for (key, v) in &snap.counters {
            *totals.entry(key.name.clone()).or_insert(0) += v;
        }
        let counter_deltas: Vec<(String, u64)> = totals
            .iter()
            .filter_map(|(name, &total)| {
                let prev = state.prev_counters.get(name).copied().unwrap_or(0);
                let delta = total.saturating_sub(prev);
                (delta > 0).then(|| (name.clone(), delta))
            })
            .collect();
        let mut families: BTreeMap<String, HistogramSnapshot> = BTreeMap::new();
        for (key, h) in &snap.histograms {
            families
                .entry(key.name.clone())
                .and_modify(|merged| merged.merge(h))
                .or_insert_with(|| h.clone());
        }
        let quantiles = families
            .into_iter()
            .map(|(name, h)| (name, [h.quantile(0.50), h.quantile(0.95), h.quantile(0.99)]))
            .collect();
        state.prev_counters = totals;
        state.history.push_back(HistoryFrame {
            at_secs: now,
            counter_deltas,
            quantiles,
        });
        while state.history.len() > self.config.history_capacity.max(1) {
            state.history.pop_front();
        }
    }

    /// Cumulative and active counters.
    pub fn counts(&self) -> MonitorCounts {
        self.state.lock().counts
    }

    /// Every logged transition, oldest first.
    pub fn transitions(&self) -> Vec<AlertTransition> {
        self.state.lock().log.clone()
    }

    /// Per-route worst phase (`ok` / `pending` / `firing`), route order.
    pub fn route_status(&self) -> Vec<(String, AlertPhase)> {
        let state = self.state.lock();
        state
            .series
            .iter()
            .map(|(route, series)| {
                let worst = series
                    .machines
                    .iter()
                    .map(|m| m.phase())
                    .max()
                    .unwrap_or(AlertPhase::Idle);
                (route.clone(), worst)
            })
            .collect()
    }

    /// The deterministic alert log: one [`AlertTransition::render`] line
    /// per transition, newline-terminated. Same seed + same observation
    /// stream ⇒ byte-identical output.
    pub fn render_alert_log(&self) -> String {
        let state = self.state.lock();
        let mut out = String::new();
        for t in &state.log {
            let _ = writeln!(out, "{}", t.render());
        }
        out
    }

    /// The `GET /alerts` JSON body: active counts, per-route status and
    /// the transition log.
    pub fn alerts_json(&self) -> String {
        let state = self.state.lock();
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"firing\":{},\"pending\":{},\"resolved_total\":{},\"log_dropped\":{}",
            state.counts.active_firing,
            state.counts.active_pending,
            state.counts.resolved,
            state.log_dropped
        );
        out.push_str(",\"routes\":[");
        for (i, (route, series)) in state.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let worst = series
                .machines
                .iter()
                .map(|m| m.phase())
                .max()
                .unwrap_or(AlertPhase::Idle);
            let _ = write!(
                out,
                "{{\"route\":\"{}\",\"status\":\"{}\"}}",
                escape(route),
                worst.as_str()
            );
        }
        out.push_str("],\"transitions\":[");
        for (i, t) in state.log.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"t\":{:.3},\"route\":\"{}\",\"rule\":\"{}\",\"signal\":\"{}\",\
                 \"to\":\"{}\",\"short_burn\":{:.4},\"long_burn\":{:.4},\"exemplar\":{}}}",
                t.at_secs,
                escape(&t.route),
                escape(&t.rule),
                t.signal,
                t.to,
                t.short_burn,
                t.long_burn,
                t.exemplar
                    .map_or_else(|| "null".to_string(), |id| format!("\"{id}\""))
            );
        }
        out.push_str("]}");
        out
    }

    /// The `GET /metrics/history` JSON body: the frame ring, oldest
    /// first.
    pub fn history_json(&self) -> String {
        let state = self.state.lock();
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"interval_secs\":{},\"capacity\":{},\"frames\":[",
            fmt_f64(self.config.history_interval_secs),
            self.config.history_capacity
        );
        for (i, frame) in state.history.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"t\":{:.3},\"counter_deltas\":{{", frame.at_secs);
            for (j, (name, delta)) in frame.counter_deltas.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", escape(name), delta);
            }
            out.push_str("},\"quantiles\":{");
            for (j, (name, q)) in frame.quantiles.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\"{}\":{{\"p50\":{:.6},\"p95\":{:.6},\"p99\":{:.6}}}",
                    escape(name),
                    q[0],
                    q[1],
                    q[2]
                );
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// The history frames, oldest first.
    pub fn history(&self) -> Vec<HistoryFrame> {
        self.state.lock().history.iter().cloned().collect()
    }

    /// The telemetry handle the monitor records into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }
}

/// Splitmix64: the sampler's seeded coin. Self-contained so the crate
/// stays dependency-free.
fn next_unit(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Formats an f64 with no trailing `.0` surprises for config fields.
fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Minimal JSON string escaping (names are internal identifiers, but a
/// route label could in principle carry anything).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight_config(seed: u64) -> MonitorConfig {
        MonitorConfig {
            bucket_secs: 1.0,
            availability_objective: 0.99,
            latency_quantile: 0.95,
            latency_objective_secs: 10.0,
            rules: vec![BurnRule::new("page", 5.0, 15.0, 2.0, 2.0, 5.0)],
            history_capacity: 8,
            history_interval_secs: 10.0,
            sample_keep: 0.0,
            parked_capacity: 64,
            seed,
        }
    }

    /// Drives a failure burst then recovery; returns the monitor.
    fn burst_run(seed: u64) -> SloMonitor {
        let tel = Telemetry::enabled();
        let monitor = SloMonitor::new(tight_config(seed), tel);
        let mut t = 0.0;
        while t < 60.0 {
            let bad = (20.0..35.0).contains(&t);
            monitor.observe_request("audit", t, Some(1.0), !bad, None);
            if t % 1.0 == 0.0 {
                monitor.tick(t);
            }
            t += 0.5;
        }
        for i in 61..90 {
            monitor.tick(f64::from(i));
        }
        monitor
    }

    #[test]
    fn machine_never_skips_a_state() {
        let mut m = AlertMachine::new(2.0, 3.0);
        assert_eq!(m.phase(), AlertPhase::Idle);
        assert_eq!(m.step(0.0, true), Some(TransitionKind::Pending));
        assert_eq!(m.phase(), AlertPhase::Pending);
        assert_eq!(m.step(1.0, true), None, "dwell not yet served");
        assert_eq!(m.step(2.0, true), Some(TransitionKind::Firing));
        assert_eq!(m.phase(), AlertPhase::Firing);
        assert_eq!(m.step(3.0, false), None, "clear dwell starts");
        assert_eq!(m.step(4.0, true), None, "re-breach resets the clear");
        assert_eq!(m.step(5.0, false), None);
        assert_eq!(m.step(8.0, false), Some(TransitionKind::Resolved));
        assert_eq!(m.phase(), AlertPhase::Idle);
    }

    #[test]
    fn pending_that_clears_resolves_without_firing() {
        let mut m = AlertMachine::new(10.0, 3.0);
        assert_eq!(m.step(0.0, true), Some(TransitionKind::Pending));
        assert_eq!(m.step(1.0, false), Some(TransitionKind::Resolved));
        assert_eq!(m.phase(), AlertPhase::Idle);
    }

    #[test]
    fn burst_fires_then_resolves() {
        let monitor = burst_run(7);
        let log = monitor.transitions();
        let kinds: Vec<TransitionKind> = log
            .iter()
            .filter(|t| t.signal == Signal::Availability)
            .map(|t| t.to)
            .collect();
        assert!(
            kinds.contains(&TransitionKind::Firing),
            "burst must fire: {log:?}"
        );
        let fired_at = log
            .iter()
            .position(|t| t.to == TransitionKind::Firing)
            .unwrap();
        assert!(
            log[..fired_at]
                .iter()
                .any(|t| t.to == TransitionKind::Pending
                    && t.route == log[fired_at].route
                    && t.signal == log[fired_at].signal),
            "firing must be preceded by pending"
        );
        assert!(
            log[fired_at..]
                .iter()
                .any(|t| t.to == TransitionKind::Resolved),
            "recovery must resolve: {log:?}"
        );
        let counts = monitor.counts();
        assert!(counts.firing >= 1);
        assert!(counts.resolved >= 1);
        assert_eq!(counts.active_firing, 0, "all quiet at the end");
    }

    #[test]
    fn alert_log_is_deterministic() {
        let a = burst_run(42).render_alert_log();
        let b = burst_run(42).render_alert_log();
        assert!(!a.is_empty());
        assert_eq!(a, b, "same seed + same stream ⇒ byte-identical log");
    }

    #[test]
    fn transitions_emit_telemetry_events_and_counters() {
        let monitor = burst_run(7);
        let tel = monitor.telemetry();
        let events: Vec<_> = tel
            .events()
            .into_iter()
            .filter(|e| e.name == "monitor.alert")
            .collect();
        assert_eq!(events.len(), monitor.transitions().len());
        let snap = tel.snapshot();
        let c = monitor.counts();
        assert_eq!(
            snap.counter("monitor.alerts", &[("state", "firing")]),
            Some(c.firing)
        );
        assert_eq!(
            snap.counter("monitor.alerts", &[("state", "resolved")]),
            Some(c.resolved)
        );
    }

    #[test]
    fn firing_exemplar_is_protected_and_retained() {
        let tel = Telemetry::with_event_capacity(16);
        let monitor = SloMonitor::new(tight_config(3), tel.clone());
        // A bad request tree whose root we can check on later.
        let root_ctx = tel.root_context().child();
        let root_id = root_ctx.span_id().unwrap();
        root_ctx.record("server.request", 9.0, 10.0, &[("outcome", "failed")]);
        monitor.observe_request("audit", 10.0, Some(1.0), false, Some(root_id));
        for t in 10..20 {
            monitor.observe_request("audit", f64::from(t), Some(1.0), false, None);
            monitor.tick(f64::from(t));
        }
        let fired = monitor
            .transitions()
            .into_iter()
            .find(|t| t.to == TransitionKind::Firing)
            .expect("a sustained failure run must fire");
        assert_eq!(fired.exemplar, Some(root_id));
        // Flood the bounded buffer; the exemplar tree must survive.
        for i in 0..100 {
            tel.event("noise", f64::from(i), &[]);
        }
        assert!(
            tel.events().iter().any(|e| e.id == Some(root_id)),
            "exemplar tree evicted despite protection"
        );
        assert!(tel.retention_stats().unwrap().parked >= 1);
    }

    #[test]
    fn sampler_keeps_errors_and_coins_the_rest() {
        let tel = Telemetry::with_event_capacity(512);
        let config = MonitorConfig {
            sample_keep: 0.5,
            ..tight_config(11)
        };
        let monitor = SloMonitor::new(config, tel.clone());
        for i in 0..200u64 {
            let ctx = tel.root_context().child();
            let id = ctx.span_id().unwrap();
            let t = i as f64;
            ctx.record("server.request", t, t + 0.5, &[]);
            let ok = i % 10 != 0;
            monitor.observe_request("audit", t + 0.5, Some(0.5), ok, Some(id));
        }
        let c = monitor.counts();
        assert_eq!(c.traces_kept, 20, "every error tree is kept");
        assert_eq!(c.traces_sampled + c.traces_dropped, 180);
        assert!(c.traces_sampled > 50, "coin keeps roughly half: {c:?}");
        assert!(c.traces_dropped > 50, "coin drops roughly half: {c:?}");
        // Decisions are seed-deterministic.
        let tel2 = Telemetry::with_event_capacity(512);
        let config2 = MonitorConfig {
            sample_keep: 0.5,
            ..tight_config(11)
        };
        let monitor2 = SloMonitor::new(config2, tel2.clone());
        for i in 0..200u64 {
            let ctx = tel2.root_context().child();
            let id = ctx.span_id().unwrap();
            let t = i as f64;
            ctx.record("server.request", t, t + 0.5, &[]);
            monitor2.observe_request("audit", t + 0.5, Some(0.5), i % 10 != 0, Some(id));
        }
        assert_eq!(monitor.counts(), monitor2.counts());
    }

    #[test]
    fn history_ring_captures_deltas_and_rolls() {
        let tel = Telemetry::enabled();
        let monitor = SloMonitor::new(tight_config(5), tel.clone());
        for frame in 0..12u64 {
            tel.counter_add("api.calls", &[], 3);
            tel.observe("server.latency_secs", &[], 0.5 + frame as f64);
            monitor.tick(10.0 * (frame + 1) as f64);
        }
        let frames = monitor.history();
        assert_eq!(frames.len(), 8, "ring holds history_capacity frames");
        for f in &frames {
            let calls = f
                .counter_deltas
                .iter()
                .find(|(n, _)| n == "api.calls")
                .map(|&(_, d)| d);
            assert_eq!(calls, Some(3), "per-frame delta, not cumulative total");
            assert!(f.quantiles.iter().any(|(n, _)| n == "server.latency_secs"));
        }
        let json = monitor.history_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"api.calls\":3"));
        assert!(json.contains("\"p95\""));
    }

    #[test]
    fn alerts_json_and_route_status_shape() {
        let monitor = burst_run(7);
        let json = monitor.alerts_json();
        assert!(json.contains("\"routes\":[{\"route\":\"audit\""));
        assert!(json.contains("\"to\":\"firing\""));
        let status = monitor.route_status();
        assert_eq!(status.len(), 1);
        assert_eq!(status[0].0, "audit");
        assert_eq!(status[0].1, AlertPhase::Idle, "resolved by the end");
    }

    #[test]
    fn empty_windows_are_healthy() {
        let tel = Telemetry::enabled();
        let monitor = SloMonitor::new(tight_config(1), tel);
        monitor.observe_request("audit", 1.0, Some(1.0), true, None);
        for t in 0..50 {
            assert!(monitor.tick(f64::from(t)).is_empty());
        }
        assert_eq!(monitor.counts().pending, 0);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
