//! A thread-safe metrics registry: counters, gauges and histograms.
//!
//! Metrics are identified by a dotted name plus sorted label pairs, e.g.
//! `api.calls{endpoint=followers_ids}`. All maps are `BTreeMap`s so every
//! snapshot and rendered summary iterates in one deterministic order.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;

/// Histogram bucket upper bounds in seconds (a final overflow bucket
/// catches everything above the last bound). The scale spans the regimes
/// the reproduction measures: sub-second cache hits, Table II responses
/// (seconds to minutes) and multi-day crawls.
pub const BUCKET_BOUNDS: [f64; 9] = [0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 600.0, 3_600.0, 86_400.0];

/// A metric identity: name plus label pairs (sorted on construction).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    /// Dotted metric name, e.g. `cache.hit`.
    pub name: String,
    /// Sorted `(label, value)` pairs.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key, sorting the labels.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }

    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

impl fmt::Display for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)?;
        if !self.labels.is_empty() {
            f.write_str("{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{k}={v}")?;
            }
            f.write_str("}")?;
        }
        Ok(())
    }
}

/// An exemplar: one concrete observation a histogram remembers alongside
/// its aggregate shape, linking a `/metrics` line back to the trace that
/// produced it. Histograms keep the exemplar of their **largest**
/// observation — the worst case is the trace an operator wants to open.
#[derive(Debug, Clone, PartialEq)]
pub struct Exemplar {
    /// The observed value.
    pub value: f64,
    /// The trace identity of the observation, e.g. `span#42`.
    pub trace_id: String,
}

/// Streaming histogram state: count/sum/min/max plus log-scale buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// `(upper_bound, count)` pairs; the final pair uses
    /// [`f64::INFINITY`] as its bound.
    pub buckets: Vec<(f64, u64)>,
    /// Exemplar of the largest observation recorded with a trace id
    /// (`None` when no exemplar-carrying observation happened).
    pub exemplar: Option<Exemplar>,
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimates the `q`-quantile by linear interpolation inside the
    /// bucket holding the target rank — the Prometheus
    /// `histogram_quantile` scheme, tightened with the exact `min`/`max`
    /// the snapshot tracks. Clamping, in order:
    ///
    /// * `q` outside `[0, 1]` is clamped to `[0, 1]` (so `quantile(-1.0)`
    ///   behaves like `quantile(0.0)` and `quantile(2.0)` like
    ///   `quantile(1.0)`);
    /// * estimates are clamped to `[min, max]`, so a single-sample
    ///   histogram returns exactly that sample at every `q`;
    /// * a rank landing in the overflow bucket reports `max` rather than
    ///   infinity;
    /// * an empty histogram returns `0.0` at every `q`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        let mut lower = 0.0_f64;
        for &(bound, in_bucket) in &self.buckets {
            let next = cum + in_bucket;
            if in_bucket > 0 && next as f64 >= target {
                if bound.is_infinite() {
                    return self.max;
                }
                let frac = (target - cum as f64) / in_bucket as f64;
                return (lower + frac * (bound - lower)).clamp(self.min, self.max);
            }
            cum = next;
            if bound.is_finite() {
                lower = bound;
            }
        }
        self.max
    }

    /// The median estimate — [`HistogramSnapshot::quantile`] at 0.5.
    pub fn p50(&self) -> f64 {
        self.quantile(0.5)
    }

    /// The 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// The 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Merges `other` into `self`: counts and sums add, min/max widen,
    /// buckets add pairwise when the bound layouts match (one side being
    /// empty adopts the other's layout), and the exemplar with the larger
    /// value survives. Merging snapshots with *different* non-empty bound
    /// layouts keeps `self`'s buckets — count/sum/min/max stay exact but
    /// quantile estimates then degrade, which the caller avoids by only
    /// merging snapshots from registries sharing [`BUCKET_BOUNDS`] (all
    /// of them, today).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count > 0 {
            if self.count == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        let bounds_match = self.buckets.len() == other.buckets.len()
            && self
                .buckets
                .iter()
                .zip(&other.buckets)
                .all(|(&(a, _), &(b, _))| a == b || (a.is_infinite() && b.is_infinite()));
        if self.buckets.is_empty() {
            self.buckets = other.buckets.clone();
        } else if bounds_match {
            for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
                mine.1 += theirs.1;
            }
        }
        let take_other = match (&self.exemplar, &other.exemplar) {
            (_, None) => false,
            (None, Some(_)) => true,
            (Some(a), Some(b)) => b.value > a.value,
        };
        if take_other {
            self.exemplar = other.exemplar.clone();
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; BUCKET_BOUNDS.len() + 1],
    exemplar: Option<Exemplar>,
}

impl Histogram {
    fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: [0; BUCKET_BOUNDS.len() + 1],
            exemplar: None,
        }
    }

    fn observe_with_exemplar(&mut self, v: f64, trace_id: &str) {
        self.observe(v);
        // Keep the worst (largest) exemplar; ties keep the first seen so
        // repeated identical observations stay deterministic.
        if self.exemplar.as_ref().is_none_or(|e| v > e.value) {
            self.exemplar = Some(Exemplar {
                value: v,
                trace_id: trace_id.to_string(),
            });
        }
    }

    fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            if v < self.min {
                self.min = v;
            }
            if v > self.max {
                self.max = v;
            }
        }
        self.count += 1;
        self.sum += v;
        let idx = BUCKET_BOUNDS
            .iter()
            .position(|&bound| v <= bound)
            .unwrap_or(BUCKET_BOUNDS.len());
        self.buckets[idx] += 1;
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets: Vec<(f64, u64)> = BUCKET_BOUNDS
            .iter()
            .copied()
            .zip(self.buckets.iter().copied())
            .collect();
        buckets.push((f64::INFINITY, self.buckets[BUCKET_BOUNDS.len()]));
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            buckets,
            exemplar: self.exemplar.clone(),
        }
    }
}

#[derive(Debug, Default)]
struct Maps {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, Histogram>,
}

/// A thread-safe registry of named counters, gauges and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Maps>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter `name{labels}` (creating it at zero).
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], n: u64) {
        let key = MetricKey::new(name, labels);
        *self.inner.lock().counters.entry(key).or_insert(0) += n;
    }

    /// Sets the gauge `name{labels}` to `v`.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        let key = MetricKey::new(name, labels);
        self.inner.lock().gauges.insert(key, v);
    }

    /// Records one observation in the histogram `name{labels}`.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        let key = MetricKey::new(name, labels);
        self.inner
            .lock()
            .histograms
            .entry(key)
            .or_insert_with(Histogram::new)
            .observe(v);
    }

    /// Records one observation tagged with an exemplar trace id. The
    /// histogram keeps the exemplar of its largest tagged observation so
    /// renderings can link to the worst trace.
    pub fn observe_with_exemplar(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        v: f64,
        trace_id: &str,
    ) {
        let key = MetricKey::new(name, labels);
        self.inner
            .lock()
            .histograms
            .entry(key)
            .or_insert_with(Histogram::new)
            .observe_with_exemplar(v, trace_id);
    }

    /// A deterministic (name-ordered) snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let maps = self.inner.lock();
        MetricsSnapshot {
            counters: maps.counters.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            gauges: maps.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            histograms: maps
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a registry, ordered by metric key.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// All counters.
    pub counters: Vec<(MetricKey, u64)>,
    /// All gauges.
    pub gauges: Vec<(MetricKey, f64)>,
    /// All histograms.
    pub histograms: Vec<(MetricKey, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Sum of counter `name` across every label combination.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// The exact counter `name{labels}`, if recorded.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = MetricKey::new(name, labels);
        self.counters
            .iter()
            .find(|(k, _)| *k == key)
            .map(|&(_, v)| v)
    }

    /// The gauge `name{labels}`, if recorded.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let key = MetricKey::new(name, labels);
        self.gauges.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }

    /// The histogram `name{labels}`, if recorded.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        let key = MetricKey::new(name, labels);
        self.histograms
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, h)| h)
    }

    /// Sum of observations in histogram `name` across every label set.
    pub fn histogram_sum(&self, name: &str) -> f64 {
        self.histograms
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, h)| h.sum)
            .sum()
    }

    /// The distinct values of `label` across all metrics named `name`, in
    /// first-seen (key-sorted) order.
    pub fn label_values(&self, name: &str, label: &str) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let keys = self
            .counters
            .iter()
            .map(|(k, _)| k)
            .chain(self.gauges.iter().map(|(k, _)| k))
            .chain(self.histograms.iter().map(|(k, _)| k));
        for key in keys {
            if key.name == name {
                if let Some(v) = key.label(label) {
                    if !out.iter().any(|x| x == v) {
                        out.push(v.to_string());
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = MetricsRegistry::new();
        r.counter_add("api.calls", &[("endpoint", "followers_ids")], 3);
        r.counter_add("api.calls", &[("endpoint", "followers_ids")], 2);
        r.counter_add("api.calls", &[("endpoint", "users_lookup")], 7);
        let s = r.snapshot();
        assert_eq!(
            s.counter("api.calls", &[("endpoint", "followers_ids")]),
            Some(5)
        );
        assert_eq!(s.counter_total("api.calls"), 12);
        assert_eq!(s.counter("api.calls", &[("endpoint", "nope")]), None);
    }

    #[test]
    fn gauges_overwrite() {
        let r = MetricsRegistry::new();
        r.gauge_set("cache.entries", &[], 3.0);
        r.gauge_set("cache.entries", &[], 5.0);
        assert_eq!(r.snapshot().gauge("cache.entries", &[]), Some(5.0));
    }

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let r = MetricsRegistry::new();
        for v in [0.5, 2.0, 120.0] {
            r.observe("api.rate_limit_wait_secs", &[], v);
        }
        let s = r.snapshot();
        let h = s.histogram("api.rate_limit_wait_secs", &[]).unwrap();
        assert_eq!(h.count, 3);
        assert!((h.sum - 122.5).abs() < 1e-9);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 120.0);
        assert!((h.mean() - 122.5 / 3.0).abs() < 1e-9);
        // 0.5 → (<=1.0), 2.0 → (<=10.0), 120.0 → (<=600.0).
        let count_at = |bound: f64| {
            h.buckets
                .iter()
                .find(|&&(b, _)| b == bound)
                .map(|&(_, c)| c)
                .unwrap()
        };
        assert_eq!(count_at(1.0), 1);
        assert_eq!(count_at(10.0), 1);
        assert_eq!(count_at(600.0), 1);
    }

    #[test]
    fn overflow_bucket_catches_huge_values() {
        let r = MetricsRegistry::new();
        r.observe("crawl.secs", &[], 10_000_000.0);
        let s = r.snapshot();
        let h = s.histogram("crawl.secs", &[]).unwrap();
        let (bound, count) = *h.buckets.last().unwrap();
        assert!(bound.is_infinite());
        assert_eq!(count, 1);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let r = MetricsRegistry::new();
        // 100 observations spread uniformly over (1, 10] — one bucket.
        for i in 1..=100 {
            r.observe("lat", &[], 1.0 + 9.0 * i as f64 / 100.0);
        }
        let s = r.snapshot();
        let h = s.histogram("lat", &[]).unwrap();
        // All mass sits in the (1, 10] bucket; interpolation maps rank
        // q*100 to 1 + 9q.
        assert!((h.p50() - 5.5).abs() < 0.2, "p50 {}", h.p50());
        assert!((h.p95() - 9.55).abs() < 0.2, "p95 {}", h.p95());
        assert!((h.p99() - 9.91).abs() < 0.2, "p99 {}", h.p99());
        assert!(h.p50() <= h.p95() && h.p95() <= h.p99());
    }

    #[test]
    fn quantile_clamps_to_observed_range() {
        let r = MetricsRegistry::new();
        r.observe("lat", &[], 2.0);
        r.observe("lat", &[], 3.0);
        let s = r.snapshot();
        let h = s.histogram("lat", &[]).unwrap();
        // Both fall in the (1, 10] bucket; naive interpolation would dip
        // below 2.0 at low q and reach 10.0 at q=1.
        assert!(h.quantile(0.0) >= 2.0);
        assert!(h.quantile(1.0) <= 3.0);
    }

    #[test]
    fn quantile_in_overflow_bucket_reports_max() {
        let r = MetricsRegistry::new();
        r.observe("crawl.secs", &[], 100_000.0);
        r.observe("crawl.secs", &[], 2_000_000.0);
        let s = r.snapshot();
        let h = s.histogram("crawl.secs", &[]).unwrap();
        assert_eq!(h.p99(), 2_000_000.0);
        assert!(h.p99().is_finite());
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = HistogramSnapshot {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: vec![],
            exemplar: None,
        };
        assert_eq!(h.quantile(0.5), 0.0);
        // The clamps hold on the degenerate shape too.
        assert_eq!(h.quantile(-3.0), 0.0);
        assert_eq!(h.quantile(7.0), 0.0);
    }

    #[test]
    fn quantile_clamps_q_outside_unit_interval() {
        let r = MetricsRegistry::new();
        for v in [2.0, 4.0, 8.0] {
            r.observe("lat", &[], v);
        }
        let s = r.snapshot();
        let h = s.histogram("lat", &[]).unwrap();
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
        assert_eq!(h.quantile(f64::NEG_INFINITY), h.quantile(0.0));
        assert_eq!(h.quantile(f64::INFINITY), h.quantile(1.0));
    }

    #[test]
    fn quantile_of_single_sample_is_that_sample() {
        let r = MetricsRegistry::new();
        r.observe("lat", &[], 3.7);
        let s = r.snapshot();
        let h = s.histogram("lat", &[]).unwrap();
        // min == max == 3.7, so the [min, max] clamp pins every quantile
        // to the one observation regardless of bucket interpolation.
        for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q), 3.7, "q={q}");
        }
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        let h = HistogramSnapshot {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: vec![],
            exemplar: None,
        };
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn exemplar_tracks_worst_observation() {
        let r = MetricsRegistry::new();
        r.observe_with_exemplar("lat", &[], 0.5, "span#1");
        r.observe_with_exemplar("lat", &[], 4.0, "span#2");
        r.observe_with_exemplar("lat", &[], 2.0, "span#3");
        // Ties keep the first exemplar seen at that value.
        r.observe_with_exemplar("lat", &[], 4.0, "span#9");
        let s = r.snapshot();
        let h = s.histogram("lat", &[]).unwrap();
        let ex = h.exemplar.as_ref().unwrap();
        assert_eq!(ex.trace_id, "span#2");
        assert_eq!(ex.value, 4.0);
        assert_eq!(h.count, 4);
    }

    #[test]
    fn plain_observe_carries_no_exemplar() {
        let r = MetricsRegistry::new();
        r.observe("lat", &[], 1.0);
        let s = r.snapshot();
        assert!(s.histogram("lat", &[]).unwrap().exemplar.is_none());
    }

    #[test]
    fn merge_adds_counts_and_widens_range() {
        let r1 = MetricsRegistry::new();
        let r2 = MetricsRegistry::new();
        for v in [0.5, 2.0] {
            r1.observe("lat", &[], v);
        }
        for v in [0.05, 40.0, 3.0] {
            r2.observe("lat", &[], v);
        }
        let mut a = r1.snapshot().histogram("lat", &[]).unwrap().clone();
        let b = r2.snapshot().histogram("lat", &[]).unwrap().clone();
        a.merge(&b);
        assert_eq!(a.count, 5);
        assert!((a.sum - 45.55).abs() < 1e-9);
        assert_eq!(a.min, 0.05);
        assert_eq!(a.max, 40.0);
        // Buckets added pairwise: the merged bucket counts total 5.
        assert_eq!(a.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 5);
        // Merged quantiles stay inside the widened range.
        assert!(a.p50() >= a.min && a.p99() <= a.max);
    }

    #[test]
    fn merge_into_empty_adopts_other_side() {
        let r = MetricsRegistry::new();
        r.observe_with_exemplar("lat", &[], 7.0, "span#5");
        let full = r.snapshot().histogram("lat", &[]).unwrap().clone();
        let mut empty = HistogramSnapshot {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: vec![],
            exemplar: None,
        };
        empty.merge(&full);
        assert_eq!(empty, full);
        // And the mirror image: merging an empty side changes nothing.
        let mut kept = full.clone();
        kept.merge(&HistogramSnapshot {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: vec![],
            exemplar: None,
        });
        assert_eq!(kept, full);
    }

    #[test]
    fn merge_keeps_larger_exemplar() {
        let r1 = MetricsRegistry::new();
        let r2 = MetricsRegistry::new();
        r1.observe_with_exemplar("lat", &[], 9.0, "span#big");
        r2.observe_with_exemplar("lat", &[], 1.0, "span#small");
        let big = r1.snapshot().histogram("lat", &[]).unwrap().clone();
        let small = r2.snapshot().histogram("lat", &[]).unwrap().clone();

        let mut a = big.clone();
        a.merge(&small);
        assert_eq!(a.exemplar.as_ref().unwrap().trace_id, "span#big");

        let mut b = small;
        b.merge(&big);
        assert_eq!(b.exemplar.as_ref().unwrap().trace_id, "span#big");
    }

    #[test]
    fn labels_sort_into_one_identity() {
        let a = MetricKey::new("m", &[("b", "2"), ("a", "1")]);
        let b = MetricKey::new("m", &[("a", "1"), ("b", "2")]);
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "m{a=1,b=2}");
        assert_eq!(a.label("a"), Some("1"));
        assert_eq!(MetricKey::new("m", &[]).to_string(), "m");
    }

    #[test]
    fn label_values_are_deduped() {
        let r = MetricsRegistry::new();
        r.counter_add("x", &[("tool", "TA")], 1);
        r.counter_add("x", &[("tool", "SP")], 1);
        r.observe("x", &[("tool", "TA")], 1.0);
        let s = r.snapshot();
        assert_eq!(s.label_values("x", "tool"), vec!["SP", "TA"]);
    }

    #[test]
    fn snapshot_orders_deterministically() {
        let r = MetricsRegistry::new();
        r.counter_add("z.last", &[], 1);
        r.counter_add("a.first", &[], 1);
        let s = r.snapshot();
        assert_eq!(s.counters[0].0.name, "a.first");
        assert_eq!(s.counters[1].0.name, "z.last");
    }
}
