//! Per-span self-time profiling: folded-stack flamegraph output and the
//! opt-in allocation counters.
//!
//! The trace layer answers *where one request's time went*
//! ([`TraceTree::waterfall`], [`Breakdown`](crate::Breakdown)); this
//! module answers the aggregate question — *across every request, which
//! span name on which call path burns the time* — by folding a whole
//! trace into the classic folded-stack format:
//!
//! ```text
//! server.request;server.service;service.request;api.call 1250000
//! server.request;server.queue_wait 40000
//! ```
//!
//! One line per distinct root-to-span path, the value being the path's
//! **self time** (span duration minus the duration of its child spans)
//! summed over every occurrence, in integer microseconds. The format is
//! what `inferno-flamegraph`, `flamegraph.pl` and pprof's folded importer
//! all consume, and integer values plus sorted lines make the output
//! byte-deterministic: same seed, same trace, same folded bytes.
//!
//! The second half is allocation profiling. With the `alloc-profile`
//! feature a [`CountingAllocator`] can be installed as a binary's global
//! allocator; it counts every allocation and allocated byte into process
//! globals that [`AllocScope`] deltas against, so a bench driver can
//! report *allocations per request* next to its latency numbers. Without
//! the feature every hook compiles to a zero-returning stub and the crate
//! keeps its `forbid(unsafe_code)` guarantee.

use crate::analyze::TraceTree;
use crate::trace::EventKind;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A folded-stack self-time profile aggregated over a whole trace.
///
/// Build with [`SelfTimeProfile::from_tree`] (or
/// [`SelfTimeProfile::from_events`]), render with
/// [`SelfTimeProfile::folded`]; [`SelfTimeProfile::top`] gives the
/// hottest stacks for table output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SelfTimeProfile {
    /// `stack -> self time in integer microseconds`, keyed by the
    /// `root;child;…` path. A `BTreeMap` so iteration (and therefore the
    /// folded rendering) is deterministic.
    stacks: BTreeMap<String, u64>,
}

impl SelfTimeProfile {
    /// Folds every span tree in `tree` into self-time stacks.
    ///
    /// Each span contributes its duration minus its child spans'
    /// durations (clamped at zero — overlapping concurrent children can
    /// legitimately sum past the parent), attributed to the full
    /// `root;…;span` name path. Point events carry no time and are
    /// skipped. Spans with identical name paths aggregate, which is the
    /// entire point: ten thousand `api.call`s become one hot line.
    pub fn from_tree(tree: &TraceTree) -> Self {
        let mut profile = Self::default();
        for &root in tree.roots() {
            profile.fold_span(tree, root, "");
        }
        // Flat legacy spans (no id, no parent) sit outside every tree but
        // still carry time; fold them as single-frame stacks.
        for (i, e) in tree.events().iter().enumerate() {
            if e.kind == EventKind::Span && e.id.is_none() && e.parent.is_none() {
                profile.fold_span(tree, i, "");
            }
        }
        profile
    }

    /// [`SelfTimeProfile::from_tree`] over a raw event slice.
    pub fn from_events(events: &[crate::TraceEvent]) -> Self {
        Self::from_tree(&TraceTree::build(events))
    }

    fn fold_span(&mut self, tree: &TraceTree, idx: usize, prefix: &str) {
        let e = tree.event(idx);
        if e.kind != EventKind::Span {
            return;
        }
        let stack = if prefix.is_empty() {
            e.name.clone()
        } else {
            format!("{prefix};{}", e.name)
        };
        let mut child_secs = 0.0;
        if let Some(id) = e.id {
            for &c in tree.children_of(id) {
                let child = tree.event(c);
                if child.kind == EventKind::Span {
                    child_secs += (child.t1 - child.t0).max(0.0);
                    self.fold_span(tree, c, &stack);
                }
            }
        }
        let self_secs = ((e.t1 - e.t0).max(0.0) - child_secs).max(0.0);
        let micros = (self_secs * 1e6).round() as u64;
        *self.stacks.entry(stack).or_insert(0) += micros;
    }

    /// Number of distinct stacks.
    pub fn len(&self) -> usize {
        self.stacks.len()
    }

    /// Whether the profile is empty (no spans folded).
    pub fn is_empty(&self) -> bool {
        self.stacks.is_empty()
    }

    /// Total self time across every stack, in microseconds. Equals the
    /// summed duration of all root spans (up to rounding), since self
    /// times partition each tree.
    pub fn total_micros(&self) -> u64 {
        self.stacks.values().sum()
    }

    /// The folded-stack rendering: one `stack value` line per distinct
    /// path, sorted by stack name, newline-terminated. Zero-valued
    /// stacks are kept — a span that appeared is part of the profile
    /// even when its self time rounds to nothing.
    pub fn folded(&self) -> String {
        let mut out = String::with_capacity(self.stacks.len() * 48);
        for (stack, micros) in &self.stacks {
            let _ = writeln!(out, "{stack} {micros}");
        }
        out
    }

    /// The `n` hottest stacks by self time (ties broken by stack name,
    /// so the order is deterministic), as `(stack, micros)` pairs.
    pub fn top(&self, n: usize) -> Vec<(&str, u64)> {
        let mut rows: Vec<(&str, u64)> =
            self.stacks.iter().map(|(s, &v)| (s.as_str(), v)).collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        rows.truncate(n);
        rows
    }
}

/// A point-in-time reading of the process-wide allocation counters.
///
/// All zeros unless a [`CountingAllocator`] is installed as the global
/// allocator (feature `alloc-profile`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocCounts {
    /// Allocation calls observed.
    pub allocs: u64,
    /// Bytes requested across those calls.
    pub bytes: u64,
}

impl AllocCounts {
    /// Counter deltas since `earlier` (saturating, so a stale snapshot
    /// cannot underflow).
    pub fn since(&self, earlier: &AllocCounts) -> AllocCounts {
        AllocCounts {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// A scope guard over the allocation counters: snapshot on
/// [`AllocScope::start`], read the delta with [`AllocScope::delta`].
///
/// With `alloc-profile` off (or no [`CountingAllocator`] installed) the
/// delta is always zero — callers need no feature gates of their own.
#[derive(Debug, Clone, Copy)]
pub struct AllocScope {
    at_start: AllocCounts,
}

impl AllocScope {
    /// Opens a scope at the current counter values.
    pub fn start() -> Self {
        Self {
            at_start: alloc_counts(),
        }
    }

    /// Allocations and bytes since the scope opened.
    pub fn delta(&self) -> AllocCounts {
        alloc_counts().since(&self.at_start)
    }
}

impl Default for AllocScope {
    fn default() -> Self {
        Self::start()
    }
}

/// Whether this build carries the counting-allocator hooks. `false`
/// means [`alloc_counts`] is a constant-zero stub.
pub const fn alloc_profiling_available() -> bool {
    cfg!(feature = "alloc-profile")
}

#[cfg(feature = "alloc-profile")]
mod counting {
    use super::AllocCounts;
    use std::alloc::{GlobalAlloc, Layout};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);

    /// The current process-wide counters.
    pub fn alloc_counts() -> AllocCounts {
        AllocCounts {
            allocs: ALLOCS.load(Ordering::Relaxed),
            bytes: BYTES.load(Ordering::Relaxed),
        }
    }

    /// A counting wrapper around any [`GlobalAlloc`]. Install it as a
    /// binary's global allocator to light up [`alloc_counts`]:
    ///
    /// ```ignore
    /// #[global_allocator]
    /// static ALLOC: CountingAllocator<std::alloc::System> =
    ///     CountingAllocator::new(std::alloc::System);
    /// ```
    ///
    /// Counting is two relaxed atomic adds per allocation — cheap enough
    /// to leave on for a whole bench run, which is the use case: the
    /// relative cost between runs is the measurement, not the absolute
    /// nanoseconds.
    #[derive(Debug)]
    pub struct CountingAllocator<A> {
        inner: A,
    }

    impl<A> CountingAllocator<A> {
        /// Wraps `inner`.
        pub const fn new(inner: A) -> Self {
            Self { inner }
        }
    }

    // SAFETY: delegates verbatim to the wrapped allocator; the only
    // added behaviour is relaxed counter increments, which allocate
    // nothing and cannot panic.
    #[allow(unsafe_code)]
    unsafe impl<A: GlobalAlloc> GlobalAlloc for CountingAllocator<A> {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            self.inner.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            self.inner.dealloc(ptr, layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            self.inner.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            self.inner.realloc(ptr, layout, new_size)
        }
    }
}

#[cfg(feature = "alloc-profile")]
pub use counting::{alloc_counts, CountingAllocator};

/// The current process-wide allocation counters — constant zeros in this
/// build (feature `alloc-profile` off).
#[cfg(not(feature = "alloc-profile"))]
pub fn alloc_counts() -> AllocCounts {
    AllocCounts::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    /// Two requests with the canonical server tree shape.
    fn sample_telemetry() -> Telemetry {
        let tel = Telemetry::enabled();
        let root = tel.root_context();
        for i in 0..2 {
            let base = i as f64 * 10.0;
            let req = root.child();
            req.span("server.queue_wait", base, base + 0.5, &[]);
            let svc = req.child();
            let api = svc.span("api.call", base + 0.6, base + 2.6, &[]);
            api.point("api.page", base + 1.0, &[]);
            svc.record("server.service", base + 0.5, base + 3.0, &[]);
            req.record("server.request", base, base + 3.0, &[]);
        }
        tel
    }

    #[test]
    fn self_time_subtracts_children() {
        let tel = sample_telemetry();
        let profile = SelfTimeProfile::from_events(&tel.events());
        let folded = profile.folded();
        // Per request: root 3.0s minus queue_wait 0.5 minus service 2.5
        // leaves 0; service 2.5 minus api 2.0 leaves 0.5; two requests
        // aggregate on the same paths.
        assert_eq!(
            folded,
            "server.request 0\n\
             server.request;server.queue_wait 1000000\n\
             server.request;server.service 1000000\n\
             server.request;server.service;api.call 4000000\n"
        );
        // Self times partition the trees: total equals both roots' 3s.
        assert_eq!(profile.total_micros(), 6_000_000);
        assert_eq!(profile.len(), 4);
        assert!(!profile.is_empty());
    }

    #[test]
    fn folding_is_deterministic() {
        let a = SelfTimeProfile::from_events(&sample_telemetry().events());
        let b = SelfTimeProfile::from_events(&sample_telemetry().events());
        assert_eq!(a, b);
        assert_eq!(a.folded(), b.folded());
        assert_eq!(a.folded().as_bytes(), b.folded().as_bytes());
    }

    #[test]
    fn top_orders_by_self_time_then_name() {
        let profile = SelfTimeProfile::from_events(&sample_telemetry().events());
        let top = profile.top(2);
        assert_eq!(
            top[0],
            ("server.request;server.service;api.call", 4_000_000)
        );
        assert_eq!(top[1].1, 1_000_000);
        // Ties at 1_000_000 break lexicographically.
        assert_eq!(top[1].0, "server.request;server.queue_wait");
        assert_eq!(profile.top(100).len(), profile.len());
    }

    #[test]
    fn empty_trace_folds_to_nothing() {
        let profile = SelfTimeProfile::from_events(&[]);
        assert!(profile.is_empty());
        assert_eq!(profile.folded(), "");
        assert_eq!(profile.total_micros(), 0);
        assert!(profile.top(5).is_empty());
    }

    #[test]
    fn point_events_and_flat_spans_carry_no_stack_time() {
        let tel = Telemetry::enabled();
        // A flat legacy span (no id) still folds as a root of its own.
        tel.span("legacy.flat", 0.0, 1.0, &[]);
        let root = tel.root_context();
        let req = root.span("server.request", 0.0, 2.0, &[]);
        req.point("server.shed", 1.0, &[]);
        let profile = SelfTimeProfile::from_events(&tel.events());
        assert_eq!(
            profile.folded(),
            "legacy.flat 1000000\nserver.request 2000000\n"
        );
    }

    #[test]
    fn overlapping_children_clamp_at_zero_self_time() {
        let tel = Telemetry::enabled();
        let root = tel.root_context();
        let req = root.child();
        // Two concurrent children covering the whole parent interval.
        req.span("api.call", 0.0, 1.0, &[]);
        req.span("api.call", 0.0, 1.0, &[]);
        req.record("server.request", 0.0, 1.0, &[]);
        let profile = SelfTimeProfile::from_events(&tel.events());
        assert_eq!(
            profile.folded(),
            "server.request 0\nserver.request;api.call 2000000\n"
        );
    }

    #[test]
    fn alloc_scope_is_a_safe_stub_without_the_feature() {
        let scope = AllocScope::start();
        let _v: Vec<u64> = (0..1000).collect();
        let delta = scope.delta();
        if !alloc_profiling_available() {
            assert_eq!(delta, AllocCounts::default());
        }
        // `since` saturates rather than underflowing.
        let zero = AllocCounts::default();
        let some = AllocCounts {
            allocs: 5,
            bytes: 100,
        };
        assert_eq!(zero.since(&some), zero);
        assert_eq!(some.since(&zero), some);
    }
}
