//! Sim-time trace records.
//!
//! A trace is an append-only sequence of records stamped exclusively with
//! **simulated** time (f64 seconds on the platform clock, the same axis as
//! [`ApiSession::elapsed_secs`]-style accounting). No record ever carries a
//! wall-clock field, which is what makes two runs with the same seed emit
//! byte-identical traces.
//!
//! [`ApiSession::elapsed_secs`]: https://docs.rs/fakeaudit-twitter-api

use std::fmt;

/// Whether a record covers an interval or a single instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A closed interval `[t0, t1]` of simulated time.
    Span,
    /// An instantaneous occurrence (`t1 == t0`).
    Point,
}

impl EventKind {
    /// The `type` field value in the JSONL encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Point => "event",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One trace record: a named span or point event with ordered attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Record kind.
    pub kind: EventKind,
    /// Dotted name, e.g. `api.call` or `service.request`.
    pub name: String,
    /// Simulated start time in seconds.
    pub t0: f64,
    /// Simulated end time in seconds (`== t0` for point events).
    pub t1: f64,
    /// Attribute pairs in recording order.
    pub attrs: Vec<(String, String)>,
}

impl TraceEvent {
    /// Builds a span record.
    pub fn span(name: &str, t0: f64, t1: f64, attrs: &[(&str, &str)]) -> Self {
        Self {
            kind: EventKind::Span,
            name: name.to_string(),
            t0,
            t1,
            attrs: own_attrs(attrs),
        }
    }

    /// Builds a point record.
    pub fn point(name: &str, t: f64, attrs: &[(&str, &str)]) -> Self {
        Self {
            kind: EventKind::Point,
            name: name.to_string(),
            t0: t,
            t1: t,
            attrs: own_attrs(attrs),
        }
    }

    /// Span length in simulated seconds (zero for point events).
    pub fn duration_secs(&self) -> f64 {
        self.t1 - self.t0
    }

    /// The value of attribute `key`, if recorded.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn own_attrs(attrs: &[(&str, &str)]) -> Vec<(String, String)> {
    attrs
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_and_point_constructors() {
        let s = TraceEvent::span("api.call", 1.0, 2.5, &[("endpoint", "followers_ids")]);
        assert_eq!(s.kind, EventKind::Span);
        assert_eq!(s.duration_secs(), 1.5);
        assert_eq!(s.attr("endpoint"), Some("followers_ids"));
        assert_eq!(s.attr("absent"), None);

        let p = TraceEvent::point("quota.rejected", 4.0, &[]);
        assert_eq!(p.kind, EventKind::Point);
        assert_eq!(p.t0, p.t1);
        assert_eq!(p.duration_secs(), 0.0);
    }

    #[test]
    fn kind_strings() {
        assert_eq!(EventKind::Span.as_str(), "span");
        assert_eq!(EventKind::Point.to_string(), "event");
    }
}
