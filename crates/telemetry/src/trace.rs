//! Sim-time trace records with causal identity.
//!
//! A trace is an append-only sequence of records stamped exclusively with
//! **simulated** time (f64 seconds on the platform clock, the same axis as
//! [`ApiSession::elapsed_secs`]-style accounting). No record ever carries a
//! wall-clock field, which is what makes two runs with the same seed emit
//! byte-identical traces.
//!
//! Since ISSUE 4 the trace is *causal*, not flat: every span recorded
//! through a [`TraceContext`] carries a [`SpanId`] and an optional parent
//! id, so a request decomposes into a tree — `server.request` →
//! `server.queue_wait` / `server.service` → `service.request` →
//! `detector.audit` → one `api.call` per crawled page. Contexts are
//! threaded as **explicit arguments** (no thread-locals); ids come from one
//! shared counter consumed in event order, so same-seed runs still emit
//! byte-identical traces.
//!
//! [`ApiSession::elapsed_secs`]: https://docs.rs/fakeaudit-twitter-api

use crate::Telemetry;
use std::fmt;

/// Whether a record covers an interval or a single instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A closed interval `[t0, t1]` of simulated time.
    Span,
    /// An instantaneous occurrence (`t1 == t0`).
    Point,
}

impl EventKind {
    /// The `type` field value in the JSONL encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Point => "event",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The identity of one span in a trace, unique within one [`Telemetry`]
/// handle. Ids are assigned from a shared counter starting at 1 in the
/// order spans are *opened* (parents before their children), which keeps
/// them deterministic for single-threaded simulations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "span#{}", self.0)
    }
}

/// One trace record: a named span or point event with ordered attributes
/// and (when recorded through a [`TraceContext`]) causal identity.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Record kind.
    pub kind: EventKind,
    /// Dotted name, e.g. `api.call` or `service.request`.
    pub name: String,
    /// Simulated start time in seconds.
    pub t0: f64,
    /// Simulated end time in seconds (`== t0` for point events).
    pub t1: f64,
    /// This span's identity; `None` for point events and for spans
    /// recorded through the flat [`Telemetry::span`] path.
    pub id: Option<SpanId>,
    /// The enclosing span, if recorded inside one.
    pub parent: Option<SpanId>,
    /// Attribute pairs in recording order.
    pub attrs: Vec<(String, String)>,
}

impl TraceEvent {
    /// Builds a flat (identity-less) span record.
    pub fn span(name: &str, t0: f64, t1: f64, attrs: &[(&str, &str)]) -> Self {
        Self {
            kind: EventKind::Span,
            name: name.to_string(),
            t0,
            t1,
            id: None,
            parent: None,
            attrs: own_attrs(attrs),
        }
    }

    /// Builds a span record carrying identity and causal parent.
    pub fn span_in(
        name: &str,
        t0: f64,
        t1: f64,
        attrs: &[(&str, &str)],
        id: SpanId,
        parent: Option<SpanId>,
    ) -> Self {
        Self {
            id: Some(id),
            parent,
            ..Self::span(name, t0, t1, attrs)
        }
    }

    /// Builds a point record.
    pub fn point(name: &str, t: f64, attrs: &[(&str, &str)]) -> Self {
        Self {
            kind: EventKind::Point,
            name: name.to_string(),
            t0: t,
            t1: t,
            id: None,
            parent: None,
            attrs: own_attrs(attrs),
        }
    }

    /// Builds a point record attached to an enclosing span.
    pub fn point_in(name: &str, t: f64, attrs: &[(&str, &str)], parent: Option<SpanId>) -> Self {
        Self {
            parent,
            ..Self::point(name, t, attrs)
        }
    }

    /// Span length in simulated seconds (zero for point events).
    pub fn duration_secs(&self) -> f64 {
        self.t1 - self.t0
    }

    /// The value of attribute `key`, if recorded.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn own_attrs(attrs: &[(&str, &str)]) -> Vec<(String, String)> {
    attrs
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// A causal position in the trace: the span under which new child spans
/// and point events attach.
///
/// Contexts are cheap (a telemetry handle plus two ids) and are threaded
/// through the request path as **explicit arguments** — never thread-local
/// state — so instrumented code stays deterministic and testable. On a
/// disabled telemetry handle every operation is a no-op branch.
///
/// Two recording styles:
///
/// * [`TraceContext::span`] — the interval is already known: allocate a
///   child id, record the closed span, return the context inside it.
/// * [`TraceContext::child`] then [`TraceContext::record`] — the parent's
///   interval closes *after* its children (the server request span ends
///   when the response leaves, long after each `api.call` inside it):
///   allocate the id first so children can attach, record the span once
///   its end time is known. Children therefore appear in the trace before
///   their parents, exactly as real tracers report spans at close time.
///
/// ```
/// use fakeaudit_telemetry::Telemetry;
///
/// let tel = Telemetry::enabled();
/// let request = tel.root_context().child(); // open: id allocated, not yet recorded
/// let api = request.span("api.call", 0.0, 1.5, &[("endpoint", "followers_ids")]);
/// api.point("api.retry", 1.0, &[]);
/// request.record("server.request", 0.0, 2.0, &[]);
///
/// let events = tel.events();
/// assert_eq!(events.len(), 3);
/// assert_eq!(events[0].parent, events[2].id); // api.call nests in server.request
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceContext {
    telemetry: Telemetry,
    /// The span this context represents; children attach under it.
    current: Option<SpanId>,
    /// `current`'s own parent — needed when recording an opened span.
    parent: Option<SpanId>,
    /// Added to every timestamp recorded through this context (and
    /// inherited by children) — see [`TraceContext::rebased`].
    offset: f64,
}

impl TraceContext {
    /// A context on a disabled handle; every operation is a no-op.
    pub fn disabled() -> Self {
        Self::default()
    }

    pub(crate) fn root(telemetry: Telemetry) -> Self {
        Self {
            telemetry,
            current: None,
            parent: None,
            offset: 0.0,
        }
    }

    /// Whether spans recorded through this context are collected.
    pub fn is_enabled(&self) -> bool {
        self.telemetry.is_enabled()
    }

    /// The telemetry handle behind this context.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The span this context represents (`None` at the root or disabled).
    pub fn span_id(&self) -> Option<SpanId> {
        self.current
    }

    /// Opens a child span: allocates its id (so grandchildren can attach)
    /// without recording anything yet. Call [`TraceContext::record`] on
    /// the returned context once the interval is known.
    pub fn child(&self) -> TraceContext {
        let current = self.telemetry.alloc_span_id();
        if let Some(id) = current {
            // Tree lineage for the tail sampler: a span's root is fixed
            // the moment its context opens, before any event lands.
            self.telemetry.register_span(id, self.current);
        }
        TraceContext {
            telemetry: self.telemetry.clone(),
            current,
            parent: self.current,
            offset: self.offset,
        }
    }

    /// This context with `delta` seconds added to every timestamp it (and
    /// every descendant context) records. Subsystems stamp spans on their
    /// own simulated clock; a caller whose clock differs — the audit
    /// server starts at 0 while the analytics stack runs on the platform
    /// epoch clock — rebases the context it hands down so the whole
    /// request tree shares one time axis and children nest inside their
    /// parent's interval. Offsets accumulate across nested rebases.
    #[must_use]
    pub fn rebased(mut self, delta: f64) -> Self {
        self.offset += delta;
        self
    }

    /// Records the span this context was opened for (see
    /// [`TraceContext::child`]). No-op on a disabled handle.
    pub fn record(&self, name: &str, t0: f64, t1: f64, attrs: &[(&str, &str)]) {
        if let Some(id) = self.current {
            self.telemetry.push_event(TraceEvent::span_in(
                name,
                t0 + self.offset,
                t1 + self.offset,
                attrs,
                id,
                self.parent,
            ));
        }
    }

    /// Records a closed child span in one step and returns the context
    /// inside it.
    pub fn span(&self, name: &str, t0: f64, t1: f64, attrs: &[(&str, &str)]) -> TraceContext {
        let child = self.child();
        child.record(name, t0, t1, attrs);
        child
    }

    /// Records a point event attached to this context's span.
    pub fn point(&self, name: &str, t: f64, attrs: &[(&str, &str)]) {
        if self.is_enabled() {
            self.telemetry.push_event(TraceEvent::point_in(
                name,
                t + self.offset,
                attrs,
                self.current,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_and_point_constructors() {
        let s = TraceEvent::span("api.call", 1.0, 2.5, &[("endpoint", "followers_ids")]);
        assert_eq!(s.kind, EventKind::Span);
        assert_eq!(s.duration_secs(), 1.5);
        assert_eq!(s.attr("endpoint"), Some("followers_ids"));
        assert_eq!(s.attr("absent"), None);
        assert_eq!(s.id, None);
        assert_eq!(s.parent, None);

        let p = TraceEvent::point("quota.rejected", 4.0, &[]);
        assert_eq!(p.kind, EventKind::Point);
        assert_eq!(p.t0, p.t1);
        assert_eq!(p.duration_secs(), 0.0);
    }

    #[test]
    fn identity_constructors_carry_ids() {
        let s = TraceEvent::span_in("x", 0.0, 1.0, &[], SpanId(3), Some(SpanId(1)));
        assert_eq!(s.id, Some(SpanId(3)));
        assert_eq!(s.parent, Some(SpanId(1)));
        let p = TraceEvent::point_in("y", 0.5, &[], Some(SpanId(3)));
        assert_eq!(p.id, None);
        assert_eq!(p.parent, Some(SpanId(3)));
    }

    #[test]
    fn kind_strings() {
        assert_eq!(EventKind::Span.as_str(), "span");
        assert_eq!(EventKind::Point.to_string(), "event");
    }

    #[test]
    fn span_id_displays() {
        assert_eq!(SpanId(7).to_string(), "span#7");
        assert!(SpanId(1) < SpanId(2));
    }

    #[test]
    fn context_builds_a_tree() {
        let tel = Telemetry::enabled();
        let root = tel.root_context();
        assert!(root.is_enabled());
        assert_eq!(root.span_id(), None);

        let request = root.child(); // opened, recorded last
        let service = request.span("server.service", 1.0, 4.0, &[("tool", "TA")]);
        let api = service.span("api.call", 1.0, 2.0, &[]);
        api.point("api.page", 1.5, &[]);
        request.record("server.request", 0.0, 4.0, &[]);

        let events = tel.events();
        assert_eq!(events.len(), 4);
        let by_name = |n: &str| events.iter().find(|e| e.name == n).unwrap();
        let req = by_name("server.request");
        let svc = by_name("server.service");
        let call = by_name("api.call");
        let page = by_name("api.page");
        assert_eq!(req.parent, None);
        assert_eq!(svc.parent, req.id);
        assert_eq!(call.parent, svc.id);
        assert_eq!(page.parent, call.id);
        // Ids are allocated in open order starting at 1.
        assert_eq!(req.id, Some(SpanId(1)));
        assert_eq!(svc.id, Some(SpanId(2)));
        assert_eq!(call.id, Some(SpanId(3)));
    }

    #[test]
    fn rebased_context_shifts_descendant_timestamps() {
        let tel = Telemetry::enabled();
        let root = tel.root_context();
        let request = root.child();
        // A subsystem on a clock 100s behind ours: rebase its context
        // forward so its spans land on our time axis.
        let remote = request.clone().rebased(100.0);
        let svc = remote.span("service.request", 1.0, 3.0, &[]);
        svc.point("cache.lookup", 1.5, &[]);
        // Offsets accumulate across nested rebases.
        svc.clone().rebased(0.5).point("api.page", 2.0, &[]);
        request.record("server.request", 100.0, 104.0, &[]);

        let events = tel.events();
        let by_name = |n: &str| events.iter().find(|e| e.name == n).unwrap();
        assert_eq!(by_name("service.request").t0, 101.0);
        assert_eq!(by_name("service.request").t1, 103.0);
        assert_eq!(by_name("cache.lookup").t0, 101.5);
        assert_eq!(by_name("api.page").t0, 102.5);
        // The clone shares the span id, so children still attach to it
        // and the tree shape is unchanged by rebasing.
        assert_eq!(
            by_name("service.request").parent,
            by_name("server.request").id
        );
        assert_eq!(
            by_name("cache.lookup").parent,
            by_name("service.request").id
        );
    }

    #[test]
    fn disabled_context_is_a_no_op() {
        let ctx = TraceContext::disabled();
        assert!(!ctx.is_enabled());
        let child = ctx.child();
        assert_eq!(child.span_id(), None);
        child.record("x", 0.0, 1.0, &[]);
        child.span("y", 0.0, 1.0, &[]);
        child.point("z", 0.5, &[]);
        assert!(ctx.telemetry().events().is_empty());
    }
}
