//! Trace-tree analysis: waterfalls, critical paths, latency attribution,
//! Chrome trace export, and SLO evaluation.
//!
//! Everything here consumes the causal records produced by
//! [`TraceContext`](crate::TraceContext) — spans with [`SpanId`]s and
//! parent links — and works purely on simulated time. The module is the
//! read side of the tracing tentpole: the simulators *emit* trees, this
//! module answers *why was that request slow* ([`LatencyAttribution`]),
//! *what did it spend its time on* ([`TraceTree::waterfall`],
//! [`TraceTree::critical_path`]), *can I look at it in Perfetto*
//! ([`chrome_trace_json`]) and *did the service meet its objectives*
//! ([`SloSpec::evaluate`]).
//!
//! Tracers record spans at close time, so children legitimately appear in
//! the event stream *before* their parents; [`TraceTree::build`] tolerates
//! any order and keeps spans whose parent never closed as extra roots.

use crate::sink::{escape_json_into, push_f64};
use crate::trace::{EventKind, SpanId, TraceEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Canonical span/point names shared between the emitting crates and this
/// analysis layer. Emitters should use these constants so attribution
/// stays in sync with the instrumentation.
pub mod names {
    /// Whole request lifetime at the server: arrival to response/drop.
    pub const SERVER_REQUEST: &str = "server.request";
    /// Time a request spent queued before a worker picked it up.
    pub const SERVER_QUEUE_WAIT: &str = "server.queue_wait";
    /// Time a worker spent producing the response (fresh or stale).
    pub const SERVER_SERVICE: &str = "server.service";
    /// Request rejected at admission (queue full): point event.
    pub const SERVER_SHED: &str = "server.shed";
    /// Request failed (no stale fallback available): point event.
    pub const SERVER_FAILED: &str = "server.failed";
    /// One `OnlineService::request` invocation.
    pub const SERVICE_REQUEST: &str = "service.request";
    /// Cache consultation outcome: point event with `result=hit|miss`.
    pub const CACHE_LOOKUP: &str = "cache.lookup";
    /// Admission rejected by the quota: point event.
    pub const QUOTA_REJECTED: &str = "quota.rejected";
    /// One full auditor classification (crawl + feature computation).
    pub const DETECTOR_AUDIT: &str = "detector.audit";
    /// One rate-limited API call.
    pub const API_CALL: &str = "api.call";
    /// Request dropped after its end-to-end deadline elapsed in queue:
    /// point event.
    pub const SERVER_EXPIRED: &str = "server.expired";
    /// An injected upstream fault on one API call attempt: point event
    /// with `endpoint` and `kind` attributes.
    pub const API_FAULT: &str = "api.fault";
    /// One retry backoff wait between failed API call attempts.
    pub const API_RETRY: &str = "api.retry";
    /// A circuit-breaker state change: point event with `from`/`to`.
    pub const BREAKER_TRANSITION: &str = "breaker.transition";
}

/// Nearest-rank percentile of an ascending-sorted slice. `None` when
/// empty; `q` is clamped to `[0, 1]`.
fn nearest_rank(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = (q * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
}

/// An indexed view of a trace as a forest of span trees.
///
/// Spans with an unresolvable parent (the parent never closed, or the
/// trace was truncated) are kept as roots rather than dropped; point
/// events attach under their parent span and parent-less points are
/// listed in [`TraceTree::floating`].
#[derive(Debug, Clone)]
pub struct TraceTree {
    events: Vec<TraceEvent>,
    index: BTreeMap<SpanId, usize>,
    children: BTreeMap<SpanId, Vec<usize>>,
    roots: Vec<usize>,
    floating: Vec<usize>,
}

impl TraceTree {
    /// Indexes a trace. Accepts records in any order (children typically
    /// precede their parents, since spans are recorded at close time).
    pub fn build(events: &[TraceEvent]) -> Self {
        let events = events.to_vec();
        let mut index = BTreeMap::new();
        for (i, e) in events.iter().enumerate() {
            if let Some(id) = e.id {
                index.insert(id, i);
            }
        }
        let mut children: BTreeMap<SpanId, Vec<usize>> = BTreeMap::new();
        let mut roots = Vec::new();
        let mut floating = Vec::new();
        for (i, e) in events.iter().enumerate() {
            match e.parent {
                Some(p) if index.contains_key(&p) => children.entry(p).or_default().push(i),
                _ if e.id.is_some() => roots.push(i),
                _ if e.kind == EventKind::Point && e.parent.is_some() => floating.push(i),
                _ => {} // flat legacy records: not part of any tree
            }
        }
        let by_time = |a: &usize, b: &usize| {
            let (ea, eb) = (&events[*a], &events[*b]);
            ea.t0
                .partial_cmp(&eb.t0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(b))
        };
        roots.sort_by(by_time);
        for list in children.values_mut() {
            list.sort_by(by_time);
        }
        Self {
            events,
            index,
            children,
            roots,
            floating,
        }
    }

    /// All records, in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Indices of root spans, ordered by start time.
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// Indices of point events whose parent span never appeared.
    pub fn floating(&self) -> &[usize] {
        &self.floating
    }

    /// The record at `idx`.
    pub fn event(&self, idx: usize) -> &TraceEvent {
        &self.events[idx]
    }

    /// The record carrying span `id`, if present.
    pub fn span(&self, id: SpanId) -> Option<&TraceEvent> {
        self.index.get(&id).map(|&i| &self.events[i])
    }

    /// Child record indices of span `id`, ordered by start time.
    pub fn children_of(&self, id: SpanId) -> &[usize] {
        self.children.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Pre-order indices of the subtree rooted at `idx` (inclusive).
    pub fn descendants(&self, idx: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![idx];
        while let Some(i) = stack.pop() {
            out.push(i);
            if let Some(id) = self.events[i].id {
                // Push in reverse so pop order matches child order.
                for &c in self.children_of(id).iter().rev() {
                    stack.push(c);
                }
            }
        }
        out
    }

    /// Root spans that represent whole requests: `server.request` spans
    /// when the trace has any, otherwise every root span (an
    /// `audit --telemetry` trace roots at `service.request`).
    pub fn request_roots(&self) -> Vec<usize> {
        let server: Vec<usize> = self
            .roots
            .iter()
            .copied()
            .filter(|&i| self.events[i].name == names::SERVER_REQUEST)
            .collect();
        if server.is_empty() {
            self.roots.clone()
        } else {
            server
        }
    }

    /// The critical path from `root_idx` down: at each span, descend into
    /// the child span that finishes last (ties: latest start, then record
    /// order). Returns record indices from the root to the leaf.
    pub fn critical_path(&self, root_idx: usize) -> Vec<usize> {
        let mut path = vec![root_idx];
        let mut cur = root_idx;
        loop {
            let Some(id) = self.events[cur].id else { break };
            let next = self
                .children_of(id)
                .iter()
                .copied()
                .filter(|&c| self.events[c].kind == EventKind::Span)
                .max_by(|&a, &b| {
                    let (ea, eb) = (&self.events[a], &self.events[b]);
                    ea.t1
                        .partial_cmp(&eb.t1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(
                            ea.t0
                                .partial_cmp(&eb.t0)
                                .unwrap_or(std::cmp::Ordering::Equal),
                        )
                        .then(a.cmp(&b))
                });
            match next {
                Some(c) => {
                    path.push(c);
                    cur = c;
                }
                None => break,
            }
        }
        path
    }

    /// Renders the subtree at `root_idx` as an ASCII waterfall: one line
    /// per record with a bar showing its interval relative to the root.
    pub fn waterfall(&self, root_idx: usize) -> String {
        const BAR: usize = 32;
        let root = &self.events[root_idx];
        let (r0, rdur) = (root.t0, (root.t1 - root.t0).max(0.0));
        let mut out = String::new();
        let mut stack = vec![(root_idx, 0usize)];
        while let Some((i, depth)) = stack.pop() {
            let e = &self.events[i];
            let mut bar = vec![b'.'; BAR];
            if rdur > 0.0 {
                let lo = (((e.t0 - r0) / rdur) * BAR as f64)
                    .floor()
                    .clamp(0.0, (BAR - 1) as f64) as usize;
                let hi = (((e.t1 - r0) / rdur) * BAR as f64)
                    .ceil()
                    .clamp(0.0, BAR as f64) as usize;
                let fill = if e.kind == EventKind::Point {
                    b'!'
                } else {
                    b'#'
                };
                for cell in &mut bar[lo..hi.max(lo + 1)] {
                    *cell = fill;
                }
                if e.kind == EventKind::Point {
                    bar[lo] = b'!';
                }
            }
            let attrs: Vec<String> = e.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let _ = writeln!(
                out,
                "{:9.3} {:9.3} |{}| {}{}{}{}",
                e.t0,
                e.t1,
                String::from_utf8(bar).unwrap(),
                "  ".repeat(depth),
                e.name,
                if attrs.is_empty() { "" } else { " " },
                attrs.join(" "),
            );
            if let Some(id) = e.id {
                for &c in self.children_of(id).iter().rev() {
                    stack.push((c, depth + 1));
                }
            }
        }
        out
    }
}

/// Where one request's latency went, in simulated seconds.
///
/// Categories are assigned by span name:
///
/// * **queue** — `server.queue_wait` spans;
/// * **crawl** — `api.call` spans (rate-limit waits + page fetches);
/// * **cache** — `service.request` spans served from cache
///   (`source=cache`) and stale fallbacks (`server.service` with
///   `source=stale`);
/// * **compute** — the remainder of the root span (classification,
///   service overheads, response assembly), clamped at zero.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Breakdown {
    /// Root span duration.
    pub total: f64,
    /// Time queued at the server.
    pub queue: f64,
    /// Time inside rate-limited API calls.
    pub crawl: f64,
    /// Time in cache reads / stale fallbacks.
    pub cache: f64,
    /// Everything else (classification and overheads).
    pub compute: f64,
}

impl Breakdown {
    /// Decomposes the request rooted at `root_idx`.
    pub fn of_request(tree: &TraceTree, root_idx: usize) -> Self {
        let root = tree.event(root_idx);
        let total = (root.t1 - root.t0).max(0.0);
        let (mut queue, mut crawl, mut cache) = (0.0, 0.0, 0.0);
        for i in tree.descendants(root_idx) {
            let e = tree.event(i);
            if e.kind != EventKind::Span {
                continue;
            }
            let d = (e.t1 - e.t0).max(0.0);
            match e.name.as_str() {
                names::SERVER_QUEUE_WAIT => queue += d,
                names::API_CALL => crawl += d,
                names::SERVICE_REQUEST if e.attr("source") == Some("cache") => cache += d,
                names::SERVER_SERVICE if e.attr("source") == Some("stale") => cache += d,
                _ => {}
            }
        }
        let compute = (total - queue - crawl - cache).max(0.0);
        Self {
            total,
            queue,
            crawl,
            cache,
            compute,
        }
    }

    /// `part / total` as a percentage; zero for an empty total.
    fn pct(&self, part: f64) -> f64 {
        if self.total > 0.0 {
            100.0 * part / self.total
        } else {
            0.0
        }
    }
}

/// Per-tool latency attribution at fixed percentiles.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolAttribution {
    /// Tool abbreviation from the root span's `tool` attribute (`-` when
    /// absent), or `ALL` for the aggregate row.
    pub tool: String,
    /// Number of requests attributed.
    pub requests: usize,
    /// Breakdown of the nearest-rank p50 request (by total latency).
    pub p50: Breakdown,
    /// Breakdown of the nearest-rank p99 request (by total latency).
    pub p99: Breakdown,
}

/// Latency attribution across a trace: for each tool (and overall), which
/// category the median and tail request spent its time in.
///
/// Percentile rows describe the **nearest-rank request** at that
/// percentile — a real request from the trace, so the shares always sum
/// to its actual latency — rather than an average over requests, which
/// can describe no request at all.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LatencyAttribution {
    /// One row per tool, sorted by tool name, then the `ALL` aggregate.
    pub tools: Vec<ToolAttribution>,
}

impl LatencyAttribution {
    /// Attributes every request root in `events`.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let tree = TraceTree::build(events);
        let mut by_tool: BTreeMap<String, Vec<Breakdown>> = BTreeMap::new();
        let mut all = Vec::new();
        for root in tree.request_roots() {
            let b = Breakdown::of_request(&tree, root);
            let tool = tree.event(root).attr("tool").unwrap_or("-").to_string();
            by_tool.entry(tool).or_default().push(b);
            all.push(b);
        }
        let mut tools = Vec::new();
        for (tool, list) in by_tool {
            tools.push(Self::row(tool, list));
        }
        if !all.is_empty() && tools.len() > 1 {
            tools.push(Self::row("ALL".to_string(), all));
        }
        Self { tools }
    }

    fn row(tool: String, mut list: Vec<Breakdown>) -> ToolAttribution {
        list.sort_by(|a, b| {
            a.total
                .partial_cmp(&b.total)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let totals: Vec<f64> = list.iter().map(|b| b.total).collect();
        let pick = |q: f64| {
            let t = nearest_rank(&totals, q).unwrap_or(0.0);
            list.iter()
                .find(|b| b.total == t)
                .copied()
                .unwrap_or_default()
        };
        ToolAttribution {
            tool,
            requests: list.len(),
            p50: pick(0.50),
            p99: pick(0.99),
        }
    }

    /// Renders the attribution table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "latency attribution (share of request latency by category)"
        );
        let _ = writeln!(
            out,
            "{:<5} {:>8}  {:<4} {:>9} {:>7} {:>7} {:>7} {:>8}",
            "tool", "requests", "pct", "total_s", "queue%", "crawl%", "cache%", "compute%"
        );
        for t in &self.tools {
            for (label, b) in [("p50", &t.p50), ("p99", &t.p99)] {
                let _ = writeln!(
                    out,
                    "{:<5} {:>8}  {:<4} {:>9.3} {:>7.1} {:>7.1} {:>7.1} {:>8.1}",
                    t.tool,
                    t.requests,
                    label,
                    b.total,
                    b.pct(b.queue),
                    b.pct(b.crawl),
                    b.pct(b.cache),
                    b.pct(b.compute),
                );
            }
        }
        if self.tools.is_empty() {
            let _ = writeln!(out, "(no request spans in trace)");
        }
        out
    }
}

/// Options for the Chrome trace-event exporter.
#[derive(Debug, Clone)]
pub struct ChromeTraceOptions {
    /// The `pid` stamped on every exported event.
    pub pid: u64,
}

impl Default for ChromeTraceOptions {
    fn default() -> Self {
        Self { pid: 1 }
    }
}

/// Exports a trace as Chrome trace-event JSON (the `chrome://tracing` /
/// Perfetto "JSON object format").
///
/// Spans become `ph:"X"` complete events and points become `ph:"i"`
/// instants, with `ts`/`dur` in microseconds of simulated time. Each
/// request tree is placed on a thread (`tid`) derived from its root
/// span's `tool` attribute, first-seen order, so Perfetto renders one
/// swim-lane per tool with nested slices. Output is deterministic for a
/// deterministic trace.
pub fn chrome_trace_json(events: &[TraceEvent], opts: &ChromeTraceOptions) -> String {
    let tree = TraceTree::build(events);
    // tid per root-tool, in first-seen root order; everything else on 0.
    let mut tid_of_tool: Vec<(String, u64)> = Vec::new();
    let mut tid_of_event = vec![0u64; events.len()];
    for &root in tree.roots() {
        let tool = tree
            .event(root)
            .attr("tool")
            .unwrap_or("untracked")
            .to_string();
        let tid = match tid_of_tool.iter().find(|(t, _)| *t == tool) {
            Some(&(_, tid)) => tid,
            None => {
                let tid = tid_of_tool.len() as u64 + 1;
                tid_of_tool.push((tool, tid));
                tid
            }
        };
        for i in tree.descendants(root) {
            tid_of_event[i] = tid;
        }
    }
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let emit = |line: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&line);
    };
    for (tool, tid) in &tid_of_tool {
        let mut line = String::from("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":");
        let _ = write!(line, "{}", opts.pid);
        let _ = write!(line, ",\"tid\":{tid},\"args\":{{\"name\":\"");
        escape_json_into(tool, &mut line);
        line.push_str("\"}}");
        emit(line, &mut out, &mut first);
    }
    for (i, e) in events.iter().enumerate() {
        let mut line = String::from("{\"name\":\"");
        escape_json_into(&e.name, &mut line);
        line.push_str("\",\"ph\":\"");
        line.push_str(if e.kind == EventKind::Span { "X" } else { "i" });
        line.push_str("\",\"ts\":");
        push_f64(e.t0 * 1e6, &mut line);
        if e.kind == EventKind::Span {
            line.push_str(",\"dur\":");
            push_f64(((e.t1 - e.t0) * 1e6).max(0.0), &mut line);
        } else {
            line.push_str(",\"s\":\"t\"");
        }
        let _ = write!(line, ",\"pid\":{},\"tid\":{}", opts.pid, tid_of_event[i]);
        line.push_str(",\"args\":{");
        let mut first_arg = true;
        if let Some(id) = e.id {
            let _ = write!(line, "\"span\":\"{id}\"");
            first_arg = false;
        }
        for (k, v) in &e.attrs {
            if !first_arg {
                line.push(',');
            }
            first_arg = false;
            line.push('"');
            escape_json_into(k, &mut line);
            line.push_str("\":\"");
            escape_json_into(v, &mut line);
            line.push('"');
        }
        line.push_str("}}");
        emit(line, &mut out, &mut first);
    }
    out.push_str("]}");
    out
}

/// Service-level objectives evaluated over sliding sim-time windows.
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// Window width in simulated seconds.
    pub window_secs: f64,
    /// Window start stride; `window_secs / 2` gives the classic
    /// half-overlapping sliding evaluation.
    pub step_secs: f64,
    /// The latency quantile under objective (e.g. `0.95`).
    pub latency_quantile: f64,
    /// The latency objective at that quantile, in simulated seconds.
    pub latency_objective_secs: f64,
    /// Fraction of offered requests that must be answered (completed or
    /// degraded), e.g. `0.99`.
    pub availability_objective: f64,
}

impl Default for SloSpec {
    fn default() -> Self {
        Self {
            window_secs: 120.0,
            step_secs: 60.0,
            latency_quantile: 0.95,
            latency_objective_secs: 30.0,
            availability_objective: 0.99,
        }
    }
}

/// One evaluated window.
#[derive(Debug, Clone)]
pub struct SloWindow {
    /// Window start (inclusive), simulated seconds.
    pub start: f64,
    /// Window end (exclusive).
    pub end: f64,
    /// Requests that finished (or were dropped) inside the window.
    pub offered: usize,
    /// Answered requests (completed + degraded).
    pub answered: usize,
    /// Shed + failed requests.
    pub dropped: usize,
    /// Answered fraction (1.0 for an empty window).
    pub availability: f64,
    /// Latency at the spec quantile over answered requests.
    pub latency_at_q: Option<f64>,
    /// Fraction of answered requests slower than the latency objective.
    pub slow_fraction: f64,
    /// Availability error-budget burn rate: bad-fraction divided by the
    /// budget `1 - availability_objective`. `1.0` = burning exactly at
    /// budget; `> 1` exhausts the budget early.
    pub availability_burn: f64,
    /// Latency error-budget burn rate: slow-fraction over
    /// `1 - latency_quantile`.
    pub latency_burn: f64,
}

impl SloWindow {
    /// Whether both objectives held in this window (burn rates at or
    /// under budget).
    pub fn ok(&self) -> bool {
        self.availability_burn <= 1.0 && self.latency_burn <= 1.0
    }
}

/// The result of evaluating an [`SloSpec`] against a trace.
#[derive(Debug, Clone)]
pub struct SloReport {
    /// The spec evaluated.
    pub spec: SloSpec,
    /// Every window, in start order.
    pub windows: Vec<SloWindow>,
}

impl SloSpec {
    /// Evaluates this spec against a trace.
    ///
    /// Requests are assigned to windows by **completion time** (`t1` of
    /// the `server.request` span; the timestamp of `server.shed` /
    /// `server.failed` points). Windows slide from sim time 0 by
    /// `step_secs` until they cover the last request.
    pub fn evaluate(&self, events: &[TraceEvent]) -> SloReport {
        let tree = TraceTree::build(events);
        // (finish_time, latency: Some(answered) / None(dropped))
        let mut requests: Vec<(f64, Option<f64>)> = Vec::new();
        for &root in &tree.request_roots() {
            let e = tree.event(root);
            requests.push((e.t1, Some((e.t1 - e.t0).max(0.0))));
        }
        for e in events {
            if e.name == names::SERVER_SHED || e.name == names::SERVER_FAILED {
                requests.push((e.t0, None));
            }
        }
        requests.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let horizon = requests.last().map(|&(t, _)| t).unwrap_or(0.0);
        let step = if self.step_secs > 0.0 {
            self.step_secs
        } else {
            self.window_secs
        };
        let mut windows = Vec::new();
        let mut start = 0.0;
        while start <= horizon {
            let end = start + self.window_secs;
            let in_window: Vec<&(f64, Option<f64>)> = requests
                .iter()
                .filter(|&&(t, _)| t >= start && t < end)
                .collect();
            let offered = in_window.len();
            let mut latencies: Vec<f64> = in_window.iter().filter_map(|&&(_, l)| l).collect();
            latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let answered = latencies.len();
            let dropped = offered - answered;
            let availability = if offered == 0 {
                1.0
            } else {
                answered as f64 / offered as f64
            };
            let latency_at_q = nearest_rank(&latencies, self.latency_quantile);
            let slow = latencies
                .iter()
                .filter(|&&l| l > self.latency_objective_secs)
                .count();
            let slow_fraction = if answered == 0 {
                0.0
            } else {
                slow as f64 / answered as f64
            };
            let avail_budget = (1.0 - self.availability_objective).max(f64::EPSILON);
            let lat_budget = (1.0 - self.latency_quantile).max(f64::EPSILON);
            windows.push(SloWindow {
                start,
                end,
                offered,
                answered,
                dropped,
                availability,
                latency_at_q,
                slow_fraction,
                availability_burn: (1.0 - availability) / avail_budget,
                latency_burn: slow_fraction / lat_budget,
            });
            start += step;
        }
        SloReport {
            spec: self.clone(),
            windows,
        }
    }
}

impl SloReport {
    /// Windows that violated at least one objective.
    pub fn violations(&self) -> Vec<&SloWindow> {
        self.windows.iter().filter(|w| !w.ok()).collect()
    }

    /// Renders the window table plus a verdict line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "SLO: p{:.0} latency <= {}s, availability >= {:.2}% (window {}s, step {}s)",
            self.spec.latency_quantile * 100.0,
            self.spec.latency_objective_secs,
            self.spec.availability_objective * 100.0,
            self.spec.window_secs,
            self.spec.step_secs,
        );
        let _ = writeln!(
            out,
            "{:>9} {:>9} {:>8} {:>9} {:>8} {:>9} {:>10} {:>9} {:>9}",
            "start_s",
            "end_s",
            "offered",
            "answered",
            "avail%",
            "p_lat_s",
            "slow%",
            "av_burn",
            "lat_burn"
        );
        for w in &self.windows {
            let _ = writeln!(
                out,
                "{:>9.1} {:>9.1} {:>8} {:>9} {:>8.2} {:>9} {:>10.2} {:>9.2} {:>9.2}{}",
                w.start,
                w.end,
                w.offered,
                w.answered,
                w.availability * 100.0,
                w.latency_at_q
                    .map(|l| format!("{l:.3}"))
                    .unwrap_or_else(|| "-".to_string()),
                w.slow_fraction * 100.0,
                w.availability_burn,
                w.latency_burn,
                if w.ok() { "" } else { "  VIOLATED" },
            );
        }
        let violated = self.violations().len();
        let _ = writeln!(
            out,
            "{} of {} windows violated the SLO",
            violated,
            self.windows.len()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    /// Builds one traced server request:
    /// request[0,10] { queue_wait[0,2], service[2,10] {
    ///   service.request[2,10] { api.call[3,6], api.call[6,8] } } }
    fn one_request(tel: &Telemetry, offset: f64, tool: &str) {
        let req = tel.root_context().child();
        req.span(
            names::SERVER_QUEUE_WAIT,
            offset,
            offset + 2.0,
            &[("tool", tool)],
        );
        let service = req.child();
        let sreq = service.span(
            names::SERVICE_REQUEST,
            offset + 2.0,
            offset + 10.0,
            &[("source", "fresh")],
        );
        sreq.span(names::API_CALL, offset + 3.0, offset + 6.0, &[]);
        sreq.span(names::API_CALL, offset + 6.0, offset + 8.0, &[]);
        service.record(
            names::SERVER_SERVICE,
            offset + 2.0,
            offset + 10.0,
            &[("tool", tool)],
        );
        req.record(
            names::SERVER_REQUEST,
            offset,
            offset + 10.0,
            &[("tool", tool), ("outcome", "completed")],
        );
    }

    #[test]
    fn tree_indexes_out_of_order_records() {
        let tel = Telemetry::enabled();
        one_request(&tel, 0.0, "TA");
        let tree = TraceTree::build(&tel.events());
        assert_eq!(tree.roots().len(), 1);
        let root = tree.event(tree.roots()[0]);
        assert_eq!(root.name, names::SERVER_REQUEST);
        let kids = tree.children_of(root.id.unwrap());
        assert_eq!(kids.len(), 2);
        assert_eq!(tree.event(kids[0]).name, names::SERVER_QUEUE_WAIT);
        assert_eq!(tree.event(kids[1]).name, names::SERVER_SERVICE);
        assert_eq!(tree.descendants(tree.roots()[0]).len(), 6);
        assert!(tree.floating().is_empty());
    }

    #[test]
    fn orphaned_spans_become_roots() {
        let events = vec![
            TraceEvent::span_in("lost.child", 0.0, 1.0, &[], SpanId(7), Some(SpanId(99))),
            TraceEvent::point_in("lost.point", 0.5, &[], Some(SpanId(99))),
        ];
        let tree = TraceTree::build(&events);
        assert_eq!(tree.roots().len(), 1);
        assert_eq!(tree.floating().len(), 1);
    }

    #[test]
    fn critical_path_follows_latest_finisher() {
        let tel = Telemetry::enabled();
        one_request(&tel, 0.0, "TA");
        let tree = TraceTree::build(&tel.events());
        let path: Vec<&str> = tree
            .critical_path(tree.roots()[0])
            .into_iter()
            .map(|i| tree.event(i).name.as_str())
            .collect();
        assert_eq!(
            path,
            vec![
                names::SERVER_REQUEST,
                names::SERVER_SERVICE,
                names::SERVICE_REQUEST,
                names::API_CALL,
            ]
        );
    }

    #[test]
    fn breakdown_attributes_categories() {
        let tel = Telemetry::enabled();
        one_request(&tel, 0.0, "TA");
        let tree = TraceTree::build(&tel.events());
        let b = Breakdown::of_request(&tree, tree.roots()[0]);
        assert_eq!(b.total, 10.0);
        assert_eq!(b.queue, 2.0);
        assert_eq!(b.crawl, 5.0);
        assert_eq!(b.cache, 0.0);
        assert_eq!(b.compute, 3.0);
    }

    #[test]
    fn cached_request_counts_as_cache_time() {
        let tel = Telemetry::enabled();
        let req = tel.root_context().child();
        req.span(names::SERVICE_REQUEST, 0.0, 0.5, &[("source", "cache")]);
        req.record(
            names::SERVER_REQUEST,
            0.0,
            1.0,
            &[("tool", "FC"), ("outcome", "completed")],
        );
        let tree = TraceTree::build(&tel.events());
        let b = Breakdown::of_request(&tree, tree.roots()[0]);
        assert_eq!(b.cache, 0.5);
        assert_eq!(b.compute, 0.5);
    }

    #[test]
    fn attribution_groups_by_tool_and_renders() {
        let tel = Telemetry::enabled();
        one_request(&tel, 0.0, "TA");
        one_request(&tel, 20.0, "TA");
        one_request(&tel, 40.0, "SP");
        let attr = LatencyAttribution::from_events(&tel.events());
        assert_eq!(attr.tools.len(), 3); // SP, TA, ALL
        assert_eq!(attr.tools[0].tool, "SP");
        assert_eq!(attr.tools[1].tool, "TA");
        assert_eq!(attr.tools[1].requests, 2);
        assert_eq!(attr.tools[2].tool, "ALL");
        let table = attr.render();
        assert!(table.contains("queue%"));
        assert!(table.contains("TA"));
        // every request is identical: p50 == p99 breakdown
        assert_eq!(attr.tools[1].p50, attr.tools[1].p99);
        assert_eq!(attr.tools[1].p50.queue, 2.0);
    }

    #[test]
    fn attribution_of_empty_trace_renders() {
        let attr = LatencyAttribution::from_events(&[]);
        assert!(attr.tools.is_empty());
        assert!(attr.render().contains("no request spans"));
    }

    #[test]
    fn waterfall_shows_every_record_with_bars() {
        let tel = Telemetry::enabled();
        one_request(&tel, 0.0, "TA");
        let tree = TraceTree::build(&tel.events());
        let w = tree.waterfall(tree.roots()[0]);
        assert_eq!(w.lines().count(), 6);
        assert!(w.contains(names::SERVER_REQUEST));
        assert!(w.lines().next().unwrap().contains("################"));
        // queue wait occupies the first fifth of the bar
        let queue_line = w.lines().find(|l| l.contains("queue_wait")).unwrap();
        assert!(queue_line.contains("#######.")); // ~20% of 32 cells
    }

    #[test]
    fn chrome_export_is_loadable_shape() {
        let tel = Telemetry::enabled();
        one_request(&tel, 0.0, "TA");
        tel.root_context()
            .point(names::SERVER_SHED, 12.0, &[("tool", "SP")]);
        let json = chrome_trace_json(&tel.events(), &ChromeTraceOptions::default());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"M\"")); // thread_name metadata
        assert!(json.contains("\"name\":\"TA\""));
        assert!(json.contains("\"ts\":2000000")); // 2.0 s -> µs
        assert!(json.contains("\"dur\":8000000"));
    }

    #[test]
    fn chrome_export_places_tools_on_distinct_tracks() {
        let tel = Telemetry::enabled();
        one_request(&tel, 0.0, "TA");
        one_request(&tel, 20.0, "SP");
        let json = chrome_trace_json(&tel.events(), &ChromeTraceOptions::default());
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("\"tid\":2"));
    }

    #[test]
    fn slo_windows_count_offered_and_burn() {
        let tel = Telemetry::enabled();
        one_request(&tel, 0.0, "TA"); // finishes t=10, latency 10
        one_request(&tel, 5.0, "TA"); // finishes t=15, latency 10
        tel.root_context()
            .point(names::SERVER_SHED, 12.0, &[("tool", "TA")]);
        let spec = SloSpec {
            window_secs: 20.0,
            step_secs: 20.0,
            latency_quantile: 0.95,
            latency_objective_secs: 5.0,
            availability_objective: 0.99,
        };
        let report = spec.evaluate(&tel.events());
        assert_eq!(report.windows.len(), 1);
        let w = &report.windows[0];
        assert_eq!(w.offered, 3);
        assert_eq!(w.answered, 2);
        assert_eq!(w.dropped, 1);
        assert!((w.availability - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(w.latency_at_q, Some(10.0));
        assert_eq!(w.slow_fraction, 1.0); // both answered exceed 5s
        assert!(w.availability_burn > 1.0);
        assert!(w.latency_burn > 1.0);
        assert!(!w.ok());
        assert_eq!(report.violations().len(), 1);
        let rendered = report.render();
        assert!(rendered.contains("VIOLATED"));
        assert!(rendered.contains("1 of 1 windows violated"));
    }

    #[test]
    fn slo_on_healthy_trace_passes() {
        let tel = Telemetry::enabled();
        one_request(&tel, 0.0, "TA");
        let spec = SloSpec {
            latency_objective_secs: 30.0,
            ..SloSpec::default()
        };
        let report = spec.evaluate(&tel.events());
        assert!(report.violations().is_empty());
        assert!(report.render().contains("0 of"));
    }

    #[test]
    fn slo_windows_slide_by_step() {
        let tel = Telemetry::enabled();
        one_request(&tel, 0.0, "TA"); // finishes at 10
        one_request(&tel, 140.0, "TA"); // finishes at 150
        let spec = SloSpec::default(); // window 120, step 60
        let report = spec.evaluate(&tel.events());
        // starts at 0, 60, 120 — covers horizon 150
        assert_eq!(report.windows.len(), 3);
        assert_eq!(report.windows[0].offered, 1);
        assert_eq!(report.windows[2].offered, 1);
    }

    #[test]
    fn nearest_rank_edges() {
        assert_eq!(nearest_rank(&[], 0.5), None);
        assert_eq!(nearest_rank(&[4.0], 0.0), Some(4.0));
        assert_eq!(nearest_rank(&[4.0], 1.0), Some(4.0));
        assert_eq!(nearest_rank(&[1.0, 2.0, 3.0, 4.0], 0.5), Some(2.0));
        assert_eq!(nearest_rank(&[1.0, 2.0], 5.0), Some(2.0)); // q clamped
        assert_eq!(nearest_rank(&[1.0, 2.0], -1.0), Some(1.0));
    }
}
