//! Class-mix fractions.

use crate::archetype::TrueClass;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A ground-truth class mix: fractions of inactive, fake and genuine
/// followers. Fractions must be non-negative and sum to 1 (±1e-6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassMix {
    inactive: f64,
    fake: f64,
    genuine: f64,
}

/// Error returned when mix fractions are invalid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidMix {
    /// The offending sum of the three fractions.
    pub sum: f64,
}

impl fmt::Display for InvalidMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "class fractions must be non-negative and sum to 1, got sum {}",
            self.sum
        )
    }
}

impl std::error::Error for InvalidMix {}

impl ClassMix {
    /// Creates a mix from `(inactive, fake, genuine)` fractions.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidMix`] if any fraction is negative/non-finite or the
    /// sum deviates from 1 by more than 1e-6.
    ///
    /// ```
    /// use fakeaudit_population::ClassMix;
    /// // @RobDWaller in Table III under FC: 25% inactive, 1.4% fake.
    /// let mix = ClassMix::new(0.25, 0.014, 0.736)?;
    /// assert_eq!(mix.genuine(), 0.736);
    /// # Ok::<(), fakeaudit_population::mix::InvalidMix>(())
    /// ```
    pub fn new(inactive: f64, fake: f64, genuine: f64) -> Result<Self, InvalidMix> {
        let parts = [inactive, fake, genuine];
        let sum: f64 = parts.iter().sum();
        if parts.iter().any(|p| !p.is_finite() || *p < 0.0) || (sum - 1.0).abs() > 1e-6 {
            return Err(InvalidMix { sum });
        }
        Ok(Self {
            inactive,
            fake,
            genuine,
        })
    }

    /// Creates a mix from percentages (as Table III prints them), e.g.
    /// `from_percentages(25.0, 1.4, 73.6)`.
    ///
    /// # Errors
    ///
    /// Same validation as [`ClassMix::new`].
    pub fn from_percentages(inactive: f64, fake: f64, genuine: f64) -> Result<Self, InvalidMix> {
        Self::new(inactive / 100.0, fake / 100.0, genuine / 100.0)
    }

    /// An all-genuine mix.
    pub fn all_genuine() -> Self {
        Self {
            inactive: 0.0,
            fake: 0.0,
            genuine: 1.0,
        }
    }

    /// Fraction of inactive followers.
    pub fn inactive(&self) -> f64 {
        self.inactive
    }

    /// Fraction of fake followers.
    pub fn fake(&self) -> f64 {
        self.fake
    }

    /// Fraction of genuine followers.
    pub fn genuine(&self) -> f64 {
        self.genuine
    }

    /// The fraction for `class`.
    pub fn fraction(&self, class: TrueClass) -> f64 {
        match class {
            TrueClass::Inactive => self.inactive,
            TrueClass::Fake => self.fake,
            TrueClass::Genuine => self.genuine,
        }
    }

    /// Exact per-class counts for a population of `n`, using largest-
    /// remainder rounding so the counts always sum to `n`.
    pub fn counts(&self, n: usize) -> [(TrueClass, usize); 3] {
        let raw = [
            (TrueClass::Inactive, self.inactive * n as f64),
            (TrueClass::Fake, self.fake * n as f64),
            (TrueClass::Genuine, self.genuine * n as f64),
        ];
        let mut counts: Vec<(TrueClass, usize, f64)> = raw
            .iter()
            .map(|&(c, x)| (c, x.floor() as usize, x - x.floor()))
            .collect();
        let assigned: usize = counts.iter().map(|&(_, k, _)| k).sum();
        let mut remainder = n - assigned;
        // Largest remainders first; ties broken by class order for
        // determinism.
        counts.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite fractions"));
        for entry in counts.iter_mut() {
            if remainder == 0 {
                break;
            }
            entry.1 += 1;
            remainder -= 1;
        }
        let get = |class: TrueClass| {
            counts
                .iter()
                .find(|&&(c, _, _)| c == class)
                .map(|&(_, k, _)| k)
                .expect("all classes present")
        };
        [
            (TrueClass::Inactive, get(TrueClass::Inactive)),
            (TrueClass::Fake, get(TrueClass::Fake)),
            (TrueClass::Genuine, get(TrueClass::Genuine)),
        ]
    }
}

impl fmt::Display for ClassMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "inactive {:.1}% / fake {:.1}% / genuine {:.1}%",
            self.inactive * 100.0,
            self.fake * 100.0,
            self.genuine * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_mix() {
        let m = ClassMix::new(0.3, 0.2, 0.5).unwrap();
        assert_eq!(m.inactive(), 0.3);
        assert_eq!(m.fake(), 0.2);
        assert_eq!(m.genuine(), 0.5);
        assert_eq!(m.fraction(TrueClass::Fake), 0.2);
    }

    #[test]
    fn rejects_bad_sum() {
        assert!(ClassMix::new(0.5, 0.5, 0.5).is_err());
        assert!(ClassMix::new(0.1, 0.1, 0.1).is_err());
    }

    #[test]
    fn rejects_negative() {
        assert!(ClassMix::new(-0.1, 0.6, 0.5).is_err());
    }

    #[test]
    fn rejects_nan() {
        assert!(ClassMix::new(f64::NAN, 0.5, 0.5).is_err());
    }

    #[test]
    fn from_percentages_scales() {
        let m = ClassMix::from_percentages(25.0, 1.4, 73.6).unwrap();
        assert!((m.fake() - 0.014).abs() < 1e-12);
    }

    #[test]
    fn counts_sum_to_n() {
        let m = ClassMix::from_percentages(33.3, 33.3, 33.4).unwrap();
        for n in [0usize, 1, 2, 3, 10, 101, 9_604] {
            let total: usize = m.counts(n).iter().map(|&(_, k)| k).sum();
            assert_eq!(total, n, "n={n}");
        }
    }

    #[test]
    fn counts_match_fractions() {
        let m = ClassMix::new(0.25, 0.014, 0.736).unwrap();
        let counts = m.counts(10_000);
        let find = |c: TrueClass| counts.iter().find(|&&(x, _)| x == c).unwrap().1;
        assert_eq!(find(TrueClass::Inactive), 2_500);
        assert_eq!(find(TrueClass::Fake), 140);
        assert_eq!(find(TrueClass::Genuine), 7_360);
    }

    #[test]
    fn all_genuine_shortcut() {
        let m = ClassMix::all_genuine();
        assert_eq!(m.genuine(), 1.0);
        assert_eq!(m.counts(5)[2], (TrueClass::Genuine, 5));
    }

    #[test]
    fn display_percentages() {
        let m = ClassMix::new(0.25, 0.014, 0.736).unwrap();
        let s = m.to_string();
        assert!(s.contains("25.0%"));
        assert!(s.contains("1.4%"));
    }
}
