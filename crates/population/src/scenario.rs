//! Target-account scenario builder.
//!
//! Builds an audited target inside a [`Platform`]: the target account plus a
//! follower base with a configurable ground-truth [`ClassMix`] and a
//! *recency structure* — fakes skewed towards the newest positions
//! (purchased bursts arrive last), inactives towards the oldest (§IV-D:
//! "new followers are less likely to be inactive than long-term
//! followers"). The recency structure is exactly what makes the commercial
//! tools' newest-prefix samples diverge from the population truth.

use crate::archetype::{self, GeneratedAccount, TrueClass};
use crate::mix::ClassMix;
use fakeaudit_stats::rng::{rng_for, rng_for_indexed};
use fakeaudit_twittersim::clock::{SimDuration, SimTime};
use fakeaudit_twittersim::platform::PlatformError;
use fakeaudit_twittersim::timeline::{TimelineModel, TimelineParams};
use fakeaudit_twittersim::{AccountId, Platform, Profile};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// How the target account itself behaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TargetKind {
    /// An active celebrity/politician account: thousands of tweets, tweeted
    /// recently.
    ActiveCelebrity,
    /// An abandoned account (the @PC_Chiambretti pathology, §IV-D): a
    /// handful of old tweets, then silence.
    Abandoned,
}

/// Declarative description of an audited target. Construct with
/// [`TargetScenario::new`], customise with the builder methods, then call
/// [`TargetScenario::build`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetScenario {
    screen_name: String,
    materialized_followers: usize,
    nominal_followers: Option<u64>,
    mix: ClassMix,
    fake_recency_bias: f64,
    inactive_staleness_bias: f64,
    growth_span: SimDuration,
    kind: TargetKind,
}

impl TargetScenario {
    /// Creates a scenario for `screen_name` with `followers` materialised
    /// followers and ground-truth mix `mix`.
    ///
    /// Defaults: fakes moderately recency-skewed (bias 3), inactives
    /// moderately stale-skewed (bias 3), growth over 1000 days, active
    /// celebrity target.
    pub fn new(screen_name: impl Into<String>, followers: usize, mix: ClassMix) -> Self {
        Self {
            screen_name: screen_name.into(),
            materialized_followers: followers,
            nominal_followers: None,
            mix,
            fake_recency_bias: 3.0,
            inactive_staleness_bias: 3.0,
            growth_span: SimDuration::from_days(1_000),
            kind: TargetKind::ActiveCelebrity,
        }
    }

    /// Pins the target's public follower count to `nominal` while only
    /// materialising the configured number (scale substitution for
    /// multi-million-follower targets).
    pub fn nominal_followers(mut self, nominal: u64) -> Self {
        self.nominal_followers = Some(nominal);
        self
    }

    /// Sets how strongly fakes concentrate among the newest followers.
    /// `1.0` = no skew (uniform over positions); larger values push the
    /// fake mass towards the head of the API list. Typical purchased-burst
    /// targets use 5–20.
    ///
    /// # Panics
    ///
    /// Panics unless `bias >= 1.0` and finite.
    pub fn fake_recency_bias(mut self, bias: f64) -> Self {
        assert!(bias >= 1.0 && bias.is_finite(), "bias must be >= 1");
        self.fake_recency_bias = bias;
        self
    }

    /// Sets how strongly inactives concentrate among the oldest followers.
    /// `1.0` = no skew.
    ///
    /// # Panics
    ///
    /// Panics unless `bias >= 1.0` and finite.
    pub fn inactive_staleness_bias(mut self, bias: f64) -> Self {
        assert!(bias >= 1.0 && bias.is_finite(), "bias must be >= 1");
        self.inactive_staleness_bias = bias;
        self
    }

    /// Sets the period over which the follower base accumulated.
    pub fn growth_span(mut self, span: SimDuration) -> Self {
        self.growth_span = span;
        self
    }

    /// Sets the target's own behaviour.
    pub fn kind(mut self, kind: TargetKind) -> Self {
        self.kind = kind;
        self
    }

    /// The configured screen name.
    pub fn screen_name(&self) -> &str {
        &self.screen_name
    }

    /// Builds the scenario into `platform`, advancing its clock to the
    /// audit time (at least [`archetype::recommended_audit_time`]).
    ///
    /// # Errors
    ///
    /// Propagates [`PlatformError`] (e.g. duplicate screen names across
    /// scenarios sharing a platform).
    pub fn build(&self, platform: &mut Platform, seed: u64) -> Result<BuiltTarget, PlatformError> {
        let n = self.materialized_followers;
        let growth = SimDuration::from_secs(self.growth_span.as_secs().max(n as u64));
        let audit_time = {
            let earliest = archetype::recommended_audit_time();
            let after_growth = platform.now() + growth;
            if after_growth > earliest {
                after_growth
            } else {
                earliest
            }
        };
        let start_time = SimTime::from_secs(audit_time.as_secs() - growth.as_secs() as i64);

        // 1. Register the target.
        let target_profile = self.target_profile(seed, audit_time);
        let target_timeline = self.target_timeline(seed, audit_time);
        let target = platform.register(target_profile, target_timeline)?;

        // 2. Assign classes to positions (0 = oldest … n-1 = newest) with
        //    the recency skews, using exact per-class counts.
        let assignment = self.assign_positions(seed, n);

        // 3. Generate + register followers and follow in time order.
        let mut followers = Vec::with_capacity(n);
        for (i, &class) in assignment.iter().enumerate() {
            let mut rng = rng_for_indexed(seed, "follower", i as u64);
            let name = format!("{}_f{}", self.screen_name, i);
            let mut acc: GeneratedAccount = archetype::generate(&mut rng, class, name, audit_time);
            // Follow time for position i: evenly spread over the growth
            // span, newest position following last.
            let follow_at = SimTime::from_secs(
                start_time.as_secs() + ((i as u64 + 1) * growth.as_secs() / n.max(1) as u64) as i64,
            );
            // An account cannot follow before it exists; shift creation
            // back when the archetype drew a post-follow creation date.
            if acc.profile.created_at > follow_at {
                acc.profile.created_at = SimTime::from_secs(follow_at.as_secs() - 86_400);
            }
            if platform.now() < follow_at {
                platform.advance_clock(follow_at - platform.now());
            }
            let id = platform.register(acc.profile, acc.timeline)?;
            platform.follow(id, target)?;
            followers.push((id, class));
        }
        if platform.now() < audit_time {
            platform.advance_clock(audit_time - platform.now());
        }

        // 4. Scale substitution.
        if let Some(nominal) = self.nominal_followers {
            platform.pin_followers_count(target, nominal)?;
        }

        let truth: HashMap<AccountId, TrueClass> = followers.iter().copied().collect();
        Ok(BuiltTarget {
            target,
            screen_name: self.screen_name.clone(),
            followers_oldest_first: followers,
            truth,
            audit_time,
        })
    }

    fn target_profile(&self, seed: u64, audit_time: SimTime) -> Profile {
        let mut rng = rng_for(seed, "target-profile");
        let created_at = SimTime::from_secs(
            audit_time.as_secs()
                - SimDuration::from_days(rng.gen_range(800..2_500)).as_secs() as i64,
        );
        let mut p = Profile::new(self.screen_name.clone(), created_at);
        p.friends_count = rng.gen_range(50..2_000);
        p.default_profile_image = false;
        p.has_bio = true;
        p.has_location = true;
        p
    }

    fn target_timeline(&self, seed: u64, audit_time: SimTime) -> TimelineModel {
        let mut rng = rng_for(seed, "target-timeline");
        match self.kind {
            TargetKind::ActiveCelebrity => TimelineModel::new(
                TimelineParams {
                    statuses_count: rng.gen_range(1_500..12_000),
                    first_tweet_at: SimTime::from_secs(
                        audit_time.as_secs() - SimDuration::from_days(700).as_secs() as i64,
                    ),
                    last_tweet_at: SimTime::from_secs(audit_time.as_secs() - 3_600),
                    retweet_frac: 0.1,
                    link_frac: 0.3,
                    spam_frac: 0.0,
                    duplicate_frac: 0.0,
                    // Celebrity accounts are run through scheduling tools
                    // by their staff — a legitimate "cyborg" pattern.
                    automated_frac: 0.3,
                },
                rng.gen(),
            ),
            TargetKind::Abandoned => TimelineModel::new(
                TimelineParams {
                    statuses_count: rng.gen_range(5..20),
                    first_tweet_at: SimTime::from_secs(
                        audit_time.as_secs() - SimDuration::from_days(900).as_secs() as i64,
                    ),
                    last_tweet_at: SimTime::from_secs(
                        audit_time.as_secs() - SimDuration::from_days(700).as_secs() as i64,
                    ),
                    retweet_frac: 0.0,
                    link_frac: 0.2,
                    spam_frac: 0.0,
                    duplicate_frac: 0.0,
                    automated_frac: 0.1,
                },
                rng.gen(),
            ),
        }
    }

    /// Assigns classes to follow positions with the recency skews. Each
    /// class instance draws a position score in `[0, 1]` (0 = oldest); fakes
    /// draw `u^(1/bias)` (skewed to 1 = newest), inactives `u^bias` (skewed
    /// to 0), genuine uniform. Sorting by score yields the position order.
    fn assign_positions(&self, seed: u64, n: usize) -> Vec<TrueClass> {
        let mut rng = rng_for(seed, "positions");
        let mut scored: Vec<(f64, TrueClass)> = Vec::with_capacity(n);
        for (class, count) in self.mix.counts(n) {
            for _ in 0..count {
                let u: f64 = rng.gen();
                let score = match class {
                    TrueClass::Fake => u.powf(1.0 / self.fake_recency_bias),
                    TrueClass::Inactive => u.powf(self.inactive_staleness_bias),
                    TrueClass::Genuine => u,
                };
                scored.push((score, class));
            }
        }
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite scores"));
        scored.into_iter().map(|(_, c)| c).collect()
    }
}

/// A target built into a platform, with its hidden ground truth.
#[derive(Debug, Clone)]
pub struct BuiltTarget {
    /// The audited account.
    pub target: AccountId,
    /// Its screen name.
    pub screen_name: String,
    /// Followers in follow order (oldest first) with their hidden labels.
    pub followers_oldest_first: Vec<(AccountId, TrueClass)>,
    truth: HashMap<AccountId, TrueClass>,
    /// The time at which audits run (platform clock after build).
    pub audit_time: SimTime,
}

impl BuiltTarget {
    /// The hidden label of `id`, if it is a follower of this target.
    pub fn ground_truth(&self, id: AccountId) -> Option<TrueClass> {
        self.truth.get(&id).copied()
    }

    /// Number of materialised followers.
    pub fn follower_count(&self) -> usize {
        self.followers_oldest_first.len()
    }

    /// The realised ground-truth mix over materialised followers.
    pub fn true_mix(&self) -> ClassMix {
        let n = self.follower_count().max(1) as f64;
        let count = |c: TrueClass| {
            self.followers_oldest_first
                .iter()
                .filter(|&&(_, x)| x == c)
                .count() as f64
        };
        ClassMix::new(
            count(TrueClass::Inactive) / n,
            count(TrueClass::Fake) / n,
            count(TrueClass::Genuine) / n,
        )
        .expect("counts always form a valid mix")
    }

    /// Hidden labels in API order (newest first).
    pub fn classes_newest_first(&self) -> Vec<TrueClass> {
        self.followers_oldest_first
            .iter()
            .rev()
            .map(|&(_, c)| c)
            .collect()
    }
}

impl fmt::Display for BuiltTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "@{} ({} materialised followers, truth: {})",
            self.screen_name,
            self.follower_count(),
            self.true_mix()
        )
    }
}

/// Grows `target`'s follower base organically for `days` simulated days,
/// adding `per_day` genuine/inactive followers each day. Returns the ids
/// added per day, for snapshot experiments (E1).
///
/// # Errors
///
/// Propagates [`PlatformError`] from registrations and follows.
pub fn grow_organic_daily(
    platform: &mut Platform,
    target: AccountId,
    days: u32,
    per_day: u32,
    seed: u64,
) -> Result<Vec<Vec<AccountId>>, PlatformError> {
    let mut added = Vec::with_capacity(days as usize);
    let mut counter = 0u64;
    for day in 0..days {
        platform.advance_clock(SimDuration::from_days(1));
        let mut today = Vec::with_capacity(per_day as usize);
        for _ in 0..per_day {
            let mut rng = rng_for_indexed(seed, "organic", (u64::from(day) << 32) | counter);
            counter += 1;
            let class = if rng.gen::<f64>() < 0.85 {
                TrueClass::Genuine
            } else {
                TrueClass::Inactive
            };
            let now = platform.now();
            // account_count() is strictly increasing, so names stay unique
            // across repeated grow calls on the same platform.
            let mut acc = archetype::generate(
                &mut rng,
                class,
                format!("organic_{target}_{}", platform.account_count()),
                now,
            );
            if acc.profile.created_at > now {
                acc.profile.created_at = now;
            }
            let id = platform.register(acc.profile, acc.timeline)?;
            platform.follow(id, target)?;
            today.push(id);
        }
        added.push(today);
    }
    Ok(added)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> ClassMix {
        ClassMix::new(0.3, 0.2, 0.5).unwrap()
    }

    fn build(n: usize) -> (Platform, BuiltTarget) {
        let mut platform = Platform::new();
        let t = TargetScenario::new("celeb", n, mix())
            .build(&mut platform, 7)
            .unwrap();
        (platform, t)
    }

    #[test]
    fn build_materialises_requested_followers() {
        let (platform, t) = build(500);
        assert_eq!(t.follower_count(), 500);
        assert_eq!(platform.materialized_follower_count(t.target), 500);
        assert_eq!(platform.profile(t.target).unwrap().followers_count, 500);
    }

    #[test]
    fn true_mix_matches_request_exactly() {
        let (_, t) = build(1_000);
        let m = t.true_mix();
        assert!((m.inactive() - 0.3).abs() < 1e-9);
        assert!((m.fake() - 0.2).abs() < 1e-9);
        assert!((m.genuine() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ground_truth_lookup() {
        let (_, t) = build(100);
        let (id, class) = t.followers_oldest_first[0];
        assert_eq!(t.ground_truth(id), Some(class));
        assert_eq!(t.ground_truth(AccountId(999_999)), None);
    }

    #[test]
    fn build_is_deterministic() {
        let (_, a) = build(200);
        let (_, b) = build(200);
        assert_eq!(a.followers_oldest_first, b.followers_oldest_first);
        assert_eq!(a.audit_time, b.audit_time);
    }

    #[test]
    fn fakes_concentrate_at_head_of_api_list() {
        let mut platform = Platform::new();
        let t = TargetScenario::new("burst", 2_000, ClassMix::new(0.2, 0.3, 0.5).unwrap())
            .fake_recency_bias(10.0)
            .build(&mut platform, 3)
            .unwrap();
        let classes = t.classes_newest_first();
        let head_fakes = classes[..200]
            .iter()
            .filter(|&&c| c == TrueClass::Fake)
            .count();
        let tail_fakes = classes[1_800..]
            .iter()
            .filter(|&&c| c == TrueClass::Fake)
            .count();
        assert!(
            head_fakes > tail_fakes * 3,
            "head {head_fakes} vs tail {tail_fakes}"
        );
    }

    #[test]
    fn inactives_concentrate_at_tail_of_api_list() {
        let mut platform = Platform::new();
        let t = TargetScenario::new("stale", 2_000, ClassMix::new(0.4, 0.1, 0.5).unwrap())
            .inactive_staleness_bias(6.0)
            .build(&mut platform, 4)
            .unwrap();
        let classes = t.classes_newest_first();
        let head_inact = classes[..200]
            .iter()
            .filter(|&&c| c == TrueClass::Inactive)
            .count();
        let tail_inact = classes[1_800..]
            .iter()
            .filter(|&&c| c == TrueClass::Inactive)
            .count();
        assert!(
            tail_inact > head_inact * 3,
            "head {head_inact} vs tail {tail_inact}"
        );
    }

    #[test]
    fn no_bias_means_roughly_uniform_placement() {
        let mut platform = Platform::new();
        let t = TargetScenario::new("uni", 3_000, ClassMix::new(0.0, 0.5, 0.5).unwrap())
            .fake_recency_bias(1.0)
            .build(&mut platform, 5)
            .unwrap();
        let classes = t.classes_newest_first();
        let head = classes[..300]
            .iter()
            .filter(|&&c| c == TrueClass::Fake)
            .count();
        let tail = classes[2_700..]
            .iter()
            .filter(|&&c| c == TrueClass::Fake)
            .count();
        let ratio = head as f64 / tail.max(1) as f64;
        assert!((0.6..1.7).contains(&ratio), "head {head} tail {tail}");
    }

    #[test]
    fn nominal_followers_are_pinned() {
        let mut platform = Platform::new();
        let t = TargetScenario::new("obama", 1_000, mix())
            .nominal_followers(41_000_000)
            .build(&mut platform, 6)
            .unwrap();
        assert_eq!(
            platform.profile(t.target).unwrap().followers_count,
            41_000_000
        );
        assert_eq!(platform.materialized_follower_count(t.target), 1_000);
    }

    #[test]
    fn follow_times_are_monotone_and_span_growth() {
        let (platform, t) = build(300);
        let edges = platform.graph().followers_oldest_first(t.target);
        for w in edges.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(edges.last().unwrap().at <= t.audit_time);
    }

    #[test]
    fn abandoned_target_profile() {
        let mut platform = Platform::new();
        let t = TargetScenario::new("ghost", 50, mix())
            .kind(TargetKind::Abandoned)
            .build(&mut platform, 8)
            .unwrap();
        let p = platform.profile(t.target).unwrap();
        assert!(p.statuses_count < 20);
        // Last tweet long before the audit: presents inactive.
        assert!(archetype::presents_inactive(p, t.audit_time));
    }

    #[test]
    fn two_scenarios_share_a_platform() {
        let mut platform = Platform::new();
        let a = TargetScenario::new("one", 100, mix())
            .build(&mut platform, 1)
            .unwrap();
        let b = TargetScenario::new("two", 100, mix())
            .build(&mut platform, 2)
            .unwrap();
        assert_ne!(a.target, b.target);
        assert_eq!(platform.materialized_follower_count(a.target), 100);
        assert_eq!(platform.materialized_follower_count(b.target), 100);
    }

    #[test]
    fn duplicate_screen_names_error() {
        let mut platform = Platform::new();
        TargetScenario::new("same", 10, mix())
            .build(&mut platform, 1)
            .unwrap();
        assert!(matches!(
            TargetScenario::new("same", 10, mix()).build(&mut platform, 2),
            Err(PlatformError::DuplicateScreenName(_))
        ));
    }

    #[test]
    fn organic_growth_appends_daily() {
        let mut platform = Platform::new();
        let t = TargetScenario::new("grow", 100, mix())
            .build(&mut platform, 9)
            .unwrap();
        let added = grow_organic_daily(&mut platform, t.target, 5, 10, 11).unwrap();
        assert_eq!(added.len(), 5);
        assert!(added.iter().all(|day| day.len() == 10));
        assert_eq!(platform.materialized_follower_count(t.target), 150);
        // Newest-first list starts with the last day's additions.
        let api = platform.followers_newest_first(t.target);
        let last_day: std::collections::HashSet<_> = added[4].iter().copied().collect();
        assert!(api[..10].iter().all(|id| last_day.contains(id)));
    }

    #[test]
    #[should_panic(expected = "bias must be >= 1")]
    fn rejects_sub_one_bias() {
        TargetScenario::new("x", 10, mix()).fake_recency_bias(0.5);
    }
}
