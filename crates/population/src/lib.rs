//! Synthetic account population generator with ground-truth labels.
//!
//! The paper audited 20 real Twitter targets whose true fake/inactive mixes
//! are unknowable; this crate replaces them with generated targets whose
//! every follower carries a hidden [`archetype::TrueClass`] label (DESIGN.md
//! §2). That lets the reproduction do something the paper could not: score
//! each analytics tool against ground truth.
//!
//! * [`archetype`] — behavioural account archetypes (genuine, fake,
//!   inactive) and the per-class profile/timeline generators;
//! * [`mix`] — class-mix fractions with validation;
//! * [`scenario`] — target-account builders: organic growth, purchased
//!   fake-follower bursts, abandoned accounts, recency-stratified class
//!   placement;
//! * [`goldstandard`] — labelled datasets for training and evaluating the
//!   Fake Project classifier (§III);
//! * [`testbed`] — the paper's experimental testbed: the 20 Table III
//!   targets (low/average/high classes) and the 13 Table II accounts, with
//!   per-target mixes calibrated so the FC row approximates the paper's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archetype;
pub mod goldstandard;
pub mod mix;
pub mod scenario;
pub mod testbed;

pub use archetype::TrueClass;
pub use mix::ClassMix;
pub use scenario::{BuiltTarget, TargetScenario};
