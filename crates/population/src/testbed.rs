//! The paper's experimental testbed (§IV-A).
//!
//! Twenty targets in three classes: **low** (≤ 10 K followers — the
//! analytics developers' own accounts), **average** (the thirteen Italian
//! celebrities of Table II), and **high** (three politicians). Every target
//! carries the paper's published numbers (FC / Twitteraudit / StatusPeople /
//! Socialbakers rows of Table III, response times of Table II) so the bench
//! harness can print paper-vs-measured side by side.
//!
//! # Calibration
//!
//! We set each synthetic target's ground-truth mix to the paper's FC row
//! (the only statistically sound measurement available) and calibrate the
//! *recency structure* from the published prefix-window observations: the
//! fake-recency bias is solved from the head-window fake share the
//! commercial tools reported, the staleness bias from the ratio of FC to
//! StatusPeople inactive shares. The commercial tools' outputs are then
//! **emergent** — produced by running their documented methodologies, not
//! copied from the paper.

use crate::mix::ClassMix;
use crate::scenario::{TargetKind, TargetScenario};
use serde::{Deserialize, Serialize};

/// Follower-count class of a target (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FollowerClass {
    /// 10 K followers or fewer.
    Low,
    /// Tens of thousands of followers (the thirteen Italian accounts).
    Average,
    /// Hundreds of thousands to millions.
    High,
}

/// Percentages `(inactive, fake, genuine)` as printed in Table III.
pub type Row3 = (f64, f64, f64);

/// Response times in seconds from Table II.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperResponseTimes {
    /// Fake Project classifier.
    pub fc: f64,
    /// Twitteraudit.
    pub ta: f64,
    /// StatusPeople.
    pub sp: f64,
    /// Socialbakers.
    pub sb: f64,
}

/// One target of the paper's testbed with all published measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PaperTarget {
    /// Screen name (without `@`).
    pub screen_name: &'static str,
    /// Follower count as published.
    pub followers: u64,
    /// Low / average / high class.
    pub class: FollowerClass,
    /// Table III FC row: (inactive %, fake %, genuine %).
    pub fc: Row3,
    /// Table III Twitteraudit row: (fake %, genuine %) — TA has no
    /// inactive bucket.
    pub ta: (f64, f64),
    /// Table III StatusPeople row.
    pub sp: Row3,
    /// Table III Socialbakers row.
    pub sb: Row3,
    /// Table II response times (the thirteen average-class accounts only).
    pub response: Option<PaperResponseTimes>,
    /// Whether Twitteraudit served a cached result in Table II.
    pub ta_cached: bool,
    /// Whether StatusPeople served a cached result in Table II.
    pub sp_cached: bool,
    /// Whether the account itself is abandoned (the @PC_Chiambretti case).
    pub abandoned: bool,
}

const fn t2(fc: f64, ta: f64, sp: f64, sb: f64) -> Option<PaperResponseTimes> {
    Some(PaperResponseTimes { fc, ta, sp, sb })
}

/// The twenty targets of Tables II and III, in the paper's row order.
pub const PAPER_TARGETS: &[PaperTarget] = &[
    PaperTarget {
        screen_name: "RobDWaller",
        followers: 929,
        class: FollowerClass::Low,
        fc: (25.0, 1.4, 73.6),
        ta: (7.0, 93.0),
        sp: (28.0, 0.0, 72.0),
        sb: (0.0, 0.0, 100.0),
        response: None,
        ta_cached: false,
        sp_cached: false,
        abandoned: false,
    },
    PaperTarget {
        screen_name: "davc",
        followers: 2_971,
        class: FollowerClass::Low,
        fc: (13.5, 4.1, 82.4),
        ta: (14.0, 86.0),
        sp: (26.0, 3.0, 71.0),
        sb: (0.0, 4.0, 96.0),
        response: None,
        ta_cached: false,
        sp_cached: false,
        abandoned: false,
    },
    PaperTarget {
        screen_name: "grossnasty",
        followers: 3_344,
        class: FollowerClass::Low,
        fc: (12.9, 4.0, 83.1),
        ta: (4.0, 96.0),
        sp: (26.0, 3.0, 71.0),
        sb: (0.0, 2.0, 98.0),
        response: None,
        ta_cached: false,
        sp_cached: false,
        abandoned: false,
    },
    PaperTarget {
        screen_name: "janrezab",
        followers: 10_800,
        class: FollowerClass::Low,
        fc: (18.4, 2.2, 79.4),
        ta: (11.0, 89.0),
        sp: (27.0, 3.0, 70.0),
        sb: (2.0, 2.0, 96.0),
        response: None,
        ta_cached: false,
        sp_cached: false,
        abandoned: false,
    },
    PaperTarget {
        screen_name: "giovanniallevi",
        followers: 13_900,
        class: FollowerClass::Average,
        fc: (44.3, 9.9, 45.8),
        ta: (34.0, 66.0),
        sp: (58.0, 18.0, 24.0),
        sb: (5.0, 27.0, 68.0),
        response: t2(187.0, 55.0, 27.0, 12.0),
        ta_cached: false,
        sp_cached: false,
        abandoned: false,
    },
    PaperTarget {
        screen_name: "StefanoBollani",
        followers: 22_300,
        class: FollowerClass::Average,
        fc: (27.8, 12.8, 59.4),
        ta: (29.0, 71.0),
        sp: (49.0, 11.0, 40.0),
        sb: (12.0, 11.0, 77.0),
        response: t2(188.0, 52.0, 22.0, 11.0),
        ta_cached: false,
        sp_cached: false,
        abandoned: false,
    },
    PaperTarget {
        screen_name: "Federugby",
        followers: 30_300,
        class: FollowerClass::Average,
        fc: (46.5, 15.5, 38.0),
        ta: (42.0, 58.0),
        sp: (51.0, 33.0, 16.0),
        sb: (9.0, 33.0, 58.0),
        response: t2(193.0, 40.0, 31.0, 13.0),
        ta_cached: false,
        sp_cached: false,
        abandoned: false,
    },
    PaperTarget {
        screen_name: "Zerolandia",
        followers: 33_500,
        class: FollowerClass::Average,
        fc: (69.2, 7.3, 23.5),
        ta: (63.0, 37.0),
        sp: (55.0, 35.0, 10.0),
        sb: (24.0, 25.0, 51.0),
        response: t2(193.0, 51.0, 32.0, 9.0),
        ta_cached: false,
        sp_cached: false,
        abandoned: false,
    },
    PaperTarget {
        screen_name: "pinucciotwit",
        followers: 35_500,
        class: FollowerClass::Average,
        fc: (30.0, 6.3, 63.7),
        ta: (28.0, 72.0),
        sp: (25.0, 13.0, 62.0),
        sb: (7.0, 15.0, 78.0),
        response: t2(192.0, 3.0, 2.0, 13.0),
        ta_cached: true,
        sp_cached: true,
        abandoned: false,
    },
    PaperTarget {
        screen_name: "mvbrambilla",
        followers: 36_900,
        class: FollowerClass::Average,
        fc: (75.7, 6.5, 17.8),
        ta: (47.0, 53.0),
        sp: (42.0, 30.0, 28.0),
        sb: (9.0, 34.0, 57.0),
        response: t2(188.0, 45.0, 2.0, 8.0),
        ta_cached: false,
        sp_cached: true,
        abandoned: false,
    },
    PaperTarget {
        screen_name: "PChiambretti",
        followers: 40_500,
        class: FollowerClass::Average,
        fc: (31.6, 21.7, 46.7),
        ta: (36.0, 64.0),
        sp: (56.0, 22.0, 22.0),
        sb: (13.0, 19.0, 68.0),
        response: t2(198.0, 45.0, 23.0, 9.0),
        ta_cached: false,
        sp_cached: false,
        abandoned: false,
    },
    PaperTarget {
        screen_name: "pierofassino",
        followers: 61_500,
        class: FollowerClass::Average,
        fc: (77.9, 4.6, 17.5),
        ta: (46.0, 54.0),
        sp: (39.0, 39.0, 22.0),
        sb: (14.0, 31.0, 55.0),
        response: t2(203.0, 52.0, 3.0, 10.0),
        ta_cached: false,
        sp_cached: true,
        abandoned: false,
    },
    PaperTarget {
        screen_name: "Lbarriales",
        followers: 69_900,
        class: FollowerClass::Average,
        fc: (49.5, 20.6, 29.9),
        ta: (48.0, 52.0),
        sp: (57.0, 32.0, 11.0),
        sb: (13.0, 21.0, 66.0),
        response: t2(212.0, 50.0, 27.0, 9.0),
        ta_cached: false,
        sp_cached: false,
        abandoned: false,
    },
    PaperTarget {
        screen_name: "PC_Chiambretti",
        followers: 70_900,
        class: FollowerClass::Average,
        fc: (97.0, 1.2, 1.8),
        ta: (55.0, 45.0),
        sp: (48.0, 44.0, 8.0),
        sb: (17.0, 35.0, 48.0),
        response: t2(214.0, 43.0, 31.0, 9.0),
        ta_cached: false,
        sp_cached: false,
        abandoned: true,
    },
    PaperTarget {
        screen_name: "herbertballeri",
        followers: 72_300,
        class: FollowerClass::Average,
        fc: (46.0, 10.4, 43.6),
        ta: (48.0, 52.0),
        sp: (56.0, 22.0, 22.0),
        sb: (14.0, 20.0, 66.0),
        response: t2(217.0, 54.0, 24.0, 10.0),
        ta_cached: false,
        sp_cached: false,
        abandoned: false,
    },
    PaperTarget {
        screen_name: "Flaviaventosole",
        followers: 75_400,
        class: FollowerClass::Average,
        fc: (46.4, 12.8, 40.8),
        ta: (39.0, 61.0),
        sp: (46.0, 33.0, 21.0),
        sb: (12.0, 29.0, 59.0),
        response: t2(210.0, 49.0, 27.0, 9.0),
        ta_cached: false,
        sp_cached: false,
        abandoned: false,
    },
    PaperTarget {
        screen_name: "RudyZerbi",
        followers: 79_700,
        class: FollowerClass::Average,
        fc: (83.8, 5.9, 10.3),
        ta: (35.0, 65.0),
        sp: (44.0, 33.0, 23.0),
        sb: (8.0, 26.0, 66.0),
        response: t2(216.0, 49.0, 26.0, 10.0),
        ta_cached: false,
        sp_cached: false,
        abandoned: false,
    },
    PaperTarget {
        screen_name: "David_Cameron",
        followers: 595_000,
        class: FollowerClass::High,
        fc: (24.0, 11.7, 64.3),
        ta: (19.5, 80.5),
        sp: (17.0, 48.0, 35.0),
        sb: (10.0, 14.0, 76.0),
        response: None,
        ta_cached: false,
        sp_cached: false,
        abandoned: false,
    },
    PaperTarget {
        screen_name: "fhollande",
        followers: 608_000,
        class: FollowerClass::High,
        fc: (63.6, 5.3, 31.1),
        ta: (64.3, 35.7),
        sp: (35.0, 44.0, 21.0),
        sb: (44.0, 14.0, 42.0),
        response: None,
        ta_cached: false,
        sp_cached: false,
        abandoned: false,
    },
    PaperTarget {
        screen_name: "BarackObama",
        followers: 41_000_000,
        class: FollowerClass::High,
        fc: (57.1, 8.5, 34.4),
        ta: (51.2, 48.8),
        sp: (40.0, 41.0, 19.0),
        sb: (43.0, 12.0, 45.0),
        response: None,
        ta_cached: false,
        sp_cached: false,
        abandoned: false,
    },
];

impl PaperTarget {
    /// The ground-truth mix calibrated so that the FC engine's *measured*
    /// row matches the paper's FC row.
    ///
    /// FC's inactivity-rule-first flow absorbs dormant fakes into its
    /// inactive bucket: with a dormant-fake share `d`
    /// ([`crate::archetype::DORMANT_FAKE_SHARE`]), FC reports
    /// `fake = (1 − d)·fake_mix` and `inactive = inactive_mix + d·fake_mix`.
    /// Inverting gives the generator mix; rounding slack folds into the
    /// genuine fraction.
    pub fn fc_mix(&self) -> ClassMix {
        let (inact, fake, _) = self.fc;
        let d = crate::archetype::DORMANT_FAKE_SHARE;
        let fake_mix = (fake / (1.0 - d)).min(inact + fake);
        let inactive_mix = (inact - fake_mix * d).max(0.0);
        let genuine = (100.0 - inactive_mix - fake_mix).max(0.0);
        ClassMix::from_percentages(inactive_mix, fake_mix, genuine)
            .expect("paper rows are valid mixes")
    }

    /// Calibrates the fake-recency bias `k` so that the expected fake share
    /// of the newest-`window` prefix matches `head_share` (the average fake
    /// share the prefix-sampling tools reported). See module docs.
    ///
    /// With position scores `u^(1/k)`, the fraction of all fakes landing in
    /// the newest `w` fraction of positions is `1 − (1 − w)^k`; the head
    /// fake share is `fc_fake · (1 − (1 − w)^k) / w`. Solving for `k` and
    /// clamping to `[1, 80]`.
    pub fn calibrated_fake_bias(&self, window: usize) -> f64 {
        let n = self.materialization_reference() as f64;
        let w = (window as f64 / n).min(1.0);
        let fc_fake = (self.fc.1 / 100.0).max(1e-4);
        let head_share = (self.sp.1 + self.sb.1 + self.ta.0) / 3.0 / 100.0;
        if w >= 1.0 || head_share <= fc_fake {
            return 1.0;
        }
        let captured = (head_share * w / fc_fake).min(0.999_9);
        let k = (1.0 - captured).ln() / (1.0 - w).ln();
        k.clamp(1.0, 80.0)
    }

    /// Calibrates the inactive staleness bias `k'` from the ratio of FC's
    /// inactive share to StatusPeople's (head-window) inactive share:
    /// with scores `u^k'`, the head inactive share ≈ `fc_inactive / k'`.
    pub fn calibrated_staleness_bias(&self) -> f64 {
        let fc_inact = self.fc.0.max(1e-3);
        let head_inact = self.sp.0.max(1.0);
        (fc_inact / head_inact).clamp(1.0, 10.0)
    }

    /// The follower count the recency calibration refers to (the paper's
    /// published count, before any materialisation cap).
    fn materialization_reference(&self) -> u64 {
        self.followers
    }

    /// Builds the [`TargetScenario`] for this target, materialising at most
    /// `cap` followers (scale substitution; the nominal count is pinned when
    /// capped).
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn scenario(&self, cap: usize) -> TargetScenario {
        assert!(cap > 0, "materialisation cap must be positive");
        let materialized = (self.followers as usize).min(cap);
        // Calibrate against StatusPeople's 700-record window scaled to the
        // materialised population so head shares survive the cap.
        let window = ((700.0 / self.followers as f64) * materialized as f64).ceil() as usize;
        let mut s = TargetScenario::new(self.screen_name, materialized, self.fc_mix())
            .fake_recency_bias(self.calibrated_fake_bias(
                window.max(1) * self.followers as usize / materialized.max(1),
            ))
            .inactive_staleness_bias(self.calibrated_staleness_bias());
        if self.abandoned {
            s = s.kind(TargetKind::Abandoned);
        }
        if (self.followers as usize) > cap {
            s = s.nominal_followers(self.followers);
        }
        s
    }

    /// The thirteen Table II accounts, in row order.
    pub fn table2_targets() -> Vec<&'static PaperTarget> {
        PAPER_TARGETS
            .iter()
            .filter(|t| t.response.is_some())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archetype::TrueClass;
    use fakeaudit_twittersim::Platform;

    #[test]
    fn twenty_targets_in_three_classes() {
        assert_eq!(PAPER_TARGETS.len(), 20);
        let count = |c: FollowerClass| PAPER_TARGETS.iter().filter(|t| t.class == c).count();
        assert_eq!(count(FollowerClass::Low), 4);
        assert_eq!(count(FollowerClass::Average), 13);
        assert_eq!(count(FollowerClass::High), 3);
    }

    #[test]
    fn table2_has_thirteen_rows() {
        let t2 = PaperTarget::table2_targets();
        assert_eq!(t2.len(), 13);
        assert!(t2.iter().all(|t| t.class == FollowerClass::Average));
    }

    #[test]
    fn rows_are_valid_mixes() {
        for t in PAPER_TARGETS {
            let m = t.fc_mix();
            assert!(m.genuine() >= 0.0, "@{}", t.screen_name);
        }
    }

    #[test]
    fn cached_rows_match_paper() {
        let cached_sp: Vec<_> = PAPER_TARGETS
            .iter()
            .filter(|t| t.sp_cached)
            .map(|t| t.screen_name)
            .collect();
        assert_eq!(
            cached_sp,
            vec!["pinucciotwit", "mvbrambilla", "pierofassino"]
        );
        let cached_ta: Vec<_> = PAPER_TARGETS
            .iter()
            .filter(|t| t.ta_cached)
            .map(|t| t.screen_name)
            .collect();
        assert_eq!(cached_ta, vec!["pinucciotwit"]);
    }

    #[test]
    fn fake_bias_is_stronger_when_tools_report_more_fakes() {
        let pc = PAPER_TARGETS
            .iter()
            .find(|t| t.screen_name == "PC_Chiambretti")
            .unwrap();
        let rob = PAPER_TARGETS
            .iter()
            .find(|t| t.screen_name == "RobDWaller")
            .unwrap();
        assert!(pc.calibrated_fake_bias(700) > rob.calibrated_fake_bias(700));
        assert!(pc.calibrated_fake_bias(700) > 10.0);
    }

    #[test]
    fn staleness_bias_reflects_inactive_depletion() {
        let mv = PAPER_TARGETS
            .iter()
            .find(|t| t.screen_name == "mvbrambilla")
            .unwrap();
        // FC 75.7 vs SP 42 → bias ≈ 1.8.
        let k = mv.calibrated_staleness_bias();
        assert!((1.5..2.2).contains(&k), "bias {k}");
    }

    #[test]
    fn scenario_builds_with_cap() {
        let obama = PAPER_TARGETS.last().unwrap();
        assert_eq!(obama.screen_name, "BarackObama");
        let mut platform = Platform::new();
        let built = obama.scenario(2_000).build(&mut platform, 1).unwrap();
        assert_eq!(built.follower_count(), 2_000);
        assert_eq!(
            platform.profile(built.target).unwrap().followers_count,
            41_000_000
        );
        // Ground-truth mix is the dormant-corrected inversion of the FC
        // row: fake_mix = 8.5/0.7, inactive_mix = 57.1 − 0.3·fake_mix.
        let m = built.true_mix();
        let fake_mix = 0.085 / 0.7;
        assert!((m.fake() - fake_mix).abs() < 0.01, "{m}");
        assert!(
            (m.inactive() - (0.571 - 0.3 * fake_mix)).abs() < 0.01,
            "{m}"
        );
    }

    #[test]
    fn scenario_without_cap_keeps_real_count() {
        let rob = &PAPER_TARGETS[0];
        let mut platform = Platform::new();
        let built = rob.scenario(10_000).build(&mut platform, 1).unwrap();
        assert_eq!(built.follower_count(), 929);
        assert_eq!(platform.profile(built.target).unwrap().followers_count, 929);
    }

    #[test]
    fn abandoned_flag_only_for_pc_chiambretti() {
        let abandoned: Vec<_> = PAPER_TARGETS
            .iter()
            .filter(|t| t.abandoned)
            .map(|t| t.screen_name)
            .collect();
        assert_eq!(abandoned, vec!["PC_Chiambretti"]);
    }

    #[test]
    fn pc_chiambretti_head_is_fake_heavy() {
        // The pathology of §IV-D: 97% inactive overall, but the newest
        // window is dominated by fake/recent accounts.
        let pc = PAPER_TARGETS
            .iter()
            .find(|t| t.screen_name == "PC_Chiambretti")
            .unwrap();
        let mut platform = Platform::new();
        let built = pc.scenario(8_000).build(&mut platform, 2).unwrap();
        let classes = built.classes_newest_first();
        let window = 700 * 8_000 / 70_900; // SP window scaled to the cap
        let head_inactive = classes[..window]
            .iter()
            .filter(|&&c| c == TrueClass::Inactive)
            .count() as f64
            / window as f64;
        assert!(
            head_inactive < 0.8,
            "head inactive share {head_inactive} should be depleted vs 0.97"
        );
    }
}
