//! Labelled gold-standard datasets.
//!
//! The Fake Project classifier (§III) was trained on "a gold standard of
//! Twitter accounts, where fake followers, inactive, and genuine accounts
//! were a priori known" — crawled from @TheFakeProject volunteers and
//! purchased fake-follower batches. That dataset is private; we substitute a
//! synthetic gold standard drawn from the same archetypes that populate the
//! audited targets, which preserves the property the paper needs: labels
//! are known a priori and independent of any detector.

use crate::archetype::{self, GeneratedAccount, TrueClass};
use fakeaudit_stats::rng::rng_for_indexed;
use fakeaudit_twittersim::clock::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A labelled dataset of generated accounts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldStandard {
    accounts: Vec<GeneratedAccount>,
    observed_at: SimTime,
}

impl GoldStandard {
    /// Generates a balanced gold standard with `per_class` accounts of each
    /// class, observed at `observed_at` (must be at least
    /// [`archetype::recommended_audit_time`]).
    ///
    /// The ordering interleaves classes so naive prefix splits stay roughly
    /// balanced.
    pub fn generate(seed: u64, per_class: usize, observed_at: SimTime) -> Self {
        let mut accounts = Vec::with_capacity(per_class * 3);
        for i in 0..per_class {
            for (j, class) in TrueClass::ALL.iter().enumerate() {
                let idx = (i * 3 + j) as u64;
                let mut rng = rng_for_indexed(seed, "gold", idx);
                accounts.push(archetype::generate(
                    &mut rng,
                    *class,
                    format!("gold_{class}_{i}"),
                    observed_at,
                ));
            }
        }
        Self {
            accounts,
            observed_at,
        }
    }

    /// The labelled accounts.
    pub fn accounts(&self) -> &[GeneratedAccount] {
        &self.accounts
    }

    /// When the accounts were observed (feature extraction must use this
    /// same instant).
    pub fn observed_at(&self) -> SimTime {
        self.observed_at
    }

    /// Number of accounts.
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }

    /// Splits into `(train, test)` with the first `train_fraction` of each
    /// interleaved class sequence in train.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < train_fraction < 1`.
    pub fn split(&self, train_fraction: f64) -> (Vec<&GeneratedAccount>, Vec<&GeneratedAccount>) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train_fraction must be in (0, 1)"
        );
        let cut = ((self.accounts.len() as f64) * train_fraction).round() as usize;
        let cut = cut.clamp(1, self.accounts.len().saturating_sub(1));
        let (a, b) = self.accounts.split_at(cut);
        (a.iter().collect(), b.iter().collect())
    }

    /// Count of accounts with the given label.
    pub fn count_of(&self, class: TrueClass) -> usize {
        self.accounts.iter().filter(|a| a.class == class).count()
    }
}

impl fmt::Display for GoldStandard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gold standard ({} accounts: {} inactive / {} fake / {} genuine)",
            self.len(),
            self.count_of(TrueClass::Inactive),
            self.count_of(TrueClass::Fake),
            self.count_of(TrueClass::Genuine)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn now() -> SimTime {
        archetype::recommended_audit_time()
    }

    #[test]
    fn balanced_generation() {
        let g = GoldStandard::generate(1, 40, now());
        assert_eq!(g.len(), 120);
        for class in TrueClass::ALL {
            assert_eq!(g.count_of(class), 40);
        }
    }

    #[test]
    fn deterministic() {
        let a = GoldStandard::generate(5, 10, now());
        let b = GoldStandard::generate(5, 10, now());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = GoldStandard::generate(5, 10, now());
        let b = GoldStandard::generate(6, 10, now());
        assert_ne!(a, b);
    }

    #[test]
    fn split_is_roughly_balanced() {
        let g = GoldStandard::generate(2, 30, now());
        let (train, test) = g.split(0.7);
        assert_eq!(train.len() + test.len(), 90);
        assert_eq!(train.len(), 63);
        for class in TrueClass::ALL {
            let k = train.iter().filter(|a| a.class == class).count();
            assert!((19..=23).contains(&k), "class {class}: {k}");
        }
    }

    #[test]
    #[should_panic(expected = "train_fraction must be in (0, 1)")]
    fn split_rejects_bad_fraction() {
        GoldStandard::generate(1, 5, now()).split(1.0);
    }

    #[test]
    fn display_counts() {
        let g = GoldStandard::generate(1, 3, now());
        let s = g.to_string();
        assert!(s.contains("9 accounts"));
    }
}
