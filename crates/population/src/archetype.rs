//! Behavioural account archetypes.
//!
//! Each synthetic follower is drawn from one of three archetypes. The
//! parameter ranges follow the qualitative descriptions the paper collects
//! from the tools' documentation and the cited spam-detection literature
//! (§II): fakes "tend to have few or no followers and few or no tweets, but
//! follow a lot of other accounts", often keep the default profile image and
//! an empty bio, and emit spammy, duplicated, link-heavy tweets; inactives
//! are ordinary accounts whose last tweet is months old (or that never
//! tweeted); genuine accounts are active, reciprocal and textually diverse.

use fakeaudit_stats::dist::LogNormal;
use fakeaudit_twittersim::clock::{SimTime, SECS_PER_DAY};
use fakeaudit_twittersim::timeline::{TimelineModel, TimelineParams};
use fakeaudit_twittersim::Profile;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The hidden ground-truth class of a synthetic account.
///
/// Assignment priority: purchased/bot accounts are `Fake` even when they
/// also look dormant; `Inactive` means a non-fake account that never
/// tweeted or whose last tweet is older than 90 days (the definition both
/// FC and Socialbakers use); everything else is `Genuine`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TrueClass {
    /// Dormant, human-created account.
    Inactive,
    /// Purchased / bot account created to inflate follower counts.
    Fake,
    /// Active, human account.
    Genuine,
}

impl TrueClass {
    /// All classes, in a fixed order.
    pub const ALL: [TrueClass; 3] = [TrueClass::Inactive, TrueClass::Fake, TrueClass::Genuine];
}

impl fmt::Display for TrueClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrueClass::Inactive => write!(f, "inactive"),
            TrueClass::Fake => write!(f, "fake"),
            TrueClass::Genuine => write!(f, "genuine"),
        }
    }
}

/// The threshold both FC and Socialbakers use for inactivity.
pub const INACTIVITY_DAYS: i64 = 90;

/// Share of fake accounts that are dormant shells (never tweet) and hence
/// *present inactive* under the 90-day rule. Consumers that calibrate
/// ground-truth mixes against FC rows must account for this absorption
/// (see [`crate::testbed`]).
pub const DORMANT_FAKE_SHARE: f64 = 0.30;

/// A generated account: profile + timeline model + hidden label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratedAccount {
    /// The public profile.
    pub profile: Profile,
    /// The generative timeline.
    pub timeline: TimelineModel,
    /// Hidden ground truth (never exposed to detectors).
    pub class: TrueClass,
}

fn days_before(now: SimTime, days: f64) -> SimTime {
    SimTime::from_secs(now.as_secs() - (days * SECS_PER_DAY as f64) as i64)
}

/// Generates an account of the given archetype as observed at time `now`.
///
/// Deterministic given the RNG state; callers derive a per-account RNG via
/// [`fakeaudit_stats::rng::rng_for_indexed`].
///
/// # Panics
///
/// Panics if `now` is earlier than ~3000 simulated days after the epoch —
/// archetypes need that much history to place creation dates. Use
/// [`recommended_audit_time`] (or later) as `now`.
pub fn generate<R: Rng + ?Sized>(
    rng: &mut R,
    class: TrueClass,
    screen_name: impl Into<String>,
    now: SimTime,
) -> GeneratedAccount {
    assert!(
        now.as_secs() >= 3_000 * SECS_PER_DAY,
        "audit time too early for archetype history; use recommended_audit_time()"
    );
    let mut acc = match class {
        TrueClass::Genuine => generate_genuine(rng, screen_name.into(), now),
        TrueClass::Inactive => generate_inactive(rng, screen_name.into(), now),
        TrueClass::Fake => generate_fake(rng, screen_name.into(), now),
    };
    // Keep the profile's derived fields authoritative with the timeline
    // (Platform::register re-syncs, but standalone consumers — the gold
    // standard, the ML feature extractor — see consistent pairs too).
    acc.profile.statuses_count = acc.timeline.statuses_count();
    acc.profile.last_tweet_at = acc.timeline.last_tweet_at();
    acc
}

/// A convenient audit time leaving enough room for account histories.
pub fn recommended_audit_time() -> SimTime {
    SimTime::from_days(3_000)
}

fn ln_count<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64, max: u64) -> u64 {
    let d = LogNormal::new(mu, sigma).expect("valid parameters");
    (d.sample(rng).round() as u64).clamp(1, max)
}

fn generate_genuine<R: Rng + ?Sized>(rng: &mut R, name: String, now: SimTime) -> GeneratedAccount {
    let age_days = rng.gen_range(200.0..2_500.0);
    let created_at = days_before(now, age_days);
    let statuses = ln_count(rng, 5.0, 1.2, 50_000);
    let last_days = rng.gen_range(0.0..(INACTIVITY_DAYS as f64 - 5.0));
    let last_tweet_at = days_before(now, last_days);
    let first_tweet_at = days_before(now, (age_days - 1.0).max(last_days));
    let mut profile = Profile::new(name, created_at);
    profile.followers_count = ln_count(rng, 4.0, 1.5, 500_000);
    profile.friends_count = ln_count(rng, 4.5, 1.0, 10_000);
    profile.default_profile_image = rng.gen::<f64>() < 0.05;
    profile.has_bio = rng.gen::<f64>() < 0.85;
    profile.has_location = rng.gen::<f64>() < 0.70;
    let timeline = TimelineModel::new(
        TimelineParams {
            statuses_count: statuses,
            first_tweet_at,
            last_tweet_at,
            retweet_frac: rng.gen_range(0.10..0.35),
            link_frac: rng.gen_range(0.05..0.30),
            spam_frac: rng.gen_range(0.0..0.02),
            duplicate_frac: 0.0,
            automated_frac: rng.gen_range(0.0..0.10),
        },
        rng.gen(),
    );
    GeneratedAccount {
        profile,
        timeline,
        class: TrueClass::Genuine,
    }
}

fn generate_inactive<R: Rng + ?Sized>(rng: &mut R, name: String, now: SimTime) -> GeneratedAccount {
    let age_days = rng.gen_range(500.0..2_900.0);
    let created_at = days_before(now, age_days);
    let never_tweeted = rng.gen::<f64>() < 0.35;
    let mut profile = Profile::new(name, created_at);
    profile.followers_count = ln_count(rng, 3.0, 1.2, 10_000);
    profile.friends_count = ln_count(rng, 3.5, 1.0, 5_000);
    profile.default_profile_image = rng.gen::<f64>() < 0.30;
    profile.has_bio = rng.gen::<f64>() < 0.50;
    profile.has_location = rng.gen::<f64>() < 0.40;
    let timeline = if never_tweeted {
        TimelineModel::empty()
    } else {
        let statuses = ln_count(rng, 3.0, 1.3, 5_000);
        let last_days = rng.gen_range((INACTIVITY_DAYS as f64 + 1.0)..(age_days - 1.0).max(92.0));
        TimelineModel::new(
            TimelineParams {
                statuses_count: statuses,
                first_tweet_at: days_before(now, (age_days - 1.0).max(last_days)),
                last_tweet_at: days_before(now, last_days),
                retweet_frac: rng.gen_range(0.10..0.35),
                link_frac: rng.gen_range(0.05..0.25),
                spam_frac: rng.gen_range(0.0..0.02),
                duplicate_frac: 0.0,
                automated_frac: rng.gen_range(0.0..0.08),
            },
            rng.gen(),
        )
    };
    GeneratedAccount {
        profile,
        timeline,
        class: TrueClass::Inactive,
    }
}

fn generate_fake<R: Rng + ?Sized>(rng: &mut R, name: String, now: SimTime) -> GeneratedAccount {
    let age_days = rng.gen_range(5.0..400.0);
    let created_at = days_before(now, age_days);
    let mut profile = Profile::new(name, created_at);
    profile.followers_count = rng.gen_range(0..30);
    profile.friends_count = rng.gen_range(300..4_000);
    profile.default_profile_image = rng.gen::<f64>() < 0.60;
    profile.has_bio = rng.gen::<f64>() < 0.15;
    profile.has_location = rng.gen::<f64>() < 0.10;
    let behaviour: f64 = rng.gen();
    let timeline = if behaviour < 0.30 {
        // Dormant shell: never tweets, exists only to follow.
        TimelineModel::empty()
    } else {
        let (statuses, retweet, spam, dup, link) = if behaviour < 0.85 {
            // Low-volume spam shell.
            (
                rng.gen_range(1..30),
                rng.gen_range(0.0..0.3),
                rng.gen_range(0.5..0.9),
                rng.gen_range(0.3..0.8),
                rng.gen_range(0.5..0.95),
            )
        } else {
            // High-volume amplification bot: mostly retweets.
            (
                rng.gen_range(200..3_000),
                rng.gen_range(0.85..1.0),
                rng.gen_range(0.1..0.4),
                rng.gen_range(0.1..0.5),
                rng.gen_range(0.3..0.8),
            )
        };
        // Farmed bots keep posting until they are banned: most tweeted
        // recently, so they present *active* to the 90-day rule.
        let last_days = rng.gen_range(0.0..(age_days * 0.8).clamp(1.0, 75.0));
        TimelineModel::new(
            TimelineParams {
                statuses_count: statuses,
                first_tweet_at: days_before(now, (age_days - 1.0).max(last_days)),
                last_tweet_at: days_before(now, last_days),
                retweet_frac: retweet,
                link_frac: link,
                spam_frac: spam,
                duplicate_frac: dup,
                // Farmed accounts post through the API or schedulers —
                // the Chu et al. automation signal.
                automated_frac: rng.gen_range(0.5..0.95),
            },
            rng.gen(),
        )
    };
    GeneratedAccount {
        profile,
        timeline,
        class: TrueClass::Fake,
    }
}

/// Whether an account *presents* as inactive at time `now` under the
/// FC/Socialbakers definition (never tweeted, or last tweet older than
/// [`INACTIVITY_DAYS`]). Note this is about observable behaviour, not the
/// hidden class: many `Fake` accounts also present as inactive.
pub fn presents_inactive(profile: &Profile, now: SimTime) -> bool {
    match profile.seconds_since_last_tweet(now) {
        None => true,
        Some(secs) => secs > (INACTIVITY_DAYS * SECS_PER_DAY) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fakeaudit_stats::rng::rng_for_indexed;
    use fakeaudit_twittersim::tweet::TimelineStats;
    use fakeaudit_twittersim::AccountId;

    fn now() -> SimTime {
        recommended_audit_time()
    }

    fn gen_many(class: TrueClass, n: u64) -> Vec<GeneratedAccount> {
        (0..n)
            .map(|i| {
                let mut rng = rng_for_indexed(42, "arch", i);
                generate(&mut rng, class, format!("{class}{i}"), now())
            })
            .collect()
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a_rng = rng_for_indexed(1, "d", 0);
        let mut b_rng = rng_for_indexed(1, "d", 0);
        let a = generate(&mut a_rng, TrueClass::Fake, "x", now());
        let b = generate(&mut b_rng, TrueClass::Fake, "x", now());
        assert_eq!(a, b);
    }

    #[test]
    fn genuine_accounts_are_active() {
        for acc in gen_many(TrueClass::Genuine, 50) {
            assert!(!presents_inactive(&acc.profile, now()), "{:?}", acc.profile);
            assert!(acc.profile.statuses_count > 0);
        }
    }

    #[test]
    fn inactive_accounts_present_inactive() {
        for acc in gen_many(TrueClass::Inactive, 50) {
            assert!(presents_inactive(&acc.profile, now()), "{:?}", acc.profile);
        }
    }

    #[test]
    fn fakes_follow_many_and_are_followed_by_few() {
        for acc in gen_many(TrueClass::Fake, 50) {
            assert!(acc.profile.friends_count >= 300);
            assert!(acc.profile.followers_count < 30);
            assert!(acc.profile.following_follower_ratio() > 10.0);
        }
    }

    #[test]
    fn fake_creation_dates_are_recent() {
        for acc in gen_many(TrueClass::Fake, 50) {
            let age = acc.profile.age_at(now());
            assert!(age.as_days_f64() <= 400.0, "age {age}");
        }
    }

    #[test]
    fn fake_timelines_are_spammy_or_empty() {
        let accs = gen_many(TrueClass::Fake, 60);
        let mut tweeting = 0;
        for (i, acc) in accs.iter().enumerate() {
            let tweets = acc.timeline.recent_tweets(AccountId(i as u64), 200);
            if tweets.is_empty() {
                continue;
            }
            tweeting += 1;
            let s = TimelineStats::compute(&tweets);
            assert!(
                s.spam_frac > 0.2
                    || s.retweet_frac > 0.6
                    || s.max_duplicates >= 3
                    || s.link_frac > 0.4,
                "fake timeline not bot-like: {s:?}"
            );
        }
        assert!(
            tweeting > 10,
            "expected some tweeting fakes, got {tweeting}"
        );
    }

    #[test]
    fn genuine_profiles_mostly_complete() {
        let accs = gen_many(TrueClass::Genuine, 100);
        let with_bio = accs.iter().filter(|a| a.profile.has_bio).count();
        let default_img = accs
            .iter()
            .filter(|a| a.profile.default_profile_image)
            .count();
        assert!(with_bio > 70, "bio count {with_bio}");
        assert!(default_img < 15, "default image count {default_img}");
    }

    #[test]
    fn profile_timeline_consistency() {
        // generate() returns pairs the Platform will accept; counts agree.
        for class in TrueClass::ALL {
            for acc in gen_many(class, 20) {
                assert_eq!(acc.profile.statuses_count, acc.timeline.statuses_count());
            }
        }
    }

    #[test]
    #[should_panic(expected = "audit time too early")]
    fn rejects_too_early_audit_time() {
        let mut rng = rng_for_indexed(1, "e", 0);
        generate(&mut rng, TrueClass::Genuine, "x", SimTime::from_days(10));
    }

    #[test]
    fn class_display() {
        assert_eq!(TrueClass::Fake.to_string(), "fake");
        assert_eq!(TrueClass::ALL.len(), 3);
    }
}
