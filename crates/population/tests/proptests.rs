//! Property-based tests for the population generator's invariants.

use fakeaudit_population::archetype::{self, presents_inactive, TrueClass};
use fakeaudit_population::{ClassMix, TargetScenario};
use fakeaudit_stats::rng::rng_for_indexed;
use fakeaudit_twittersim::Platform;
use proptest::prelude::*;

/// Valid class mixes via two cut points in [0, 1].
fn mix_strategy() -> impl Strategy<Value = ClassMix> {
    (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        ClassMix::new(lo, hi - lo, 1.0 - hi).expect("cut points form a valid mix")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn mix_counts_always_sum_to_n(mix in mix_strategy(), n in 0usize..5_000) {
        let total: usize = mix.counts(n).iter().map(|&(_, k)| k).sum();
        prop_assert_eq!(total, n);
    }

    #[test]
    fn mix_counts_are_within_one_of_exact(mix in mix_strategy(), n in 1usize..5_000) {
        for (class, count) in mix.counts(n) {
            let exact = mix.fraction(class) * n as f64;
            prop_assert!(
                (count as f64 - exact).abs() < 1.0 + 1e-9,
                "{class}: {count} vs exact {exact}"
            );
        }
    }

    #[test]
    fn generated_accounts_honour_their_class(class_idx in 0usize..3, idx in 0u64..200) {
        let class = TrueClass::ALL[class_idx];
        let now = archetype::recommended_audit_time();
        let mut rng = rng_for_indexed(77, "prop-arch", idx);
        let acc = archetype::generate(&mut rng, class, format!("p{idx}"), now);
        prop_assert_eq!(acc.class, class);
        prop_assert_eq!(acc.profile.statuses_count, acc.timeline.statuses_count());
        prop_assert!(acc.profile.created_at <= now);
        match class {
            TrueClass::Genuine => prop_assert!(!presents_inactive(&acc.profile, now)),
            TrueClass::Inactive => prop_assert!(presents_inactive(&acc.profile, now)),
            TrueClass::Fake => prop_assert!(acc.profile.following_follower_ratio() > 10.0),
        }
    }

    #[test]
    fn built_targets_realise_the_requested_mix(mix in mix_strategy(), n in 50usize..400) {
        let mut platform = Platform::new();
        let t = TargetScenario::new("prop_target", n, mix)
            .build(&mut platform, 5)
            .unwrap();
        prop_assert_eq!(t.follower_count(), n);
        let realised = t.true_mix();
        for class in TrueClass::ALL {
            prop_assert!(
                (realised.fraction(class) - mix.fraction(class)).abs() <= 1.0 / n as f64 + 1e-9,
                "{class}: realised {} vs requested {}",
                realised.fraction(class),
                mix.fraction(class)
            );
        }
    }

    #[test]
    fn follow_times_are_monotone_for_any_build(n in 10usize..300, seed in 0u64..30) {
        let mut platform = Platform::new();
        let t = TargetScenario::new("prop_mono", n, ClassMix::new(0.3, 0.2, 0.5).unwrap())
            .build(&mut platform, seed)
            .unwrap();
        let edges = platform.graph().followers_oldest_first(t.target);
        prop_assert_eq!(edges.len(), n);
        for w in edges.windows(2) {
            prop_assert!(w[0].at <= w[1].at);
        }
        // Every follower exists before (or at) its follow time.
        for e in edges {
            let created = platform.profile(e.follower).unwrap().created_at;
            prop_assert!(created <= e.at);
        }
    }

    #[test]
    fn ground_truth_covers_exactly_the_followers(n in 10usize..200) {
        let mut platform = Platform::new();
        let t = TargetScenario::new("prop_truth", n, ClassMix::new(0.3, 0.2, 0.5).unwrap())
            .build(&mut platform, 3)
            .unwrap();
        for &(id, class) in &t.followers_oldest_first {
            prop_assert_eq!(t.ground_truth(id), Some(class));
        }
        prop_assert_eq!(t.ground_truth(t.target), None);
    }
}
