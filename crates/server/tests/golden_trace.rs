//! The golden trace: a fixed, RNG-free workload whose JSONL trace is
//! compared byte-for-byte against a committed fixture. Any change to span
//! identity allocation, event ordering, attribute sets or the JSONL
//! encoding shows up here as a diff — the repo-level guarantee that
//! same-seed runs keep producing byte-identical traces.
//!
//! The scenario exercises every request outcome: fresh completions (with
//! and without queue wait), a stale degrade, a no-stale shed, an
//! unregistered-tool shed, and a backend failure.

use fakeaudit_analytics::quota::QuotaExceeded;
use fakeaudit_analytics::{ServiceError, ServiceResponse};
use fakeaudit_detectors::{AuditOutcome, ToolId, VerdictCounts};
use fakeaudit_server::{AuditBackend, OverloadPolicy, Request, ServerConfig, ServerSim};
use fakeaudit_telemetry::sink::parse_jsonl;
use fakeaudit_telemetry::Telemetry;
use fakeaudit_twittersim::{AccountId, Platform, SimTime};

const FIXTURE: &str = include_str!("golden/trace.jsonl");

/// A constant-time backend; `serve_stale` only knows targets it has
/// already served fresh, so the degrade path can go cold, and serving
/// `failing` errors out (an exhausted quota).
struct FixedBackend {
    tool: ToolId,
    service_secs: f64,
    failing: AccountId,
    known: Vec<AccountId>,
}

impl FixedBackend {
    fn response(&self, target: AccountId, cached: bool) -> ServiceResponse {
        ServiceResponse {
            outcome: AuditOutcome {
                tool_name: self.tool.abbrev().into(),
                target,
                assessed: vec![],
                counts: VerdictCounts::default(),
                audited_at: SimTime::EPOCH,
                api_elapsed_secs: self.service_secs,
                api_calls: 1,
            },
            response_secs: self.service_secs,
            served_from_cache: cached,
            assessed_at: SimTime::EPOCH,
        }
    }
}

impl AuditBackend for FixedBackend {
    fn tool(&self) -> ToolId {
        self.tool
    }

    fn serve(
        &mut self,
        _platform: &Platform,
        target: AccountId,
    ) -> Result<ServiceResponse, ServiceError> {
        if target == self.failing {
            return Err(ServiceError::Quota(QuotaExceeded { limit: 0, day: 0 }));
        }
        self.known.push(target);
        Ok(self.response(target, false))
    }

    fn serve_stale(&self, target: AccountId) -> Option<ServiceResponse> {
        self.known
            .contains(&target)
            .then(|| self.response(target, true))
    }
}

fn request(id: u64, at: f64, tool: ToolId, target: u64) -> Request {
    Request {
        id,
        at,
        tool,
        target: AccountId(target),
    }
}

/// Runs the fixed scenario and returns (report, trace JSONL).
fn golden_run() -> (fakeaudit_server::ServerReport, String) {
    let platform = Platform::new();
    let telemetry = Telemetry::enabled();
    let mut sim = ServerSim::with_telemetry(
        &platform,
        ServerConfig {
            workers_per_tool: 1,
            queue_capacity: 1,
            policy: OverloadPolicy::DegradeStale,
            degraded_secs: 0.25,
            deadline_secs: None,
        },
        telemetry.clone(),
    );
    sim.register(Box::new(FixedBackend {
        tool: ToolId::FakeClassifier,
        service_secs: 2.0,
        failing: AccountId(9),
        known: Vec::new(),
    }));
    let trace = [
        request(0, 0.0, ToolId::FakeClassifier, 1), // fresh, no wait
        request(1, 0.5, ToolId::FakeClassifier, 2), // queued behind r0
        request(2, 0.6, ToolId::FakeClassifier, 1), // queue full -> stale degrade
        request(3, 0.7, ToolId::FakeClassifier, 3), // queue full, no stale -> shed
        request(4, 1.0, ToolId::StatusPeople, 1),   // unregistered tool -> shed
        request(5, 5.0, ToolId::FakeClassifier, 9), // quota error -> failed
        request(6, 6.0, ToolId::FakeClassifier, 1), // idle again -> fresh
    ];
    let report = sim.run(&trace);
    let mut jsonl = Vec::new();
    telemetry.write_jsonl(&mut jsonl).expect("in-memory write");
    (report, String::from_utf8(jsonl).expect("utf-8 trace"))
}

#[test]
fn scenario_exercises_every_outcome() {
    let (report, jsonl) = golden_run();
    // The unregistered-tool request is recorded and traced as a shed
    // point but never reaches a per-tool queue, so `offered()` (a
    // per-tool total) sees 6 of the 7 requests.
    assert_eq!(report.records.len(), 7);
    assert_eq!(report.offered(), 6);
    assert_eq!(report.completed(), 3);
    assert_eq!(report.degraded(), 1);
    assert_eq!(report.failed(), 1);
    assert_eq!(report.shed(), 1);
    assert_eq!(jsonl.matches("server.shed").count(), 2);
    assert_eq!(jsonl.matches("server.failed").count(), 1);
}

#[test]
fn trace_matches_committed_fixture() {
    let (_, jsonl) = golden_run();
    assert_eq!(
        jsonl, FIXTURE,
        "golden trace drifted from crates/server/tests/golden/trace.jsonl; \
         if the change is intentional, regenerate the fixture from this \
         test's `golden_run` output"
    );
}

#[test]
fn fixture_round_trips_through_the_parser() {
    let (_, jsonl) = golden_run();
    let reparsed = parse_jsonl(FIXTURE).expect("fixture parses");
    let mut rewritten = Vec::new();
    fakeaudit_telemetry::sink::write_jsonl(&reparsed, &mut rewritten).expect("in-memory write");
    assert_eq!(String::from_utf8(rewritten).unwrap(), jsonl);
}
