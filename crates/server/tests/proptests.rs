//! Property tests for admission control and the event loop: the
//! invariants ISSUE 3 pins down — bounded queues stay bounded, per-tool
//! service order is FIFO, and no request is ever lost or double-counted,
//! whatever the policy — plus the live-tracing invariants of ISSUE 4
//! (every offered request is trace-accounted exactly once, and request
//! trees are well-formed) and the SLO-monitor invariants of ISSUE 9:
//! the alert state machine never skips a state, the alert log is a
//! deterministic function of the observation stream, and histogram
//! snapshots merge losslessly.

use fakeaudit_analytics::{ServiceError, ServiceResponse};
use fakeaudit_detectors::{AuditOutcome, ToolId, VerdictCounts};
use fakeaudit_server::{
    Admission, AdmissionQueue, AuditBackend, OverloadPolicy, Request, RequestOutcome, ServerConfig,
    ServerSim,
};
use fakeaudit_telemetry::analyze::names;
use fakeaudit_telemetry::{
    BurnRule, MonitorConfig, SloMonitor, Telemetry, TraceEvent, TraceTree, TransitionKind,
};
use fakeaudit_twittersim::{AccountId, Platform, SimTime};
use proptest::prelude::*;

/// A backend with a scripted constant service time; `serve_stale` only
/// knows targets it has already served fresh, so `degrade` can go cold.
struct ScriptedBackend {
    tool: ToolId,
    service_secs: f64,
    known: Vec<AccountId>,
}

impl ScriptedBackend {
    fn response(&self, target: AccountId, cached: bool) -> ServiceResponse {
        ServiceResponse {
            outcome: AuditOutcome {
                tool_name: self.tool.abbrev().into(),
                target,
                assessed: vec![],
                counts: VerdictCounts::default(),
                audited_at: SimTime::EPOCH,
                api_elapsed_secs: self.service_secs,
                api_calls: 1,
            },
            response_secs: self.service_secs,
            served_from_cache: cached,
            assessed_at: SimTime::EPOCH,
        }
    }
}

impl AuditBackend for ScriptedBackend {
    fn tool(&self) -> ToolId {
        self.tool
    }

    fn serve(
        &mut self,
        _platform: &Platform,
        target: AccountId,
    ) -> Result<ServiceResponse, ServiceError> {
        self.known.push(target);
        Ok(self.response(target, false))
    }

    fn serve_stale(&self, target: AccountId) -> Option<ServiceResponse> {
        self.known
            .contains(&target)
            .then(|| self.response(target, true))
    }
}

fn policy_strategy() -> impl Strategy<Value = OverloadPolicy> {
    prop_oneof![
        Just(OverloadPolicy::Block),
        Just(OverloadPolicy::Shed),
        Just(OverloadPolicy::DegradeStale),
    ]
}

/// `(inter-arrival, tool index, target id)` triples become a trace with
/// strictly increasing arrival times.
fn trace_strategy() -> impl Strategy<Value = Vec<Request>> {
    prop::collection::vec((0.001f64..3.0, 0usize..4, 0u64..5), 0..80).prop_map(|steps| {
        let mut now = 0.0;
        steps
            .into_iter()
            .enumerate()
            .map(|(i, (dt, tool, target))| {
                now += dt;
                Request {
                    id: i as u64,
                    at: now,
                    tool: ToolId::ALL[tool],
                    target: AccountId(target),
                }
            })
            .collect()
    })
}

fn run_trace(
    trace: &[Request],
    policy: OverloadPolicy,
    workers: usize,
    capacity: usize,
    service_secs: f64,
) -> fakeaudit_server::ServerReport {
    run_traced(trace, policy, workers, capacity, service_secs).0
}

/// Like [`run_trace`] but with live tracing enabled, returning the trace
/// alongside the report.
fn run_traced(
    trace: &[Request],
    policy: OverloadPolicy,
    workers: usize,
    capacity: usize,
    service_secs: f64,
) -> (fakeaudit_server::ServerReport, Vec<TraceEvent>) {
    let platform = Platform::new();
    let telemetry = Telemetry::enabled();
    let mut sim = ServerSim::with_telemetry(
        &platform,
        ServerConfig {
            workers_per_tool: workers,
            queue_capacity: capacity,
            policy,
            degraded_secs: 0.25,
            deadline_secs: None,
        },
        telemetry.clone(),
    );
    for tool in ToolId::ALL {
        sim.register(Box::new(ScriptedBackend {
            tool,
            service_secs,
            known: Vec::new(),
        }));
    }
    let report = sim.run(trace);
    (report, telemetry.events())
}

/// A tight monitor config for property runs: 1 s buckets, two burn
/// rules with different dwell geometry so rule interleavings are
/// exercised, both signals live.
fn monitor_config(seed: u64) -> MonitorConfig {
    MonitorConfig {
        bucket_secs: 1.0,
        availability_objective: 0.99,
        latency_quantile: 0.95,
        latency_objective_secs: 1.0,
        rules: vec![
            BurnRule::new("fast", 3.0, 9.0, 2.0, 2.0, 3.0),
            BurnRule::new("slow", 6.0, 18.0, 1.5, 4.0, 6.0),
        ],
        history_capacity: 8,
        history_interval_secs: 16.0,
        sample_keep: 0.5,
        parked_capacity: 64,
        seed,
    }
}

/// Replays `stream` (one request per second; `(ok, slow)` per request)
/// through a fresh monitor, ticking every bucket and draining past the
/// end so every raised alert can resolve.
fn run_monitor(seed: u64, stream: &[(bool, bool)]) -> SloMonitor {
    let config = monitor_config(seed);
    let monitor = SloMonitor::new(config, Telemetry::enabled());
    let mut next_tick = 1.0f64;
    for (i, &(ok, slow)) in stream.iter().enumerate() {
        let t = i as f64 + 0.5;
        while next_tick <= t {
            monitor.tick(next_tick);
            next_tick += 1.0;
        }
        let latency = if slow { 2.0 } else { 0.1 };
        monitor.observe_request("R", t, Some(latency), ok, None);
    }
    let drain = stream.len() as f64 + 18.0 + 4.0 + 6.0 + 1.0;
    while next_tick <= drain {
        monitor.tick(next_tick);
        next_tick += 1.0;
    }
    monitor
}

proptest! {
    /// The bounded queue never holds more than `capacity` items, no
    /// matter how offers and pops interleave; only `block` may park the
    /// overflow elsewhere.
    #[test]
    fn admission_queue_never_exceeds_capacity(
        capacity in 1usize..8,
        policy in policy_strategy(),
        ops in prop::collection::vec(any::<bool>(), 0..200),
    ) {
        let mut queue = AdmissionQueue::new(capacity, policy);
        let mut next = 0u64;
        for is_offer in ops {
            if is_offer {
                let admission = queue.offer(next);
                next += 1;
                if policy != OverloadPolicy::Block {
                    prop_assert_ne!(admission, Admission::Blocked);
                }
            } else {
                queue.pop();
            }
            prop_assert!(queue.len() <= capacity);
            if policy != OverloadPolicy::Block {
                prop_assert_eq!(queue.blocked(), 0);
            }
        }
        prop_assert!(queue.max_depth() <= capacity);
    }

    /// The queue (including block-policy promotion from the overflow
    /// lane) hands items back in exactly the order they were offered.
    #[test]
    fn admission_queue_preserves_fifo(
        capacity in 1usize..6,
        policy in policy_strategy(),
        ops in prop::collection::vec(any::<bool>(), 0..200),
    ) {
        let mut queue = AdmissionQueue::new(capacity, policy);
        let mut next = 0u64;
        let mut last_popped = None;
        for is_offer in ops {
            if is_offer {
                queue.offer(next);
                next += 1;
            } else if let Some(item) = queue.pop() {
                if let Some(prev) = last_popped {
                    prop_assert!(item > prev, "popped {item} after {prev}");
                }
                last_popped = Some(item);
            }
        }
    }

    /// Worker-served requests start in arrival order within each tool —
    /// FIFO survives the event loop, not just the queue.
    #[test]
    fn per_tool_service_order_is_fifo(
        trace in trace_strategy(),
        policy in policy_strategy(),
        workers in 1usize..3,
        capacity in 1usize..5,
        service_secs in 0.25f64..4.0,
    ) {
        let report = run_trace(&trace, policy, workers, capacity, service_secs);
        for tool in ToolId::ALL {
            let mut last_start = f64::NEG_INFINITY;
            let mut last_arrival = f64::NEG_INFINITY;
            for rec in report.records.iter().filter(|r| {
                r.tool == tool && matches!(r.outcome, RequestOutcome::Completed { .. })
            }) {
                let started = rec.started.expect("completed requests started");
                prop_assert!(
                    rec.arrived > last_arrival,
                    "records must keep trace order"
                );
                prop_assert!(
                    started >= last_start,
                    "{:?} started {started} before predecessor {last_start}",
                    tool
                );
                prop_assert!(started >= rec.arrived);
                last_start = started;
                last_arrival = rec.arrived;
            }
        }
    }

    /// Nothing is lost: every offered request is accounted for exactly
    /// once, under every policy — and each policy's signature holds
    /// (block never sheds, scripted backends never fail).
    #[test]
    fn offered_requests_are_conserved(
        trace in trace_strategy(),
        policy in policy_strategy(),
        workers in 1usize..3,
        capacity in 1usize..5,
        service_secs in 0.25f64..4.0,
    ) {
        let report = run_trace(&trace, policy, workers, capacity, service_secs);
        prop_assert_eq!(report.offered(), trace.len() as u64);
        prop_assert_eq!(report.records.len(), trace.len());
        prop_assert_eq!(
            report.completed() + report.degraded() + report.shed() + report.failed(),
            report.offered()
        );
        prop_assert_eq!(report.failed(), 0);
        for t in &report.per_tool {
            prop_assert_eq!(t.completed + t.degraded + t.shed + t.failed, t.offered);
            prop_assert!(t.max_queue_depth <= capacity);
        }
        match policy {
            OverloadPolicy::Block => {
                prop_assert_eq!(report.shed(), 0);
                prop_assert_eq!(report.completed(), report.offered());
            }
            OverloadPolicy::Shed => prop_assert_eq!(report.degraded(), 0),
            OverloadPolicy::DegradeStale => {}
        }
    }

    /// Live tracing accounts for every offered request exactly once:
    /// answered requests become `server.request` spans, refusals become
    /// `server.shed` / `server.failed` points.
    #[test]
    fn offered_requests_match_trace_accounting(
        trace in trace_strategy(),
        policy in policy_strategy(),
        workers in 1usize..3,
        capacity in 1usize..5,
        service_secs in 0.25f64..4.0,
    ) {
        let (report, events) = run_traced(&trace, policy, workers, capacity, service_secs);
        let spans = events
            .iter()
            .filter(|e| e.name == names::SERVER_REQUEST)
            .count() as u64;
        let shed = events
            .iter()
            .filter(|e| e.name == names::SERVER_SHED)
            .count() as u64;
        let failed = events
            .iter()
            .filter(|e| e.name == names::SERVER_FAILED)
            .count() as u64;
        prop_assert_eq!(spans, report.completed() + report.degraded());
        prop_assert_eq!(shed, report.shed());
        prop_assert_eq!(failed, report.failed());
        prop_assert_eq!(spans + shed + failed, report.offered());
    }

    /// Request trees are well formed: every recorded parent id resolves,
    /// every tree root is a whole-request span, no point floats without
    /// its parent, and child intervals nest within their parent's.
    #[test]
    fn trace_trees_are_well_formed(
        trace in trace_strategy(),
        policy in policy_strategy(),
        workers in 1usize..3,
        capacity in 1usize..5,
        service_secs in 0.25f64..4.0,
    ) {
        let (_, events) = run_traced(&trace, policy, workers, capacity, service_secs);
        let tree = TraceTree::build(&events);
        for e in &events {
            if let Some(p) = e.parent {
                prop_assert!(tree.span(p).is_some(), "parent {:?} of {} missing", p, e.name);
            }
        }
        prop_assert!(tree.floating().is_empty());
        for &root in tree.roots() {
            prop_assert_eq!(tree.event(root).name.as_str(), names::SERVER_REQUEST);
            for i in tree.descendants(root) {
                let e = tree.event(i);
                let Some(pid) = e.parent else { continue };
                let parent = tree.span(pid).expect("parent resolves");
                prop_assert!(
                    e.t0 >= parent.t0 - 1e-9 && e.t1 <= parent.t1 + 1e-9,
                    "{} [{}, {}] escapes parent {} [{}, {}]",
                    e.name, e.t0, e.t1, parent.name, parent.t0, parent.t1
                );
            }
        }
    }

    /// Whatever the observation stream, every alert machine walks
    /// `pending → firing → resolved` without skipping a state: the
    /// per-(rule, signal) transition sequence starts at `pending`,
    /// `firing` only follows `pending`, and a new `pending` only follows
    /// `resolved` — and after the drain no alert is left open.
    #[test]
    fn alert_machine_never_skips_states(
        seed in any::<u64>(),
        stream in prop::collection::vec(any::<(bool, bool)>(), 1..120),
    ) {
        let monitor = run_monitor(seed, &stream);
        let log = monitor.transitions();
        let mut machines: std::collections::BTreeMap<String, Option<TransitionKind>> =
            std::collections::BTreeMap::new();
        let mut last_at = f64::NEG_INFINITY;
        for t in &log {
            prop_assert!(t.at_secs >= last_at, "log must be time-ordered");
            last_at = t.at_secs;
            let key = format!("{}/{}/{}", t.route, t.rule, t.signal);
            let prev = machines.entry(key.clone()).or_default();
            let legal = match (*prev, t.to) {
                (None | Some(TransitionKind::Resolved), TransitionKind::Pending) => true,
                (Some(TransitionKind::Pending), TransitionKind::Firing) => true,
                (
                    Some(TransitionKind::Pending) | Some(TransitionKind::Firing),
                    TransitionKind::Resolved,
                ) => true,
                _ => false,
            };
            prop_assert!(legal, "{key}: {:?} -> {:?}", prev, t.to);
            *prev = Some(t.to);
        }
        for (key, last) in &machines {
            prop_assert!(
                matches!(last, Some(TransitionKind::Resolved)),
                "{key} left open after drain: {last:?}"
            );
        }
        let counts = monitor.counts();
        prop_assert_eq!(counts.active_firing, 0);
        prop_assert_eq!(counts.active_pending, 0);
        prop_assert_eq!(counts.pending, counts.resolved);
        prop_assert!(counts.firing <= counts.pending);
    }

    /// The alert log is a pure function of (seed, observation stream):
    /// two replays render byte-identical logs and identical counters.
    #[test]
    fn alert_log_is_deterministic(
        seed in any::<u64>(),
        stream in prop::collection::vec(any::<(bool, bool)>(), 1..80),
    ) {
        let a = run_monitor(seed, &stream);
        let b = run_monitor(seed, &stream);
        prop_assert_eq!(a.render_alert_log(), b.render_alert_log());
        prop_assert_eq!(a.counts(), b.counts());
        prop_assert_eq!(a.alerts_json(), b.alerts_json());
    }

    /// Merging histogram snapshots whose observations landed in disjoint
    /// bucket ranges is lossless: counts and sums add, min/max span both
    /// sides, and every merged bucket carries exactly the side that
    /// populated it.
    #[test]
    fn histogram_merge_is_lossless_on_disjoint_buckets(
        lows in prop::collection::vec(0.0015f64..0.009, 1..40),
        highs in prop::collection::vec(15.0f64..55.0, 1..40),
    ) {
        let t_low = Telemetry::enabled();
        let t_high = Telemetry::enabled();
        for &v in &lows {
            t_low.observe("m", &[], v);
        }
        for &v in &highs {
            t_high.observe("m", &[], v);
        }
        let a = t_low.snapshot().histogram("m", &[]).expect("low histogram").clone();
        let b = t_high.snapshot().histogram("m", &[]).expect("high histogram").clone();
        let mut merged = a.clone();
        merged.merge(&b);

        prop_assert_eq!(merged.count, a.count + b.count);
        prop_assert!((merged.sum - (a.sum + b.sum)).abs() < 1e-9);
        prop_assert_eq!(merged.min, a.min);
        prop_assert_eq!(merged.max, b.max);
        prop_assert_eq!(merged.buckets.len(), a.buckets.len());
        for (i, &(bound, count)) in merged.buckets.iter().enumerate() {
            prop_assert_eq!(bound, a.buckets[i].0);
            prop_assert_eq!(count, a.buckets[i].1 + b.buckets[i].1);
            // Disjoint ranges: no bucket is populated by both sides.
            prop_assert!(a.buckets[i].1 == 0 || b.buckets[i].1 == 0);
        }
        // The merged quantiles stay inside the observed range and
        // straddle the gap: the median of a lopsided merge lands on the
        // heavier side's bucket.
        let q50 = merged.quantile(0.5);
        prop_assert!(q50 >= merged.min && q50 <= merged.max);
    }
}
