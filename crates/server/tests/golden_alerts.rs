//! The golden alert log: a fixed fault-burst scenario driven through
//! [`ServerSim`] with an attached [`SloMonitor`], whose rendered alert
//! log is compared byte-for-byte against a committed fixture. Any change
//! to bucket assignment, window arithmetic, state-machine dwell logic,
//! transition ordering or the log rendering shows up here as a diff —
//! the repo-level guarantee that same-seed, same-fault-plan monitor runs
//! stay byte-identical.
//!
//! The scenario has two engineered incidents on one tool:
//! an availability burst (every request fails for 150 simulated
//! seconds) that must walk `Pending → Firing → Resolved` on both burn
//! rules, and a latency burst (service time jumps past the latency
//! objective) that must fire the latency signal independently.

use fakeaudit_analytics::quota::QuotaExceeded;
use fakeaudit_analytics::{ServiceError, ServiceResponse};
use fakeaudit_detectors::{AuditOutcome, ToolId, VerdictCounts};
use fakeaudit_server::{AuditBackend, OverloadPolicy, Request, ServerConfig, ServerSim};
use fakeaudit_telemetry::{
    MonitorConfig, Signal, SloMonitor, Telemetry, TraceContext, TransitionKind,
};
use fakeaudit_twittersim::{AccountId, Platform, SimTime};

const FIXTURE: &str = include_str!("golden/alerts.log");

/// A scripted backend whose behaviour depends on the server clock:
/// inside `fail` every request errors, inside `slow` service time jumps
/// to `slow_secs`, otherwise it completes in `base_secs`.
struct BurstBackend {
    tool: ToolId,
    base_secs: f64,
    slow_secs: f64,
    fail: (f64, f64),
    slow: (f64, f64),
}

impl BurstBackend {
    fn response(&self, target: AccountId, secs: f64) -> ServiceResponse {
        ServiceResponse {
            outcome: AuditOutcome {
                tool_name: self.tool.abbrev().into(),
                target,
                assessed: vec![],
                counts: VerdictCounts::default(),
                audited_at: SimTime::EPOCH,
                api_elapsed_secs: secs,
                api_calls: 1,
            },
            response_secs: secs,
            served_from_cache: false,
            assessed_at: SimTime::EPOCH,
        }
    }
}

impl AuditBackend for BurstBackend {
    fn tool(&self) -> ToolId {
        self.tool
    }

    fn serve(
        &mut self,
        _platform: &Platform,
        target: AccountId,
    ) -> Result<ServiceResponse, ServiceError> {
        Ok(self.response(target, self.base_secs))
    }

    fn serve_traced_at(
        &mut self,
        _platform: &Platform,
        target: AccountId,
        _ctx: &TraceContext,
        now_secs: f64,
    ) -> Result<ServiceResponse, ServiceError> {
        if (self.fail.0..self.fail.1).contains(&now_secs) {
            return Err(ServiceError::Quota(QuotaExceeded { limit: 0, day: 0 }));
        }
        let secs = if (self.slow.0..self.slow.1).contains(&now_secs) {
            self.slow_secs
        } else {
            self.base_secs
        };
        Ok(self.response(target, secs))
    }

    fn serve_stale(&self, _target: AccountId) -> Option<ServiceResponse> {
        None
    }
}

/// Runs the fixed two-incident scenario; returns the monitor.
fn golden_run() -> SloMonitor {
    let platform = Platform::new();
    let telemetry = Telemetry::enabled();
    let monitor = SloMonitor::new(MonitorConfig::sim_default(2014), telemetry.clone());
    let mut sim = ServerSim::with_telemetry(
        &platform,
        ServerConfig {
            // Enough workers that the slow burst completes (slowly)
            // instead of shedding: 45 s service at one arrival per 2 s
            // needs ~23 busy workers at steady state.
            workers_per_tool: 32,
            queue_capacity: 32,
            policy: OverloadPolicy::Shed,
            degraded_secs: 0.25,
            deadline_secs: None,
        },
        telemetry,
    );
    sim.with_monitor(monitor.clone());
    sim.register(Box::new(BurstBackend {
        tool: ToolId::FakeClassifier,
        base_secs: 2.0,
        slow_secs: 45.0,
        fail: (300.0, 450.0),
        slow: (900.0, 1150.0),
    }));
    // One request every 2 simulated seconds for 1 200 seconds; targets
    // cycle so nothing depends on per-target state.
    let trace: Vec<Request> = (0..600)
        .map(|i| Request {
            id: i,
            at: 2.0 * i as f64,
            tool: ToolId::FakeClassifier,
            target: AccountId(i % 16),
        })
        .collect();
    sim.run(&trace);
    monitor
}

#[test]
fn both_incidents_fire_and_resolve() {
    let monitor = golden_run();
    let log = monitor.transitions();
    let fired: Vec<_> = log
        .iter()
        .filter(|t| t.to == TransitionKind::Firing)
        .collect();
    assert!(
        fired.iter().any(|t| t.signal == Signal::Availability),
        "failure burst must fire the availability signal: {log:?}"
    );
    assert!(
        fired.iter().any(|t| t.signal == Signal::Latency),
        "slow burst must fire the latency signal: {log:?}"
    );
    // Everything the run raised is quiet again after the drain ticks.
    let counts = monitor.counts();
    assert_eq!(counts.active_firing, 0);
    assert_eq!(counts.active_pending, 0);
    assert_eq!(counts.pending, counts.resolved);
    // Every firing alert carries an exemplar. Latency exemplars point
    // at completed slow requests, whose `server.request` span must be
    // retained in the trace buffer. Availability exemplars point at the
    // failed request's pre-allocated tree — this scripted backend traces
    // nothing under it (an `OnlineService` would leave `api.fault`
    // evidence there), so only the id's existence is checked.
    let events = monitor.telemetry().events();
    for t in &fired {
        let root = t.exemplar.expect("firing alert carries an exemplar");
        if t.signal == Signal::Latency {
            assert!(
                events.iter().any(|e| e.id == Some(root)),
                "exemplar {root} not retained for {t:?}"
            );
        }
    }
}

#[test]
fn alert_log_matches_committed_fixture() {
    let log = golden_run().render_alert_log();
    assert_eq!(
        log, FIXTURE,
        "golden alert log drifted from crates/server/tests/golden/alerts.log; \
         if the change is intentional, regenerate with \
         `cargo test -p fakeaudit-server --test golden_alerts -- --ignored regenerate` \
         and commit the diff"
    );
}

#[test]
fn alert_log_is_identical_across_runs() {
    assert_eq!(
        golden_run().render_alert_log(),
        golden_run().render_alert_log()
    );
}

/// Regenerates the committed fixture in place. Run explicitly with
/// `-- --ignored regenerate` after an intentional monitor change.
#[test]
#[ignore = "fixture regeneration, run on demand"]
fn regenerate() {
    let log = golden_run().render_alert_log();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/alerts.log");
    std::fs::write(path, log).expect("write fixture");
}
