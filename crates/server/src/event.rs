//! The deterministic event heap.
//!
//! A discrete-event simulation is only reproducible if ties are broken the
//! same way on every run. [`EventHeap`] therefore orders events by a
//! **total** key `(time, sequence)`: simulated time first (via
//! [`f64::total_cmp`], so the order is total even for identical floats),
//! then the order in which the events were scheduled. Two same-seed runs
//! pop exactly the same events in exactly the same order — the foundation
//! of the byte-identical sweep tables in `EXPERIMENTS.md`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled entry: `(time, seq)` plus an opaque payload.
#[derive(Debug)]
struct Entry<E> {
    time: f64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq && self.time.total_cmp(&other.time) == Ordering::Equal
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    /// Reversed so the std max-heap pops the *earliest* `(time, seq)`.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of timestamped events with total `(time, sequence)` ordering.
///
/// ```
/// use fakeaudit_server::event::EventHeap;
/// let mut heap = EventHeap::new();
/// heap.push(2.0, "late");
/// heap.push(1.0, "early");
/// heap.push(1.0, "early-but-second");
/// assert_eq!(heap.pop(), Some((1.0, "early")));
/// assert_eq!(heap.pop(), Some((1.0, "early-but-second")));
/// assert_eq!(heap.pop(), Some((2.0, "late")));
/// assert_eq!(heap.pop(), None);
/// ```
#[derive(Debug, Default)]
pub struct EventHeap<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> EventHeap<E> {
    /// An empty heap.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at simulated time `time` (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN — a NaN timestamp has no place in a total
    /// order.
    pub fn push(&mut self, time: f64, payload: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest `(time, payload)`.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// The time of the next event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut h = EventHeap::new();
        h.push(5.0, 'c');
        h.push(1.0, 'a');
        h.push(3.0, 'b');
        let order: Vec<char> = std::iter::from_fn(|| h.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_insertion_sequence() {
        let mut h = EventHeap::new();
        for i in 0..100 {
            h.push(7.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| h.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut h = EventHeap::new();
        h.push(10.0, "second");
        h.push(2.0, "first");
        assert_eq!(h.pop(), Some((2.0, "first")));
        h.push(4.0, "new-first");
        assert_eq!(h.peek_time(), Some(4.0));
        assert_eq!(h.pop(), Some((4.0, "new-first")));
        assert_eq!(h.pop(), Some((10.0, "second")));
        assert!(h.is_empty());
    }

    #[test]
    fn negative_zero_and_zero_tie_break_by_seq() {
        // total_cmp orders -0.0 before 0.0; the heap must stay total.
        let mut h = EventHeap::new();
        h.push(0.0, "plus");
        h.push(-0.0, "minus");
        assert_eq!(h.pop(), Some((-0.0, "minus")));
        assert_eq!(h.pop(), Some((0.0, "plus")));
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_time_is_rejected() {
        EventHeap::new().push(f64::NAN, ());
    }

    #[test]
    fn len_tracks_pending() {
        let mut h = EventHeap::new();
        assert_eq!(h.len(), 0);
        h.push(1.0, ());
        h.push(2.0, ());
        assert_eq!(h.len(), 2);
        h.pop();
        assert_eq!(h.len(), 1);
    }
}
