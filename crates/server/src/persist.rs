//! Bridge from completed audits to the columnar history store.
//!
//! Both serving worlds — the discrete-event [`ServerSim`](crate::ServerSim)
//! and the wall-clock gateway dispatcher — end a successful request
//! holding a [`ServiceResponse`] and a completion time. This module
//! turns that pair into one [`AuditRecord`] append and emits the
//! `store.*` metrics at the call site, keeping `fakeaudit-store` itself
//! telemetry-free.
//!
//! Append failures are counted (`store.append_errors`), not propagated:
//! history is an observability surface, and losing a row must never fail
//! the request that produced it. The writer itself degrades after a
//! bounded run of consecutive I/O errors (it keeps serving and counts
//! dropped rows instead of journaling); this module mirrors that state
//! into `store.degraded` / `store.dropped_rows` and the startup
//! recovery outcome into `store.recovery.*` gauges.

use fakeaudit_analytics::ServiceResponse;
use fakeaudit_store::{dominant_verdict, AuditRecord, SharedWriter, StoreHealth};
use fakeaudit_telemetry::Telemetry;
use fakeaudit_twittersim::AccountId;

/// Builds the store row for one answered request.
///
/// `finished_epoch_secs` is the completion time on the epoch clock —
/// callers on the sim clock add the platform epoch to their run-relative
/// time; the gateway passes wall seconds directly.
pub fn audit_record(
    target: AccountId,
    finished_epoch_secs: f64,
    outcome_label: &str,
    trace_id: u64,
    resp: &ServiceResponse,
) -> AuditRecord {
    let counts = &resp.outcome.counts;
    AuditRecord {
        target: target.0,
        ts_micros: AuditRecord::micros_from_secs(finished_epoch_secs),
        tool: resp.outcome.tool_name.clone(),
        verdict: dominant_verdict(counts.fake, counts.inactive, counts.genuine).to_string(),
        outcome: outcome_label.to_string(),
        fake_ratio: resp.outcome.fake_pct(),
        fake_count: counts.fake,
        sample_size: counts.fake + counts.inactive + counts.genuine,
        api_calls: resp.outcome.api_calls,
        trace_id,
    }
}

/// Emits the health fields that track durability trouble: the degraded
/// flag, rows dropped while degraded, and the startup recovery outcome.
fn emit_durability_gauges(telemetry: &Telemetry, health: &StoreHealth) {
    telemetry.gauge_set("store.degraded", &[], f64::from(u8::from(health.degraded)));
    telemetry.gauge_set("store.dropped_rows", &[], health.dropped_rows as f64);
    telemetry.gauge_set(
        "store.recovery.quarantined_segments",
        &[],
        health.quarantined_segments as f64,
    );
    telemetry.gauge_set(
        "store.recovery.wal_rows",
        &[],
        health.wal_recovered_rows as f64,
    );
}

/// Appends one record through a shared writer, emitting `store.*`
/// metrics for the append and for any segment flush it triggered.
pub fn persist_record(writer: &SharedWriter, telemetry: &Telemetry, record: AuditRecord) {
    let mut guard = match writer.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    let result = guard.append(record);
    let health = guard.health();
    drop(guard);
    emit_durability_gauges(telemetry, &health);
    match result {
        Ok(flush) => {
            if health.degraded {
                // The writer accepted the row in-memory only; it is not
                // journaled and counts as dropped, not appended.
                telemetry.counter_add("store.rows_dropped", &[], 1);
                return;
            }
            telemetry.counter_add("store.rows_appended", &[], 1);
            telemetry.gauge_set("store.buffered_rows", &[], health.buffered_rows as f64);
            if let Some(info) = flush {
                telemetry.counter_add("store.segments_flushed", &[], 1);
                telemetry.counter_add("store.flushed_rows", &[], info.rows as u64);
                telemetry.counter_add("store.flush_bytes", &[], info.bytes as u64);
                telemetry.gauge_set("store.segments", &[], health.segments as f64);
            }
        }
        Err(_) => {
            telemetry.counter_add("store.append_errors", &[], 1);
        }
    }
}

/// Flushes any buffered rows (shutdown / end-of-run), emitting the same
/// flush metrics as a threshold flush, and returns the resulting health.
///
/// # Errors
///
/// I/O errors writing the tail segment.
pub fn flush_writer(writer: &SharedWriter, telemetry: &Telemetry) -> std::io::Result<StoreHealth> {
    let mut guard = match writer.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    let info = guard.flush()?;
    let health = guard.health();
    drop(guard);
    emit_durability_gauges(telemetry, &health);
    if info.rows > 0 {
        telemetry.counter_add("store.segments_flushed", &[], 1);
        telemetry.counter_add("store.flushed_rows", &[], info.rows as u64);
        telemetry.counter_add("store.flush_bytes", &[], info.bytes as u64);
    }
    telemetry.gauge_set("store.segments", &[], health.segments as f64);
    telemetry.gauge_set("store.buffered_rows", &[], health.buffered_rows as f64);
    Ok(health)
}

/// A writer's current health without appending (for `/healthz`).
pub fn writer_health(writer: &SharedWriter) -> StoreHealth {
    match writer.lock() {
        Ok(guard) => guard.health(),
        Err(poisoned) => poisoned.into_inner().health(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fakeaudit_detectors::{AuditOutcome, VerdictCounts};
    use fakeaudit_store::{open_shared, Projection, ScanOptions, Store, StoreWriter};
    use fakeaudit_twittersim::SimTime;
    use std::sync::{Arc, Mutex};

    fn response(fake: u64, inactive: u64, genuine: u64) -> ServiceResponse {
        ServiceResponse {
            outcome: AuditOutcome {
                tool_name: "FC".into(),
                target: AccountId(7),
                assessed: vec![],
                counts: VerdictCounts {
                    inactive,
                    fake,
                    genuine,
                },
                audited_at: SimTime::EPOCH,
                api_elapsed_secs: 1.0,
                api_calls: 4,
            },
            response_secs: 1.0,
            served_from_cache: false,
            assessed_at: SimTime::EPOCH,
        }
    }

    #[test]
    fn audit_record_maps_response_fields() {
        let resp = response(30, 10, 60);
        let rec = audit_record(AccountId(7), 12.5, "completed", 99, &resp);
        assert_eq!(rec.target, 7);
        assert_eq!(rec.ts_micros, 12_500_000);
        assert_eq!(rec.tool, "FC");
        assert_eq!(rec.verdict, "genuine");
        assert_eq!(rec.outcome, "completed");
        assert_eq!(rec.fake_count, 30);
        assert_eq!(rec.sample_size, 100);
        assert_eq!(rec.api_calls, 4);
        assert_eq!(rec.trace_id, 99);
        assert!((rec.fake_ratio - resp.outcome.fake_pct()).abs() < 1e-12);
    }

    #[test]
    fn persist_and_flush_emit_store_metrics() {
        let dir =
            std::env::temp_dir().join(format!("fakeaudit-persist-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let writer = Arc::new(Mutex::new(StoreWriter::open(&dir, 2).unwrap()));
        let tel = Telemetry::enabled();
        let resp = response(5, 0, 5);
        for i in 0..3u64 {
            persist_record(
                &writer,
                &tel,
                audit_record(AccountId(i), i as f64, "completed", i, &resp),
            );
        }
        // Threshold 2: one flush happened, one row still buffered.
        let health = flush_writer(&writer, &tel).unwrap();
        assert_eq!(health.segments, 2);
        assert_eq!(health.buffered_rows, 0);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("store.rows_appended", &[]), Some(3));
        assert_eq!(snap.counter("store.segments_flushed", &[]), Some(2));
        assert_eq!(snap.counter("store.flushed_rows", &[]), Some(3));
        assert_eq!(writer_health(&writer).flushed_rows, 3);

        let store = Store::open(&dir).unwrap();
        let rows = store
            .scan(&ScanOptions {
                projection: Projection::all(),
                ..Default::default()
            })
            .unwrap();
        assert_eq!(rows.rows.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn degraded_writer_keeps_serving_and_counts_drops() {
        use fakeaudit_store::{FaultScript, FsyncPolicy, MemIo};
        // Every mutating I/O op fails (without crashing), so the first
        // journal append errors and, after the bounded retry budget,
        // the writer degrades instead of failing requests.
        let io = Arc::new(MemIo::with_script(FaultScript {
            fail_from_op: Some(0),
            ..FaultScript::default()
        }));
        let writer = Arc::new(Mutex::new(
            StoreWriter::open_with(io, "/store", 4, FsyncPolicy::OnAppend).unwrap(),
        ));
        let tel = Telemetry::enabled();
        let resp = response(1, 0, 1);
        for i in 0..12u64 {
            persist_record(
                &writer,
                &tel,
                audit_record(AccountId(i), i as f64, "completed", i, &resp),
            );
        }
        let health = writer_health(&writer);
        assert!(health.degraded);
        assert_eq!(health.dropped_rows, 12);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("store.rows_appended", &[]), None);
        let errors = snap.counter("store.append_errors", &[]).unwrap();
        let dropped = snap.counter("store.rows_dropped", &[]).unwrap();
        assert_eq!(errors + dropped, 12);
        assert!(dropped >= 1, "degraded appends must be counted as drops");
        assert_eq!(snap.gauge("store.degraded", &[]), Some(1.0));
        assert_eq!(snap.gauge("store.dropped_rows", &[]), Some(12.0));
    }

    #[test]
    fn open_shared_uses_default_threshold() {
        let dir =
            std::env::temp_dir().join(format!("fakeaudit-persist-shared-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let writer = open_shared(&dir).unwrap();
        assert_eq!(writer_health(&writer).buffered_rows, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
