//! Open-loop load generation.
//!
//! The generator produces a timestamped request trace *before* the
//! simulation runs — an **open-loop** workload: arrivals do not slow down
//! when the service saturates, which is exactly how real overload happens
//! (Aggarwal & Kumaraguru 2014 document purchased-follower flash crowds;
//! the curious public checking the same celebrity is a thundering herd,
//! not a polite closed loop).
//!
//! Three arrival processes are supported, all non-homogeneous-Poisson and
//! sampled by Lewis–Shedler thinning from a single seeded RNG stream:
//!
//! * [`ArrivalProcess::Poisson`] — constant rate λ.
//! * [`ArrivalProcess::Diurnal`] — sinusoidal day/night modulation.
//! * [`ArrivalProcess::FlashCrowd`] — base rate with a burst window at
//!   `burst_rate`.
//!
//! Targets are drawn Zipf — a handful of hot accounts absorb most audit
//! demand, the rest form a long cold tail — and each request picks one of
//! the four tools uniformly.

use fakeaudit_detectors::ToolId;
use fakeaudit_stats::dist::{Exponential, Zipf};
use fakeaudit_stats::rng_for;
use fakeaudit_twittersim::AccountId;
use rand::Rng;

/// One audit request in the generated trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Trace-unique id, assigned in arrival order.
    pub id: u64,
    /// Arrival time in seconds from the start of the run.
    pub at: f64,
    /// Which tool the client asked.
    pub tool: ToolId,
    /// The account under audit.
    pub target: AccountId,
}

/// A (possibly time-varying) arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals at `rate` requests/second.
    Poisson {
        /// Mean arrival rate (req/s).
        rate: f64,
    },
    /// Sinusoidal diurnal modulation:
    /// `rate(t) = base_rate * (1 + amplitude * sin(2πt / period_secs))`.
    Diurnal {
        /// Mean arrival rate (req/s).
        base_rate: f64,
        /// Relative swing in `[0, 1]`.
        amplitude: f64,
        /// Period of one "day" in seconds.
        period_secs: f64,
    },
    /// Constant `base_rate` with a burst window at `burst_rate`.
    FlashCrowd {
        /// Background arrival rate (req/s).
        base_rate: f64,
        /// Burst window start (seconds).
        burst_start: f64,
        /// Burst window length (seconds).
        burst_secs: f64,
        /// Arrival rate inside the window (req/s).
        burst_rate: f64,
    },
}

impl ArrivalProcess {
    /// Instantaneous arrival rate at time `t`.
    pub fn rate_at(&self, t: f64) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::Diurnal {
                base_rate,
                amplitude,
                period_secs,
            } => {
                let phase = std::f64::consts::TAU * t / period_secs;
                (base_rate * (1.0 + amplitude * phase.sin())).max(0.0)
            }
            ArrivalProcess::FlashCrowd {
                base_rate,
                burst_start,
                burst_secs,
                burst_rate,
            } => {
                if t >= burst_start && t < burst_start + burst_secs {
                    burst_rate
                } else {
                    base_rate
                }
            }
        }
    }

    /// An upper bound on [`ArrivalProcess::rate_at`] over all `t` — the
    /// majorising rate for Lewis–Shedler thinning.
    pub fn peak_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::Diurnal {
                base_rate,
                amplitude,
                ..
            } => base_rate * (1.0 + amplitude.abs()),
            ArrivalProcess::FlashCrowd {
                base_rate,
                burst_rate,
                ..
            } => base_rate.max(burst_rate),
        }
    }
}

/// A complete workload specification.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// The arrival process.
    pub process: ArrivalProcess,
    /// Trace length in seconds.
    pub duration_secs: f64,
    /// Zipf exponent for target popularity (≈1.0 for web-like skew).
    pub zipf_exponent: f64,
    /// Tools a request may ask (uniform pick).
    pub tools: Vec<ToolId>,
}

impl LoadSpec {
    /// A constant-rate spec over all four tools — the sweep building block.
    pub fn poisson(rate: f64, duration_secs: f64) -> Self {
        Self {
            process: ArrivalProcess::Poisson { rate },
            duration_secs,
            zipf_exponent: 1.1,
            tools: ToolId::ALL.to_vec(),
        }
    }
}

/// Generates the request trace for `spec` against a popularity-ranked
/// target list (`targets[0]` is the hottest account).
///
/// Same `(spec, targets, seed)` → identical trace, always: every draw
/// comes from one `rng_for(seed, "server-arrivals")` stream consumed in a
/// fixed order.
pub fn generate(spec: &LoadSpec, targets: &[AccountId], seed: u64) -> Vec<Request> {
    assert!(!targets.is_empty(), "workload needs at least one target");
    assert!(!spec.tools.is_empty(), "workload needs at least one tool");
    let mut rng = rng_for(seed, "server-arrivals");
    let peak = spec.process.peak_rate();
    if peak <= 0.0 || spec.duration_secs <= 0.0 {
        return Vec::new();
    }
    let inter = Exponential::new(peak).expect("peak rate is positive");
    let zipf = Zipf::new(targets.len(), spec.zipf_exponent).expect("non-empty target list");

    let mut out = Vec::new();
    let mut t = 0.0_f64;
    let mut id = 0_u64;
    loop {
        // Candidate arrival at the majorising rate...
        t += inter.sample(&mut rng);
        if t >= spec.duration_secs {
            break;
        }
        // ...thinned down to the instantaneous rate.
        if rng.gen::<f64>() * peak > spec.process.rate_at(t) {
            continue;
        }
        let rank = zipf.sample(&mut rng); // 1-based, rank 1 hottest
        let tool = spec.tools[rng.gen_range(0..spec.tools.len())];
        out.push(Request {
            id,
            at: t,
            tool,
            target: targets[rank - 1],
        });
        id += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets(n: u64) -> Vec<AccountId> {
        (0..n).map(AccountId).collect()
    }

    #[test]
    fn same_seed_same_trace() {
        let spec = LoadSpec::poisson(2.0, 600.0);
        let a = generate(&spec, &targets(50), 42);
        let b = generate(&spec, &targets(50), 42);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let spec = LoadSpec::poisson(2.0, 600.0);
        let a = generate(&spec, &targets(50), 42);
        let b = generate(&spec, &targets(50), 43);
        assert_ne!(a, b);
    }

    #[test]
    fn arrivals_are_ordered_and_bounded() {
        let spec = LoadSpec::poisson(5.0, 300.0);
        let trace = generate(&spec, &targets(20), 7);
        for pair in trace.windows(2) {
            assert!(pair[0].at <= pair[1].at);
            assert_eq!(pair[0].id + 1, pair[1].id);
        }
        assert!(trace.iter().all(|r| r.at < 300.0));
    }

    #[test]
    fn poisson_rate_roughly_holds() {
        let spec = LoadSpec::poisson(4.0, 10_000.0);
        let trace = generate(&spec, &targets(10), 11);
        let rate = trace.len() as f64 / 10_000.0;
        assert!((rate - 4.0).abs() < 0.25, "observed rate {rate}");
    }

    #[test]
    fn flash_crowd_concentrates_in_burst() {
        let spec = LoadSpec {
            process: ArrivalProcess::FlashCrowd {
                base_rate: 0.5,
                burst_start: 400.0,
                burst_secs: 200.0,
                burst_rate: 10.0,
            },
            duration_secs: 1_000.0,
            zipf_exponent: 1.1,
            tools: ToolId::ALL.to_vec(),
        };
        let trace = generate(&spec, &targets(30), 3);
        let in_burst = trace
            .iter()
            .filter(|r| r.at >= 400.0 && r.at < 600.0)
            .count();
        assert!(
            in_burst * 2 > trace.len(),
            "burst window should dominate: {in_burst}/{}",
            trace.len()
        );
    }

    #[test]
    fn diurnal_rate_never_negative_and_peak_bounds() {
        let p = ArrivalProcess::Diurnal {
            base_rate: 2.0,
            amplitude: 0.8,
            period_secs: 86_400.0,
        };
        for i in 0..100 {
            let t = i as f64 * 1_000.0;
            assert!(p.rate_at(t) >= 0.0);
            assert!(p.rate_at(t) <= p.peak_rate() + 1e-9);
        }
    }

    #[test]
    fn zipf_skews_toward_hot_targets() {
        let spec = LoadSpec::poisson(5.0, 5_000.0);
        let list = targets(100);
        let trace = generate(&spec, &list, 99);
        let hot = trace.iter().filter(|r| r.target == list[0]).count();
        let cold = trace.iter().filter(|r| r.target == list[99]).count();
        assert!(hot > 10 * cold.max(1), "hot {hot} vs cold {cold}");
    }

    #[test]
    fn zero_duration_yields_empty_trace() {
        let spec = LoadSpec::poisson(5.0, 0.0);
        assert!(generate(&spec, &targets(5), 1).is_empty());
    }
}
