//! Bounded FIFO admission control.
//!
//! Every tool server fronts its worker pool with an [`AdmissionQueue`]: a
//! bounded FIFO holding requests that arrived while all workers were busy.
//! What happens when the queue itself fills is the [`OverloadPolicy`]:
//!
//! * **Block** — park the arrival in an unbounded overflow lane; it enters
//!   the bounded queue as soon as a slot frees. Models a client that holds
//!   its connection open (and the unbounded memory bill that comes with it).
//! * **Shed** — refuse the request outright, the classic HTTP 503.
//! * **DegradeStale** — answer from the result cache *ignoring* TTL if any
//!   report for the target exists, shed otherwise. An expired audit is
//!   still an audit; under overload it beats an error page.
//!
//! The bounded queue never exceeds its capacity under any policy — the
//! property tests in `tests/proptests.rs` hammer exactly this invariant.

use std::collections::VecDeque;

/// What a tool server does with an arrival that finds the admission queue
/// full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OverloadPolicy {
    /// Park the arrival in an unbounded overflow lane until a slot frees.
    Block,
    /// Refuse the request (503).
    Shed,
    /// Serve a stale cached report if one exists, shed otherwise.
    DegradeStale,
}

impl OverloadPolicy {
    /// All policies, in sweep order.
    pub const ALL: [OverloadPolicy; 3] = [
        OverloadPolicy::Block,
        OverloadPolicy::Shed,
        OverloadPolicy::DegradeStale,
    ];

    /// Short label used in tables and metric labels.
    pub fn label(&self) -> &'static str {
        match self {
            OverloadPolicy::Block => "block",
            OverloadPolicy::Shed => "shed",
            OverloadPolicy::DegradeStale => "degrade",
        }
    }
}

/// Outcome of offering an item to an [`AdmissionQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The item took a slot in the bounded queue.
    Enqueued,
    /// The bounded queue was full; the item is parked in the overflow lane
    /// (policy [`OverloadPolicy::Block`] only).
    Blocked,
    /// The bounded queue was full and the policy does not park; the caller
    /// must shed or degrade the item.
    Overloaded,
}

/// A bounded FIFO queue with a policy-dependent overflow lane.
///
/// `pop` refills the bounded queue from the overflow lane, so blocked items
/// keep their arrival order and the `len() <= capacity` invariant holds at
/// every instant.
#[derive(Debug, Clone)]
pub struct AdmissionQueue<T> {
    capacity: usize,
    policy: OverloadPolicy,
    queue: VecDeque<T>,
    overflow: VecDeque<T>,
    max_depth: usize,
    max_overflow: usize,
}

impl<T> AdmissionQueue<T> {
    /// A queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize, policy: OverloadPolicy) -> Self {
        Self {
            capacity: capacity.max(1),
            policy,
            queue: VecDeque::new(),
            overflow: VecDeque::new(),
            max_depth: 0,
            max_overflow: 0,
        }
    }

    /// The bounded capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured overload policy.
    pub fn policy(&self) -> OverloadPolicy {
        self.policy
    }

    /// Offers an item; see [`Admission`] for what the caller must do next.
    pub fn offer(&mut self, item: T) -> Admission {
        if self.queue.len() < self.capacity {
            self.queue.push_back(item);
            self.max_depth = self.max_depth.max(self.queue.len());
            return Admission::Enqueued;
        }
        match self.policy {
            OverloadPolicy::Block => {
                self.overflow.push_back(item);
                self.max_overflow = self.max_overflow.max(self.overflow.len());
                Admission::Blocked
            }
            OverloadPolicy::Shed | OverloadPolicy::DegradeStale => Admission::Overloaded,
        }
    }

    /// Pops the oldest queued item, promoting the oldest blocked item into
    /// the freed slot.
    pub fn pop(&mut self) -> Option<T> {
        let item = self.queue.pop_front()?;
        if let Some(parked) = self.overflow.pop_front() {
            self.queue.push_back(parked);
        }
        Some(item)
    }

    /// Items currently in the bounded queue (`<= capacity` always).
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether both the bounded queue and the overflow lane are empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty() && self.overflow.is_empty()
    }

    /// Items parked in the overflow lane.
    pub fn blocked(&self) -> usize {
        self.overflow.len()
    }

    /// High-water mark of the bounded queue.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// High-water mark of the overflow lane.
    pub fn max_overflow(&self) -> usize {
        self.max_overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enqueues_until_capacity() {
        let mut q = AdmissionQueue::new(2, OverloadPolicy::Shed);
        assert_eq!(q.offer(1), Admission::Enqueued);
        assert_eq!(q.offer(2), Admission::Enqueued);
        assert_eq!(q.offer(3), Admission::Overloaded);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn block_parks_overflow_in_order() {
        let mut q = AdmissionQueue::new(1, OverloadPolicy::Block);
        assert_eq!(q.offer('a'), Admission::Enqueued);
        assert_eq!(q.offer('b'), Admission::Blocked);
        assert_eq!(q.offer('c'), Admission::Blocked);
        assert_eq!(q.blocked(), 2);
        assert_eq!(q.len(), 1, "bounded queue never exceeds capacity");
        assert_eq!(q.pop(), Some('a'));
        assert_eq!(q.len(), 1, "freed slot refilled from overflow");
        assert_eq!(q.pop(), Some('b'));
        assert_eq!(q.pop(), Some('c'));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn degrade_reports_overloaded_like_shed() {
        let mut q = AdmissionQueue::new(1, OverloadPolicy::DegradeStale);
        q.offer(1);
        assert_eq!(q.offer(2), Admission::Overloaded);
        assert_eq!(q.blocked(), 0);
    }

    #[test]
    fn capacity_zero_is_clamped_to_one() {
        let q: AdmissionQueue<u8> = AdmissionQueue::new(0, OverloadPolicy::Shed);
        assert_eq!(q.capacity(), 1);
    }

    #[test]
    fn high_water_marks() {
        let mut q = AdmissionQueue::new(2, OverloadPolicy::Block);
        q.offer(1);
        q.offer(2);
        q.offer(3);
        q.pop();
        q.pop();
        q.pop();
        assert_eq!(q.max_depth(), 2);
        assert_eq!(q.max_overflow(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = AdmissionQueue::new(3, OverloadPolicy::Shed);
        for i in 0..3 {
            q.offer(i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn policy_labels_are_stable() {
        let labels: Vec<&str> = OverloadPolicy::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels, vec!["block", "shed", "degrade"]);
    }
}
