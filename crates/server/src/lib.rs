//! Deterministic concurrent audit-service simulation.
//!
//! The paper's Table II times each tool answering *one* client; the
//! ROADMAP north star is a service answering heavy traffic from millions
//! of users. This crate adds the serving layer between those two points:
//! a discrete-event simulator that runs the existing
//! [`OnlineService`](fakeaudit_analytics::OnlineService) path under
//! offered load and measures what a single-request benchmark cannot —
//! queue waits, worker contention, and what breaks first when a flash
//! crowd hits ("Followers or Phantoms?" documents exactly such bursts of
//! purchased-follower curiosity).
//!
//! * [`event`] — the min-heap of events with **total** `(time, sequence)`
//!   ordering; the reason same-seed runs are byte-identical;
//! * [`queue`] — bounded FIFO admission control with three overload
//!   policies: block (park in an overflow lane), shed (503), or
//!   degrade-to-stale-cache;
//! * [`workload`] — open-loop load generation: Poisson / diurnal /
//!   flash-crowd arrivals by Lewis–Shedler thinning, Zipf-distributed
//!   target popularity, uniform tool choice — all from one seeded stream;
//! * [`sim`] — the [`ServerSim`] event loop over per-tool worker pools,
//!   producing a [`ServerReport`] of per-request records, percentiles and
//!   `server.*` telemetry.
//!
//! The simulation itself is single-threaded — determinism comes free.
//! Parallelism belongs one level up, in
//! `fakeaudit_core::experiments::service_load`, where independent sweep
//! points (one offered-load × overload-policy cell each) fan out across
//! OS threads with their own cloned backends.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod persist;
pub mod queue;
pub mod sim;
pub mod workload;

pub use event::EventHeap;
pub use persist::{audit_record, flush_writer, persist_record, writer_health};
pub use queue::{Admission, AdmissionQueue, OverloadPolicy};
pub use sim::{
    observe_request, AuditBackend, RequestOutcome, RequestRecord, ServerConfig, ServerReport,
    ServerSim, ToolSummary,
};
pub use workload::{generate, ArrivalProcess, LoadSpec, Request};
