//! The discrete-event service simulator.
//!
//! [`ServerSim`] runs a generated request trace against one worker pool
//! per tool. Each pool fronts an [`AdmissionQueue`] and a boxed
//! [`AuditBackend`] — in production use an
//! [`OnlineService`](fakeaudit_analytics::OnlineService), which already
//! models cache, quota and Table II response times; the simulator adds
//! the *concurrency* dimension: queue waits, worker contention, and the
//! overload policy when the queue fills.
//!
//! # Determinism
//!
//! The loop is single-threaded over one [`EventHeap`], so the only
//! ordering in play is the heap's total `(time, sequence)` key; every
//! backend draw comes from the backend's own seeded stream, consumed in
//! event order. Same seed, same trace, same report — byte for byte.
//! Parallelism lives one level up: independent sweep points fan out
//! across OS threads in `core::experiments::service_load`, each with its
//! own cloned backends.

use crate::event::EventHeap;
use crate::persist::{audit_record, persist_record};
use crate::queue::{Admission, AdmissionQueue, OverloadPolicy};
use crate::workload::Request;
use fakeaudit_analytics::{OnlineService, ServiceError, ServiceResponse};
use fakeaudit_detectors::{FollowerAuditor, ToolId};
use fakeaudit_store::SharedWriter;
use fakeaudit_telemetry::analyze::names;
use fakeaudit_telemetry::{SloMonitor, SpanId, Telemetry, TraceContext};
use fakeaudit_twittersim::{AccountId, Platform};
use std::sync::OnceLock;

/// Anything that can serve one audit request for a fixed tool.
///
/// The simulator boxes backends so the four tools — four distinct engine
/// types — can share one worker-pool implementation. The blanket impl
/// below covers every `OnlineService`.
pub trait AuditBackend {
    /// The tool this backend fronts.
    fn tool(&self) -> ToolId;
    /// Serves one request at the platform's current time.
    ///
    /// # Errors
    ///
    /// Propagates the service's [`ServiceError`] (quota, audit failure).
    fn serve(
        &mut self,
        platform: &Platform,
        target: AccountId,
    ) -> Result<ServiceResponse, ServiceError>;
    /// [`AuditBackend::serve`] with a causal position: backends that
    /// trace (an `OnlineService`) attach their `service.request` subtree
    /// under `ctx` — the simulator passes its open `server.service` span
    /// here. The default implementation ignores the context, so scripted
    /// test backends need not care.
    ///
    /// # Errors
    ///
    /// As [`AuditBackend::serve`].
    fn serve_traced(
        &mut self,
        platform: &Platform,
        target: AccountId,
        ctx: &TraceContext,
    ) -> Result<ServiceResponse, ServiceError> {
        let _ = ctx;
        self.serve(platform, target)
    }
    /// [`AuditBackend::serve_traced`] with the simulator's event-loop
    /// clock (seconds since run start). Backends with time-dependent
    /// state — an `OnlineService`'s circuit breaker cools down in wall
    /// time — need the advancing server clock, because the platform clock
    /// is frozen for the whole run. The default ignores it.
    ///
    /// # Errors
    ///
    /// As [`AuditBackend::serve`].
    fn serve_traced_at(
        &mut self,
        platform: &Platform,
        target: AccountId,
        ctx: &TraceContext,
        now_secs: f64,
    ) -> Result<ServiceResponse, ServiceError> {
        let _ = now_secs;
        self.serve_traced(platform, target, ctx)
    }
    /// The degrade-to-stale answer, if any report for `target` exists.
    fn serve_stale(&self, target: AccountId) -> Option<ServiceResponse>;
    /// The current circuit-breaker state, for backends that run one (an
    /// armed `OnlineService`). `None` means no breaker — scripted test
    /// backends and unarmed services. Surfaced so operational endpoints
    /// (`/healthz`, `/debug/vars`) can report breaker health without
    /// reaching into worker threads.
    fn breaker_state(&self) -> Option<fakeaudit_analytics::BreakerState> {
        None
    }
}

impl<A: FollowerAuditor> AuditBackend for OnlineService<A> {
    fn tool(&self) -> ToolId {
        OnlineService::tool(self)
    }

    fn serve(
        &mut self,
        platform: &Platform,
        target: AccountId,
    ) -> Result<ServiceResponse, ServiceError> {
        self.request(platform, target)
    }

    fn serve_traced(
        &mut self,
        platform: &Platform,
        target: AccountId,
        ctx: &TraceContext,
    ) -> Result<ServiceResponse, ServiceError> {
        self.request_in(platform, target, ctx)
    }

    fn serve_traced_at(
        &mut self,
        platform: &Platform,
        target: AccountId,
        ctx: &TraceContext,
        now_secs: f64,
    ) -> Result<ServiceResponse, ServiceError> {
        let breaker_now = platform.now().as_secs() as f64 + now_secs;
        self.request_in_at(platform, target, ctx, breaker_now)
    }

    fn serve_stale(&self, target: AccountId) -> Option<ServiceResponse> {
        OnlineService::serve_stale(self, target)
    }

    fn breaker_state(&self) -> Option<fakeaudit_analytics::BreakerState> {
        self.breaker().map(|b| b.state())
    }
}

/// Worker-pool and admission-control knobs, shared by every tool server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Concurrent workers per tool.
    pub workers_per_tool: usize,
    /// Bounded admission-queue capacity per tool.
    pub queue_capacity: usize,
    /// What to do when the queue is full.
    pub policy: OverloadPolicy,
    /// Simulated seconds a degraded (stale-cache) answer takes — no worker
    /// is occupied, it is a straight cache read.
    pub degraded_secs: f64,
    /// End-to-end deadline: a queued request whose wait already exceeds
    /// this when a worker frees up is dropped (the client hung up)
    /// instead of served. `None` disables expiry. Under retry storms this
    /// is what turns unbounded queue collapse into bounded shedding.
    pub deadline_secs: Option<f64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers_per_tool: 2,
            queue_capacity: 8,
            policy: OverloadPolicy::Shed,
            degraded_secs: 0.5,
            deadline_secs: None,
        }
    }
}

/// How one request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Served by a worker.
    Completed {
        /// Whether the service answered from its (fresh) cache.
        cached: bool,
    },
    /// Served a stale cached report under the degrade policy.
    Degraded,
    /// Refused at admission (503).
    Shed,
    /// Dropped from the queue after its end-to-end deadline elapsed.
    Expired,
    /// A worker picked it up but the service errored (quota, audit).
    Failed,
}

impl RequestOutcome {
    /// Label used in metric labels and tables.
    pub fn label(&self) -> &'static str {
        match self {
            RequestOutcome::Completed { .. } => "completed",
            RequestOutcome::Degraded => "degraded",
            RequestOutcome::Shed => "shed",
            RequestOutcome::Expired => "expired",
            RequestOutcome::Failed => "failed",
        }
    }
}

/// The full story of one request through the server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestRecord {
    /// Trace id of the request.
    pub id: u64,
    /// Which tool it asked.
    pub tool: ToolId,
    /// The audited account.
    pub target: AccountId,
    /// Arrival time (seconds).
    pub arrived: f64,
    /// When a worker (or the degrade path) picked it up; `None` if shed.
    pub started: Option<f64>,
    /// When the response left; `None` if shed.
    pub finished: Option<f64>,
    /// How it ended.
    pub outcome: RequestOutcome,
}

impl RequestRecord {
    /// Seconds spent waiting in the admission queue (0 for shed requests).
    pub fn queue_wait(&self) -> f64 {
        self.started.map_or(0.0, |s| s - self.arrived)
    }

    /// Seconds of actual service (0 for shed requests).
    pub fn service_secs(&self) -> f64 {
        match (self.started, self.finished) {
            (Some(s), Some(f)) => f - s,
            _ => 0.0,
        }
    }

    /// End-to-end latency as the client saw it; `None` if shed.
    pub fn latency(&self) -> Option<f64> {
        self.finished.map(|f| f - self.arrived)
    }

    /// Whether the client got an answer (completed or degraded).
    pub fn answered(&self) -> bool {
        matches!(
            self.outcome,
            RequestOutcome::Completed { .. } | RequestOutcome::Degraded
        )
    }
}

/// Per-tool aggregate counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ToolSummary {
    /// The tool.
    pub tool: Option<ToolId>,
    /// Requests that arrived for this tool.
    pub offered: u64,
    /// Requests served by a worker.
    pub completed: u64,
    /// Requests answered from stale cache under the degrade policy.
    pub degraded: u64,
    /// Requests refused at admission.
    pub shed: u64,
    /// Requests dropped in queue past the end-to-end deadline.
    pub expired: u64,
    /// Requests that reached a worker but errored.
    pub failed: u64,
    /// Completed requests the service answered from its fresh cache.
    pub cache_hits: u64,
    /// High-water mark of the bounded admission queue.
    pub max_queue_depth: usize,
    /// High-water mark of the blocked overflow lane (Block policy).
    pub max_blocked: usize,
    /// Total worker-busy seconds.
    pub busy_secs: f64,
}

/// Everything the simulation produced: per-request records plus per-tool
/// aggregates.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// One record per offered request, in completion-event order.
    pub records: Vec<RequestRecord>,
    /// One summary per registered tool, in registration order.
    pub per_tool: Vec<ToolSummary>,
    /// The configuration the run used.
    pub config: ServerConfig,
    /// Time of the last completion (or last arrival if nothing completed).
    pub makespan: f64,
    /// Ascending end-to-end latencies, sorted once on first use.
    sorted_latencies: OnceLock<Vec<f64>>,
    /// Ascending queue waits, sorted once on first use.
    sorted_queue_waits: OnceLock<Vec<f64>>,
}

impl ServerReport {
    /// Builds a report from raw per-request records — the constructor the
    /// wall-clock gateway uses, so live serving and the simulator share
    /// one aggregation/percentile implementation instead of forking it.
    ///
    /// Per-tool summaries are derived from the records (first-seen tool
    /// order); queue high-water marks are not derivable from records
    /// alone and start at zero — callers that track them (the gateway's
    /// dispatcher does) patch `per_tool` afterwards.
    pub fn from_records(records: Vec<RequestRecord>, config: ServerConfig, makespan: f64) -> Self {
        let mut per_tool: Vec<ToolSummary> = Vec::new();
        for r in &records {
            let summary = match per_tool.iter_mut().find(|t| t.tool == Some(r.tool)) {
                Some(existing) => existing,
                None => {
                    per_tool.push(ToolSummary {
                        tool: Some(r.tool),
                        ..ToolSummary::default()
                    });
                    per_tool.last_mut().expect("just pushed")
                }
            };
            summary.offered += 1;
            match r.outcome {
                RequestOutcome::Completed { cached } => {
                    summary.completed += 1;
                    if cached {
                        summary.cache_hits += 1;
                    }
                }
                RequestOutcome::Degraded => summary.degraded += 1,
                RequestOutcome::Shed => summary.shed += 1,
                RequestOutcome::Expired => summary.expired += 1,
                RequestOutcome::Failed => summary.failed += 1,
            }
            summary.busy_secs += r.service_secs();
        }
        Self {
            records,
            per_tool,
            config,
            makespan,
            sorted_latencies: OnceLock::new(),
            sorted_queue_waits: OnceLock::new(),
        }
    }

    fn totals(&self, f: impl Fn(&ToolSummary) -> u64) -> u64 {
        self.per_tool.iter().map(f).sum()
    }

    /// Requests offered across all tools.
    pub fn offered(&self) -> u64 {
        self.totals(|t| t.offered)
    }

    /// Requests completed by workers across all tools.
    pub fn completed(&self) -> u64 {
        self.totals(|t| t.completed)
    }

    /// Requests served stale across all tools.
    pub fn degraded(&self) -> u64 {
        self.totals(|t| t.degraded)
    }

    /// Requests shed across all tools.
    pub fn shed(&self) -> u64 {
        self.totals(|t| t.shed)
    }

    /// Requests expired in queue across all tools.
    pub fn expired(&self) -> u64 {
        self.totals(|t| t.expired)
    }

    /// Requests that reached a worker and errored.
    pub fn failed(&self) -> u64 {
        self.totals(|t| t.failed)
    }

    /// Answered requests per second of makespan (completed + degraded).
    pub fn throughput(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        (self.completed() + self.degraded()) as f64 / self.makespan
    }

    /// Fraction of offered requests shed.
    pub fn shed_rate(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            return 0.0;
        }
        self.shed() as f64 / offered as f64
    }

    /// Ascending end-to-end latencies, computed once and cached.
    fn sorted_latencies(&self) -> &[f64] {
        self.sorted_latencies.get_or_init(|| {
            let mut v: Vec<f64> = self.records.iter().filter_map(|r| r.latency()).collect();
            v.sort_by(f64::total_cmp);
            v
        })
    }

    /// Ascending queue waits of every started request, cached like
    /// [`ServerReport::sorted_latencies`].
    fn sorted_queue_waits(&self) -> &[f64] {
        self.sorted_queue_waits.get_or_init(|| {
            let mut v: Vec<f64> = self
                .records
                .iter()
                .filter(|r| r.started.is_some())
                .map(|r| r.queue_wait())
                .collect();
            v.sort_by(f64::total_cmp);
            v
        })
    }

    /// Sorted end-to-end latencies of every answered request.
    pub fn latencies(&self) -> Vec<f64> {
        self.sorted_latencies().to_vec()
    }

    /// Exact nearest-rank percentile of answered-request latency
    /// (`q` in `[0, 1]`); 0.0 when nothing was answered.
    pub fn latency_percentile(&self, q: f64) -> f64 {
        percentile(self.sorted_latencies(), q)
    }

    /// Exact nearest-rank percentile of queue wait over answered requests.
    pub fn queue_wait_percentile(&self, q: f64) -> f64 {
        percentile(self.sorted_queue_waits(), q)
    }

    /// Mean worker utilisation across tools in `[0, 1]`.
    pub fn utilisation(&self) -> f64 {
        if self.makespan <= 0.0 || self.per_tool.is_empty() {
            return 0.0;
        }
        let busy: f64 = self.per_tool.iter().map(|t| t.busy_secs).sum();
        let span = self.makespan * (self.config.workers_per_tool * self.per_tool.len()) as f64;
        (busy / span).min(1.0)
    }

    /// Mirrors a finished run into `telemetry` after the fact: a flat
    /// `server.request` span per *answered* request, a `server.shed` /
    /// `server.failed` point per refused or errored one (so every offered
    /// request appears in the trace exactly once), the
    /// `server.queue_wait_secs` / `server.service_secs` /
    /// `server.latency_secs` histograms, and per-tool outcome counters.
    ///
    /// Spans recorded here carry no identity — for causal trees built
    /// live along the request path, construct the simulator with
    /// [`ServerSim::with_telemetry`] instead.
    pub fn record_into(&self, telemetry: &Telemetry) {
        if !telemetry.is_enabled() {
            return;
        }
        for r in &self.records {
            let tool = r.tool.abbrev();
            let target = r.target.to_string();
            let labels = [("tool", tool), ("outcome", r.outcome.label())];
            match r.outcome {
                RequestOutcome::Completed { .. } | RequestOutcome::Degraded => {
                    if let (Some(start), Some(end)) = (r.started, r.finished) {
                        telemetry.span(names::SERVER_REQUEST, start, end, &labels);
                        observe_request(telemetry, tool, r);
                    }
                }
                RequestOutcome::Shed => {
                    telemetry.event(
                        names::SERVER_SHED,
                        r.arrived,
                        &[("tool", tool), ("target", &target)],
                    );
                }
                RequestOutcome::Expired => {
                    telemetry.event(
                        names::SERVER_EXPIRED,
                        r.finished.unwrap_or(r.arrived),
                        &[("tool", tool), ("target", &target)],
                    );
                }
                RequestOutcome::Failed => {
                    telemetry.event(
                        names::SERVER_FAILED,
                        r.finished.unwrap_or(r.arrived),
                        &[("tool", tool), ("target", &target)],
                    );
                }
            }
            telemetry.counter_add("server.requests", &labels, 1);
        }
        record_tool_totals(telemetry, &self.per_tool);
    }
}

/// Per-request latency histograms (`server.queue_wait_secs`,
/// `server.service_secs`, `server.latency_secs`) shared by the live
/// simulator path, the post-hoc [`ServerReport::record_into`] path, and
/// the wall-clock gateway — one metric vocabulary for both worlds.
pub fn observe_request(telemetry: &Telemetry, tool: &str, r: &RequestRecord) {
    let tool_only = [("tool", tool)];
    telemetry.observe("server.queue_wait_secs", &tool_only, r.queue_wait());
    telemetry.observe("server.service_secs", &tool_only, r.service_secs());
    if let Some(latency) = r.latency() {
        telemetry.observe("server.latency_secs", &tool_only, latency);
    }
}

/// Per-tool end-of-run counters and gauges, shared by the live and
/// post-hoc paths.
fn record_tool_totals(telemetry: &Telemetry, per_tool: &[ToolSummary]) {
    for t in per_tool {
        let Some(tool) = t.tool else { continue };
        let labels = [("tool", tool.abbrev())];
        telemetry.counter_add("server.offered", &labels, t.offered);
        telemetry.counter_add("server.completed", &labels, t.completed);
        telemetry.counter_add("server.degraded", &labels, t.degraded);
        telemetry.counter_add("server.shed", &labels, t.shed);
        if t.expired > 0 {
            telemetry.counter_add("server.expired", &labels, t.expired);
        }
        telemetry.counter_add("server.failed", &labels, t.failed);
        telemetry.gauge_set("server.max_queue_depth", &labels, t.max_queue_depth as f64);
        telemetry.gauge_set("server.max_blocked", &labels, t.max_blocked as f64);
        telemetry.gauge_set("server.busy_secs", &labels, t.busy_secs);
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// One tool's worker pool + admission queue + backend.
struct ToolServer {
    backend: Box<dyn AuditBackend>,
    queue: AdmissionQueue<Request>,
    idle_workers: usize,
    summary: ToolSummary,
}

/// Events driving the simulation.
enum Event {
    /// A client request arrives.
    Arrival(Request),
    /// A worker at `server` finishes its current request.
    WorkerDone { server: usize },
}

/// The discrete-event concurrent service simulator.
///
/// Register one backend per tool, then [`ServerSim::run`] a trace from
/// [`workload::generate`](crate::workload::generate).
pub struct ServerSim<'p> {
    platform: &'p Platform,
    config: ServerConfig,
    servers: Vec<ToolServer>,
    records: Vec<RequestRecord>,
    makespan: f64,
    telemetry: Telemetry,
    root: TraceContext,
    persist: Option<SharedWriter>,
    monitor: Option<SloMonitor>,
}

impl<'p> ServerSim<'p> {
    /// A simulator over `platform` with the given pool configuration.
    pub fn new(platform: &'p Platform, config: ServerConfig) -> Self {
        Self::with_telemetry(platform, config, Telemetry::disabled())
    }

    /// A simulator that traces causally as it runs: every answered
    /// request becomes a `server.request` span with `server.queue_wait`
    /// and `server.service` children, the backend's own subtree (API
    /// crawl, cache lookup, detector pass) hangs under `server.service`,
    /// and refused or errored requests become `server.shed` /
    /// `server.failed` points. Metrics match what
    /// [`ServerReport::record_into`] would have produced; do not call
    /// both, or everything doubles.
    pub fn with_telemetry(
        platform: &'p Platform,
        config: ServerConfig,
        telemetry: Telemetry,
    ) -> Self {
        let root = telemetry.root_context();
        Self {
            platform,
            config,
            servers: Vec::new(),
            records: Vec::new(),
            makespan: 0.0,
            telemetry,
            root,
            persist: None,
            monitor: None,
        }
    }

    /// Attaches a streaming SLO monitor driven on the sim clock: the
    /// event loop feeds it one observation per finished request (keyed
    /// by tool abbreviation) and ticks it every
    /// [`MonitorConfig::bucket_secs`](fakeaudit_telemetry::MonitorConfig::bucket_secs)
    /// of simulated time, then runs the ticks past the makespan until
    /// every window has drained, so alerts raised by the tail of the
    /// trace still resolve deterministically.
    pub fn with_monitor(&mut self, monitor: SloMonitor) -> &mut Self {
        self.monitor = Some(monitor);
        self
    }

    /// Persists every answered request (completed or degraded) into the
    /// columnar history store behind `writer`, stamped on the epoch
    /// clock (platform epoch + server time). The simulator appends only;
    /// flushing the tail buffer is the caller's job — it owns the writer
    /// lifecycle and may share it across several runs.
    pub fn persist_into(&mut self, writer: SharedWriter) -> &mut Self {
        self.persist = Some(writer);
        self
    }

    /// Appends one answered request to the history store, if persisting.
    fn persist_completion(
        &self,
        req: &Request,
        finished: f64,
        outcome_label: &str,
        resp: &ServiceResponse,
    ) {
        if let Some(writer) = &self.persist {
            let epoch = self.platform.now().as_secs() as f64;
            let record = audit_record(req.target, epoch + finished, outcome_label, req.id, resp);
            persist_record(writer, &self.telemetry, record);
        }
    }

    /// Registers a backend; requests for its tool route to its pool.
    pub fn register(&mut self, backend: Box<dyn AuditBackend>) -> &mut Self {
        let tool = backend.tool();
        self.servers.push(ToolServer {
            backend,
            queue: AdmissionQueue::new(self.config.queue_capacity, self.config.policy),
            idle_workers: self.config.workers_per_tool.max(1),
            summary: ToolSummary {
                tool: Some(tool),
                ..ToolSummary::default()
            },
        });
        self
    }

    fn server_for(&self, tool: ToolId) -> Option<usize> {
        self.servers.iter().position(|s| s.backend.tool() == tool)
    }

    /// Runs the trace to completion and returns the report.
    ///
    /// Requests for tools with no registered backend are shed (a 404 is a
    /// shed as far as the client is concerned).
    pub fn run(mut self, trace: &[Request]) -> ServerReport {
        let mut heap = EventHeap::new();
        for req in trace {
            heap.push(req.at, Event::Arrival(*req));
        }
        let tick_secs = self
            .monitor
            .as_ref()
            .map(|m| m.config().bucket_secs.max(f64::EPSILON));
        let mut next_tick = tick_secs.unwrap_or(0.0);
        while let Some((now, event)) = heap.pop() {
            if let (Some(monitor), Some(step)) = (&self.monitor, tick_secs) {
                // The monitor sees time advance in bucket-sized steps,
                // interleaved with the events in heap order.
                while next_tick <= now {
                    monitor.tick(next_tick);
                    next_tick += step;
                }
            }
            self.makespan = self.makespan.max(now);
            match event {
                Event::Arrival(req) => self.on_arrival(now, req, &mut heap),
                Event::WorkerDone { server } => {
                    self.servers[server].idle_workers += 1;
                    self.drain_queue(now, server, &mut heap);
                }
            }
        }
        if let (Some(monitor), Some(step)) = (&self.monitor, tick_secs) {
            // Drain: tick until every window has emptied and every
            // clear dwell could have been served, so in-flight alerts
            // resolve before the report is cut.
            let drain = monitor
                .config()
                .rules
                .iter()
                .map(|r| r.long_secs.max(r.short_secs) + r.pending_secs + r.clear_secs)
                .fold(0.0, f64::max);
            let end = self.makespan + drain + step;
            while next_tick <= end {
                monitor.tick(next_tick);
                next_tick += step;
            }
        }
        let report = ServerReport {
            records: self.records,
            per_tool: self
                .servers
                .into_iter()
                .map(|s| ToolSummary {
                    max_queue_depth: s.queue.max_depth(),
                    max_blocked: s.queue.max_overflow(),
                    ..s.summary
                })
                .collect(),
            config: self.config,
            makespan: self.makespan,
            sorted_latencies: OnceLock::new(),
            sorted_queue_waits: OnceLock::new(),
        };
        if self.telemetry.is_enabled() {
            for r in &report.records {
                let tool = r.tool.abbrev();
                if r.answered() {
                    observe_request(&self.telemetry, tool, r);
                }
                let labels = [("tool", tool), ("outcome", r.outcome.label())];
                self.telemetry.counter_add("server.requests", &labels, 1);
            }
            record_tool_totals(&self.telemetry, &report.per_tool);
        }
        report
    }

    fn on_arrival(&mut self, now: f64, req: Request, heap: &mut EventHeap<Event>) {
        let Some(idx) = self.server_for(req.tool) else {
            self.trace_refusal(names::SERVER_SHED, now, &req);
            self.records.push(RequestRecord {
                id: req.id,
                tool: req.tool,
                target: req.target,
                arrived: now,
                started: None,
                finished: None,
                outcome: RequestOutcome::Shed,
            });
            self.observe_monitor(req.tool, now, None, false, None);
            return;
        };
        self.servers[idx].summary.offered += 1;
        if self.servers[idx].idle_workers > 0 {
            // An idle worker implies an empty queue — serve immediately.
            self.start_service(now, idx, req, heap);
            return;
        }
        match self.servers[idx].queue.offer(req) {
            Admission::Enqueued | Admission::Blocked => {}
            Admission::Overloaded => self.overloaded(now, idx, req),
        }
    }

    /// Feeds one finished request to the attached monitor, if any.
    /// Routes are keyed by tool abbreviation, matching the metric
    /// labels; `ok` is the client-visible verdict (shed, failed and
    /// expired are not ok) and `root` the request's trace-tree root for
    /// the tail sampler.
    fn observe_monitor(
        &self,
        tool: ToolId,
        end_secs: f64,
        latency_secs: Option<f64>,
        ok: bool,
        root: Option<SpanId>,
    ) {
        if let Some(monitor) = &self.monitor {
            monitor.observe_request(tool.abbrev(), end_secs, latency_secs, ok, root);
        }
    }

    /// Records a `server.shed` / `server.failed` point at the trace root.
    fn trace_refusal(&self, name: &str, t: f64, req: &Request) {
        if self.root.is_enabled() {
            let target = req.target.to_string();
            self.root
                .point(name, t, &[("tool", req.tool.abbrev()), ("target", &target)]);
        }
    }

    /// Full queue, non-parking policy: degrade if possible, shed otherwise.
    fn overloaded(&mut self, now: f64, idx: usize, req: Request) {
        let server = &mut self.servers[idx];
        if server.queue.policy() == OverloadPolicy::DegradeStale {
            if let Some(resp) = server.backend.serve_stale(req.target) {
                let finished = now + self.config.degraded_secs;
                self.makespan = self.makespan.max(finished);
                server.summary.degraded += 1;
                let mut root_id = None;
                if self.root.is_enabled() {
                    let tool = req.tool.abbrev();
                    let target = req.target.to_string();
                    let req_ctx = self.root.child();
                    root_id = req_ctx.span_id();
                    req_ctx.span(
                        names::SERVER_SERVICE,
                        now,
                        finished,
                        &[("tool", tool), ("source", "stale")],
                    );
                    req_ctx.record(
                        names::SERVER_REQUEST,
                        req.at,
                        finished,
                        &[("tool", tool), ("target", &target), ("outcome", "degraded")],
                    );
                }
                self.records.push(RequestRecord {
                    id: req.id,
                    tool: req.tool,
                    target: req.target,
                    arrived: req.at,
                    started: Some(now),
                    finished: Some(finished),
                    outcome: RequestOutcome::Degraded,
                });
                self.persist_completion(&req, finished, "degraded", &resp);
                self.observe_monitor(req.tool, finished, Some(finished - req.at), true, root_id);
                return;
            }
        }
        server.summary.shed += 1;
        self.trace_refusal(names::SERVER_SHED, now, &req);
        self.records.push(RequestRecord {
            id: req.id,
            tool: req.tool,
            target: req.target,
            arrived: req.at,
            started: None,
            finished: None,
            outcome: RequestOutcome::Shed,
        });
        self.observe_monitor(req.tool, now, None, false, None);
    }

    /// Occupies one worker with `req`. Failures are instantaneous, so the
    /// worker stays idle and the caller's drain loop keeps pulling.
    ///
    /// When tracing, the span tree for a worker-served request is built
    /// here: `req_ctx` becomes the `server.request` span, `svc_ctx` the
    /// `server.service` span the backend nests its own subtree under.
    /// Both are recorded only once the outcome is known, so a failed
    /// request leaves a `server.failed` point and no half-open spans.
    fn start_service(&mut self, now: f64, idx: usize, req: Request, heap: &mut EventHeap<Event>) {
        let req_ctx = self.root.child();
        let svc_ctx = req_ctx.child();
        // Backends stamp their spans on the platform's epoch clock while
        // the server runs from 0, so the context handed down is rebased
        // onto the server clock: the backend subtree then nests exactly
        // inside the `server.service` interval recorded below.
        let backend_ctx = svc_ctx
            .clone()
            .rebased(now - self.platform.now().as_secs() as f64);
        let server = &mut self.servers[idx];
        match server
            .backend
            .serve_traced_at(self.platform, req.target, &backend_ctx, now)
        {
            Ok(resp) => {
                server.idle_workers -= 1;
                let finished = now + resp.response_secs;
                server.summary.completed += 1;
                server.summary.busy_secs += resp.response_secs;
                if resp.served_from_cache {
                    server.summary.cache_hits += 1;
                }
                if req_ctx.is_enabled() {
                    let tool = req.tool.abbrev();
                    let target = req.target.to_string();
                    req_ctx.span(names::SERVER_QUEUE_WAIT, req.at, now, &[("tool", tool)]);
                    let source = if resp.served_from_cache {
                        "cache"
                    } else {
                        "fresh"
                    };
                    svc_ctx.record(
                        names::SERVER_SERVICE,
                        now,
                        finished,
                        &[("tool", tool), ("source", source)],
                    );
                    req_ctx.record(
                        names::SERVER_REQUEST,
                        req.at,
                        finished,
                        &[
                            ("tool", tool),
                            ("target", &target),
                            ("outcome", "completed"),
                        ],
                    );
                }
                self.records.push(RequestRecord {
                    id: req.id,
                    tool: req.tool,
                    target: req.target,
                    arrived: req.at,
                    started: Some(now),
                    finished: Some(finished),
                    outcome: RequestOutcome::Completed {
                        cached: resp.served_from_cache,
                    },
                });
                self.persist_completion(&req, finished, "completed", &resp);
                self.observe_monitor(
                    req.tool,
                    finished,
                    Some(finished - req.at),
                    true,
                    req_ctx.span_id(),
                );
                heap.push(finished, Event::WorkerDone { server: idx });
            }
            Err(_) => {
                server.summary.failed += 1;
                self.trace_refusal(names::SERVER_FAILED, now, &req);
                self.records.push(RequestRecord {
                    id: req.id,
                    tool: req.tool,
                    target: req.target,
                    arrived: req.at,
                    started: Some(now),
                    finished: Some(now),
                    outcome: RequestOutcome::Failed,
                });
                // The request and service span ids were allocated before
                // the backend ran, so any API-fault evidence the backend
                // traced hangs under them: hand the monitor that tree as
                // the failure exemplar.
                self.observe_monitor(req.tool, now, Some(now - req.at), false, req_ctx.span_id());
            }
        }
    }

    /// Hands queued requests to idle workers until one side runs out.
    /// With a deadline configured, requests that already waited past it
    /// are dropped here — the client stopped listening, so serving them
    /// would burn a worker on a dead connection.
    fn drain_queue(&mut self, now: f64, idx: usize, heap: &mut EventHeap<Event>) {
        while self.servers[idx].idle_workers > 0 {
            let Some(req) = self.servers[idx].queue.pop() else {
                break;
            };
            if self.config.deadline_secs.is_some_and(|d| now - req.at > d) {
                self.servers[idx].summary.expired += 1;
                self.trace_refusal(names::SERVER_EXPIRED, now, &req);
                self.records.push(RequestRecord {
                    id: req.id,
                    tool: req.tool,
                    target: req.target,
                    arrived: req.at,
                    started: None,
                    finished: Some(now),
                    outcome: RequestOutcome::Expired,
                });
                self.observe_monitor(req.tool, now, None, false, None);
                continue;
            }
            self.start_service(now, idx, req, heap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fakeaudit_detectors::{AuditOutcome, VerdictCounts};
    use fakeaudit_telemetry::TraceEvent;
    use fakeaudit_twittersim::SimTime;

    /// A backend with a scripted constant service time — no audits, no
    /// population, pure queueing behaviour.
    struct FakeBackend {
        tool: ToolId,
        service_secs: f64,
        known: Vec<AccountId>,
    }

    impl FakeBackend {
        fn new(tool: ToolId, service_secs: f64) -> Self {
            Self {
                tool,
                service_secs,
                known: Vec::new(),
            }
        }

        fn response(&self, target: AccountId, cached: bool) -> ServiceResponse {
            ServiceResponse {
                outcome: AuditOutcome {
                    tool_name: self.tool.abbrev().into(),
                    target,
                    assessed: vec![],
                    counts: VerdictCounts::default(),
                    audited_at: SimTime::EPOCH,
                    api_elapsed_secs: self.service_secs,
                    api_calls: 1,
                },
                response_secs: self.service_secs,
                served_from_cache: cached,
                assessed_at: SimTime::EPOCH,
            }
        }
    }

    impl AuditBackend for FakeBackend {
        fn tool(&self) -> ToolId {
            self.tool
        }

        fn serve(
            &mut self,
            _platform: &Platform,
            target: AccountId,
        ) -> Result<ServiceResponse, ServiceError> {
            self.known.push(target);
            Ok(self.response(target, false))
        }

        fn serve_stale(&self, target: AccountId) -> Option<ServiceResponse> {
            self.known
                .contains(&target)
                .then(|| self.response(target, true))
        }
    }

    fn request(id: u64, at: f64, tool: ToolId) -> Request {
        Request {
            id,
            at,
            tool,
            target: AccountId(id),
        }
    }

    fn sim(platform: &Platform, config: ServerConfig) -> ServerSim<'_> {
        let mut s = ServerSim::new(platform, config);
        s.register(Box::new(FakeBackend::new(ToolId::FakeClassifier, 10.0)));
        s
    }

    #[test]
    fn idle_worker_serves_immediately() {
        let platform = Platform::new();
        let report =
            sim(&platform, ServerConfig::default()).run(&[request(0, 5.0, ToolId::FakeClassifier)]);
        assert_eq!(report.completed(), 1);
        let r = &report.records[0];
        assert_eq!(r.queue_wait(), 0.0);
        assert_eq!(r.latency(), Some(10.0));
        assert_eq!(report.makespan, 15.0);
    }

    #[test]
    fn queue_wait_accrues_when_workers_busy() {
        let platform = Platform::new();
        let config = ServerConfig {
            workers_per_tool: 1,
            ..ServerConfig::default()
        };
        // Two simultaneous arrivals, one worker, 10 s service: the second
        // request waits 10 s in the queue.
        let report = sim(&platform, config).run(&[
            request(0, 0.0, ToolId::FakeClassifier),
            request(1, 0.0, ToolId::FakeClassifier),
        ]);
        assert_eq!(report.completed(), 2);
        let waits: Vec<f64> = report.records.iter().map(|r| r.queue_wait()).collect();
        assert_eq!(waits, vec![0.0, 10.0]);
        assert_eq!(report.makespan, 20.0);
    }

    #[test]
    fn shed_policy_refuses_past_capacity() {
        let platform = Platform::new();
        let config = ServerConfig {
            workers_per_tool: 1,
            queue_capacity: 1,
            policy: OverloadPolicy::Shed,
            ..ServerConfig::default()
        };
        // Three simultaneous arrivals: one in service, one queued, one shed.
        let trace: Vec<Request> = (0..3)
            .map(|i| request(i, 0.0, ToolId::FakeClassifier))
            .collect();
        let report = sim(&platform, config).run(&trace);
        assert_eq!(report.completed(), 2);
        assert_eq!(report.shed(), 1);
        assert_eq!(report.offered(), 3);
        assert!((report.shed_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn block_policy_answers_everything() {
        let platform = Platform::new();
        let config = ServerConfig {
            workers_per_tool: 1,
            queue_capacity: 1,
            policy: OverloadPolicy::Block,
            ..ServerConfig::default()
        };
        let trace: Vec<Request> = (0..6)
            .map(|i| request(i, 0.0, ToolId::FakeClassifier))
            .collect();
        let report = sim(&platform, config).run(&trace);
        assert_eq!(report.completed(), 6);
        assert_eq!(report.shed(), 0);
        assert_eq!(report.per_tool[0].max_queue_depth, 1);
        assert!(report.per_tool[0].max_blocked >= 1);
        // 6 sequential 10 s services.
        assert_eq!(report.makespan, 60.0);
    }

    #[test]
    fn degrade_serves_stale_when_known_sheds_when_cold() {
        let platform = Platform::new();
        let config = ServerConfig {
            workers_per_tool: 1,
            queue_capacity: 1,
            policy: OverloadPolicy::DegradeStale,
            degraded_secs: 0.5,
            ..ServerConfig::default()
        };
        // First wave fills worker + queue with targets 0 and 1; target 0
        // repeats (known → degraded) and target 9 is cold (→ shed).
        let trace = vec![
            request(0, 0.0, ToolId::FakeClassifier),
            request(1, 0.0, ToolId::FakeClassifier),
            Request {
                id: 2,
                at: 1.0,
                tool: ToolId::FakeClassifier,
                target: AccountId(0),
            },
            request(9, 2.0, ToolId::FakeClassifier),
        ];
        let report = sim(&platform, config).run(&trace);
        assert_eq!(report.completed(), 2);
        assert_eq!(report.degraded(), 1);
        assert_eq!(report.shed(), 1);
        let degraded = report
            .records
            .iter()
            .find(|r| r.outcome == RequestOutcome::Degraded)
            .unwrap();
        assert_eq!(degraded.latency(), Some(0.5));
    }

    #[test]
    fn per_tool_fifo_start_order() {
        let platform = Platform::new();
        let config = ServerConfig {
            workers_per_tool: 2,
            queue_capacity: 8,
            policy: OverloadPolicy::Block,
            ..ServerConfig::default()
        };
        let trace: Vec<Request> = (0..12)
            .map(|i| request(i, i as f64 * 0.1, ToolId::FakeClassifier))
            .collect();
        let report = sim(&platform, config).run(&trace);
        let mut started: Vec<(f64, u64)> = report
            .records
            .iter()
            .filter_map(|r| r.started.map(|s| (s, r.id)))
            .collect();
        started.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let ids: Vec<u64> = started.iter().map(|&(_, id)| id).collect();
        assert_eq!(
            ids,
            (0..12).collect::<Vec<_>>(),
            "service starts follow arrival order"
        );
    }

    #[test]
    fn unregistered_tool_is_shed() {
        let platform = Platform::new();
        let report =
            sim(&platform, ServerConfig::default()).run(&[request(0, 0.0, ToolId::Socialbakers)]);
        assert_eq!(report.shed(), 0, "unregistered tools are not offered");
        assert_eq!(report.records[0].outcome, RequestOutcome::Shed);
    }

    #[test]
    fn conservation_under_every_policy() {
        let platform = Platform::new();
        for policy in OverloadPolicy::ALL {
            let config = ServerConfig {
                workers_per_tool: 1,
                queue_capacity: 2,
                policy,
                ..ServerConfig::default()
            };
            let trace: Vec<Request> = (0..20)
                .map(|i| request(i, (i / 4) as f64, ToolId::FakeClassifier))
                .collect();
            let report = sim(&platform, config).run(&trace);
            assert_eq!(
                report.completed()
                    + report.degraded()
                    + report.shed()
                    + report.expired()
                    + report.failed(),
                report.offered(),
                "{policy:?}"
            );
            assert_eq!(report.records.len(), 20);
        }
    }

    #[test]
    fn deadline_expires_overwaiting_queued_requests() {
        let platform = Platform::new();
        let config = ServerConfig {
            workers_per_tool: 1,
            queue_capacity: 8,
            policy: OverloadPolicy::Block,
            deadline_secs: Some(15.0),
            ..ServerConfig::default()
        };
        // One worker, 10 s service, six simultaneous arrivals: request 0
        // serves at 0, request 1 at 10 (waited 10 ≤ 15), and the rest
        // would start at 20+ having waited past the 15 s deadline.
        let tel = Telemetry::enabled();
        let mut s = ServerSim::with_telemetry(&platform, config, tel.clone());
        s.register(Box::new(FakeBackend::new(ToolId::FakeClassifier, 10.0)));
        let trace: Vec<Request> = (0..6)
            .map(|i| request(i, 0.0, ToolId::FakeClassifier))
            .collect();
        let report = s.run(&trace);
        assert_eq!(report.completed(), 2);
        assert_eq!(report.expired(), 4);
        assert_eq!(
            report.completed() + report.expired(),
            report.offered(),
            "every request accounted"
        );
        // Expired requests leave a point each and stay out of service time.
        let events = tel.events();
        assert_eq!(
            events
                .iter()
                .filter(|e| e.name == names::SERVER_EXPIRED)
                .count(),
            4
        );
        let labels = [("tool", ToolId::FakeClassifier.abbrev())];
        assert_eq!(tel.snapshot().counter("server.expired", &labels), Some(4));
        // No deadline → everything completes (the seed behaviour).
        let mut s2 = ServerSim::new(
            &platform,
            ServerConfig {
                deadline_secs: None,
                ..config
            },
        );
        s2.register(Box::new(FakeBackend::new(ToolId::FakeClassifier, 10.0)));
        assert_eq!(s2.run(&trace).completed(), 6);
    }

    #[test]
    fn throughput_and_utilisation_are_sane() {
        let platform = Platform::new();
        let config = ServerConfig {
            workers_per_tool: 1,
            ..ServerConfig::default()
        };
        let trace: Vec<Request> = (0..4)
            .map(|i| request(i, 0.0, ToolId::FakeClassifier))
            .collect();
        let report = sim(&platform, config).run(&trace);
        assert!((report.throughput() - 4.0 / 40.0).abs() < 1e-12);
        assert!((report.utilisation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_records_matches_simulated_aggregates() {
        let platform = Platform::new();
        let config = ServerConfig {
            workers_per_tool: 1,
            queue_capacity: 2,
            policy: OverloadPolicy::Shed,
            ..ServerConfig::default()
        };
        let trace: Vec<Request> = (0..8)
            .map(|i| request(i, 0.0, ToolId::FakeClassifier))
            .collect();
        let simulated = sim(&platform, config).run(&trace);
        let rebuilt =
            ServerReport::from_records(simulated.records.clone(), config, simulated.makespan);
        assert_eq!(rebuilt.offered(), simulated.offered());
        assert_eq!(rebuilt.completed(), simulated.completed());
        assert_eq!(rebuilt.shed(), simulated.shed());
        assert_eq!(rebuilt.failed(), simulated.failed());
        assert_eq!(rebuilt.shed_rate(), simulated.shed_rate());
        assert_eq!(
            rebuilt.latency_percentile(0.95),
            simulated.latency_percentile(0.95)
        );
        assert_eq!(rebuilt.per_tool.len(), 1);
        assert_eq!(rebuilt.per_tool[0].tool, Some(ToolId::FakeClassifier));
        // Busy seconds are re-derived from per-record service times.
        assert!((rebuilt.per_tool[0].busy_secs - simulated.per_tool[0].busy_secs).abs() < 1e-9);
    }

    #[test]
    fn percentiles_over_latencies() {
        let platform = Platform::new();
        let config = ServerConfig {
            workers_per_tool: 1,
            queue_capacity: 8,
            policy: OverloadPolicy::Block,
            ..ServerConfig::default()
        };
        let trace: Vec<Request> = (0..5)
            .map(|i| request(i, 0.0, ToolId::FakeClassifier))
            .collect();
        let report = sim(&platform, config).run(&trace);
        // Latencies 10, 20, 30, 40, 50.
        assert_eq!(report.latency_percentile(0.5), 30.0);
        assert_eq!(report.latency_percentile(1.0), 50.0);
        assert_eq!(report.latency_percentile(0.0), 10.0);
        assert_eq!(report.queue_wait_percentile(1.0), 40.0);
    }

    /// A backend whose every serve errors — exercises the failed path.
    struct FailingBackend;

    impl AuditBackend for FailingBackend {
        fn tool(&self) -> ToolId {
            ToolId::FakeClassifier
        }

        fn serve(
            &mut self,
            _platform: &Platform,
            _target: AccountId,
        ) -> Result<ServiceResponse, ServiceError> {
            Err(ServiceError::Quota(
                fakeaudit_analytics::quota::QuotaExceeded { limit: 0, day: 0 },
            ))
        }

        fn serve_stale(&self, _target: AccountId) -> Option<ServiceResponse> {
            None
        }
    }

    #[test]
    fn live_tracing_builds_causal_request_trees() {
        let platform = Platform::new();
        let tel = Telemetry::enabled();
        let config = ServerConfig {
            workers_per_tool: 1,
            queue_capacity: 8,
            policy: OverloadPolicy::Block,
            ..ServerConfig::default()
        };
        let mut s = ServerSim::with_telemetry(&platform, config, tel.clone());
        s.register(Box::new(FakeBackend::new(ToolId::FakeClassifier, 10.0)));
        let report = s.run(&[
            request(0, 0.0, ToolId::FakeClassifier),
            request(1, 0.0, ToolId::FakeClassifier),
        ]);
        assert_eq!(report.completed(), 2);

        let events = tel.events();
        let tree = fakeaudit_telemetry::TraceTree::build(&events);
        let roots = tree.request_roots();
        assert_eq!(roots.len(), 2, "one tree per answered request");
        let mut waits = Vec::new();
        for &root in &roots {
            let ev = tree.event(root);
            assert_eq!(ev.name, names::SERVER_REQUEST);
            assert!(ev.id.is_some() && ev.parent.is_none());
            assert_eq!(ev.attr("outcome"), Some("completed"));
            let kids: Vec<&str> = tree
                .children_of(ev.id.unwrap())
                .iter()
                .map(|&i| tree.event(i).name.as_str())
                .collect();
            assert_eq!(kids, vec![names::SERVER_QUEUE_WAIT, names::SERVER_SERVICE]);
            let wait = tree
                .children_of(ev.id.unwrap())
                .iter()
                .map(|&i| tree.event(i))
                .find(|e| e.name == names::SERVER_QUEUE_WAIT)
                .unwrap();
            waits.push(wait.duration_secs());
        }
        waits.sort_by(f64::total_cmp);
        assert_eq!(waits, vec![0.0, 10.0], "second request queued 10 s");
        // Live metrics mirror the post-hoc record_into path.
        let snap = tel.snapshot();
        let labels = [("tool", ToolId::FakeClassifier.abbrev())];
        assert_eq!(snap.counter("server.completed", &labels), Some(2));
        let hist = snap.histogram("server.latency_secs", &labels).unwrap();
        assert_eq!(hist.count, 2);
    }

    #[test]
    fn live_tracing_points_refusals() {
        let platform = Platform::new();
        let tel = Telemetry::enabled();
        let config = ServerConfig {
            workers_per_tool: 1,
            queue_capacity: 1,
            policy: OverloadPolicy::Shed,
            ..ServerConfig::default()
        };
        let mut s = ServerSim::with_telemetry(&platform, config, tel.clone());
        s.register(Box::new(FakeBackend::new(ToolId::FakeClassifier, 10.0)));
        let trace: Vec<Request> = (0..3)
            .map(|i| request(i, 0.0, ToolId::FakeClassifier))
            .collect();
        let report = s.run(&trace);
        assert_eq!(report.shed(), 1);

        let events = tel.events();
        let sheds: Vec<_> = events
            .iter()
            .filter(|e| e.name == names::SERVER_SHED)
            .collect();
        assert_eq!(sheds.len(), 1);
        assert_eq!(sheds[0].attr("tool"), Some(ToolId::FakeClassifier.abbrev()));
        assert!(sheds[0].attr("target").is_some());
        // Every offered request is trace-accounted: a span if answered,
        // a point otherwise.
        let spans = events
            .iter()
            .filter(|e| e.name == names::SERVER_REQUEST)
            .count();
        assert_eq!(spans as u64 + sheds.len() as u64, report.offered());
    }

    #[test]
    fn live_tracing_marks_failures_as_points() {
        let platform = Platform::new();
        let tel = Telemetry::enabled();
        let mut s = ServerSim::with_telemetry(&platform, ServerConfig::default(), tel.clone());
        s.register(Box::new(FailingBackend));
        let report = s.run(&[request(0, 1.0, ToolId::FakeClassifier)]);
        assert_eq!(report.failed(), 1);

        let events = tel.events();
        assert!(!events.iter().any(|e| e.name == names::SERVER_REQUEST));
        let failed: Vec<_> = events
            .iter()
            .filter(|e| e.name == names::SERVER_FAILED)
            .collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].t0, 1.0);
        assert!(failed[0].attr("target").is_some());
        // Failed requests stay out of the latency histograms.
        let labels = [("tool", ToolId::FakeClassifier.abbrev())];
        assert!(tel
            .snapshot()
            .histogram("server.latency_secs", &labels)
            .is_none());
    }

    #[test]
    fn degraded_requests_trace_stale_service() {
        let platform = Platform::new();
        let tel = Telemetry::enabled();
        let config = ServerConfig {
            workers_per_tool: 1,
            queue_capacity: 1,
            policy: OverloadPolicy::DegradeStale,
            degraded_secs: 0.5,
            ..ServerConfig::default()
        };
        let mut s = ServerSim::with_telemetry(&platform, config, tel.clone());
        s.register(Box::new(FakeBackend::new(ToolId::FakeClassifier, 10.0)));
        let trace = vec![
            request(0, 0.0, ToolId::FakeClassifier),
            request(1, 0.0, ToolId::FakeClassifier),
            Request {
                id: 2,
                at: 1.0,
                tool: ToolId::FakeClassifier,
                target: AccountId(0),
            },
        ];
        let report = s.run(&trace);
        assert_eq!(report.degraded(), 1);

        let events = tel.events();
        let tree = fakeaudit_telemetry::TraceTree::build(&events);
        let degraded = tree
            .request_roots()
            .into_iter()
            .map(|i| tree.event(i))
            .find(|e| e.attr("outcome") == Some("degraded"))
            .unwrap();
        let kids: Vec<&TraceEvent> = tree
            .children_of(degraded.id.unwrap())
            .iter()
            .map(|&i| tree.event(i))
            .collect();
        assert_eq!(kids.len(), 1, "stale answers skip the queue-wait span");
        assert_eq!(kids[0].name, names::SERVER_SERVICE);
        assert_eq!(kids[0].attr("source"), Some("stale"));
        assert_eq!(kids[0].duration_secs(), 0.5);
    }

    #[test]
    fn record_into_skips_spans_for_unanswered_requests() {
        let platform = Platform::new();
        let mut s = ServerSim::new(&platform, ServerConfig::default());
        s.register(Box::new(FailingBackend));
        let report = s.run(&[request(0, 0.0, ToolId::FakeClassifier)]);
        assert_eq!(report.failed(), 1);

        let tel = Telemetry::enabled();
        report.record_into(&tel);
        let events = tel.events();
        assert!(!events.iter().any(|e| e.name == names::SERVER_REQUEST));
        assert_eq!(
            events
                .iter()
                .filter(|e| e.name == names::SERVER_FAILED)
                .count(),
            1
        );
        let labels = [("tool", ToolId::FakeClassifier.abbrev())];
        assert!(tel
            .snapshot()
            .histogram("server.latency_secs", &labels)
            .is_none());
    }

    #[test]
    fn persisted_run_is_byte_deterministic_and_scannable() {
        use crate::persist::flush_writer;
        use fakeaudit_store::{Projection, ScanOptions, Store, StoreWriter};
        use std::sync::{Arc, Mutex};

        let run_into = |tag: &str| -> std::path::PathBuf {
            let dir = std::env::temp_dir().join(format!(
                "fakeaudit-sim-persist-{tag}-{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let writer = Arc::new(Mutex::new(StoreWriter::open(&dir, 3).unwrap()));
            let platform = Platform::new();
            let config = ServerConfig {
                workers_per_tool: 1,
                queue_capacity: 8,
                policy: OverloadPolicy::Block,
                ..ServerConfig::default()
            };
            let mut s = ServerSim::new(&platform, config);
            s.register(Box::new(FakeBackend::new(ToolId::FakeClassifier, 2.0)));
            s.persist_into(writer.clone());
            let trace: Vec<Request> = (0..7)
                .map(|i| request(i, i as f64 * 0.5, ToolId::FakeClassifier))
                .collect();
            let report = s.run(&trace);
            assert_eq!(report.completed(), 7);
            flush_writer(&writer, &Telemetry::disabled()).unwrap();
            dir
        };

        let a = run_into("a");
        let b = run_into("b");
        // Same trace, same config => byte-identical segment files.
        let read_all = |dir: &std::path::Path| -> Vec<(String, Vec<u8>)> {
            let mut files: Vec<_> = std::fs::read_dir(dir)
                .unwrap()
                .map(|e| e.unwrap())
                .map(|e| {
                    (
                        e.file_name().to_string_lossy().into_owned(),
                        std::fs::read(e.path()).unwrap(),
                    )
                })
                .collect();
            files.sort();
            files
        };
        assert_eq!(read_all(&a), read_all(&b));

        let store = Store::open(&a).unwrap();
        assert_eq!(store.total_rows(), 7);
        assert_eq!(store.segment_count(), 3); // 3 + 3 + tail of 1
        let scan = store
            .scan(&ScanOptions {
                projection: Projection::all(),
                ..Default::default()
            })
            .unwrap();
        // Every persisted row carries the request's trace id and tool.
        let ids: Vec<u64> = scan.rows.iter().map(|r| r.trace_id).collect();
        assert_eq!(ids, (0..7).collect::<Vec<_>>());
        assert!(scan.rows.iter().all(|r| r.tool == "FC"));
        std::fs::remove_dir_all(&a).unwrap();
        std::fs::remove_dir_all(&b).unwrap();
    }

    #[test]
    fn queue_wait_percentile_is_cached_and_matches_histogram() {
        let platform = Platform::new();
        let config = ServerConfig {
            workers_per_tool: 1,
            queue_capacity: 8,
            policy: OverloadPolicy::Block,
            ..ServerConfig::default()
        };
        let trace: Vec<Request> = (0..5)
            .map(|i| request(i, 0.0, ToolId::FakeClassifier))
            .collect();
        let report = sim(&platform, config).run(&trace);
        // Queue waits 0, 10, 20, 30, 40. Repeated calls hit the cached
        // sorted vector and stay self-consistent.
        assert_eq!(report.queue_wait_percentile(0.5), 20.0);
        assert_eq!(report.queue_wait_percentile(0.5), 20.0);
        // The exact path and the histogram path agree at the clamped
        // extremes, where bucketing cannot move the estimate.
        let tel = Telemetry::enabled();
        report.record_into(&tel);
        let snap = tel.snapshot();
        let labels = [("tool", ToolId::FakeClassifier.abbrev())];
        let hist = snap.histogram("server.queue_wait_secs", &labels).unwrap();
        assert_eq!(report.queue_wait_percentile(1.0), hist.quantile(1.0));
        assert_eq!(report.queue_wait_percentile(0.0), hist.quantile(0.0));
    }
}
