//! Property-based tests for the statistics substrate.

use fakeaudit_stats::bias::{burst_population, expected_prefix_estimate, prefix_bias};
use fakeaudit_stats::estimator::{ConfidenceLevel, ProportionEstimate};
use fakeaudit_stats::rng::{derive_seed, rng_for};
use fakeaudit_stats::sample_size::{
    required_sample_size, required_sample_size_finite, worst_case_margin,
};
use fakeaudit_stats::sampling::{PrefixSampler, Sampler, SamplingScheme, UniformSampler};
use fakeaudit_stats::summary::{percentile_sorted, Summary};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #[test]
    fn estimate_is_within_unit_interval(x in 0u64..=1_000, extra in 0u64..=1_000) {
        let n = x + extra.max(1);
        let e = ProportionEstimate::new(x, n).unwrap();
        prop_assert!((0.0..=1.0).contains(&e.p_hat()));
        prop_assert!(e.standard_error() >= 0.0);
    }

    #[test]
    fn wald_and_wilson_contain_point_estimate(x in 0u64..=500, extra in 1u64..=500) {
        let n = x + extra;
        let e = ProportionEstimate::new(x, n).unwrap();
        for level in [ConfidenceLevel::P90, ConfidenceLevel::P95, ConfidenceLevel::P99] {
            prop_assert!(e.wald(level).contains(e.p_hat()));
            prop_assert!(e.wilson(level).contains(e.p_hat()));
        }
    }

    #[test]
    fn wald_intervals_nest_by_confidence(x in 1u64..=499, extra in 1u64..=500) {
        let n = x + extra;
        let e = ProportionEstimate::new(x, n).unwrap();
        let w90 = e.wald(ConfidenceLevel::P90);
        let w99 = e.wald(ConfidenceLevel::P99);
        prop_assert!(w99.low <= w90.low + 1e-12);
        prop_assert!(w99.high >= w90.high - 1e-12);
    }

    #[test]
    fn fpc_never_widens_error(x in 0u64..=200, extra in 1u64..=200, pop_extra in 0u64..=10_000) {
        let n = x + extra;
        let e = ProportionEstimate::new(x, n).unwrap();
        prop_assert!(e.standard_error_fpc(n + pop_extra) <= e.standard_error() + 1e-12);
    }

    #[test]
    fn required_sample_size_monotone_in_margin(
        m1 in 0.005f64..0.2,
        delta in 0.001f64..0.2,
    ) {
        let m2 = m1 + delta;
        prop_assert!(
            required_sample_size(ConfidenceLevel::P95, m1, 0.5)
                >= required_sample_size(ConfidenceLevel::P95, m2, 0.5)
        );
    }

    #[test]
    fn finite_sample_size_bounded_by_population(pop in 1u64..100_000) {
        let n = required_sample_size_finite(ConfidenceLevel::P95, 0.01, 0.5, pop);
        prop_assert!(n <= pop);
        prop_assert!(n <= required_sample_size(ConfidenceLevel::P95, 0.01, 0.5));
    }

    #[test]
    fn worst_case_margin_shrinks_with_n(n in 1u64..10_000) {
        prop_assert!(
            worst_case_margin(ConfidenceLevel::P95, n)
                >= worst_case_margin(ConfidenceLevel::P95, n + 1)
        );
    }

    #[test]
    fn uniform_sampler_draws_distinct_valid_indices(
        len in 1usize..2_000,
        k in 0usize..3_000,
        seed in 0u64..1_000,
    ) {
        let mut rng = rng_for(seed, "prop");
        let idx = UniformSampler.draw_indices(&mut rng, len, k);
        prop_assert_eq!(idx.len(), k.min(len));
        let set: HashSet<_> = idx.iter().copied().collect();
        prop_assert_eq!(set.len(), idx.len());
        prop_assert!(idx.iter().all(|&i| i < len));
    }

    #[test]
    fn prefix_sampler_never_escapes_window(
        len in 1usize..2_000,
        window in 1usize..500,
        k in 0usize..600,
        seed in 0u64..1_000,
    ) {
        let mut rng = rng_for(seed, "prop");
        let idx = PrefixSampler::new(window).draw_indices(&mut rng, len, k);
        prop_assert!(idx.iter().all(|&i| i < window.min(len)));
        prop_assert_eq!(idx.len(), k.min(window.min(len)));
    }

    #[test]
    fn scheme_draws_agree_with_direct_samplers(
        len in 1usize..500,
        k in 0usize..600,
        seed in 0u64..1_000,
    ) {
        let via_scheme = SamplingScheme::Uniform
            .draw_indices(&mut rng_for(seed, "x"), len, k);
        let direct = UniformSampler.draw_indices(&mut rng_for(seed, "x"), len, k);
        prop_assert_eq!(via_scheme, direct);
    }

    #[test]
    fn prefix_estimate_is_a_proportion(
        positives in 0usize..500,
        negatives in 0usize..500,
        window in 1usize..1_000,
    ) {
        prop_assume!(positives + negatives > 0);
        let labels = burst_population(positives, negatives);
        let e = expected_prefix_estimate(labels.len(), window, |i| labels[i]);
        prop_assert!((0.0..=1.0).contains(&e));
    }

    #[test]
    fn prefix_bias_vanishes_with_full_window(
        positives in 0usize..300,
        negatives in 0usize..300,
    ) {
        prop_assume!(positives + negatives > 0);
        let labels = burst_population(positives, negatives);
        let b = prefix_bias(labels.len(), labels.len(), |i| labels[i]);
        prop_assert!(b.abs() < 1e-12);
    }

    #[test]
    fn derive_seed_is_stable_and_label_sensitive(master in any::<u64>(), label in "[a-z]{1,12}") {
        prop_assert_eq!(derive_seed(master, &label), derive_seed(master, &label));
        prop_assert_ne!(derive_seed(master, &label), derive_seed(master, &format!("{label}x")));
    }

    #[test]
    fn summary_bounds_hold(values in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::of(&values).unwrap();
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.median <= s.p95 + 1e-9 && s.p95 <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert_eq!(s.count, values.len());
    }

    #[test]
    fn percentile_is_monotone(
        mut values in prop::collection::vec(-1e3f64..1e3, 2..100),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(percentile_sorted(&values, lo) <= percentile_sorted(&values, hi) + 1e-9);
    }
}
