//! Descriptive statistics over experiment outputs.
//!
//! The experiment drivers summarise per-account results (response times,
//! detector percentages, disagreement scores) with the usual moments and
//! order statistics.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary statistics of a set of `f64` observations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for a single value).
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
    /// 95th percentile (linear interpolation).
    pub p95: f64,
}

impl Summary {
    /// Computes summary statistics over `values`.
    ///
    /// Returns `None` if `values` is empty or contains a non-finite number.
    ///
    /// ```
    /// use fakeaudit_stats::summary::Summary;
    /// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
    /// assert_eq!(s.mean, 2.5);
    /// assert_eq!(s.min, 1.0);
    /// assert_eq!(s.max, 4.0);
    /// ```
    pub fn of(values: &[f64]) -> Option<Self> {
        if values.is_empty() || values.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let std_dev = if count > 1 {
            (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (count as f64 - 1.0)).sqrt()
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        Some(Self {
            count,
            mean,
            std_dev,
            min: sorted[0],
            max: sorted[count - 1],
            median: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
        })
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} med={:.3} p95={:.3} max={:.3}",
            self.count, self.mean, self.std_dev, self.min, self.median, self.p95, self.max
        )
    }
}

/// Linear-interpolation percentile of an already **sorted** slice.
///
/// # Panics
///
/// Panics if `sorted` is empty or `pct` is outside `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], pct: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&pct), "pct must be in [0, 100]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = pct / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// A fixed-width histogram over `[min, max)` with `bins` buckets, used by
/// the experiment reports to render quality-score distributions (the chart
/// Twitteraudit shows per audit).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    min: f64,
    max: f64,
    counts: Vec<u64>,
    outliers: u64,
}

impl Histogram {
    /// Creates an empty histogram over `[min, max)` with `bins` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `min >= max`.
    pub fn new(min: f64, max: f64, bins: usize) -> Self {
        assert!(bins > 0, "bins must be positive");
        assert!(min < max, "min must be < max");
        Self {
            min,
            max,
            counts: vec![0; bins],
            outliers: 0,
        }
    }

    /// Records one observation. Values outside `[min, max)` count as
    /// outliers rather than being dropped silently.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() || value < self.min || value >= self.max {
            self.outliers += 1;
            return;
        }
        let width = (self.max - self.min) / self.counts.len() as f64;
        let idx = (((value - self.min) / width) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations that fell outside the range.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// Total in-range observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `(low, high)` bounds of bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket_bounds(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bucket index out of range");
        let width = (self.max - self.min) / self.counts.len() as f64;
        (
            self.min + width * i as f64,
            self.min + width * (i + 1) as f64,
        )
    }
}

impl Extend<f64> for Histogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_rejects_nan() {
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.p95, 7.0);
    }

    #[test]
    fn summary_moments() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample sd with n-1: sqrt(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_is_order_invariant() {
        let a = Summary::of(&[3.0, 1.0, 2.0]).unwrap();
        let b = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile_sorted(&xs, 0.0), 10.0);
        assert_eq!(percentile_sorted(&xs, 100.0), 40.0);
        assert_eq!(percentile_sorted(&xs, 50.0), 25.0);
    }

    #[test]
    #[should_panic(expected = "percentile of empty slice")]
    fn percentile_empty_panics() {
        percentile_sorted(&[], 50.0);
    }

    #[test]
    fn histogram_buckets_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend([0.5, 1.0, 3.0, 9.99, -1.0, 10.0, f64::NAN]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.outliers(), 3);
        assert_eq!(h.counts()[0], 2); // 0.5 and 1.0 fall in [0,2)
        assert_eq!(h.counts()[4], 1); // 9.99 in [8,10)
    }

    #[test]
    fn histogram_bucket_bounds() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bucket_bounds(0), (0.0, 2.0));
        assert_eq!(h.bucket_bounds(4), (8.0, 10.0));
    }

    #[test]
    #[should_panic(expected = "bins must be positive")]
    fn histogram_zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "min must be < max")]
    fn histogram_bad_range_panics() {
        Histogram::new(1.0, 1.0, 3);
    }
}
