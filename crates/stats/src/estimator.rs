//! The proportion estimator and its confidence machinery (paper §II-D).
//!
//! The paper recalls: for a population proportion `p`, the estimator is
//! `p̂ = X/n` with variance `σ² = p̂(1−p̂)/n`, and the confidence interval is
//! `p̂ ± Z_α·σ` where `Z_α` is 1.96 at the 0.95 confidence level and 2.58 at
//! 0.99. This module implements exactly that (the Wald interval), plus the
//! Wilson score interval (better behaved near 0/1) and the finite-population
//! correction the commercial tools implicitly ignore.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A confidence level with its two-sided critical value `Z_α`.
///
/// The paper quotes `Z = 1.96` for 95% and `Z = 2.58` for 99%; we use the
/// same rounded constants so reproduced numbers match the text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConfidenceLevel {
    /// 90% two-sided confidence (Z = 1.645).
    P90,
    /// 95% two-sided confidence (Z = 1.96) — the paper's default.
    P95,
    /// 99% two-sided confidence (Z = 2.58).
    P99,
}

impl ConfidenceLevel {
    /// The two-sided critical value `Z_α` for this level.
    ///
    /// ```
    /// use fakeaudit_stats::estimator::ConfidenceLevel;
    /// assert_eq!(ConfidenceLevel::P95.z(), 1.96);
    /// assert_eq!(ConfidenceLevel::P99.z(), 2.58);
    /// ```
    pub fn z(self) -> f64 {
        match self {
            ConfidenceLevel::P90 => 1.645,
            ConfidenceLevel::P95 => 1.96,
            ConfidenceLevel::P99 => 2.58,
        }
    }

    /// The nominal coverage probability (e.g. `0.95`).
    pub fn coverage(self) -> f64 {
        match self {
            ConfidenceLevel::P90 => 0.90,
            ConfidenceLevel::P95 => 0.95,
            ConfidenceLevel::P99 => 0.99,
        }
    }
}

impl fmt::Display for ConfidenceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}%", (self.coverage() * 100.0).round() as u32)
    }
}

/// A two-sided confidence interval `[low, high]` for a proportion, clamped
/// to `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Lower bound (≥ 0).
    pub low: f64,
    /// Upper bound (≤ 1).
    pub high: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.high - self.low) / 2.0
    }

    /// Whether `p` lies inside the interval (inclusive).
    pub fn contains(&self, p: f64) -> bool {
        p >= self.low && p <= self.high
    }
}

impl fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.4}, {:.4}]", self.low, self.high)
    }
}

/// Errors from estimator constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EstimateError {
    /// The sample size was zero.
    EmptySample,
    /// More positives than samples.
    PositivesExceedSample {
        /// Number of positive observations supplied.
        positives: u64,
        /// Sample size supplied.
        sample_size: u64,
    },
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::EmptySample => write!(f, "sample size must be positive"),
            EstimateError::PositivesExceedSample {
                positives,
                sample_size,
            } => write!(
                f,
                "positives ({positives}) exceed sample size ({sample_size})"
            ),
        }
    }
}

impl std::error::Error for EstimateError {}

/// The result of estimating a population proportion from a sample:
/// `p̂ = X/n` (paper §II-D).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProportionEstimate {
    positives: u64,
    sample_size: u64,
}

impl ProportionEstimate {
    /// Creates an estimate from `positives` successes out of `sample_size`
    /// trials.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::EmptySample`] if `sample_size == 0` and
    /// [`EstimateError::PositivesExceedSample`] if `positives > sample_size`.
    ///
    /// ```
    /// use fakeaudit_stats::estimator::ProportionEstimate;
    /// let est = ProportionEstimate::new(250, 1000)?;
    /// assert_eq!(est.p_hat(), 0.25);
    /// # Ok::<(), fakeaudit_stats::estimator::EstimateError>(())
    /// ```
    pub fn new(positives: u64, sample_size: u64) -> Result<Self, EstimateError> {
        if sample_size == 0 {
            return Err(EstimateError::EmptySample);
        }
        if positives > sample_size {
            return Err(EstimateError::PositivesExceedSample {
                positives,
                sample_size,
            });
        }
        Ok(Self {
            positives,
            sample_size,
        })
    }

    /// Creates an estimate by counting the items of `sample` that satisfy
    /// `property`.
    pub fn from_sample<T, F>(sample: &[T], mut property: F) -> Result<Self, EstimateError>
    where
        F: FnMut(&T) -> bool,
    {
        let positives = sample.iter().filter(|x| property(x)).count() as u64;
        Self::new(positives, sample.len() as u64)
    }

    /// Number of positive observations `X`.
    pub fn positives(&self) -> u64 {
        self.positives
    }

    /// Sample size `n`.
    pub fn sample_size(&self) -> u64 {
        self.sample_size
    }

    /// The point estimate `p̂ = X/n`.
    pub fn p_hat(&self) -> f64 {
        self.positives as f64 / self.sample_size as f64
    }

    /// The estimated standard error `σ = sqrt(p̂(1−p̂)/n)`.
    pub fn standard_error(&self) -> f64 {
        let p = self.p_hat();
        (p * (1.0 - p) / self.sample_size as f64).sqrt()
    }

    /// Standard error with the finite-population correction
    /// `sqrt((N−n)/(N−1))` applied, for sampling without replacement from a
    /// population of `population_size`.
    ///
    /// The correction vanishes as `N → ∞` and is exactly zero for a census
    /// (`n = N`). Commercial tools that sample a fixed window of 700–5000
    /// followers ignore the fact that their effective `N` is the window, not
    /// the full follower list.
    pub fn standard_error_fpc(&self, population_size: u64) -> f64 {
        let n = self.sample_size as f64;
        let big_n = population_size.max(self.sample_size) as f64;
        if big_n <= 1.0 {
            return 0.0;
        }
        let fpc = ((big_n - n) / (big_n - 1.0)).max(0.0).sqrt();
        self.standard_error() * fpc
    }

    /// The Wald interval `p̂ ± Z_α·σ` from paper §II-D, clamped to `[0, 1]`.
    ///
    /// ```
    /// use fakeaudit_stats::estimator::{ConfidenceLevel, ProportionEstimate};
    /// let est = ProportionEstimate::new(4802, 9604)?;
    /// let ci = est.wald(ConfidenceLevel::P95);
    /// // n = 9604 is exactly the size giving a ±1% interval at p = 0.5.
    /// assert!((ci.half_width() - 0.01).abs() < 1e-4);
    /// # Ok::<(), fakeaudit_stats::estimator::EstimateError>(())
    /// ```
    pub fn wald(&self, level: ConfidenceLevel) -> ConfidenceInterval {
        let p = self.p_hat();
        let m = level.z() * self.standard_error();
        ConfidenceInterval {
            low: (p - m).max(0.0),
            high: (p + m).min(1.0),
        }
    }

    /// Wald interval with the finite-population correction.
    pub fn wald_fpc(&self, level: ConfidenceLevel, population_size: u64) -> ConfidenceInterval {
        let p = self.p_hat();
        let m = level.z() * self.standard_error_fpc(population_size);
        ConfidenceInterval {
            low: (p - m).max(0.0),
            high: (p + m).min(1.0),
        }
    }

    /// The Wilson score interval, which unlike Wald never degenerates at
    /// `p̂ ∈ {0, 1}` and keeps nominal coverage for small `n`.
    pub fn wilson(&self, level: ConfidenceLevel) -> ConfidenceInterval {
        let n = self.sample_size as f64;
        let p = self.p_hat();
        let z = level.z();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let centre = (p + z2 / (2.0 * n)) / denom;
        let margin = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        // At the boundaries the Wilson bound is exactly the point estimate
        // (centre == margin at p̂ = 0); pin it so floating-point rounding
        // cannot push the interval off the estimate.
        let low = if self.positives == 0 {
            0.0
        } else {
            (centre - margin).max(0.0)
        };
        let high = if self.positives == self.sample_size {
            1.0
        } else {
            (centre + margin).min(1.0)
        };
        ConfidenceInterval { low, high }
    }
}

impl fmt::Display for ProportionEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} = {:.4}",
            self.positives,
            self.sample_size,
            self.p_hat()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_sample() {
        assert_eq!(
            ProportionEstimate::new(0, 0).unwrap_err(),
            EstimateError::EmptySample
        );
    }

    #[test]
    fn rejects_excess_positives() {
        assert!(matches!(
            ProportionEstimate::new(5, 4),
            Err(EstimateError::PositivesExceedSample { .. })
        ));
    }

    #[test]
    fn point_estimate() {
        let e = ProportionEstimate::new(30, 120).unwrap();
        assert!((e.p_hat() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn from_sample_counts_property() {
        let xs = [1, 2, 3, 4, 5, 6];
        let e = ProportionEstimate::from_sample(&xs, |x| x % 2 == 0).unwrap();
        assert_eq!(e.positives(), 3);
        assert_eq!(e.sample_size(), 6);
    }

    #[test]
    fn paper_sample_size_gives_one_percent_margin() {
        // The paper's FC always samples 9604 accounts: 95% CI of ±1%.
        let e = ProportionEstimate::new(4802, 9604).unwrap();
        let ci = e.wald(ConfidenceLevel::P95);
        assert!((ci.half_width() - 0.01).abs() < 1e-4);
    }

    #[test]
    fn wald_clamps_to_unit_interval() {
        let e = ProportionEstimate::new(0, 10).unwrap();
        let ci = e.wald(ConfidenceLevel::P99);
        assert_eq!(ci.low, 0.0);
        assert!(ci.high >= 0.0);
    }

    #[test]
    fn wilson_nondegenerate_at_zero() {
        let e = ProportionEstimate::new(0, 10).unwrap();
        let ci = e.wilson(ConfidenceLevel::P95);
        assert!(ci.high > 0.0, "Wilson upper bound must exceed 0 at p̂=0");
    }

    #[test]
    fn wilson_nondegenerate_at_one() {
        let e = ProportionEstimate::new(10, 10).unwrap();
        let ci = e.wilson(ConfidenceLevel::P95);
        assert!(ci.low < 1.0);
        assert_eq!(ci.high, 1.0);
    }

    #[test]
    fn fpc_reduces_error() {
        let e = ProportionEstimate::new(100, 400).unwrap();
        let plain = e.standard_error();
        let corrected = e.standard_error_fpc(500);
        assert!(corrected < plain);
    }

    #[test]
    fn fpc_census_has_zero_error() {
        let e = ProportionEstimate::new(100, 400).unwrap();
        assert_eq!(e.standard_error_fpc(400), 0.0);
    }

    #[test]
    fn fpc_large_population_is_noop() {
        let e = ProportionEstimate::new(100, 400).unwrap();
        let corrected = e.standard_error_fpc(100_000_000);
        assert!((corrected - e.standard_error()).abs() < 1e-6);
    }

    #[test]
    fn wider_confidence_wider_interval() {
        let e = ProportionEstimate::new(300, 1000).unwrap();
        assert!(
            e.wald(ConfidenceLevel::P99).half_width() > e.wald(ConfidenceLevel::P95).half_width()
        );
        assert!(
            e.wald(ConfidenceLevel::P95).half_width() > e.wald(ConfidenceLevel::P90).half_width()
        );
    }

    #[test]
    fn interval_contains_point_estimate() {
        let e = ProportionEstimate::new(123, 456).unwrap();
        assert!(e.wald(ConfidenceLevel::P95).contains(e.p_hat()));
        assert!(e.wilson(ConfidenceLevel::P95).contains(e.p_hat()));
    }

    #[test]
    fn display_formats() {
        let e = ProportionEstimate::new(1, 4).unwrap();
        assert_eq!(e.to_string(), "1/4 = 0.2500");
        assert_eq!(ConfidenceLevel::P95.to_string(), "95%");
    }
}
