//! Sampling-statistics substrate for the *fakeaudit* reproduction of
//! "A Criticism to Society (as seen by Twitter analytics)" (Cresci et al., 2014).
//!
//! The paper's central methodological argument (§II-D) is that the surveyed
//! commercial analytics violate the assumptions of the classic proportion
//! estimator `p̂ = X/n`: their samples are (i) biased towards the newest
//! followers, (ii) drawn dependently from a fixed-size window rather than the
//! full population, and (iii) assessed with an unvalidated property test.
//! This crate provides the statistical machinery needed to state, measure and
//! reproduce that argument:
//!
//! * [`estimator`] — the proportion estimator, standard errors, Wald and
//!   Wilson confidence intervals, finite-population correction;
//! * [`sample_size`] — Cochran's required-sample-size formula (the paper's
//!   n = 9604 for a 95% confidence level at ±1%);
//! * [`sampling`] — uniform and prefix (newest-`k`) samplers behind a common
//!   [`sampling::Sampler`] trait;
//! * [`bias`] — analytic machinery for the expected error of prefix sampling
//!   when the measured property correlates with position in the list;
//! * [`dist`] — seeded synthetic distributions (Zipf, exponential,
//!   log-normal, Poisson) used by the workload generator;
//! * [`summary`] — descriptive statistics over experiment outputs;
//! * [`hypothesis`] — two-proportion z-tests and chi-square tests used by the
//!   disagreement analyses;
//! * [`correlation`] — Pearson and Spearman coefficients (E5's
//!   disagreement-vs-size claim);
//! * [`bootstrap`] — percentile-bootstrap confidence intervals as a
//!   distribution-free cross-check on the Wald machinery;
//! * [`rng`] — deterministic seed-derivation helpers so every experiment in
//!   the repository regenerates bit-identically.
//!
//! # Example
//!
//! Reproduce the paper's sample-size computation: a 95% confidence level with
//! a ±1% interval requires 9604 samples under the worst case `p = 0.5`.
//!
//! ```
//! use fakeaudit_stats::sample_size::required_sample_size;
//! use fakeaudit_stats::estimator::ConfidenceLevel;
//!
//! let n = required_sample_size(ConfidenceLevel::P95, 0.01, 0.5);
//! assert_eq!(n, 9604);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bias;
pub mod bootstrap;
pub mod correlation;
pub mod dist;
pub mod estimator;
pub mod hypothesis;
pub mod rng;
pub mod sample_size;
pub mod sampling;
pub mod summary;

pub use estimator::{ConfidenceInterval, ConfidenceLevel, ProportionEstimate};
pub use rng::{derive_seed, rng_for, rng_for_indexed};
pub use sample_size::required_sample_size;
pub use sampling::{PrefixSampler, Sampler, UniformSampler};
