//! Significance tests used by the disagreement analyses (§IV-D).
//!
//! Table III's "general disagreement" claim is quantified in the core crate
//! with pairwise two-proportion z-tests (do two tools' fake percentages
//! differ beyond what their sample sizes explain?) and a chi-square test of
//! homogeneity over the full inactive/fake/genuine breakdowns.

use std::fmt;

/// Errors from hypothesis-test constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestError {
    /// One of the samples was empty.
    EmptySample,
    /// Positives exceeded the sample size.
    InvalidCounts,
    /// A contingency table had fewer than 2 rows/columns or a zero marginal.
    DegenerateTable,
}

impl fmt::Display for TestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestError::EmptySample => write!(f, "sample sizes must be positive"),
            TestError::InvalidCounts => write!(f, "positives exceed sample size"),
            TestError::DegenerateTable => write!(f, "contingency table is degenerate"),
        }
    }
}

impl std::error::Error for TestError {}

/// Result of a two-proportion z-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZTest {
    /// The z statistic (signed: positive when sample 1 has the higher rate).
    pub z: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

impl ZTest {
    /// Whether the difference is significant at level `alpha` (two-sided).
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-proportion z-test with pooled variance.
///
/// Tests `H0: p1 = p2` given `x1/n1` and `x2/n2`.
///
/// # Errors
///
/// Returns [`TestError::EmptySample`] when either `n` is zero and
/// [`TestError::InvalidCounts`] when `x > n`.
///
/// ```
/// use fakeaudit_stats::hypothesis::two_proportion_z;
/// // SP says 44% fake of 700 sampled; FC says 1.2% of 9604 — wildly apart.
/// let t = two_proportion_z(308, 700, 115, 9604)?;
/// assert!(t.significant(0.01));
/// # Ok::<(), fakeaudit_stats::hypothesis::TestError>(())
/// ```
pub fn two_proportion_z(x1: u64, n1: u64, x2: u64, n2: u64) -> Result<ZTest, TestError> {
    if n1 == 0 || n2 == 0 {
        return Err(TestError::EmptySample);
    }
    if x1 > n1 || x2 > n2 {
        return Err(TestError::InvalidCounts);
    }
    let p1 = x1 as f64 / n1 as f64;
    let p2 = x2 as f64 / n2 as f64;
    let pooled = (x1 + x2) as f64 / (n1 + n2) as f64;
    let se = (pooled * (1.0 - pooled) * (1.0 / n1 as f64 + 1.0 / n2 as f64)).sqrt();
    let z = if se == 0.0 { 0.0 } else { (p1 - p2) / se };
    let p_value = 2.0 * (1.0 - standard_normal_cdf(z.abs()));
    Ok(ZTest { z, p_value })
}

/// Result of a chi-square test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquareTest {
    /// The χ² statistic.
    pub statistic: f64,
    /// Degrees of freedom.
    pub dof: usize,
    /// Approximate p-value (Wilson–Hilferty normal approximation).
    pub p_value: f64,
}

impl ChiSquareTest {
    /// Whether homogeneity is rejected at level `alpha`.
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Chi-square test of homogeneity over an `r × c` contingency table
/// (`table[row][col]` = count). Rows are e.g. tools, columns the
/// inactive/fake/genuine classes.
///
/// # Errors
///
/// Returns [`TestError::DegenerateTable`] when the table has fewer than two
/// rows or columns, ragged rows, or a zero row/column total.
pub fn chi_square(table: &[Vec<u64>]) -> Result<ChiSquareTest, TestError> {
    let r = table.len();
    if r < 2 {
        return Err(TestError::DegenerateTable);
    }
    let c = table[0].len();
    if c < 2 || table.iter().any(|row| row.len() != c) {
        return Err(TestError::DegenerateTable);
    }
    let row_tot: Vec<f64> = table
        .iter()
        .map(|row| row.iter().sum::<u64>() as f64)
        .collect();
    let col_tot: Vec<f64> = (0..c)
        .map(|j| table.iter().map(|row| row[j]).sum::<u64>() as f64)
        .collect();
    if row_tot.contains(&0.0) || col_tot.contains(&0.0) {
        return Err(TestError::DegenerateTable);
    }
    let grand: f64 = row_tot.iter().sum();
    let mut stat = 0.0;
    for (i, row) in table.iter().enumerate() {
        for (j, &obs) in row.iter().enumerate() {
            let expected = row_tot[i] * col_tot[j] / grand;
            let d = obs as f64 - expected;
            stat += d * d / expected;
        }
    }
    let dof = (r - 1) * (c - 1);
    Ok(ChiSquareTest {
        statistic: stat,
        dof,
        p_value: chi_square_sf(stat, dof),
    })
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf approximation
/// (absolute error < 1.5e-7 — ample for significance testing).
pub fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Chi-square survival function `P(X > x)` with `k` degrees of freedom via
/// the Wilson–Hilferty cube-root normal approximation.
fn chi_square_sf(x: f64, k: usize) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    let k = k as f64;
    let z = ((x / k).powf(1.0 / 3.0) - (1.0 - 2.0 / (9.0 * k))) / (2.0 / (9.0 * k)).sqrt();
    1.0 - standard_normal_cdf(z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_reference_points() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((standard_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(standard_normal_cdf(6.0) > 0.999_999);
    }

    #[test]
    fn z_test_identical_proportions() {
        let t = two_proportion_z(50, 100, 500, 1000).unwrap();
        assert!(t.z.abs() < 1e-12);
        assert!((t.p_value - 1.0).abs() < 1e-6);
        assert!(!t.significant(0.05));
    }

    #[test]
    fn z_test_obvious_difference() {
        let t = two_proportion_z(90, 100, 10, 100).unwrap();
        assert!(t.z > 5.0);
        assert!(t.significant(0.001));
    }

    #[test]
    fn z_test_sign_convention() {
        let t = two_proportion_z(10, 100, 90, 100).unwrap();
        assert!(t.z < 0.0);
    }

    #[test]
    fn z_test_degenerate_pooled_zero() {
        // Both proportions zero: se is 0, z defined as 0.
        let t = two_proportion_z(0, 50, 0, 70).unwrap();
        assert_eq!(t.z, 0.0);
    }

    #[test]
    fn z_test_errors() {
        assert_eq!(
            two_proportion_z(1, 0, 1, 10).unwrap_err(),
            TestError::EmptySample
        );
        assert_eq!(
            two_proportion_z(11, 10, 1, 10).unwrap_err(),
            TestError::InvalidCounts
        );
    }

    #[test]
    fn chi_square_homogeneous_table() {
        let table = vec![vec![50u64, 50], vec![500, 500]];
        let t = chi_square(&table).unwrap();
        assert!(t.statistic < 1e-9);
        assert!(!t.significant(0.05));
        assert_eq!(t.dof, 1);
    }

    #[test]
    fn chi_square_heterogeneous_table() {
        // Two tools with opposite fake/genuine splits.
        let table = vec![vec![90u64, 10], vec![10, 90]];
        let t = chi_square(&table).unwrap();
        assert!(t.statistic > 100.0);
        assert!(t.significant(0.001));
    }

    #[test]
    fn chi_square_three_by_three() {
        let table = vec![vec![30u64, 40, 30], vec![25, 45, 30], vec![35, 35, 30]];
        let t = chi_square(&table).unwrap();
        assert_eq!(t.dof, 4);
        assert!(!t.significant(0.05));
    }

    #[test]
    fn chi_square_rejects_degenerate() {
        assert_eq!(
            chi_square(&[vec![1, 2]]).unwrap_err(),
            TestError::DegenerateTable
        );
        assert_eq!(
            chi_square(&[vec![1], vec![2]]).unwrap_err(),
            TestError::DegenerateTable
        );
        assert_eq!(
            chi_square(&[vec![1, 2], vec![3]]).unwrap_err(),
            TestError::DegenerateTable
        );
        assert_eq!(
            chi_square(&[vec![0, 0], vec![1, 2]]).unwrap_err(),
            TestError::DegenerateTable
        );
        assert_eq!(
            chi_square(&[vec![0, 1], vec![0, 2]]).unwrap_err(),
            TestError::DegenerateTable
        );
    }

    #[test]
    fn chi_square_sf_monotone() {
        let a = chi_square_sf(1.0, 3);
        let b = chi_square_sf(10.0, 3);
        assert!(a > b);
        assert_eq!(chi_square_sf(0.0, 3), 1.0);
    }
}
