//! Bootstrap confidence intervals.
//!
//! The Wald interval of §II-D assumes the normal approximation; the
//! experiment drivers use percentile bootstrap as a distribution-free
//! cross-check when summarising per-target statistics (e.g. the
//! disagreement ranges of E5, the tool errors of the scoring annex).

use crate::estimator::ConfidenceInterval;
use crate::summary::percentile_sorted;
use rand::Rng;

/// Percentile-bootstrap confidence interval for any statistic of an `f64`
/// sample.
///
/// Draws `resamples` bootstrap resamples (with replacement) of `values`,
/// applies `statistic` to each, and returns the central
/// `confidence`-probability interval of the resulting distribution.
///
/// # Panics
///
/// Panics if `values` is empty, `resamples == 0`, or `confidence` is not
/// in `(0, 1)`.
///
/// ```
/// use fakeaudit_stats::bootstrap::bootstrap_ci;
/// use fakeaudit_stats::rng::rng_for;
///
/// let mut rng = rng_for(1, "doc");
/// let values = [4.0, 5.0, 6.0, 5.5, 4.5, 5.0];
/// let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
/// let ci = bootstrap_ci(&mut rng, &values, mean, 500, 0.95);
/// assert!(ci.contains(5.0));
/// ```
pub fn bootstrap_ci<R, F>(
    rng: &mut R,
    values: &[f64],
    mut statistic: F,
    resamples: usize,
    confidence: f64,
) -> ConfidenceInterval
where
    R: Rng + ?Sized,
    F: FnMut(&[f64]) -> f64,
{
    assert!(!values.is_empty(), "bootstrap of an empty sample");
    assert!(resamples > 0, "need at least one resample");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    let n = values.len();
    let mut stats = Vec::with_capacity(resamples);
    let mut buf = vec![0.0; n];
    for _ in 0..resamples {
        for slot in buf.iter_mut() {
            *slot = values[rng.gen_range(0..n)];
        }
        stats.push(statistic(&buf));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("finite statistics"));
    let alpha = (1.0 - confidence) / 2.0;
    ConfidenceInterval {
        low: percentile_sorted(&stats, alpha * 100.0),
        high: percentile_sorted(&stats, (1.0 - alpha) * 100.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_for;

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn interval_brackets_the_sample_mean() {
        let mut rng = rng_for(1, "boot");
        let values: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let ci = bootstrap_ci(&mut rng, &values, mean, 1_000, 0.95);
        let m = mean(&values);
        assert!(ci.contains(m), "{ci} should contain {m}");
        assert!(ci.half_width() < 1.0, "{ci}");
    }

    #[test]
    fn degenerate_sample_gives_point_interval() {
        let mut rng = rng_for(2, "boot");
        let ci = bootstrap_ci(&mut rng, &[7.0, 7.0, 7.0], mean, 200, 0.9);
        assert_eq!(ci.low, 7.0);
        assert_eq!(ci.high, 7.0);
    }

    #[test]
    fn wider_confidence_is_wider() {
        let values: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ci90 = bootstrap_ci(&mut rng_for(3, "boot"), &values, mean, 2_000, 0.90);
        let ci99 = bootstrap_ci(&mut rng_for(3, "boot"), &values, mean, 2_000, 0.99);
        assert!(ci99.half_width() > ci90.half_width());
    }

    #[test]
    fn works_with_other_statistics() {
        let mut rng = rng_for(4, "boot");
        let values = [1.0, 2.0, 3.0, 100.0];
        let median = |xs: &[f64]| {
            let mut v = xs.to_vec();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            percentile_sorted(&v, 50.0)
        };
        let ci = bootstrap_ci(&mut rng, &values, median, 500, 0.95);
        // The median bootstrap should not be dragged to 100.
        assert!(ci.low < 50.0);
    }

    #[test]
    fn deterministic_per_rng_stream() {
        let values = [1.0, 5.0, 9.0];
        let a = bootstrap_ci(&mut rng_for(5, "boot"), &values, mean, 100, 0.95);
        let b = bootstrap_ci(&mut rng_for(5, "boot"), &values, mean, 100, 0.95);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        bootstrap_ci(&mut rng_for(6, "boot"), &[], mean, 10, 0.95);
    }

    #[test]
    #[should_panic(expected = "confidence must be in (0, 1)")]
    fn bad_confidence_panics() {
        bootstrap_ci(&mut rng_for(7, "boot"), &[1.0], mean, 10, 1.0);
    }
}
