//! Samplers over ordered populations.
//!
//! The surveyed analytics all draw their sample from the *head* of the
//! follower list returned by `GET followers/ids` — i.e. the newest
//! followers — while the Fake Project engine samples uniformly at random
//! from the whole list (§II-D, §III). Both strategies are modelled here
//! behind the [`Sampler`] trait so detectors can be ablated by swapping the
//! sampler (experiment A1 in DESIGN.md).

use rand::seq::index::sample as index_sample;
use rand::Rng;
use std::fmt;

/// A strategy for drawing `k` items from an ordered population.
///
/// Populations are slices ordered newest-first, matching the order in which
/// the simulated `GET followers/ids` API returns follower IDs.
pub trait Sampler: fmt::Debug {
    /// Draws up to `k` indices into a population of `len` items.
    ///
    /// Implementations must return pairwise-distinct indices in `[0, len)`,
    /// and exactly `min(k, len)` of them.
    fn draw_indices<R: Rng + ?Sized>(&self, rng: &mut R, len: usize, k: usize) -> Vec<usize>
    where
        Self: Sized;

    /// Draws up to `k` items from `population` by cloning the selected
    /// elements.
    fn draw<T: Clone, R: Rng + ?Sized>(&self, rng: &mut R, population: &[T], k: usize) -> Vec<T>
    where
        Self: Sized,
    {
        self.draw_indices(rng, population.len(), k)
            .into_iter()
            .map(|i| population[i].clone())
            .collect()
    }
}

/// Simple random sampling without replacement over the full population —
/// the statistically sound scheme used by the Fake Project engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UniformSampler;

impl UniformSampler {
    /// Creates a uniform sampler.
    pub fn new() -> Self {
        Self
    }
}

impl Sampler for UniformSampler {
    fn draw_indices<R: Rng + ?Sized>(&self, rng: &mut R, len: usize, k: usize) -> Vec<usize> {
        let k = k.min(len);
        if k == 0 {
            return Vec::new();
        }
        index_sample(rng, len, k).into_vec()
    }
}

/// Prefix sampling: the population's first `window` items (the newest
/// followers) form the frame, and up to `k` items are drawn from that frame.
///
/// This is the biased scheme §II-D attributes to all three commercial
/// tools: "the followers taken into consideration are just the latest ones
/// to have joined … a fixed number, unrelated to the total number of
/// followers".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixSampler {
    window: usize,
    /// If true, draw randomly inside the window; if false, take the first
    /// `k` items deterministically.
    randomize_within_window: bool,
}

impl PrefixSampler {
    /// Creates a prefix sampler that draws randomly within the newest
    /// `window` items.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            randomize_within_window: true,
        }
    }

    /// Creates a prefix sampler that deterministically takes the first `k`
    /// items of the window (how the simplest tools behave).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn deterministic(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            randomize_within_window: false,
        }
    }

    /// The size of the newest-followers frame.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Sampler for PrefixSampler {
    fn draw_indices<R: Rng + ?Sized>(&self, rng: &mut R, len: usize, k: usize) -> Vec<usize> {
        let frame = self.window.min(len);
        let k = k.min(frame);
        if k == 0 {
            return Vec::new();
        }
        if self.randomize_within_window {
            index_sample(rng, frame, k).into_vec()
        } else {
            (0..k).collect()
        }
    }
}

/// Either sampling strategy, for configuration written as data (ablations,
/// serialised experiment descriptions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingScheme {
    /// Simple random sampling from the full population.
    Uniform,
    /// Random sampling within the newest-`window` prefix.
    Prefix {
        /// Size of the newest-followers frame.
        window: usize,
    },
    /// Deterministic first-`k` of the newest-`window` prefix.
    DeterministicPrefix {
        /// Size of the newest-followers frame.
        window: usize,
    },
}

impl SamplingScheme {
    /// Draws up to `k` indices into a population of `len` items according to
    /// the scheme.
    pub fn draw_indices<R: Rng + ?Sized>(&self, rng: &mut R, len: usize, k: usize) -> Vec<usize> {
        match *self {
            SamplingScheme::Uniform => UniformSampler.draw_indices(rng, len, k),
            SamplingScheme::Prefix { window } => {
                PrefixSampler::new(window).draw_indices(rng, len, k)
            }
            SamplingScheme::DeterministicPrefix { window } => {
                PrefixSampler::deterministic(window).draw_indices(rng, len, k)
            }
        }
    }
}

impl fmt::Display for SamplingScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplingScheme::Uniform => write!(f, "uniform"),
            SamplingScheme::Prefix { window } => write!(f, "prefix(window={window})"),
            SamplingScheme::DeterministicPrefix { window } => {
                write!(f, "deterministic-prefix(window={window})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_for;
    use std::collections::HashSet;

    fn assert_valid(indices: &[usize], len: usize, expected: usize) {
        assert_eq!(indices.len(), expected);
        let set: HashSet<_> = indices.iter().copied().collect();
        assert_eq!(set.len(), indices.len(), "indices must be distinct");
        assert!(indices.iter().all(|&i| i < len));
    }

    #[test]
    fn uniform_draws_distinct_in_range() {
        let mut rng = rng_for(1, "t");
        let idx = UniformSampler.draw_indices(&mut rng, 100, 30);
        assert_valid(&idx, 100, 30);
    }

    #[test]
    fn uniform_caps_at_population() {
        let mut rng = rng_for(1, "t");
        let idx = UniformSampler.draw_indices(&mut rng, 5, 30);
        assert_valid(&idx, 5, 5);
    }

    #[test]
    fn uniform_empty_population() {
        let mut rng = rng_for(1, "t");
        assert!(UniformSampler.draw_indices(&mut rng, 0, 10).is_empty());
    }

    #[test]
    fn uniform_covers_whole_range_eventually() {
        let mut rng = rng_for(2, "t");
        let mut seen = HashSet::new();
        for _ in 0..200 {
            seen.extend(UniformSampler.draw_indices(&mut rng, 50, 10));
        }
        assert_eq!(seen.len(), 50, "all positions should be reachable");
    }

    #[test]
    fn prefix_never_leaves_window() {
        let mut rng = rng_for(3, "t");
        let s = PrefixSampler::new(10);
        for _ in 0..100 {
            let idx = s.draw_indices(&mut rng, 1000, 5);
            assert_valid(&idx, 10, 5);
        }
    }

    #[test]
    fn prefix_window_larger_than_population() {
        let mut rng = rng_for(3, "t");
        let s = PrefixSampler::new(1000);
        let idx = s.draw_indices(&mut rng, 7, 5);
        assert_valid(&idx, 7, 5);
    }

    #[test]
    fn deterministic_prefix_takes_head() {
        let mut rng = rng_for(4, "t");
        let s = PrefixSampler::deterministic(100);
        let idx = s.draw_indices(&mut rng, 1000, 5);
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        PrefixSampler::new(0);
    }

    #[test]
    fn draw_clones_selected_items() {
        let mut rng = rng_for(5, "t");
        let pop: Vec<u32> = (0..100).collect();
        let items = PrefixSampler::deterministic(10).draw(&mut rng, &pop, 3);
        assert_eq!(items, vec![0, 1, 2]);
    }

    #[test]
    fn scheme_dispatch_matches_direct() {
        let pop_len = 500;
        let idx_a =
            SamplingScheme::Prefix { window: 20 }.draw_indices(&mut rng_for(6, "a"), pop_len, 10);
        let idx_b = PrefixSampler::new(20).draw_indices(&mut rng_for(6, "a"), pop_len, 10);
        assert_eq!(idx_a, idx_b);
    }

    #[test]
    fn scheme_display() {
        assert_eq!(SamplingScheme::Uniform.to_string(), "uniform");
        assert_eq!(
            SamplingScheme::Prefix { window: 700 }.to_string(),
            "prefix(window=700)"
        );
    }

    #[test]
    fn uniform_is_unbiased_over_positions() {
        // Mean sampled index over many draws should approximate the
        // population mid-point — the property prefix sampling lacks.
        let mut rng = rng_for(7, "t");
        let mut sum = 0usize;
        let mut count = 0usize;
        for _ in 0..500 {
            for i in UniformSampler.draw_indices(&mut rng, 1000, 20) {
                sum += i;
                count += 1;
            }
        }
        let mean = sum as f64 / count as f64;
        assert!(
            (mean - 499.5).abs() < 30.0,
            "mean index {mean} too far from 499.5"
        );
    }

    #[test]
    fn prefix_is_biased_towards_head() {
        let mut rng = rng_for(8, "t");
        let s = PrefixSampler::new(100);
        let mut sum = 0usize;
        let mut count = 0usize;
        for _ in 0..500 {
            for i in s.draw_indices(&mut rng, 1000, 20) {
                sum += i;
                count += 1;
            }
        }
        let mean = sum as f64 / count as f64;
        assert!(
            mean < 60.0,
            "prefix mean index {mean} should sit in the window"
        );
    }
}
