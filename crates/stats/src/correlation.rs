//! Correlation coefficients for the disagreement analyses (E5).
//!
//! §IV-D's "the more followers a target has, the less the analytics agree"
//! is a monotone-association claim over 20 points; Spearman's rank
//! correlation is the appropriate statistic (robust to the heavy skew of
//! follower counts), with Pearson on log-counts as a cross-check.

use std::fmt;

/// Errors from correlation computations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrelationError {
    /// Input slices differ in length.
    LengthMismatch,
    /// Fewer than two points.
    TooFewPoints,
    /// A value was NaN or infinite.
    NonFinite,
}

impl fmt::Display for CorrelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorrelationError::LengthMismatch => write!(f, "samples differ in length"),
            CorrelationError::TooFewPoints => write!(f, "need at least two points"),
            CorrelationError::NonFinite => write!(f, "samples must be finite"),
        }
    }
}

impl std::error::Error for CorrelationError {}

fn validate(xs: &[f64], ys: &[f64]) -> Result<(), CorrelationError> {
    if xs.len() != ys.len() {
        return Err(CorrelationError::LengthMismatch);
    }
    if xs.len() < 2 {
        return Err(CorrelationError::TooFewPoints);
    }
    if xs.iter().chain(ys).any(|v| !v.is_finite()) {
        return Err(CorrelationError::NonFinite);
    }
    Ok(())
}

/// Pearson product-moment correlation. Returns 0 when either sample is
/// constant.
///
/// # Errors
///
/// See [`CorrelationError`].
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64, CorrelationError> {
    validate(xs, ys)?;
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        Ok(0.0)
    } else {
        Ok(cov / (vx * vy).sqrt())
    }
}

/// Mid-ranks (average ranks for ties), 1-based.
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite values"));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Positions i..=j share the same value: assign the average rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman's rank correlation (Pearson over mid-ranks, so ties are
/// handled correctly).
///
/// # Errors
///
/// See [`CorrelationError`].
///
/// ```
/// use fakeaudit_stats::correlation::spearman;
/// // Any monotone transform scores a perfect 1.
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// let ys = [1.0, 8.0, 27.0, 64.0];
/// assert!((spearman(&xs, &ys)? - 1.0).abs() < 1e-12);
/// # Ok::<(), fakeaudit_stats::correlation::CorrelationError>(())
/// ```
pub fn spearman(xs: &[f64], ys: &[f64]) -> Result<f64, CorrelationError> {
    validate(xs, ys)?;
    pearson(&ranks(xs), &ranks(ys))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_reference() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).unwrap(), 0.0);
    }

    #[test]
    fn spearman_is_transform_invariant() {
        let xs = [1.0f64, 5.0, 9.0, 20.0, 100.0];
        let cubes: Vec<f64> = xs.iter().map(|&x| x.powi(3)).collect();
        let logs: Vec<f64> = xs.iter().map(|&x| x.ln()).collect();
        assert!((spearman(&xs, &cubes).unwrap() - 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &logs).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_anticorrelation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 7.0, 5.0, 1.0];
        assert!((spearman(&xs, &ys).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties_with_midranks() {
        // xs has a tie; classic midrank example.
        let xs = [1.0, 2.0, 2.0, 3.0];
        let ys = [1.0, 2.0, 3.0, 4.0];
        let r = spearman(&xs, &ys).unwrap();
        assert!(r > 0.9 && r < 1.0, "rho {r}");
    }

    #[test]
    fn errors() {
        assert_eq!(
            pearson(&[1.0], &[1.0, 2.0]).unwrap_err(),
            CorrelationError::LengthMismatch
        );
        assert_eq!(
            spearman(&[1.0], &[1.0]).unwrap_err(),
            CorrelationError::TooFewPoints
        );
        assert_eq!(
            pearson(&[1.0, f64::NAN], &[1.0, 2.0]).unwrap_err(),
            CorrelationError::NonFinite
        );
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
        assert_eq!(ranks(&[5.0]), vec![1.0]);
        assert_eq!(ranks(&[2.0, 2.0, 2.0]), vec![2.0, 2.0, 2.0]);
    }
}
