//! Analytic machinery for sampling bias (paper §II-D and §IV-D).
//!
//! The paper's worked example: an account with 100K genuine followers buys
//! 10K fakes. Because the fakes are the *newest* followers and the tools
//! sample only from the head of the list, a prefix sampler reports ≈100%
//! fake while the population truth is ≈9%. This module computes the exact
//! expectation of a prefix-sampled estimator from a positional property
//! profile, and measures empirical estimator error.

use crate::sampling::SamplingScheme;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The expected value of the proportion estimator when sampling uniformly
/// **within the newest-`window` prefix** of a population whose per-position
/// property indicator is `is_positive(i)` (position 0 = newest).
///
/// Since every frame position is equally likely to enter the sample, the
/// expectation is simply the positive fraction of the frame.
///
/// ```
/// use fakeaudit_stats::bias::expected_prefix_estimate;
/// // Paper example: 10K bought fakes are the newest followers of a
/// // 110K-follower account. A tool sampling the newest 1000 expects 100%.
/// let e = expected_prefix_estimate(110_000, 1_000, |i| i < 10_000);
/// assert_eq!(e, 1.0);
/// // Population truth is ~9%.
/// let truth = expected_prefix_estimate(110_000, 110_000, |i| i < 10_000);
/// assert!((truth - 10_000.0 / 110_000.0).abs() < 1e-12);
/// ```
pub fn expected_prefix_estimate<F>(population: usize, window: usize, mut is_positive: F) -> f64
where
    F: FnMut(usize) -> bool,
{
    let frame = window.min(population);
    if frame == 0 {
        return 0.0;
    }
    let positives = (0..frame).filter(|&i| is_positive(i)).count();
    positives as f64 / frame as f64
}

/// The absolute bias of the prefix-window estimator versus the population
/// proportion: `|E[p̂_prefix] − p|`.
pub fn prefix_bias<F>(population: usize, window: usize, mut is_positive: F) -> f64
where
    F: FnMut(usize) -> bool,
{
    if population == 0 {
        return 0.0;
    }
    let head = expected_prefix_estimate(population, window, &mut is_positive);
    let truth = expected_prefix_estimate(population, population, &mut is_positive);
    (head - truth).abs()
}

/// Result of an empirical estimator-error trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimatorTrial {
    /// True population proportion.
    pub truth: f64,
    /// Mean of the estimator across repetitions.
    pub mean_estimate: f64,
    /// Mean absolute error versus truth.
    pub mean_abs_error: f64,
    /// Worst absolute error observed.
    pub max_abs_error: f64,
    /// Repetitions performed.
    pub repetitions: usize,
}

impl fmt::Display for EstimatorTrial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "truth={:.4} mean_est={:.4} mae={:.4} max_err={:.4} (r={})",
            self.truth,
            self.mean_estimate,
            self.mean_abs_error,
            self.max_abs_error,
            self.repetitions
        )
    }
}

/// Empirically measures the error of a sampling scheme against ground truth.
///
/// `labels[i]` is the property indicator of the item at position `i`
/// (position 0 = newest). Draws `sample_size` items `repetitions` times under
/// `scheme` and compares the resulting estimates with the population truth.
///
/// # Panics
///
/// Panics if `labels` is empty, or `sample_size == 0`, or `repetitions == 0`.
pub fn measure_estimator_error<R: Rng + ?Sized>(
    rng: &mut R,
    labels: &[bool],
    scheme: SamplingScheme,
    sample_size: usize,
    repetitions: usize,
) -> EstimatorTrial {
    assert!(!labels.is_empty(), "population must be non-empty");
    assert!(sample_size > 0, "sample size must be positive");
    assert!(repetitions > 0, "repetitions must be positive");
    let truth = labels.iter().filter(|&&b| b).count() as f64 / labels.len() as f64;
    let mut sum_est = 0.0;
    let mut sum_err = 0.0;
    let mut max_err: f64 = 0.0;
    for _ in 0..repetitions {
        let idx = scheme.draw_indices(rng, labels.len(), sample_size);
        let pos = idx.iter().filter(|&&i| labels[i]).count();
        let est = pos as f64 / idx.len() as f64;
        let err = (est - truth).abs();
        sum_est += est;
        sum_err += err;
        max_err = max_err.max(err);
    }
    EstimatorTrial {
        truth,
        mean_estimate: sum_est / repetitions as f64,
        mean_abs_error: sum_err / repetitions as f64,
        max_abs_error: max_err,
        repetitions,
    }
}

/// A synthetic population layout for bias studies: `newest_positives` items
/// carrying the property at the head of the list, followed by
/// `older_negatives` items without it — the paper's bought-followers shape.
pub fn burst_population(newest_positives: usize, older_negatives: usize) -> Vec<bool> {
    let mut v = vec![true; newest_positives];
    v.extend(std::iter::repeat_n(false, older_negatives));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_for;

    #[test]
    fn paper_worked_example() {
        // 10K bought fakes + 100K genuine; tool samples newest 1000.
        let labels = burst_population(10_000, 100_000);
        let truth = 10_000.0 / 110_000.0;
        let bias = prefix_bias(labels.len(), 1_000, |i| labels[i]);
        assert!((bias - (1.0 - truth)).abs() < 1e-12, "bias {bias}");
    }

    #[test]
    fn no_bias_when_window_covers_population() {
        let labels = burst_population(100, 900);
        assert_eq!(prefix_bias(labels.len(), 1_000, |i| labels[i]), 0.0);
    }

    #[test]
    fn no_bias_for_homogeneous_population() {
        assert_eq!(prefix_bias(1_000, 10, |_| true), 0.0);
        assert_eq!(prefix_bias(1_000, 10, |_| false), 0.0);
    }

    #[test]
    fn empty_population_edge_cases() {
        assert_eq!(expected_prefix_estimate(0, 10, |_| true), 0.0);
        assert_eq!(prefix_bias(0, 10, |_| true), 0.0);
    }

    #[test]
    fn uniform_sampling_is_nearly_unbiased() {
        let labels = burst_population(10_000, 100_000);
        let mut rng = rng_for(11, "bias");
        let trial = measure_estimator_error(&mut rng, &labels, SamplingScheme::Uniform, 9_604, 20);
        assert!(
            (trial.mean_estimate - trial.truth).abs() < 0.01,
            "uniform estimator strayed: {trial}"
        );
    }

    #[test]
    fn prefix_sampling_is_grossly_biased_on_burst() {
        let labels = burst_population(10_000, 100_000);
        let mut rng = rng_for(12, "bias");
        let trial = measure_estimator_error(
            &mut rng,
            &labels,
            SamplingScheme::Prefix { window: 1_000 },
            1_000,
            20,
        );
        assert!(trial.mean_estimate > 0.99, "prefix estimator {trial}");
        assert!(trial.mean_abs_error > 0.85);
    }

    #[test]
    fn deterministic_prefix_equals_expectation() {
        let labels = burst_population(500, 500);
        let mut rng = rng_for(13, "bias");
        let trial = measure_estimator_error(
            &mut rng,
            &labels,
            SamplingScheme::DeterministicPrefix { window: 200 },
            200,
            3,
        );
        assert_eq!(trial.mean_estimate, 1.0);
        assert_eq!(trial.max_abs_error, trial.mean_abs_error);
    }

    #[test]
    fn sample_larger_than_population_is_census() {
        let labels = burst_population(3, 7);
        let mut rng = rng_for(14, "bias");
        let trial = measure_estimator_error(&mut rng, &labels, SamplingScheme::Uniform, 100, 5);
        assert_eq!(trial.mean_abs_error, 0.0);
        assert!((trial.mean_estimate - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "population must be non-empty")]
    fn empty_labels_panics() {
        let mut rng = rng_for(15, "bias");
        measure_estimator_error(&mut rng, &[], SamplingScheme::Uniform, 1, 1);
    }

    #[test]
    fn burst_population_layout() {
        let v = burst_population(2, 3);
        assert_eq!(v, vec![true, true, false, false, false]);
    }
}
