//! Required-sample-size computations (Cochran's formula).
//!
//! The Fake Project classifier of §III always samples **9604** followers:
//! the size required for a 95% confidence level with a ±1% margin of error
//! under the conservative worst case `p = 0.5`. This module reproduces that
//! arithmetic and its finite-population refinement.

use crate::estimator::ConfidenceLevel;

/// Cochran's required sample size for estimating a proportion:
/// `n = Z² · p(1−p) / e²`, rounded up.
///
/// `margin` is the half-width of the desired interval (e.g. `0.01` for ±1%)
/// and `p_guess` the anticipated proportion (use `0.5` for the conservative
/// worst case, as the paper does).
///
/// # Panics
///
/// Panics if `margin` is not in `(0, 1)` or `p_guess` not in `[0, 1]`.
///
/// ```
/// use fakeaudit_stats::{required_sample_size, ConfidenceLevel};
/// // The paper's FC sample size.
/// assert_eq!(required_sample_size(ConfidenceLevel::P95, 0.01, 0.5), 9604);
/// // StatusPeople's 1000-record sample corresponds to a ±3.1% margin.
/// assert_eq!(required_sample_size(ConfidenceLevel::P95, 0.031, 0.5), 1000);
/// ```
pub fn required_sample_size(level: ConfidenceLevel, margin: f64, p_guess: f64) -> u64 {
    assert!(
        margin > 0.0 && margin < 1.0,
        "margin must be in (0, 1), got {margin}"
    );
    assert!(
        (0.0..=1.0).contains(&p_guess),
        "p_guess must be in [0, 1], got {p_guess}"
    );
    let z = level.z();
    ((z * z * p_guess * (1.0 - p_guess)) / (margin * margin)).ceil() as u64
}

/// Required sample size with the finite-population correction:
/// `n' = n / (1 + (n − 1)/N)`, rounded up.
///
/// For small populations a census may be cheaper than the asymptotic sample;
/// `n'` never exceeds `population_size`.
///
/// ```
/// use fakeaudit_stats::{ConfidenceLevel};
/// use fakeaudit_stats::sample_size::required_sample_size_finite;
/// // For a 10K-follower account the 9604 asymptotic sample collapses
/// // to under 5K once the population is accounted for.
/// let n = required_sample_size_finite(ConfidenceLevel::P95, 0.01, 0.5, 10_000);
/// assert!(n < 5_000);
/// ```
pub fn required_sample_size_finite(
    level: ConfidenceLevel,
    margin: f64,
    p_guess: f64,
    population_size: u64,
) -> u64 {
    let n0 = required_sample_size(level, margin, p_guess) as f64;
    let big_n = population_size as f64;
    if population_size == 0 {
        return 0;
    }
    let n = n0 / (1.0 + (n0 - 1.0) / big_n);
    (n.ceil() as u64).min(population_size)
}

/// The margin of error achieved by a sample of size `n` at the given level,
/// worst case `p = 0.5`: `e = Z · sqrt(0.25/n)`.
///
/// Used to annotate the commercial tools' fixed windows (700, 1000, 2000,
/// 5000 records) with the accuracy they *could at best* achieve even if
/// their samples were unbiased.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn worst_case_margin(level: ConfidenceLevel, n: u64) -> f64 {
    assert!(n > 0, "sample size must be positive");
    level.z() * (0.25 / n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constant() {
        assert_eq!(required_sample_size(ConfidenceLevel::P95, 0.01, 0.5), 9604);
    }

    #[test]
    fn p99_needs_more_samples() {
        let n95 = required_sample_size(ConfidenceLevel::P95, 0.01, 0.5);
        let n99 = required_sample_size(ConfidenceLevel::P99, 0.01, 0.5);
        assert!(n99 > n95);
        assert_eq!(n99, 16_641); // 2.58² · 0.25 / 0.0001
    }

    #[test]
    fn smaller_margin_needs_more_samples() {
        assert!(
            required_sample_size(ConfidenceLevel::P95, 0.005, 0.5)
                > required_sample_size(ConfidenceLevel::P95, 0.01, 0.5)
        );
    }

    #[test]
    fn skewed_p_needs_fewer_samples() {
        assert!(
            required_sample_size(ConfidenceLevel::P95, 0.01, 0.1)
                < required_sample_size(ConfidenceLevel::P95, 0.01, 0.5)
        );
    }

    #[test]
    #[should_panic(expected = "margin must be in (0, 1)")]
    fn rejects_zero_margin() {
        required_sample_size(ConfidenceLevel::P95, 0.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "p_guess must be in [0, 1]")]
    fn rejects_bad_p() {
        required_sample_size(ConfidenceLevel::P95, 0.01, 1.5);
    }

    #[test]
    fn finite_correction_never_exceeds_population() {
        for n in [1u64, 10, 100, 9_604, 100_000] {
            assert!(required_sample_size_finite(ConfidenceLevel::P95, 0.01, 0.5, n) <= n);
        }
    }

    #[test]
    fn finite_correction_converges_to_cochran() {
        let n = required_sample_size_finite(ConfidenceLevel::P95, 0.01, 0.5, 1_000_000_000);
        assert_eq!(n, 9604);
    }

    #[test]
    fn finite_zero_population() {
        assert_eq!(
            required_sample_size_finite(ConfidenceLevel::P95, 0.01, 0.5, 0),
            0
        );
    }

    #[test]
    fn worst_case_margin_for_tool_windows() {
        // StatusPeople assesses 1000 records: best-case ±3.1%.
        assert!((worst_case_margin(ConfidenceLevel::P95, 1000) - 0.031).abs() < 1e-3);
        // Socialbakers' 2000: ±2.2%.
        assert!((worst_case_margin(ConfidenceLevel::P95, 2000) - 0.0219).abs() < 1e-3);
        // Twitteraudit's 5000: ±1.4%.
        assert!((worst_case_margin(ConfidenceLevel::P95, 5000) - 0.0139).abs() < 1e-3);
    }

    #[test]
    fn margin_roundtrips_with_required_size() {
        let n = required_sample_size(ConfidenceLevel::P95, 0.02, 0.5);
        let e = worst_case_margin(ConfidenceLevel::P95, n);
        assert!(e <= 0.02 + 1e-9);
    }
}
