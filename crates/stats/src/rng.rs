//! Deterministic seed derivation.
//!
//! Every experiment in the repository is parameterised by a single `u64`
//! seed. Sub-systems (population generator, samplers, per-account jitter)
//! derive independent streams from that master seed with [`derive_seed`], so
//! adding a new consumer never perturbs the streams of existing ones.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives a child seed from a master seed and a textual label.
///
/// The derivation is a small, fixed FNV-1a-style mix — stable across
/// platforms and Rust releases (unlike `DefaultHasher`), which keeps every
/// table in `EXPERIMENTS.md` bit-reproducible.
///
/// ```
/// use fakeaudit_stats::rng::derive_seed;
/// let a = derive_seed(42, "population");
/// let b = derive_seed(42, "sampler");
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(42, "population"));
/// ```
pub fn derive_seed(master: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET ^ master.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for byte in label.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Final avalanche (splitmix64 finaliser) so nearby seeds diverge.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Creates a [`StdRng`] from a master seed and label via [`derive_seed`].
///
/// ```
/// use fakeaudit_stats::rng::rng_for;
/// use rand::Rng;
/// let mut r = rng_for(7, "demo");
/// let x: f64 = r.gen();
/// assert!((0.0..1.0).contains(&x));
/// ```
pub fn rng_for(master: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, label))
}

/// Creates a [`StdRng`] for the `i`-th element of a keyed family of streams
/// (e.g. one stream per synthetic account).
pub fn rng_for_indexed(master: u64, label: &str, index: u64) -> StdRng {
    let base = derive_seed(master, label);
    StdRng::seed_from_u64(derive_seed(base, &format!("#{index}")))
}

/// A self-contained splitmix64 uniform stream.
///
/// Unlike [`StdRng`], whose output depends on the generator the `rand`
/// crate ships, this stream is fully specified right here — a few lines of
/// integer arithmetic — so sequences drawn from it are bit-reproducible
/// across `rand` versions, platforms, and Rust releases. Use it for
/// streams whose exact draw sequence is pinned by committed golden
/// fixtures (e.g. fault schedules).
///
/// ```
/// use fakeaudit_stats::rng::DetStream;
/// let mut a = DetStream::new(7, "faults");
/// let mut b = DetStream::new(7, "faults");
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!((0.0..1.0).contains(&a.next_f64()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetStream {
    state: u64,
}

impl DetStream {
    /// A stream seeded from a master seed and label via [`derive_seed`].
    pub fn new(master: u64, label: &str) -> DetStream {
        DetStream {
            state: derive_seed(master, label),
        }
    }

    /// The next 64 uniform bits (one splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The next uniform draw in `[0, 1)`, at 53-bit resolution.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(1, "x"), derive_seed(1, "x"));
    }

    #[test]
    fn derive_seed_separates_labels() {
        assert_ne!(derive_seed(1, "x"), derive_seed(1, "y"));
    }

    #[test]
    fn derive_seed_separates_masters() {
        assert_ne!(derive_seed(1, "x"), derive_seed(2, "x"));
    }

    #[test]
    fn derive_seed_nearby_masters_diverge() {
        // splitmix finaliser: consecutive masters should not produce
        // consecutive child seeds.
        let a = derive_seed(100, "s");
        let b = derive_seed(101, "s");
        assert!(a.abs_diff(b) > 1 << 20);
    }

    #[test]
    fn rng_for_reproduces_streams() {
        let xs: Vec<u32> = {
            let mut r = rng_for(9, "stream");
            (0..8).map(|_| r.gen()).collect()
        };
        let ys: Vec<u32> = {
            let mut r = rng_for(9, "stream");
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(xs, ys);
    }

    #[test]
    fn indexed_streams_are_distinct() {
        let mut a = rng_for_indexed(3, "acct", 0);
        let mut b = rng_for_indexed(3, "acct", 1);
        let xa: u64 = a.gen();
        let xb: u64 = b.gen();
        assert_ne!(xa, xb);
    }

    #[test]
    fn empty_label_is_valid() {
        // Degenerate but allowed: an empty label still yields a usable seed.
        let s = derive_seed(5, "");
        assert_ne!(s, 5);
    }

    #[test]
    fn det_stream_is_reproducible_and_label_separated() {
        let draws = |master, label: &str| {
            let mut s = DetStream::new(master, label);
            (0..16).map(|_| s.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draws(3, "a"), draws(3, "a"));
        assert_ne!(draws(3, "a"), draws(3, "b"));
        assert_ne!(draws(3, "a"), draws(4, "a"));
    }

    #[test]
    fn det_stream_f64_is_uniformish() {
        let mut s = DetStream::new(11, "u");
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| s.next_f64()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
