//! Deterministic seed derivation.
//!
//! Every experiment in the repository is parameterised by a single `u64`
//! seed. Sub-systems (population generator, samplers, per-account jitter)
//! derive independent streams from that master seed with [`derive_seed`], so
//! adding a new consumer never perturbs the streams of existing ones.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives a child seed from a master seed and a textual label.
///
/// The derivation is a small, fixed FNV-1a-style mix — stable across
/// platforms and Rust releases (unlike `DefaultHasher`), which keeps every
/// table in `EXPERIMENTS.md` bit-reproducible.
///
/// ```
/// use fakeaudit_stats::rng::derive_seed;
/// let a = derive_seed(42, "population");
/// let b = derive_seed(42, "sampler");
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(42, "population"));
/// ```
pub fn derive_seed(master: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET ^ master.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for byte in label.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Final avalanche (splitmix64 finaliser) so nearby seeds diverge.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Creates a [`StdRng`] from a master seed and label via [`derive_seed`].
///
/// ```
/// use fakeaudit_stats::rng::rng_for;
/// use rand::Rng;
/// let mut r = rng_for(7, "demo");
/// let x: f64 = r.gen();
/// assert!((0.0..1.0).contains(&x));
/// ```
pub fn rng_for(master: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, label))
}

/// Creates a [`StdRng`] for the `i`-th element of a keyed family of streams
/// (e.g. one stream per synthetic account).
pub fn rng_for_indexed(master: u64, label: &str, index: u64) -> StdRng {
    let base = derive_seed(master, label);
    StdRng::seed_from_u64(derive_seed(base, &format!("#{index}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(1, "x"), derive_seed(1, "x"));
    }

    #[test]
    fn derive_seed_separates_labels() {
        assert_ne!(derive_seed(1, "x"), derive_seed(1, "y"));
    }

    #[test]
    fn derive_seed_separates_masters() {
        assert_ne!(derive_seed(1, "x"), derive_seed(2, "x"));
    }

    #[test]
    fn derive_seed_nearby_masters_diverge() {
        // splitmix finaliser: consecutive masters should not produce
        // consecutive child seeds.
        let a = derive_seed(100, "s");
        let b = derive_seed(101, "s");
        assert!(a.abs_diff(b) > 1 << 20);
    }

    #[test]
    fn rng_for_reproduces_streams() {
        let xs: Vec<u32> = {
            let mut r = rng_for(9, "stream");
            (0..8).map(|_| r.gen()).collect()
        };
        let ys: Vec<u32> = {
            let mut r = rng_for(9, "stream");
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(xs, ys);
    }

    #[test]
    fn indexed_streams_are_distinct() {
        let mut a = rng_for_indexed(3, "acct", 0);
        let mut b = rng_for_indexed(3, "acct", 1);
        let xa: u64 = a.gen();
        let xb: u64 = b.gen();
        assert_ne!(xa, xb);
    }

    #[test]
    fn empty_label_is_valid() {
        // Degenerate but allowed: an empty label still yields a usable seed.
        let s = derive_seed(5, "");
        assert_ne!(s, 5);
    }
}
