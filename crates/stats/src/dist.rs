//! Seeded synthetic distributions built from `rand`'s uniform primitives.
//!
//! The offline dependency set does not include `rand_distr`, so the handful
//! of distributions the population generator needs — Zipf (follower-count
//! skew), exponential (inter-arrival of follow events), log-normal (tweet
//! volumes), Poisson (small counts) — are implemented here directly.

use rand::Rng;
use std::fmt;

/// Errors from distribution constructors.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name} = {value}")
            }
        }
    }
}

impl std::error::Error for DistError {}

/// A bounded Zipf distribution over `1..=n` with exponent `s`.
///
/// Sampling uses inverse-CDF over precomputed cumulative weights (O(log n)
/// per draw after O(n) setup), which is plenty for populations up to a few
/// million.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over ranks `1..=n` with exponent `s > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] when `n == 0` or `s <= 0`.
    pub fn new(n: usize, s: f64) -> Result<Self, DistError> {
        if n == 0 {
            return Err(DistError::InvalidParameter {
                name: "n",
                value: 0.0,
            });
        }
        if s <= 0.0 || !s.is_finite() {
            return Err(DistError::InvalidParameter {
                name: "s",
                value: s,
            });
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Ok(Self { cdf })
    }

    /// Draws a rank in `1..=n` (rank 1 is the most probable).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the support is a single rank.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// Exponential distribution with rate `λ`, sampled by inversion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `lambda > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] when `lambda <= 0`.
    pub fn new(lambda: f64) -> Result<Self, DistError> {
        if lambda <= 0.0 || !lambda.is_finite() {
            return Err(DistError::InvalidParameter {
                name: "lambda",
                value: lambda,
            });
        }
        Ok(Self { lambda })
    }

    /// Draws a non-negative value with mean `1/λ`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Map u ∈ [0,1) to (0,1] so ln never sees 0.
        let u: f64 = 1.0 - rng.gen::<f64>();
        -u.ln() / self.lambda
    }

    /// The distribution mean `1/λ`.
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }
}

/// Log-normal distribution: `exp(μ + σ·Z)` with `Z` standard normal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution with location `mu` and scale
    /// `sigma >= 0`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] when `sigma < 0` or either
    /// parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, DistError> {
        if !mu.is_finite() {
            return Err(DistError::InvalidParameter {
                name: "mu",
                value: mu,
            });
        }
        if sigma < 0.0 || !sigma.is_finite() {
            return Err(DistError::InvalidParameter {
                name: "sigma",
                value: sigma,
            });
        }
        Ok(Self { mu, sigma })
    }

    /// Draws a positive value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Poisson distribution with mean `λ`, sampled with Knuth's product method
/// (fine for the small means used by the account generator).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with mean `lambda > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] when `lambda <= 0` or
    /// `lambda > 700` (where `exp(-λ)` underflows and Knuth's method stalls).
    pub fn new(lambda: f64) -> Result<Self, DistError> {
        if lambda <= 0.0 || !lambda.is_finite() || lambda > 700.0 {
            return Err(DistError::InvalidParameter {
                name: "lambda",
                value: lambda,
            });
        }
        Ok(Self { lambda })
    }

    /// Draws a non-negative count.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let l = (-self.lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }
}

/// Draws a standard normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_for;

    #[test]
    fn zipf_rejects_bad_parameters() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, 0.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
    }

    #[test]
    fn zipf_samples_in_support() {
        let z = Zipf::new(50, 1.2).unwrap();
        let mut rng = rng_for(1, "zipf");
        for _ in 0..1000 {
            let k = z.sample(&mut rng);
            assert!((1..=50).contains(&k));
        }
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let z = Zipf::new(100, 1.5).unwrap();
        let mut rng = rng_for(2, "zipf");
        let mut ones = 0;
        let n = 5000;
        for _ in 0..n {
            if z.sample(&mut rng) == 1 {
                ones += 1;
            }
        }
        // P(rank 1) ≈ 1/ζ(1.5, 100) ≈ 0.39.
        let frac = ones as f64 / n as f64;
        assert!(frac > 0.3 && frac < 0.5, "rank-1 fraction {frac}");
    }

    #[test]
    fn zipf_single_rank() {
        let z = Zipf::new(1, 2.0).unwrap();
        let mut rng = rng_for(3, "zipf");
        assert_eq!(z.sample(&mut rng), 1);
        assert_eq!(z.len(), 1);
        assert!(!z.is_empty());
    }

    #[test]
    fn exponential_mean_matches() {
        let e = Exponential::new(0.5).unwrap();
        let mut rng = rng_for(4, "exp");
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| e.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "sample mean {mean}, expected 2.0");
    }

    #[test]
    fn exponential_nonnegative() {
        let e = Exponential::new(3.0).unwrap();
        let mut rng = rng_for(5, "exp");
        assert!((0..1000).all(|_| e.sample(&mut rng) >= 0.0));
    }

    #[test]
    fn exponential_rejects_bad_rate() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::INFINITY).is_err());
    }

    #[test]
    fn lognormal_positive() {
        let ln = LogNormal::new(1.0, 0.8).unwrap();
        let mut rng = rng_for(6, "ln");
        assert!((0..1000).all(|_| ln.sample(&mut rng) > 0.0));
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let ln = LogNormal::new(2.0, 1.0).unwrap();
        let mut rng = rng_for(7, "ln");
        let mut xs: Vec<f64> = (0..10_001).map(|_| ln.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        let expected = 2.0f64.exp();
        assert!(
            (median / expected - 1.0).abs() < 0.15,
            "median {median} vs exp(mu) {expected}"
        );
    }

    #[test]
    fn lognormal_rejects_negative_sigma() {
        assert!(LogNormal::new(0.0, -0.1).is_err());
    }

    #[test]
    fn lognormal_zero_sigma_is_constant() {
        let ln = LogNormal::new(1.0, 0.0).unwrap();
        let mut rng = rng_for(8, "ln");
        let x = ln.sample(&mut rng);
        assert!((x - 1.0f64.exp()).abs() < 1e-12);
    }

    #[test]
    fn poisson_mean_matches() {
        let p = Poisson::new(4.0).unwrap();
        let mut rng = rng_for(9, "poi");
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| p.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "sample mean {mean}");
    }

    #[test]
    fn poisson_rejects_bad_lambda() {
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(-2.0).is_err());
        assert!(Poisson::new(1e6).is_err());
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = rng_for(10, "norm");
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }
}
